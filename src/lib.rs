//! # hic — a hardware-incoherent multiprocessor cache hierarchy
//!
//! A from-scratch Rust reproduction of
//! *"Architecting and Programming a Hardware-Incoherent Multiprocessor
//! Cache Hierarchy"* (Kim, Tavarageri, Sadayappan, Torrellas — IPDPS
//! 2016): an execution-driven manycore cache-hierarchy simulator, the
//! paper's WB/INV instruction family with the MEB and IEB buffers and
//! level-adaptive WB_CONS/INV_PROD, a directory-MESI baseline, the two
//! programming models, a mini-compiler for producer-consumer extraction,
//! and the full application suite and harness that regenerate the paper's
//! tables and figures.
//!
//! ## Quick start
//!
//! ```
//! use hic::runtime::{Config, IntraConfig, ProgramBuilder};
//!
//! // A 16-core single-block machine managed by WB/INV + MEB + IEB.
//! let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
//! let data = p.alloc(256);
//! let bar = p.barrier();
//! let out = p.run(16, move |ctx| {
//!     let t = ctx.tid() as u64;
//!     for i in (t * 16)..(t + 1) * 16 {
//!         ctx.write(data, i, i as u32 * 2);
//!     }
//!     ctx.barrier(bar); // inserts WB ALL / INV ALL automatically
//!     // After the barrier every thread sees everyone's writes.
//!     assert_eq!(ctx.read(data, (t * 7) % 256), ((t * 7) % 256) as u32 * 2);
//!     ctx.barrier(bar);
//! });
//! assert_eq!(out.peek(data, 100), 200);
//! println!("took {} simulated cycles", out.stats().total_cycles);
//! ```
//!
//! ## Configuring the machine
//!
//! The machine's shape is a validated [`sim::Topology`] built with
//! [`sim::TopologyBuilder`]; the paper's two machines are presets, and
//! `Config::with_topology` re-targets any scheme to any shape. A
//! machine the paper never built — 2 blocks of 4 cores under the
//! update-based Dragon protocol:
//!
//! ```
//! use hic::runtime::{Config, InterConfig, ProgramBuilder};
//! use hic::sim::TopologyBuilder;
//!
//! let topo = TopologyBuilder::new(2, 4).validate()?;
//! let config = Config::Inter(InterConfig::Dragon).with_topology(topo)?;
//!
//! let mut p = ProgramBuilder::new(config);
//! let data = p.alloc(64);
//! let bar = p.barrier();
//! let n = config.num_threads() as u64; // 8: one thread per core
//! let out = p.run(n as usize, move |ctx| {
//!     let t = ctx.tid() as u64;
//!     ctx.write(data, t, (t * t) as u32);
//!     ctx.barrier(bar); // Dragon is hardware-coherent: no WB/INV needed
//!     assert_eq!(ctx.read(data, (t + 1) % n), (((t + 1) % n).pow(2)) as u32);
//!     ctx.barrier(bar);
//! });
//! assert_eq!(out.peek(data, 3), 9);
//! # Ok::<(), hic::sim::ConfigError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `hic-sim` | cycle types, machine configuration (Table III), stall ledger |
//! | [`mem`] | `hic-mem` | caches with per-word dirty bits, memory, allocator |
//! | [`noc`] | `hic-noc` | 2D mesh, flit traffic accounting |
//! | [`core`] | `hic-core` | WB/INV ISA, ordering rules, MEB, IEB, ThreadMap, storage model |
//! | [`coherence`] | `hic-coherence` | the protocol zoo: directory MESI (HCC) + update-based Dragon |
//! | [`sync`] | `hic-sync` | barriers/locks/flags in the shared-cache controller |
//! | [`machine`] | `hic-machine` | the timing simulators and op interface |
//! | [`runtime`] | `hic-runtime` | thread API + annotation policies (both programming models) |
//! | [`analysis`] | `hic-analysis` | affine IR, DEF-USE producer/consumer extraction, inspector |
//! | [`apps`] | `hic-apps` | the 11 intra-block + 4 inter-block applications |

pub use hic_analysis as analysis;
pub use hic_apps as apps;
pub use hic_coherence as coherence;
pub use hic_core as core;
pub use hic_machine as machine;
pub use hic_mem as mem;
pub use hic_noc as noc;
pub use hic_runtime as runtime;
pub use hic_sim as sim;
pub use hic_sync as sync;
