//! Small deterministic pseudo-random generator.
//!
//! Workload generators must be reproducible across runs and platforms so the
//! figure harness produces stable numbers; this is a self-contained
//! SplitMix64 that every crate can use without pulling `rand` into its
//! dependency tree. (Benchmarks still use `rand` where distributions are
//! needed.)

/// SplitMix64: tiny, fast, full-period-per-seed deterministic generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire-style rejection-free reduction is fine here: the slight
        // modulo bias is irrelevant for workload shaping.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` as f32 (the simulated machine word is
    /// 32 bits, so applications store f32 values).
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.unit_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}
