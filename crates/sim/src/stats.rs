//! Per-core execution-time accounting.
//!
//! Paper Figure 9 breaks execution time into five categories: INV stall,
//! WB stall, lock stall, barrier stall, and "rest of the execution".
//! [`StallLedger`] accumulates those per core; ledgers from all cores are
//! merged to produce the figure's stacked bars.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// One of the five execution-time categories of paper Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCategory {
    /// Time the core is stalled executing self-invalidation instructions.
    Inv,
    /// Time the core is stalled executing writeback instructions.
    Wb,
    /// Time spent waiting for lock acquires.
    Lock,
    /// Time spent waiting at barriers (mostly load imbalance).
    Barrier,
    /// Everything else: compute plus ordinary memory-access time.
    Rest,
}

impl StallCategory {
    /// All categories, in the order the paper's figure stacks them.
    pub const ALL: [StallCategory; 5] = [
        StallCategory::Inv,
        StallCategory::Wb,
        StallCategory::Lock,
        StallCategory::Barrier,
        StallCategory::Rest,
    ];

    /// Short label used by the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            StallCategory::Inv => "INV stall",
            StallCategory::Wb => "WB stall",
            StallCategory::Lock => "lock stall",
            StallCategory::Barrier => "barrier stall",
            StallCategory::Rest => "rest",
        }
    }
}

/// Cycle totals per [`StallCategory`] for one core (or summed over cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallLedger {
    pub inv: Cycle,
    pub wb: Cycle,
    pub lock: Cycle,
    pub barrier: Cycle,
    pub rest: Cycle,
}

impl StallLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `cycles` to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: StallCategory, cycles: Cycle) {
        match cat {
            StallCategory::Inv => self.inv += cycles,
            StallCategory::Wb => self.wb += cycles,
            StallCategory::Lock => self.lock += cycles,
            StallCategory::Barrier => self.barrier += cycles,
            StallCategory::Rest => self.rest += cycles,
        }
    }

    /// Cycles charged to `cat`.
    #[inline]
    pub fn get(&self, cat: StallCategory) -> Cycle {
        match cat {
            StallCategory::Inv => self.inv,
            StallCategory::Wb => self.wb,
            StallCategory::Lock => self.lock,
            StallCategory::Barrier => self.barrier,
            StallCategory::Rest => self.rest,
        }
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> Cycle {
        self.inv + self.wb + self.lock + self.barrier + self.rest
    }

    /// Element-wise sum, used to merge per-core ledgers.
    pub fn merged(&self, other: &StallLedger) -> StallLedger {
        StallLedger {
            inv: self.inv + other.inv,
            wb: self.wb + other.wb,
            lock: self.lock + other.lock,
            barrier: self.barrier + other.barrier,
            rest: self.rest + other.rest,
        }
    }

    /// Each category as a fraction of `denom` (e.g. the HCC total for a
    /// normalized figure). Returns in [`StallCategory::ALL`] order.
    pub fn normalized(&self, denom: Cycle) -> [f64; 5] {
        let d = denom.max(1) as f64;
        [
            self.inv as f64 / d,
            self.wb as f64 / d,
            self.lock as f64 / d,
            self.barrier as f64 / d,
            self.rest as f64 / d,
        ]
    }
}

impl std::ops::AddAssign for StallLedger {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.merged(&rhs);
    }
}

/// Host-side bookkeeping of the execution engine that drove a run.
///
/// These are **simulator** metrics, not simulated-machine metrics: they
/// describe how the scheduler moved ops between the simulated threads and
/// the machine (channel round-trips, batch coalescing, wakeups), so they
/// change with the transport configuration while `StallLedger` cycle
/// counts must not.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Machine operations executed, counting each batch member once.
    pub ops_executed: u64,
    /// Transport messages received from the threads (a batch counts as
    /// one message).
    pub messages: u64,
    /// `Op::Batch` messages among [`EngineStats::messages`].
    pub batches: u64,
    /// Reply round-trips: ops whose issuing thread blocked on a reply.
    pub round_trips: u64,
    /// Wakeups delivered to parked cores.
    pub wakeups: u64,
    /// Maximum number of simultaneously parked cores observed.
    pub peak_parked: u64,
    /// Ops retired entirely inside a shard's event domain (sharded
    /// engine only; zero under the sequential schedulers).
    pub shard_local_ops: u64,
    /// Ops that had to leave their shard and synchronize through the
    /// global event domain (sharded engine only).
    pub cross_shard_msgs: u64,
    /// Times the global domain had a runnable op but had to wait for a
    /// shard-local core to publish a safe clock first (sharded only).
    pub lookahead_stalls: u64,
    /// Contended acquisitions of the global-domain lock observed by
    /// shard threads (sharded only; a cheap `try_lock` miss counter).
    pub lock_waits: u64,
    /// Per-shard breakdown of the contention counters above; empty under
    /// the sequential schedulers.
    pub per_shard: Vec<ShardStats>,
}

/// Contention ledger of one shard of the sharded engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Ops retired inside this shard without touching the global domain.
    pub local_ops: u64,
    /// Ops this shard's cores routed through the global domain.
    pub cross_shard_msgs: u64,
    /// Global-lock acquisitions by this shard's cores that found the
    /// lock already held.
    pub lock_waits: u64,
}

impl EngineStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of executed ops that needed no reply round-trip; the
    /// direct measure of what batching saved (0.0 under the synchronous
    /// transport).
    pub fn round_trip_savings(&self) -> f64 {
        if self.ops_executed == 0 {
            return 0.0;
        }
        1.0 - self.round_trips as f64 / self.ops_executed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut l = StallLedger::new();
        l.charge(StallCategory::Inv, 10);
        l.charge(StallCategory::Wb, 20);
        l.charge(StallCategory::Lock, 5);
        l.charge(StallCategory::Barrier, 7);
        l.charge(StallCategory::Rest, 100);
        assert_eq!(l.total(), 142);
        assert_eq!(l.get(StallCategory::Wb), 20);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = StallLedger::new();
        a.charge(StallCategory::Inv, 1);
        let mut b = StallLedger::new();
        b.charge(StallCategory::Inv, 2);
        b.charge(StallCategory::Rest, 3);
        let m = a.merged(&b);
        assert_eq!(m.inv, 3);
        assert_eq!(m.rest, 3);
        a += b;
        assert_eq!(a, m);
    }

    #[test]
    fn normalized_fractions_sum_to_one() {
        let mut l = StallLedger::new();
        for (i, c) in StallCategory::ALL.iter().enumerate() {
            l.charge(*c, (i as u64 + 1) * 10);
        }
        let f = l.normalized(l.total());
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero_denominator() {
        let l = StallLedger::new();
        let f = l.normalized(0);
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn round_trip_savings_bounds() {
        let mut e = EngineStats::new();
        assert_eq!(e.round_trip_savings(), 0.0, "empty engine saves nothing");
        e.ops_executed = 100;
        e.round_trips = 100;
        assert_eq!(e.round_trip_savings(), 0.0, "synchronous transport");
        e.round_trips = 25;
        assert!((e.round_trip_savings() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn category_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            StallCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
