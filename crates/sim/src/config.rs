//! Architecture configuration: machine geometry as a first-class,
//! validated parameter.
//!
//! The centerpiece is [`Topology`]: how many blocks, how many cores per
//! block, the explicit mesh dimensions, the L2 banking, and the optional
//! shared L3 ([`SharedL3`]) that multi-block machines require. A
//! `Topology` can only be obtained through [`TopologyBuilder::validate`],
//! so every constructed value is internally consistent — downstream code
//! never re-checks shapes or panics mid-run.
//!
//! Two canonical machines from paper Table III are provided as presets:
//!
//! * [`MachineConfig::intra_block`] — 16 cores in one block: private L1s
//!   and a banked shared L2 (one bank per core), used for the intra-block
//!   experiments (paper §VI upper half of Table III).
//! * [`MachineConfig::inter_block`] — 4 blocks of 8 cores: per-block L2
//!   plus a shared 4-bank L3, used for the inter-block experiments.
//!
//! All latencies are round trips ("RT" in the paper) in core cycles.

use serde::{Deserialize, Serialize};

/// Word size in bytes — the finest sharing grain. 4 bytes gives the
/// paper's 16 per-word dirty bits per 64-byte line (§VII-A).
pub const WORD_BYTES: u64 = 4;

/// Words per cache line. Fixed at compile time because per-line word
/// arrays and dirty masks throughout the simulator are sized by it; any
/// [`CacheGeometry`] whose `line_bytes` disagrees with
/// `WORD_BYTES * WORDS_PER_LINE` is rejected at validation.
pub const WORDS_PER_LINE: usize = 16;

/// The one line size every cache level must use (64 bytes).
#[inline]
pub const fn line_bytes() -> usize {
    WORD_BYTES as usize * WORDS_PER_LINE
}

/// Geometry of one cache (or one bank of a banked cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes (per bank for banked caches).
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of lines this cache can hold.
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.ways
    }

    /// Words per line given the machine word size.
    #[inline]
    pub fn words_per_line(&self, word_bytes: usize) -> usize {
        self.line_bytes / word_bytes
    }

    /// Bits needed to name a line by its index within this cache
    /// (the MEB stores line IDs of this width, paper §IV-B1).
    pub fn line_id_bits(&self) -> u32 {
        usize::BITS - (self.num_lines() - 1).leading_zeros()
    }

    /// Shape errors that would break the cache model: line size must be
    /// the global line, capacity a whole number of lines, lines a whole
    /// number of ways, and the set count a power of two (the hot-path
    /// index math assumes it).
    fn check(&self, level: &'static str) -> Result<(), ConfigError> {
        if self.line_bytes != line_bytes() {
            return Err(ConfigError::LineMismatch {
                level,
                line_bytes: self.line_bytes,
                expected: line_bytes(),
            });
        }
        if self.ways == 0
            || self.size_bytes == 0
            || !self.size_bytes.is_multiple_of(self.line_bytes)
            || !self.num_lines().is_multiple_of(self.ways)
            || !self.num_sets().is_power_of_two()
        {
            return Err(ConfigError::BadGeometry {
                level,
                size_bytes: self.size_bytes,
                ways: self.ways,
            });
        }
        Ok(())
    }
}

/// Why a machine shape was rejected. Every invalid geometry is caught
/// once, at [`TopologyBuilder::validate`] / [`MachineConfig::validate`] —
/// never by a panic in the middle of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `blocks == 0`.
    ZeroBlocks,
    /// `cores_per_block == 0`.
    ZeroCoresPerBlock,
    /// More blocks or cores per block than the 64-bit directory
    /// presence masks can name.
    DirectoryTooWide { what: &'static str, n: usize },
    /// Explicit mesh dimensions too small for the core tiles.
    MeshTooSmall {
        cols: usize,
        rows: usize,
        tiles: usize,
    },
    /// A banked level was configured with zero banks.
    ZeroBanks { level: &'static str },
    /// A multi-block machine has no shared L3: cross-block uncached
    /// accesses and model-2 WB/INV need a globally shared level.
    MissingL3 { blocks: usize },
    /// A single-block machine was given an L3; its shared L2 is already
    /// the point of global visibility.
    UnexpectedL3,
    /// A cache level's line size disagrees with the global line
    /// (`WORD_BYTES * WORDS_PER_LINE`).
    LineMismatch {
        level: &'static str,
        line_bytes: usize,
        expected: usize,
    },
    /// A cache level's capacity/associativity do not form whole
    /// power-of-two sets.
    BadGeometry {
        level: &'static str,
        size_bytes: usize,
        ways: usize,
    },
    /// The machine word size disagrees with the compile-time grain.
    WordMismatch { word_bytes: usize },
    /// The programming-model scheme and the topology disagree (model 1
    /// needs a single block; model 2 needs multiple blocks).
    SchemeMismatch { scheme: &'static str, blocks: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBlocks => write!(f, "topology needs at least one block"),
            ConfigError::ZeroCoresPerBlock => {
                write!(f, "topology needs at least one core per block")
            }
            ConfigError::DirectoryTooWide { what, n } => write!(
                f,
                "{what} = {n} exceeds the 64-entry directory presence mask"
            ),
            ConfigError::MeshTooSmall { cols, rows, tiles } => write!(
                f,
                "{cols}x{rows} mesh has {} tiles but the machine needs {tiles}",
                cols * rows
            ),
            ConfigError::ZeroBanks { level } => {
                write!(f, "{level} must have at least one bank")
            }
            ConfigError::MissingL3 { blocks } => write!(
                f,
                "a {blocks}-block machine needs a shared L3 (cross-block \
                 accesses need a globally shared level)"
            ),
            ConfigError::UnexpectedL3 => write!(
                f,
                "a single-block machine must not have an L3; its shared L2 \
                 is already globally visible"
            ),
            ConfigError::LineMismatch {
                level,
                line_bytes,
                expected,
            } => write!(
                f,
                "{level} line size {line_bytes} B != the machine line of {expected} B"
            ),
            ConfigError::BadGeometry {
                level,
                size_bytes,
                ways,
            } => write!(
                f,
                "{level} geometry ({size_bytes} B, {ways}-way) does not form \
                 whole power-of-two sets"
            ),
            ConfigError::WordMismatch { word_bytes } => write!(
                f,
                "word size {word_bytes} B != the compile-time grain of {WORD_BYTES} B"
            ),
            ConfigError::SchemeMismatch { scheme, blocks } => {
                write!(f, "scheme {scheme} cannot run on a {blocks}-block topology")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The shared L3 level of a multi-block machine: corner banks that back
/// every block's L2 (paper Table III: "connected to each chip corner").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharedL3 {
    /// Geometry of one bank.
    pub geometry: CacheGeometry,
    /// Round-trip latency of a local bank access, cycles.
    pub rt: u64,
    /// Number of banks (at most 4 are placed, one per mesh corner).
    pub banks: usize,
}

/// The machine's shape: blocks, cores, mesh, banking, and the optional
/// shared L3. Fields are private — the only way to obtain a `Topology`
/// is through [`TopologyBuilder::validate`] (or a preset), so every
/// value in circulation is internally consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    blocks: usize,
    cores_per_block: usize,
    mesh_cols: usize,
    mesh_rows: usize,
    l2_banks_per_block: usize,
    l3: Option<SharedL3>,
}

impl Topology {
    /// One block of 16 cores — the paper's intra-block machine.
    pub fn intra_block() -> Topology {
        TopologyBuilder::new(1, 16)
            .validate()
            .expect("paper intra-block preset is valid")
    }

    /// Four blocks of 8 cores with a 4-bank L3 — the paper's inter-block
    /// machine.
    pub fn inter_block() -> Topology {
        TopologyBuilder::new(4, 8)
            .validate()
            .expect("paper inter-block preset is valid")
    }

    /// Number of blocks (clusters sharing an L2).
    #[inline]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Cores in each block.
    #[inline]
    pub fn cores_per_block(&self) -> usize {
        self.cores_per_block
    }

    /// Total cores in the machine.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.blocks * self.cores_per_block
    }

    /// Explicit mesh dimensions (columns, rows). Always large enough for
    /// every core tile.
    #[inline]
    pub fn mesh_dims(&self) -> (usize, usize) {
        (self.mesh_cols, self.mesh_rows)
    }

    /// L2 banks per block.
    #[inline]
    pub fn l2_banks_per_block(&self) -> usize {
        self.l2_banks_per_block
    }

    /// The shared L3, present exactly when `blocks > 1`.
    #[inline]
    pub fn l3(&self) -> Option<SharedL3> {
        self.l3
    }

    /// Whether the hierarchy has a shared L3 below the per-block L2s.
    #[inline]
    pub fn is_hierarchical(&self) -> bool {
        self.l3.is_some()
    }

    /// `"BxC"` display form, e.g. `4x8`.
    pub fn shape_label(&self) -> String {
        format!("{}x{}", self.blocks, self.cores_per_block)
    }
}

/// Builder for [`Topology`]. Unset knobs get paper-shaped defaults:
/// a square-ish mesh that fits all cores, one L2 bank per core, and —
/// for multi-block machines — the paper's 4-bank 4 MB L3.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    blocks: usize,
    cores_per_block: usize,
    mesh: Option<(usize, usize)>,
    l2_banks_per_block: Option<usize>,
    l3: Option<Option<SharedL3>>,
}

impl TopologyBuilder {
    pub fn new(blocks: usize, cores_per_block: usize) -> TopologyBuilder {
        TopologyBuilder {
            blocks,
            cores_per_block,
            mesh: None,
            l2_banks_per_block: None,
            l3: None,
        }
    }

    /// Explicit mesh dimensions (columns, rows). Default: the smallest
    /// square-ish grid fitting all cores.
    pub fn mesh(mut self, cols: usize, rows: usize) -> TopologyBuilder {
        self.mesh = Some((cols, rows));
        self
    }

    /// L2 banks per block. Default: one bank per core in the block.
    pub fn l2_banks_per_block(mut self, banks: usize) -> TopologyBuilder {
        self.l2_banks_per_block = Some(banks);
        self
    }

    /// Shared L3 (required when `blocks > 1`). Default for multi-block
    /// machines: the paper's 4 banks of 4 MB, 8-way, 20-cycle RT.
    pub fn l3(mut self, geometry: CacheGeometry, rt: u64, banks: usize) -> TopologyBuilder {
        self.l3 = Some(Some(SharedL3 {
            geometry,
            rt,
            banks,
        }));
        self
    }

    /// Explicitly omit the L3 (only valid for single-block machines,
    /// which is also the default there).
    pub fn no_l3(mut self) -> TopologyBuilder {
        self.l3 = Some(None);
        self
    }

    /// Check every shape constraint and produce the immutable topology.
    pub fn validate(self) -> Result<Topology, ConfigError> {
        if self.blocks == 0 {
            return Err(ConfigError::ZeroBlocks);
        }
        if self.cores_per_block == 0 {
            return Err(ConfigError::ZeroCoresPerBlock);
        }
        // Directory presence masks (MESI block map, Dragon sharer map)
        // are u64 bitmasks.
        if self.blocks > 64 {
            return Err(ConfigError::DirectoryTooWide {
                what: "blocks",
                n: self.blocks,
            });
        }
        if self.cores_per_block > 64 {
            return Err(ConfigError::DirectoryTooWide {
                what: "cores_per_block",
                n: self.cores_per_block,
            });
        }
        let tiles = self.blocks * self.cores_per_block;
        let (mesh_cols, mesh_rows) = self.mesh.unwrap_or_else(|| {
            let cols = (tiles as f64).sqrt().ceil() as usize;
            (cols, tiles.div_ceil(cols))
        });
        if mesh_cols * mesh_rows < tiles || mesh_cols == 0 || mesh_rows == 0 {
            return Err(ConfigError::MeshTooSmall {
                cols: mesh_cols,
                rows: mesh_rows,
                tiles,
            });
        }
        let l2_banks_per_block = self.l2_banks_per_block.unwrap_or(self.cores_per_block);
        if l2_banks_per_block == 0 {
            return Err(ConfigError::ZeroBanks { level: "L2" });
        }
        let l3 = self.l3.unwrap_or_else(|| {
            if self.blocks > 1 {
                Some(SharedL3 {
                    geometry: CacheGeometry {
                        size_bytes: 4 * 1024 * 1024,
                        ways: 8,
                        line_bytes: line_bytes(),
                    },
                    rt: 20,
                    banks: 4,
                })
            } else {
                None
            }
        });
        match (self.blocks, &l3) {
            (b, None) if b > 1 => return Err(ConfigError::MissingL3 { blocks: b }),
            (1, Some(_)) => return Err(ConfigError::UnexpectedL3),
            (_, Some(l3)) => {
                if l3.banks == 0 {
                    return Err(ConfigError::ZeroBanks { level: "L3" });
                }
                l3.geometry.check("L3")?;
            }
            _ => {}
        }
        Ok(Topology {
            blocks: self.blocks,
            cores_per_block: self.cores_per_block,
            mesh_cols,
            mesh_rows,
            l2_banks_per_block,
            l3,
        })
    }
}

/// Full description of the modeled machine: a validated [`Topology`]
/// plus cache geometries and timing (paper Table III for the presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Machine word in bytes: the finest sharing grain. 4 bytes gives the
    /// paper's 16 dirty bits per 64-byte line (§VII-A).
    pub word_bytes: usize,
    /// Private L1 geometry (32 KB, 4-way, 64 B lines).
    pub l1: CacheGeometry,
    /// Round-trip latency of an L1 hit, cycles (2 in the paper).
    pub l1_rt: u64,
    /// Shared L2 bank geometry (128 KB, 8-way per bank).
    pub l2: CacheGeometry,
    /// Round-trip latency of a local L2 bank access, cycles (11).
    pub l2_rt: u64,
    /// Mesh hop latency, cycles (4).
    pub hop_cycles: u64,
    /// Link width in bits (128): one flit is `link_bits/8` bytes.
    pub link_bits: usize,
    /// Off-chip memory round trip, cycles (150).
    pub mem_rt: u64,
    /// MEB capacity in entries (16).
    pub meb_entries: usize,
    /// IEB capacity in entries (4).
    pub ieb_entries: usize,
    /// Tags scanned per cycle during a full-cache WB ALL / INV ALL
    /// traversal (our timing model; see DESIGN.md §2).
    pub tags_per_cycle: u64,
    /// Pipelined writeback initiation interval, cycles per line.
    pub wb_pipeline_ii: u64,
    /// The machine's shape: blocks, cores, mesh, banking, optional L3.
    pub topology: Topology,
}

impl MachineConfig {
    /// Paper Table III timing and cache geometry on an arbitrary
    /// (already validated) topology.
    pub fn with_topology(topology: Topology) -> Self {
        Self {
            word_bytes: WORD_BYTES as usize,
            l1: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: line_bytes(),
            },
            l1_rt: 2,
            l2: CacheGeometry {
                size_bytes: 128 * 1024,
                ways: 8,
                line_bytes: line_bytes(),
            },
            l2_rt: 11,
            hop_cycles: 4,
            link_bits: 128,
            mem_rt: 150,
            meb_entries: 16,
            ieb_entries: 4,
            tags_per_cycle: 4,
            wb_pipeline_ii: 4,
            topology,
        }
    }

    /// The 16-core single-block machine of the intra-block experiments.
    pub fn intra_block() -> Self {
        Self::with_topology(Topology::intra_block())
    }

    /// The 4-block × 8-core machine of the inter-block experiments.
    pub fn inter_block() -> Self {
        Self::with_topology(Topology::inter_block())
    }

    /// Check the cache levels against the compile-time word/line grain.
    /// The topology itself is valid by construction; this covers the
    /// public geometry and timing fields.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.word_bytes as u64 != WORD_BYTES {
            return Err(ConfigError::WordMismatch {
                word_bytes: self.word_bytes,
            });
        }
        self.l1.check("L1")?;
        self.l2.check("L2")?;
        if let Some(l3) = self.topology.l3() {
            l3.geometry.check("L3")?;
        }
        Ok(())
    }

    /// Total number of cores in the machine.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.topology.num_cores()
    }

    /// Number of blocks (1 for the intra-block machine).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.topology.blocks()
    }

    /// Cores per block.
    #[inline]
    pub fn cores_per_block(&self) -> usize {
        self.topology.cores_per_block()
    }

    /// Number of L2 banks per block.
    #[inline]
    pub fn l2_banks_per_block(&self) -> usize {
        self.topology.l2_banks_per_block()
    }

    /// The shared L3, if this is a multi-block machine.
    #[inline]
    pub fn l3(&self) -> Option<SharedL3> {
        self.topology.l3()
    }

    /// Whether the hierarchy has a shared L3 below the per-block L2s.
    #[inline]
    pub fn is_hierarchical(&self) -> bool {
        self.topology.is_hierarchical()
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> usize {
        self.l1.line_bytes / self.word_bytes
    }

    /// Flit payload in bytes (128-bit link → 16 bytes).
    pub fn flit_bytes(&self) -> usize {
        self.link_bits / 8
    }

    /// Flits needed to carry `bytes` of payload plus one header flit.
    pub fn flits_for(&self, bytes: usize) -> u64 {
        1 + (bytes.div_ceil(self.flit_bytes())) as u64
    }

    /// Flits for a full cache-line transfer.
    pub fn line_flits(&self) -> u64 {
        self.flits_for(self.l1.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_geometry_matches_table3() {
        let c = MachineConfig::intra_block();
        assert_eq!(c.num_cores(), 16);
        assert_eq!(c.num_blocks(), 1);
        assert_eq!(c.l2_banks_per_block(), 16);
        assert_eq!(c.topology.mesh_dims(), (4, 4));
        assert!(c.l3().is_none());
        assert_eq!(c.l1.num_lines(), 512);
        assert_eq!(c.l1.num_sets(), 128);
        assert_eq!(c.words_per_line(), 16); // 16 per-word dirty bits/line
        assert_eq!(c.l1.line_id_bits(), 9); // the paper's 9-bit MEB entry
        c.validate().unwrap();
    }

    #[test]
    fn inter_geometry_matches_table3() {
        let c = MachineConfig::inter_block();
        assert_eq!(c.num_cores(), 32);
        assert_eq!(c.num_blocks(), 4);
        assert_eq!(c.cores_per_block(), 8);
        assert_eq!(c.l2_banks_per_block(), 8);
        // ceil(sqrt(32)) = 6 columns; 32.div_ceil(6) = 6 rows — the same
        // grid Mesh::new inferred before dims became explicit.
        assert_eq!(c.topology.mesh_dims(), (6, 6));
        let l3 = c.l3().unwrap();
        assert_eq!(l3.banks, 4);
        assert_eq!(l3.rt, 20);
        assert_eq!(l3.geometry.num_lines(), 65536);
        assert_eq!(l3.geometry.num_sets(), 8192);
        c.validate().unwrap();
    }

    #[test]
    fn flit_math() {
        let c = MachineConfig::intra_block();
        assert_eq!(c.flit_bytes(), 16);
        // 64-byte line = 4 payload flits + 1 header.
        assert_eq!(c.line_flits(), 5);
        // One dirty word = 1 payload flit + 1 header.
        assert_eq!(c.flits_for(4), 2);
        // Zero-byte control message is just a header.
        assert_eq!(c.flits_for(0), 1);
    }

    #[test]
    fn line_id_bits_rounding() {
        let g = CacheGeometry {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        assert_eq!(g.num_lines(), 1024);
        assert_eq!(g.line_id_bits(), 10);
    }

    #[test]
    fn builder_rejects_degenerate_shapes() {
        assert_eq!(
            TopologyBuilder::new(0, 8).validate(),
            Err(ConfigError::ZeroBlocks)
        );
        assert_eq!(
            TopologyBuilder::new(2, 0).validate(),
            Err(ConfigError::ZeroCoresPerBlock)
        );
        assert!(matches!(
            TopologyBuilder::new(65, 1).validate(),
            Err(ConfigError::DirectoryTooWide { what: "blocks", .. })
        ));
        assert!(matches!(
            TopologyBuilder::new(2, 65).validate(),
            Err(ConfigError::DirectoryTooWide { .. })
        ));
        assert!(matches!(
            TopologyBuilder::new(1, 16).mesh(3, 3).validate(),
            Err(ConfigError::MeshTooSmall { tiles: 16, .. })
        ));
        assert!(matches!(
            TopologyBuilder::new(4, 8).no_l3().validate(),
            Err(ConfigError::MissingL3 { blocks: 4 })
        ));
        assert!(matches!(
            TopologyBuilder::new(1, 4)
                .l3(
                    CacheGeometry {
                        size_bytes: 1024 * 1024,
                        ways: 8,
                        line_bytes: 64
                    },
                    20,
                    4
                )
                .validate(),
            Err(ConfigError::UnexpectedL3)
        ));
        assert!(matches!(
            TopologyBuilder::new(1, 8).l2_banks_per_block(0).validate(),
            Err(ConfigError::ZeroBanks { level: "L2" })
        ));
    }

    #[test]
    fn builder_defaults_are_paper_shaped() {
        // Multi-block machines get the paper L3 by default.
        let t = TopologyBuilder::new(8, 8).validate().unwrap();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.mesh_dims(), (8, 8));
        assert_eq!(t.l2_banks_per_block(), 8);
        let l3 = t.l3().unwrap();
        assert_eq!(l3.banks, 4);
        assert_eq!(l3.geometry.size_bytes, 4 * 1024 * 1024);
        // Single-block machines get none.
        let t = TopologyBuilder::new(1, 4).validate().unwrap();
        assert!(t.l3().is_none());
        assert_eq!(t.mesh_dims(), (2, 2));
    }

    #[test]
    fn explicit_mesh_dims_are_honored() {
        let t = TopologyBuilder::new(1, 8).mesh(8, 1).validate().unwrap();
        assert_eq!(t.mesh_dims(), (8, 1));
        assert_eq!(t.shape_label(), "1x8");
    }

    #[test]
    fn validate_rejects_bad_cache_geometry() {
        let mut c = MachineConfig::intra_block();
        c.l1.line_bytes = 128;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::LineMismatch { level: "L1", .. })
        ));
        let mut c = MachineConfig::intra_block();
        c.l2.ways = 3; // 2048 lines / 3 ways is not whole power-of-two sets
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadGeometry { level: "L2", .. })
        ));
        let mut c = MachineConfig::inter_block();
        c.word_bytes = 8;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::WordMismatch { word_bytes: 8 })
        ));
    }

    #[test]
    fn config_errors_display() {
        // Every variant has a human-readable rendering.
        let e = TopologyBuilder::new(4, 8).no_l3().validate().unwrap_err();
        assert!(e.to_string().contains("globally shared level"));
        let e = TopologyBuilder::new(1, 16)
            .mesh(2, 2)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("4 tiles"));
    }
}
