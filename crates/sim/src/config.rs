//! Architecture configuration: the modeled machine of paper Table III.
//!
//! Two canonical machines are provided:
//!
//! * [`MachineConfig::intra_block`] — 16 cores in one block: private L1s and
//!   a banked shared L2 (one bank per core), used for the intra-block
//!   experiments (paper §VI upper half of Table III).
//! * [`MachineConfig::inter_block`] — 4 blocks of 8 cores: per-block L2
//!   plus a shared 4-bank L3, used for the inter-block experiments.
//!
//! All latencies are round trips ("RT" in the paper) in core cycles.

use serde::{Deserialize, Serialize};

/// Geometry of one cache (or one bank of a banked cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes (per bank for banked caches).
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of lines this cache can hold.
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.ways
    }

    /// Words per line given the machine word size.
    #[inline]
    pub fn words_per_line(&self, word_bytes: usize) -> usize {
        self.line_bytes / word_bytes
    }

    /// Bits needed to name a line by its index within this cache
    /// (the MEB stores line IDs of this width, paper §IV-B1).
    pub fn line_id_bits(&self) -> u32 {
        usize::BITS - (self.num_lines() - 1).leading_zeros()
    }
}

/// Parameters specific to the single-block (intra-block) machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntraBlockConfig {
    /// Number of cores sharing the L2 (16 in the paper).
    pub cores: usize,
}

/// Parameters specific to the multi-block (inter-block) machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterBlockConfig {
    /// Number of blocks (4 in the paper).
    pub blocks: usize,
    /// Cores per block (8 in the paper).
    pub cores_per_block: usize,
    /// L3 bank geometry (4 banks of 4 MB in the paper).
    pub l3: CacheGeometry,
    /// Round-trip latency of a local L3 bank access, cycles.
    pub l3_rt: u64,
    /// Number of L3 banks.
    pub l3_banks: usize,
}

/// Full description of the modeled machine (paper Table III).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Machine word in bytes: the finest sharing grain. 4 bytes gives the
    /// paper's 16 dirty bits per 64-byte line (§VII-A).
    pub word_bytes: usize,
    /// Private L1 geometry (32 KB, 4-way, 64 B lines).
    pub l1: CacheGeometry,
    /// Round-trip latency of an L1 hit, cycles (2 in the paper).
    pub l1_rt: u64,
    /// Shared L2 bank geometry (128 KB, 8-way per bank).
    pub l2: CacheGeometry,
    /// Round-trip latency of a local L2 bank access, cycles (11).
    pub l2_rt: u64,
    /// Number of L2 banks per block (one per core in the paper).
    pub l2_banks_per_block: usize,
    /// Mesh hop latency, cycles (4).
    pub hop_cycles: u64,
    /// Link width in bits (128): one flit is `link_bits/8` bytes.
    pub link_bits: usize,
    /// Off-chip memory round trip, cycles (150).
    pub mem_rt: u64,
    /// MEB capacity in entries (16).
    pub meb_entries: usize,
    /// IEB capacity in entries (4).
    pub ieb_entries: usize,
    /// Tags scanned per cycle during a full-cache WB ALL / INV ALL
    /// traversal (our timing model; see DESIGN.md §2).
    pub tags_per_cycle: u64,
    /// Pipelined writeback initiation interval, cycles per line.
    pub wb_pipeline_ii: u64,
    /// Single-block machine parameters, if this is the intra-block machine.
    pub intra: Option<IntraBlockConfig>,
    /// Multi-block machine parameters, if this is the inter-block machine.
    pub inter: Option<InterBlockConfig>,
}

impl MachineConfig {
    /// The 16-core single-block machine of the intra-block experiments.
    pub fn intra_block() -> Self {
        Self {
            word_bytes: 4,
            l1: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l1_rt: 2,
            l2: CacheGeometry {
                size_bytes: 128 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2_rt: 11,
            l2_banks_per_block: 16,
            hop_cycles: 4,
            link_bits: 128,
            mem_rt: 150,
            meb_entries: 16,
            ieb_entries: 4,
            tags_per_cycle: 4,
            wb_pipeline_ii: 4,
            intra: Some(IntraBlockConfig { cores: 16 }),
            inter: None,
        }
    }

    /// The 4-block × 8-core machine of the inter-block experiments.
    pub fn inter_block() -> Self {
        Self {
            word_bytes: 4,
            l1: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l1_rt: 2,
            l2: CacheGeometry {
                size_bytes: 128 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2_rt: 11,
            l2_banks_per_block: 8,
            hop_cycles: 4,
            link_bits: 128,
            mem_rt: 150,
            meb_entries: 16,
            ieb_entries: 4,
            tags_per_cycle: 4,
            wb_pipeline_ii: 4,
            intra: None,
            inter: Some(InterBlockConfig {
                blocks: 4,
                cores_per_block: 8,
                l3: CacheGeometry {
                    size_bytes: 4 * 1024 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
                l3_rt: 20,
                l3_banks: 4,
            }),
        }
    }

    /// Total number of cores in the machine.
    pub fn num_cores(&self) -> usize {
        match (&self.intra, &self.inter) {
            (Some(i), _) => i.cores,
            (_, Some(e)) => e.blocks * e.cores_per_block,
            _ => panic!("MachineConfig must be intra- or inter-block"),
        }
    }

    /// Number of blocks (1 for the intra-block machine).
    pub fn num_blocks(&self) -> usize {
        self.inter.as_ref().map_or(1, |e| e.blocks)
    }

    /// Cores per block.
    pub fn cores_per_block(&self) -> usize {
        match (&self.intra, &self.inter) {
            (Some(i), _) => i.cores,
            (_, Some(e)) => e.cores_per_block,
            _ => panic!("MachineConfig must be intra- or inter-block"),
        }
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> usize {
        self.l1.line_bytes / self.word_bytes
    }

    /// Flit payload in bytes (128-bit link → 16 bytes).
    pub fn flit_bytes(&self) -> usize {
        self.link_bits / 8
    }

    /// Flits needed to carry `bytes` of payload plus one header flit.
    pub fn flits_for(&self, bytes: usize) -> u64 {
        1 + (bytes.div_ceil(self.flit_bytes())) as u64
    }

    /// Flits for a full cache-line transfer.
    pub fn line_flits(&self) -> u64 {
        self.flits_for(self.l1.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_geometry_matches_table3() {
        let c = MachineConfig::intra_block();
        assert_eq!(c.num_cores(), 16);
        assert_eq!(c.num_blocks(), 1);
        assert_eq!(c.l1.num_lines(), 512);
        assert_eq!(c.l1.num_sets(), 128);
        assert_eq!(c.words_per_line(), 16); // 16 per-word dirty bits/line
        assert_eq!(c.l1.line_id_bits(), 9); // the paper's 9-bit MEB entry
    }

    #[test]
    fn inter_geometry_matches_table3() {
        let c = MachineConfig::inter_block();
        assert_eq!(c.num_cores(), 32);
        assert_eq!(c.num_blocks(), 4);
        assert_eq!(c.cores_per_block(), 8);
        let l3 = c.inter.unwrap().l3;
        assert_eq!(l3.num_lines(), 65536);
        assert_eq!(l3.num_sets(), 8192);
    }

    #[test]
    fn flit_math() {
        let c = MachineConfig::intra_block();
        assert_eq!(c.flit_bytes(), 16);
        // 64-byte line = 4 payload flits + 1 header.
        assert_eq!(c.line_flits(), 5);
        // One dirty word = 1 payload flit + 1 header.
        assert_eq!(c.flits_for(4), 2);
        // Zero-byte control message is just a header.
        assert_eq!(c.flits_for(0), 1);
    }

    #[test]
    fn line_id_bits_rounding() {
        let g = CacheGeometry {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        assert_eq!(g.num_lines(), 1024);
        assert_eq!(g.line_id_bits(), 10);
    }
}
