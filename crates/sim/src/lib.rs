//! Simulation primitives shared by every layer of the hardware-incoherent
//! cache-hierarchy simulator.
//!
//! This crate holds the vocabulary types: simulated [`Cycle`] time, the
//! architecture configuration of the modeled machine ([`MachineConfig`],
//! paper Table III), the per-core stall ledger ([`StallLedger`], the five
//! categories of paper Figure 9), and small deterministic helpers.
//!
//! Nothing here knows about caches or coherence; those live in `hic-mem`,
//! `hic-core`, and `hic-coherence`.

pub mod config;
pub mod rng;
pub mod stats;

pub use config::{
    CacheGeometry, ConfigError, MachineConfig, SharedL3, Topology, TopologyBuilder, WORDS_PER_LINE,
    WORD_BYTES,
};
pub use rng::SplitMix64;
pub use stats::{EngineStats, ShardStats, StallCategory, StallLedger};

/// Simulated time, measured in core clock cycles.
pub type Cycle = u64;

use serde::{Deserialize, Serialize};

/// Identifier of a hardware core (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The block (cluster) this core belongs to, given `cores_per_block`.
    #[inline]
    pub fn block(self, cores_per_block: usize) -> BlockId {
        BlockId(self.0 / cores_per_block)
    }
}

/// Identifier of a block (cluster of cores sharing an L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub usize);

/// Identifier of a software thread. The runtime pins thread `i` to core `i`
/// (the paper assumes a one-to-one mapping with no migration, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_to_block_mapping() {
        assert_eq!(CoreId(0).block(8), BlockId(0));
        assert_eq!(CoreId(7).block(8), BlockId(0));
        assert_eq!(CoreId(8).block(8), BlockId(1));
        assert_eq!(CoreId(31).block(8), BlockId(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(ThreadId(5).to_string(), "t5");
        assert_eq!(BlockId(1).to_string(), "blk1");
    }
}
