//! `hic-check` — the incoherence sanitizer.
//!
//! The paper's programming models (§IV–§V) put correctness in the
//! programmer's hands: every cross-thread communication must be *ordered*
//! by a synchronization operation and *carried* by the right WB/INV
//! flavors — the producer writes back at least to the levels' common
//! ancestor, the consumer invalidates its private copies above it. A
//! missing annotation does not fault; it silently yields a stale word and
//! a wrong answer at the end of the run, with nothing pointing at the
//! faulty access.
//!
//! This crate is a dynamic checker that closes that gap. It observes the
//! incoherent backend's own event stream (the engine executes operations
//! in global simulated-time order, so the checker sees one consistent
//! serialization) and maintains:
//!
//! * **vector clocks** per thread and per sync object ([`VectorClock`],
//!   FastTrack-style), advanced only by sync operations — barriers, lock
//!   release/acquire, flag set/wait. WB/INV annotations never create
//!   ordering; that asymmetry is the whole point: sync without the right
//!   data movement is exactly the bug class being hunted;
//! * **shadow per-word metadata** (`WordMeta` in a sparse
//!   `ShadowMap`): last writer, the writer's epoch at the store, the
//!   stored value, and how far down the hierarchy that value has provably
//!   travelled (private L1 only → some block's shared L2 → the global
//!   level), updated when the simulator pushes dirty words below L1/L2
//!   for any reason (WB instructions, INV-forced writebacks, evictions).
//!
//! A load is checked only when the shadow write is *ordered before* it
//! (reader's clock covers the writer's epoch). If such a load observes a
//! value different from the shadow value, communication was promised by
//! sync but not delivered by the memory system, and the level metadata
//! says which half failed:
//!
//! * the value never reached the reader/writer's common cache level →
//!   **missing WB** (producer side);
//! * the value did reach it, so the reader must be holding a stale
//!   private copy it never self-invalidated → **missing INV** (consumer
//!   side).
//!
//! A store to a word whose last write is not ordered before it is a
//! **write race** (conflicting writes no sync op separates).
//!
//! Comparing *values* rather than modelling every cache's line state
//! keeps the checker independent of the timing model and immune to false
//! positives from benign evictions: if an un-written-back value happens
//! to be observed correctly (e.g. the dirty line was evicted, or the old
//! and new values are equal), no report is raised. The cost is false
//! *negatives* in ABA corners — acceptable for a sanitizer, where a
//! report must always be a real protocol violation.

use fxhash::{FxHashMap, FxHashSet};
use hic_core::VectorClock;
use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::cache::DirtyMask;
use hic_mem::{LineAddr, Region, ShadowMap, Word, WordAddr};
use hic_sim::{Cycle, ThreadId};

/// How much checking the run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checker is attached; the run is bit-identical to a build without
    /// the sanitizer.
    #[default]
    Off,
    /// Record every finding; the run completes and findings surface in the
    /// run's `Diagnostics`.
    Report,
    /// Abort the run at the first faulty access with a rendered diagnostic.
    Strict,
}

impl CheckMode {
    /// Parse the `HIC_CHECK` environment-variable convention.
    pub fn parse(s: &str) -> Option<CheckMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(CheckMode::Off),
            "report" => Some(CheckMode::Report),
            "strict" | "1" | "on" => Some(CheckMode::Strict),
            _ => None,
        }
    }
}

/// What kind of protocol violation a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// An ordered load observed a stale value that never reached the
    /// reader/writer's common cache level: the producer's WB is missing
    /// or under-scoped.
    MissingWb,
    /// An ordered load observed a stale value even though the fresh one
    /// reached the common level: the consumer kept a private copy it
    /// never self-invalidated.
    MissingInv,
    /// Two writes to one word with no sync operation ordering them.
    WriteRace,
}

impl FindingKind {
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::MissingWb => "stale read (missing WB)",
            FindingKind::MissingInv => "stale read (missing INV)",
            FindingKind::WriteRace => "write race",
        }
    }

    /// Stable machine-readable tag (JSON output, fuzz-corpus keys).
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::MissingWb => "missing-wb",
            FindingKind::MissingInv => "missing-inv",
            FindingKind::WriteRace => "write-race",
        }
    }

    /// Inverse of [`FindingKind::tag`].
    pub fn from_tag(s: &str) -> Option<FindingKind> {
        match s {
            "missing-wb" => Some(FindingKind::MissingWb),
            "missing-inv" => Some(FindingKind::MissingInv),
            "write-race" => Some(FindingKind::WriteRace),
            _ => None,
        }
    }
}

/// The sync operation kinds a [`SyncRef`] can point at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    Barrier,
    LockAcquire,
    LockRelease,
    FlagSet,
    FlagWait,
}

impl SyncOp {
    fn label(self) -> &'static str {
        match self {
            SyncOp::Barrier => "barrier",
            SyncOp::LockAcquire => "lock acquire",
            SyncOp::LockRelease => "lock release",
            SyncOp::FlagSet => "flag set",
            SyncOp::FlagWait => "flag wait",
        }
    }

    /// Stable machine-readable tag (JSON output).
    pub fn tag(self) -> &'static str {
        match self {
            SyncOp::Barrier => "barrier",
            SyncOp::LockAcquire => "lock-acquire",
            SyncOp::LockRelease => "lock-release",
            SyncOp::FlagSet => "flag-set",
            SyncOp::FlagWait => "flag-wait",
        }
    }
}

/// A reference to a sync operation a thread performed, used to say which
/// op *should* have carried the missing WB/INV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncRef {
    pub op: SyncOp,
    /// The raw sync-object id (`SyncId`) in the machine's sync controller.
    pub id: usize,
    pub at: Cycle,
}

impl std::fmt::Display for SyncRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (sync#{}) at cycle {}",
            self.op.label(),
            self.id,
            self.at
        )
    }
}

/// One detected incoherence bug, with enough context to point at the
/// faulty access and the annotation that should have prevented it.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    /// The word the faulty access touched.
    pub addr: WordAddr,
    /// `name[index]` within the allocation containing `addr`, if known.
    pub region: Option<String>,
    /// The thread that performed the faulty access (the reader, or the
    /// second writer of a race).
    pub actor: ThreadId,
    /// The last tracked writer of the word.
    pub writer: ThreadId,
    /// Value the faulty access observed (for races: the value it wrote).
    pub observed: Word,
    /// Value the shadow metadata expected (the last ordered write).
    pub expected: Word,
    /// The writer's own epoch component when it stored `expected`.
    pub write_epoch: u32,
    /// The actor's view of the writer's epoch at the faulty access
    /// (>= `write_epoch` means sync ordered the accesses).
    pub actor_view: u32,
    /// Simulated cycle at which the faulty access executed.
    pub at: Cycle,
    /// The sync op that should have carried the missing WB (producer's
    /// last release) or INV (consumer's last acquire), when one exists.
    pub sync_hint: Option<SyncRef>,
}

impl Finding {
    fn location(&self) -> String {
        match &self.region {
            Some(r) => format!("{} (word {:#x})", r, self.addr.0),
            None => format!("word {:#x}", self.addr.0),
        }
    }

    /// One-paragraph human-readable report.
    pub fn render(&self) -> String {
        let loc = self.location();
        match self.kind {
            FindingKind::MissingWb => {
                let hint = match &self.sync_hint {
                    Some(s) => format!(
                        "a WB covering it should have travelled with {}'s {}",
                        self.writer, s
                    ),
                    None => format!("no release-side sync by {} was seen at all", self.writer),
                };
                format!(
                    "{}: {} read {} = {} at cycle {}, but {} wrote {} in its epoch {} \
                     (ordered before this read: reader's view of {} is epoch {}) and the \
                     value never reached their common cache level — {}",
                    self.kind.label(),
                    self.actor,
                    loc,
                    self.observed,
                    self.at,
                    self.writer,
                    self.expected,
                    self.write_epoch,
                    self.writer,
                    self.actor_view,
                    hint
                )
            }
            FindingKind::MissingInv => {
                let hint = match &self.sync_hint {
                    Some(s) => format!(
                        "an INV covering it should have travelled with {}'s {}",
                        self.actor, s
                    ),
                    None => format!("no acquire-side sync by {} was seen at all", self.actor),
                };
                format!(
                    "{}: {} read {} = {} at cycle {}, but {} wrote {} in its epoch {} and \
                     that value did reach the common cache level — {} is holding a stale \
                     private copy; {}",
                    self.kind.label(),
                    self.actor,
                    loc,
                    self.observed,
                    self.at,
                    self.writer,
                    self.expected,
                    self.write_epoch,
                    self.actor,
                    hint
                )
            }
            FindingKind::WriteRace => format!(
                "{}: {} wrote {} = {} at cycle {}, conflicting with {}'s write of {} \
                 (epoch {}) — no sync operation orders these writes",
                self.kind.label(),
                self.actor,
                loc,
                self.observed,
                self.at,
                self.writer,
                self.expected,
                self.write_epoch
            ),
        }
    }
}

/// Structured sanitizer output carried in a run's outcome.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    pub mode: CheckMode,
    pub findings: Vec<Finding>,
    /// Ordered cross-thread loads actually checked against shadow state.
    pub checks: u64,
    /// Distinct words with live shadow metadata.
    pub tracked_words: u64,
    /// Findings dropped by per-(kind, word, actor) dedup or the report cap.
    pub suppressed: u64,
}

impl Diagnostics {
    /// True when checking ran (or was off) and found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }

    pub fn count(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }
}

// How far down the hierarchy a shadow value has provably travelled.
const ST_NONE: u8 = 0; // no tracked write
const ST_L1: u8 = 1; // only in the writer's private L1
const ST_BLOCK: u8 = 2; // reached block `block`'s shared L2
const ST_GLOBAL: u8 = 3; // reached the machine's globally shared level

/// Shadow metadata for one word. `Default` (all zeros, `state == ST_NONE`)
/// means "never stored to while checking".
#[derive(Debug, Clone, Copy, Default)]
struct WordMeta {
    writer: u16,
    block: u8,
    state: u8,
    /// Declared intentionally racy (`Op::MarkRacy`): exempt from
    /// staleness and write-race reporting, sticky for the run.
    racy: bool,
    epoch: u32,
    value: Word,
}

/// Keep at most this many distinct findings per run.
const MAX_FINDINGS: usize = 256;

/// The sanitizer itself. Owned by the incoherent backend; fed data events
/// by the memory system and sync events by the machine.
#[derive(Debug)]
pub struct Checker {
    mode: CheckMode,
    /// Cores per block: thread/core `t` lives in block `t / cpb`.
    cpb: usize,
    clocks: Vec<VectorClock>,
    sync_clocks: FxHashMap<usize, VectorClock>,
    last_release: Vec<Option<SyncRef>>,
    last_acquire: Vec<Option<SyncRef>>,
    shadow: ShadowMap<WordMeta>,
    regions: Vec<(Region, String)>,
    findings: Vec<Finding>,
    seen: FxHashSet<(u8, u64, usize)>,
    checks: u64,
    tracked_words: u64,
    suppressed: u64,
    now: Cycle,
    /// Index of the finding that should abort the run (Strict only),
    /// cleared once taken.
    fatal: Option<usize>,
}

impl Checker {
    /// `nthreads` is the machine's core count (threads are pinned 1:1),
    /// `cpb` its cores-per-block.
    pub fn new(mode: CheckMode, nthreads: usize, cpb: usize) -> Checker {
        assert!(mode != CheckMode::Off, "an Off checker must not be built");
        Checker {
            mode,
            cpb: cpb.max(1),
            clocks: (0..nthreads)
                .map(|t| VectorClock::thread(nthreads, t))
                .collect(),
            sync_clocks: FxHashMap::default(),
            last_release: vec![None; nthreads],
            last_acquire: vec![None; nthreads],
            shadow: ShadowMap::new(),
            regions: Vec::new(),
            findings: Vec::new(),
            seen: FxHashSet::default(),
            checks: 0,
            tracked_words: 0,
            suppressed: 0,
            now: 0,
            fatal: None,
        }
    }

    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Install the allocation map used to name addresses in reports.
    pub fn set_regions(&mut self, regions: Vec<(Region, String)>) {
        self.regions = regions;
    }

    /// Called by the machine before executing each operation.
    #[inline]
    pub fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    // ------------------------------------------------------------------
    // Data-path events (from the incoherent memory system)
    // ------------------------------------------------------------------

    /// A cached store by thread `t` wrote `v`; the new value starts life
    /// in `t`'s private L1.
    pub fn on_store(&mut self, t: usize, w: WordAddr, v: Word) {
        self.store_common(t, w, v, ST_L1);
    }

    /// An uncached store bypasses the private levels and lands at the
    /// machine's shared level directly.
    pub fn on_store_unc(&mut self, t: usize, w: WordAddr, v: Word) {
        self.store_common(t, w, v, ST_GLOBAL);
    }

    fn store_common(&mut self, t: usize, w: WordAddr, v: Word, state: u8) {
        let epoch = self.clocks[t].get(t);
        let block = (t / self.cpb) as u8;
        let slot = self.shadow.entry(w);
        let prev = *slot;
        *slot = WordMeta {
            writer: t as u16,
            block,
            state,
            racy: prev.racy,
            epoch,
            value: v,
        };
        if prev.state == ST_NONE {
            self.tracked_words += 1;
            return;
        }
        if prev.racy {
            return;
        }
        let pw = prev.writer as usize;
        if pw != t && !self.clocks[t].covers(pw, prev.epoch) {
            let f = Finding {
                kind: FindingKind::WriteRace,
                addr: w,
                region: self.region_of(w),
                actor: ThreadId(t),
                writer: ThreadId(pw),
                observed: v,
                expected: prev.value,
                write_epoch: prev.epoch,
                actor_view: self.clocks[t].get(pw),
                at: self.now,
                sync_hint: None,
            };
            self.report(f);
        }
    }

    /// Exempt a word from staleness and race reporting: the program
    /// declared its accesses racy (`racy_store`/`racy_load`, Figure 6).
    /// Sticky for the rest of the run.
    pub fn mark_racy(&mut self, w: WordAddr) {
        self.shadow.entry(w).racy = true;
    }

    /// A cached load by thread `t` observed `observed`.
    pub fn on_load(&mut self, t: usize, w: WordAddr, observed: Word) {
        let Some(m) = self.shadow.get(w) else { return };
        if m.state == ST_NONE || m.racy {
            return;
        }
        let m = *m;
        let writer = m.writer as usize;
        if writer == t {
            // A thread always sees its own latest store through its L1.
            return;
        }
        if !self.clocks[t].covers(writer, m.epoch) {
            // The write is not ordered before this read: either a benign
            // racy-read idiom (Figure 6) or a race already reported at the
            // conflicting write. Staleness is not a protocol violation
            // here — no sync op promised delivery.
            return;
        }
        self.checks += 1;
        if observed == m.value {
            return;
        }
        let reader_block = t / self.cpb;
        let reached =
            m.state == ST_GLOBAL || (m.state == ST_BLOCK && m.block as usize == reader_block);
        let (kind, sync_hint) = if reached {
            (FindingKind::MissingInv, self.last_acquire[t])
        } else {
            (FindingKind::MissingWb, self.last_release[writer])
        };
        let f = Finding {
            kind,
            addr: w,
            region: self.region_of(w),
            actor: ThreadId(t),
            writer: ThreadId(writer),
            observed,
            expected: m.value,
            write_epoch: m.epoch,
            actor_view: self.clocks[t].get(writer),
            at: self.now,
            sync_hint,
        };
        self.report(f);
    }

    /// An uncached load reads the shared level directly; checked the same
    /// way (it can still observe a value whose WB is missing).
    pub fn on_load_unc(&mut self, t: usize, w: WordAddr, observed: Word) {
        self.on_load(t, w, observed);
    }

    /// Dirty words left a private L1 and merged into block `blk`'s shared
    /// L2 (WB instruction, INV-forced writeback, or eviction).
    pub fn on_push_to_block(
        &mut self,
        blk: usize,
        line: LineAddr,
        data: &[Word; WORDS_PER_LINE],
        mask: DirtyMask,
    ) {
        self.upgrade(line, data, mask, ST_BLOCK, blk as u8);
    }

    /// Dirty words reached the machine's globally shared level (L3 on the
    /// hierarchical machine, L2/memory on the single-block machine).
    pub fn on_push_global(
        &mut self,
        line: LineAddr,
        data: &[Word; WORDS_PER_LINE],
        mask: DirtyMask,
    ) {
        self.upgrade(line, data, mask, ST_GLOBAL, 0);
    }

    fn upgrade(
        &mut self,
        line: LineAddr,
        data: &[Word; WORDS_PER_LINE],
        mask: DirtyMask,
        state: u8,
        block: u8,
    ) {
        if mask == 0 {
            return;
        }
        for (i, &word) in data.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let Some(m) = self.shadow.get_mut(line.word(i)) else {
                continue;
            };
            if m.state == ST_NONE || word != m.value {
                // Not the tracked value (an older copy still draining, or
                // an untracked word): visibility of the *current* value is
                // unchanged.
                continue;
            }
            if state > m.state {
                m.state = state;
                m.block = block;
            } else if state == m.state && state == ST_BLOCK {
                // Same value now also present in another block's L2; track
                // the most recent home (either is sound for the value
                // comparison, this only sharpens WB-vs-INV attribution).
                m.block = block;
            }
        }
    }

    // ------------------------------------------------------------------
    // Sync-path events (from the machine's executor, in completion order)
    // ------------------------------------------------------------------

    /// A barrier released: all `participants` joined each other.
    pub fn on_barrier(&mut self, id: usize, participants: &[usize]) {
        let Some((&first, rest)) = participants.split_first() else {
            return;
        };
        let mut joined = self.clocks[first].clone();
        for &p in rest {
            joined.join(&self.clocks[p]);
        }
        let r = SyncRef {
            op: SyncOp::Barrier,
            id,
            at: self.now,
        };
        for &p in participants {
            self.clocks[p] = joined.clone();
            self.clocks[p].bump(p);
            // A barrier is both a release (for pre-barrier writes) and an
            // acquire (for post-barrier reads).
            self.last_release[p] = Some(r);
            self.last_acquire[p] = Some(r);
        }
    }

    /// Thread `t` performed a release-side op (lock release, flag set)
    /// through sync object `id`.
    pub fn on_release(&mut self, t: usize, op: SyncOp, id: usize) {
        let n = self.clocks.len();
        let sc = self
            .sync_clocks
            .entry(id)
            .or_insert_with(|| VectorClock::object(n));
        sc.join(&self.clocks[t]);
        self.clocks[t].bump(t);
        self.last_release[t] = Some(SyncRef {
            op,
            id,
            at: self.now,
        });
    }

    /// Thread `t` completed an acquire-side op (lock granted, flag wait
    /// satisfied) through sync object `id`.
    pub fn on_acquire(&mut self, t: usize, op: SyncOp, id: usize) {
        if let Some(sc) = self.sync_clocks.get(&id) {
            self.clocks[t].join(sc);
        }
        self.last_acquire[t] = Some(SyncRef {
            op,
            id,
            at: self.now,
        });
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn region_of(&self, w: WordAddr) -> Option<String> {
        self.regions
            .iter()
            .find(|(r, _)| r.contains(w))
            .map(|(r, name)| format!("{}[{}]", name, w.0 - r.start.0))
    }

    fn report(&mut self, f: Finding) {
        let kind_tag = match f.kind {
            FindingKind::MissingWb => 0u8,
            FindingKind::MissingInv => 1,
            FindingKind::WriteRace => 2,
        };
        if !self.seen.insert((kind_tag, f.addr.0, f.actor.0)) {
            self.suppressed += 1;
            return;
        }
        if self.findings.len() >= MAX_FINDINGS {
            self.suppressed += 1;
            return;
        }
        if self.mode == CheckMode::Strict && self.fatal.is_none() {
            self.fatal = Some(self.findings.len());
        }
        self.findings.push(f);
    }

    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// In Strict mode: the finding that should abort the run, delivered
    /// once. The machine polls this after every executed operation.
    pub fn take_fatal(&mut self) -> Option<Finding> {
        self.fatal.take().map(|i| self.findings[i].clone())
    }

    pub fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            mode: self.mode,
            findings: self.findings.clone(),
            checks: self.checks,
            tracked_words: self.tracked_words,
            suppressed: self.suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: usize = WORDS_PER_LINE;

    fn line_data(v: Word) -> [Word; WORDS_PER_LINE] {
        [v; WORDS_PER_LINE]
    }

    /// Two blocks of two cores: threads 0,1 in block 0; threads 2,3 in
    /// block 1.
    fn checker() -> Checker {
        Checker::new(CheckMode::Report, 4, 2)
    }

    #[test]
    fn unsynced_stale_read_is_not_reported() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        // Thread 1 reads the stale 0 — racy by construction, no sync edge.
        c.on_load(1, WordAddr(3), 0);
        assert!(c.findings().is_empty());
        assert_eq!(c.diagnostics().checks, 0);
    }

    #[test]
    fn missing_wb_detected_after_sync_edge() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 0); // stale: never pushed anywhere
        assert_eq!(c.findings().len(), 1);
        let f = &c.findings()[0];
        assert_eq!(f.kind, FindingKind::MissingWb);
        assert_eq!(f.writer, ThreadId(0));
        assert_eq!(f.actor, ThreadId(1));
        assert_eq!(f.expected, 7);
        assert_eq!(f.observed, 0);
        assert!(f.sync_hint.is_some());
    }

    #[test]
    fn fresh_read_after_sync_is_clean_and_counted() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        c.on_push_global(LineAddr(0), &line_data(7), 1 << 3);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 7);
        assert!(c.findings().is_empty());
        assert_eq!(c.diagnostics().checks, 1);
    }

    #[test]
    fn missing_inv_when_value_reached_common_level() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        // Pushed into block 0's L2 — the common level for threads 0 and 1.
        c.on_push_to_block(0, LineAddr(0), &line_data(7), 1 << 3);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 0); // stale private copy
        assert_eq!(c.findings().len(), 1);
        assert_eq!(c.findings()[0].kind, FindingKind::MissingInv);
    }

    #[test]
    fn block_local_wb_is_still_missing_wb_across_blocks() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        c.on_push_to_block(0, LineAddr(0), &line_data(7), 1 << 3);
        c.on_barrier(0, &[0, 1, 2, 3]);
        // Thread 2 is in block 1: block 0's L2 is not their common level.
        c.on_load(2, WordAddr(3), 0);
        assert_eq!(c.findings().len(), 1);
        assert_eq!(c.findings()[0].kind, FindingKind::MissingWb);
    }

    #[test]
    fn push_with_mismatched_value_does_not_upgrade() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        // An older copy of the line drains; word 3 carries a stale 5.
        c.on_push_global(LineAddr(0), &line_data(5), 1 << 3);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 5);
        // Still classified as missing WB: the tracked value 7 never left L1.
        assert_eq!(c.findings()[0].kind, FindingKind::MissingWb);
    }

    #[test]
    fn flag_release_acquire_orders_and_detects() {
        let mut c = checker();
        c.on_store(0, WordAddr(20), 9);
        c.on_release(0, SyncOp::FlagSet, 5);
        c.on_acquire(3, SyncOp::FlagWait, 5);
        c.on_load(3, WordAddr(20), 0);
        assert_eq!(c.findings().len(), 1);
        let f = &c.findings()[0];
        assert_eq!(f.kind, FindingKind::MissingWb);
        assert_eq!(f.sync_hint.unwrap().op, SyncOp::FlagSet);
        // Thread 2 never synced: its stale read stays unreported.
        c.on_load(2, WordAddr(20), 0);
        assert_eq!(c.findings().len(), 1);
    }

    #[test]
    fn post_release_writes_are_not_covered() {
        let mut c = checker();
        c.on_release(0, SyncOp::FlagSet, 5);
        c.on_store(0, WordAddr(20), 9); // after the release: epoch 2
        c.on_acquire(3, SyncOp::FlagWait, 5);
        c.on_load(3, WordAddr(20), 0);
        assert!(c.findings().is_empty());
    }

    #[test]
    fn write_race_reported_once() {
        let mut c = checker();
        c.on_store(0, WordAddr(8), 1);
        c.on_store(1, WordAddr(8), 2);
        c.on_store(1, WordAddr(8), 3);
        assert_eq!(c.findings().len(), 1);
        assert_eq!(c.findings()[0].kind, FindingKind::WriteRace);
        assert_eq!(c.diagnostics().suppressed, 0);
        // Ordered writes don't race.
        let mut c2 = checker();
        c2.on_store(0, WordAddr(8), 1);
        c2.on_barrier(0, &[0, 1]);
        c2.on_store(1, WordAddr(8), 2);
        assert!(c2.findings().is_empty());
    }

    #[test]
    fn self_reads_and_own_writes_are_exempt() {
        let mut c = checker();
        c.on_store(0, WordAddr(8), 1);
        c.on_load(0, WordAddr(8), 1);
        c.on_store(0, WordAddr(8), 2); // same thread overwrites freely
        assert!(c.findings().is_empty());
    }

    #[test]
    fn strict_mode_latches_fatal_once() {
        let mut c = Checker::new(CheckMode::Strict, 4, 2);
        c.on_store(0, WordAddr(3), 7);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 0);
        let f = c.take_fatal().expect("first finding is fatal");
        assert_eq!(f.kind, FindingKind::MissingWb);
        assert!(c.take_fatal().is_none());
    }

    #[test]
    fn dedup_suppresses_repeats_per_actor() {
        let mut c = checker();
        c.on_store(0, WordAddr(3), 7);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 0);
        c.on_load(1, WordAddr(3), 0);
        c.on_load(2, WordAddr(3), 0); // different reader: new finding
        assert_eq!(c.findings().len(), 2);
        assert_eq!(c.diagnostics().suppressed, 1);
    }

    #[test]
    fn region_names_appear_in_renders() {
        let mut c = checker();
        c.set_regions(vec![(Region::new(WordAddr(0), L as u64), "halo".into())]);
        c.on_store(0, WordAddr(3), 7);
        c.on_barrier(0, &[0, 1, 2, 3]);
        c.on_load(1, WordAddr(3), 0);
        let msg = c.findings()[0].render();
        assert!(msg.contains("halo[3]"), "{msg}");
        assert!(msg.contains("t1"), "{msg}");
        assert!(msg.contains("missing WB"), "{msg}");
    }

    #[test]
    fn uncached_store_is_globally_visible() {
        let mut c = checker();
        c.on_store_unc(0, WordAddr(3), 7);
        c.on_barrier(0, &[0, 1, 2, 3]);
        // Reader's stale private copy masks a globally visible value.
        c.on_load(2, WordAddr(3), 0);
        assert_eq!(c.findings()[0].kind, FindingKind::MissingInv);
    }
}
