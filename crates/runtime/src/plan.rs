//! Communication plans for programming model 2 (inter-block).
//!
//! The compiler analysis (`hic-analysis`) — or an inspector at runtime —
//! produces, for each thread and each epoch boundary, the list of regions
//! it must write back (with the consuming thread, when known) and the
//! regions it must self-invalidate (with the producing thread, when
//! known). The `ThreadCtx` translates the plan into the right WB/INV
//! flavor for the active configuration:
//!
//! * `Base` ignores the plan and uses global `WB ALL` / `INV ALL`;
//! * `Addr` uses the regions but always goes global (`WB_L3`, `INV_L2`);
//! * `Addr+L` uses `WB_CONS` / `INV_PROD` so the ThreadMap picks the level.

use hic_mem::Region;
use hic_sim::ThreadId;
use serde::{Deserialize, Serialize};

/// One planned communication operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommOp {
    /// The data to move.
    pub region: Region,
    /// The peer thread (consumer for WBs, producer for INVs), when the
    /// analysis could identify it. `None` = unknown: the operation must be
    /// global regardless of configuration.
    pub peer: Option<ThreadId>,
}

impl CommOp {
    pub fn known(region: Region, peer: ThreadId) -> CommOp {
        CommOp {
            region,
            peer: Some(peer),
        }
    }

    pub fn unknown(region: Region) -> CommOp {
        CommOp { region, peer: None }
    }
}

/// The per-thread plan for one epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochPlan {
    /// Data this thread produced that others will consume.
    pub wb: Vec<CommOp>,
    /// Data this thread will consume that others produced.
    pub inv: Vec<CommOp>,
}

impl EpochPlan {
    pub fn new() -> EpochPlan {
        EpochPlan::default()
    }

    pub fn with_wb(mut self, op: CommOp) -> EpochPlan {
        self.wb.push(op);
        self
    }

    pub fn with_inv(mut self, op: CommOp) -> EpochPlan {
        self.inv.push(op);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.wb.is_empty() && self.inv.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::WordAddr;

    #[test]
    fn builder_pattern() {
        let r = Region::new(WordAddr(0), 16);
        let p = EpochPlan::new()
            .with_wb(CommOp::known(r, ThreadId(1)))
            .with_inv(CommOp::unknown(r));
        assert_eq!(p.wb.len(), 1);
        assert_eq!(p.inv.len(), 1);
        assert_eq!(p.wb[0].peer, Some(ThreadId(1)));
        assert_eq!(p.inv[0].peer, None);
        assert!(!p.is_empty());
        assert!(EpochPlan::new().is_empty());
    }
}
