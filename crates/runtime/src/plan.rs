//! Communication plans for programming model 2 (inter-block).
//!
//! The compiler analysis (`hic-analysis`) — or an inspector at runtime —
//! produces, for each thread and each epoch boundary, the list of regions
//! it must write back (with the consuming thread, when known) and the
//! regions it must self-invalidate (with the producing thread, when
//! known). The `ThreadCtx` translates the plan into the right WB/INV
//! flavor for the active configuration:
//!
//! * `Base` ignores the plan and uses global `WB ALL` / `INV ALL`;
//! * `Addr` uses the regions but always goes global (`WB_L3`, `INV_L2`);
//! * `Addr+L` uses `WB_CONS` / `INV_PROD` so the ThreadMap picks the level.

use hic_mem::Region;
use hic_sim::ThreadId;
use serde::{Deserialize, Serialize};

/// One planned communication operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommOp {
    /// The data to move.
    pub region: Region,
    /// The peer thread (consumer for WBs, producer for INVs), when the
    /// analysis could identify it. `None` = unknown: the operation must be
    /// global regardless of configuration.
    pub peer: Option<ThreadId>,
}

impl CommOp {
    pub fn known(region: Region, peer: ThreadId) -> CommOp {
        CommOp {
            region,
            peer: Some(peer),
        }
    }

    pub fn unknown(region: Region) -> CommOp {
        CommOp { region, peer: None }
    }
}

/// The per-thread plan for one epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochPlan {
    /// Data this thread produced that others will consume.
    pub wb: Vec<CommOp>,
    /// Data this thread will consume that others produced.
    pub inv: Vec<CommOp>,
}

impl EpochPlan {
    pub fn new() -> EpochPlan {
        EpochPlan::default()
    }

    pub fn with_wb(mut self, op: CommOp) -> EpochPlan {
        self.wb.push(op);
        self
    }

    pub fn with_inv(mut self, op: CommOp) -> EpochPlan {
        self.inv.push(op);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.wb.is_empty() && self.inv.is_empty()
    }

    /// The plan with both halves run through [`coalesce_ops`]: same word
    /// coverage and per-word peer scopes, fewest ops.
    pub fn coalesced(&self) -> EpochPlan {
        EpochPlan {
            wb: coalesce_ops(&self.wb),
            inv: coalesce_ops(&self.inv),
        }
    }

    /// Total number of planned operations (both halves).
    pub fn num_ops(&self) -> usize {
        self.wb.len() + self.inv.len()
    }

    /// One half of the plan: the WB ops (`wb = true`) or the INV ops.
    pub fn side(&self, wb: bool) -> &[CommOp] {
        if wb {
            &self.wb
        } else {
            &self.inv
        }
    }

    fn side_mut(&mut self, wb: bool) -> &mut Vec<CommOp> {
        if wb {
            &mut self.wb
        } else {
            &mut self.inv
        }
    }

    // ------------------------------------------------------------------
    // Mutation helpers (fuzzing / fault-injection harnesses)
    //
    // `hic-fuzz` perturbs plans through these four operators — delete,
    // duplicate, widen, narrow — so that the same mutation applies
    // identically to a program's runnable closure and to its
    // `ProgramRecord` (both materialize their plans through one shared
    // description). They are deliberately total: out-of-range indices
    // return `false`/`None` instead of panicking, because a fuzzer's
    // mutation coordinates may outlive a shrunk plan.
    // ------------------------------------------------------------------

    /// Remove op `idx` of the given half. Returns the removed op, or
    /// `None` when the index is out of range.
    pub fn delete_op(&mut self, wb: bool, idx: usize) -> Option<CommOp> {
        let ops = self.side_mut(wb);
        if idx < ops.len() {
            Some(ops.remove(idx))
        } else {
            None
        }
    }

    /// Append an exact copy of op `idx` of the given half (a redundancy
    /// the verifier must tolerate and the optimizer should prune).
    pub fn duplicate_op(&mut self, wb: bool, idx: usize) -> bool {
        let ops = self.side_mut(wb);
        if let Some(op) = ops.get(idx).copied() {
            ops.push(op);
            true
        } else {
            false
        }
    }

    /// Grow op `idx`'s region by `front` words downward (saturating at
    /// address zero) and `back` words upward. Widening keeps a plan
    /// sufficient: it can only move *more* data.
    pub fn widen_op(&mut self, wb: bool, idx: usize, front: u64, back: u64) -> bool {
        let Some(op) = self.side_mut(wb).get_mut(idx) else {
            return false;
        };
        let front = front.min(op.region.start.0);
        op.region = Region::new(
            hic_mem::WordAddr(op.region.start.0 - front),
            op.region.words + front + back,
        );
        true
    }

    /// Shrink op `idx`'s region by `front` words from the start and
    /// `back` words from the end. Refuses mutations that would empty or
    /// invert the region (use [`EpochPlan::delete_op`] for removal), so a
    /// successful narrow always leaves a strict, non-empty sub-range —
    /// the uncovered remainder is what a soundness audit expects the
    /// analyses to flag.
    pub fn narrow_op(&mut self, wb: bool, idx: usize, front: u64, back: u64) -> bool {
        let Some(op) = self.side_mut(wb).get_mut(idx) else {
            return false;
        };
        if front + back == 0 || front + back >= op.region.words {
            return false;
        }
        op.region = Region::new(
            hic_mem::WordAddr(op.region.start.0 + front),
            op.region.words - front - back,
        );
        true
    }
}

/// Merge a list of planned operations into the minimal equivalent list:
/// ops with the same peer whose regions overlap or touch become one op
/// over the union range, exact same-peer duplicates collapse, and empty
/// regions vanish. Ops with *different* peers are never merged (the peer
/// selects the cache level under `Addr+L`), so per-word scope is
/// preserved exactly. The result is sorted by (region start, peer).
pub fn coalesce_ops(ops: &[CommOp]) -> Vec<CommOp> {
    let mut sorted: Vec<CommOp> = ops.iter().copied().filter(|o| o.region.words > 0).collect();
    // Group by peer, then by start address within the group.
    let key = |o: &CommOp| (o.peer.map_or(u64::MAX, |p| p.0 as u64), o.region.start.0);
    sorted.sort_by_key(key);
    let mut out: Vec<CommOp> = Vec::with_capacity(sorted.len());
    for op in sorted {
        match out.last_mut() {
            Some(last) if last.peer == op.peer && op.region.start.0 <= last.region.end().0 => {
                let end = last.region.end().0.max(op.region.end().0);
                last.region = Region::new(last.region.start, end - last.region.start.0);
            }
            _ => out.push(op),
        }
    }
    out.sort_by_key(|o| (o.region.start.0, o.peer.map_or(u64::MAX, |p| p.0 as u64)));
    out
}

/// Per-call-site plan substitutions computed by a static optimizer
/// (`hic-lint`). Entry `wb[t][k]` replaces the plan of thread `t`'s k-th
/// [`crate::ThreadCtx::plan_wb`] call (`inv[t][k]` its k-th `plan_inv`);
/// `None` keeps the plan the program passed. Install on the builder with
/// [`crate::ProgramBuilder::override_plans`] — the program text stays
/// untouched, only the issued WB/INV instructions change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanOverrides {
    pub wb: Vec<Vec<Option<EpochPlan>>>,
    pub inv: Vec<Vec<Option<EpochPlan>>>,
}

impl PlanOverrides {
    pub fn new(nthreads: usize) -> PlanOverrides {
        PlanOverrides {
            wb: vec![Vec::new(); nthreads],
            inv: vec![Vec::new(); nthreads],
        }
    }

    fn set(side: &mut Vec<Option<EpochPlan>>, site: usize, plan: EpochPlan) {
        if side.len() <= site {
            side.resize(site + 1, None);
        }
        side[site] = Some(plan);
    }

    /// Substitute thread `t`'s `site`-th `plan_wb` call.
    pub fn set_wb(&mut self, t: usize, site: usize, plan: EpochPlan) {
        Self::set(&mut self.wb[t], site, plan);
    }

    /// Substitute thread `t`'s `site`-th `plan_inv` call.
    pub fn set_inv(&mut self, t: usize, site: usize, plan: EpochPlan) {
        Self::set(&mut self.inv[t], site, plan);
    }

    pub fn wb_at(&self, t: usize, site: usize) -> Option<&EpochPlan> {
        self.wb.get(t)?.get(site)?.as_ref()
    }

    pub fn inv_at(&self, t: usize, site: usize) -> Option<&EpochPlan> {
        self.inv.get(t)?.get(site)?.as_ref()
    }

    /// True when no site is substituted at all.
    pub fn is_empty(&self) -> bool {
        let unset =
            |side: &[Vec<Option<EpochPlan>>]| side.iter().all(|v| v.iter().all(|p| p.is_none()));
        unset(&self.wb) && unset(&self.inv)
    }

    /// Number of substituted sites.
    pub fn num_overridden(&self) -> usize {
        let count = |side: &[Vec<Option<EpochPlan>>]| {
            side.iter()
                .map(|v| v.iter().filter(|p| p.is_some()).count())
                .sum::<usize>()
        };
        count(&self.wb) + count(&self.inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::WordAddr;

    #[test]
    fn builder_pattern() {
        let r = Region::new(WordAddr(0), 16);
        let p = EpochPlan::new()
            .with_wb(CommOp::known(r, ThreadId(1)))
            .with_inv(CommOp::unknown(r));
        assert_eq!(p.wb.len(), 1);
        assert_eq!(p.inv.len(), 1);
        assert_eq!(p.wb[0].peer, Some(ThreadId(1)));
        assert_eq!(p.inv[0].peer, None);
        assert!(!p.is_empty());
        assert!(EpochPlan::new().is_empty());
    }

    /// Per-word scopes of an op list, the naive way: for every word, the
    /// set of peer scopes some op covers it with.
    fn naive_scopes(
        ops: &[CommOp],
    ) -> std::collections::BTreeMap<u64, std::collections::BTreeSet<Option<u64>>> {
        let mut m: std::collections::BTreeMap<u64, std::collections::BTreeSet<Option<u64>>> =
            std::collections::BTreeMap::new();
        for op in ops {
            for w in op.region.start.0..op.region.end().0 {
                m.entry(w).or_default().insert(op.peer.map(|p| p.0 as u64));
            }
        }
        m
    }

    #[test]
    fn coalesce_preserves_per_word_scopes_and_is_minimal() {
        let mut rng = hic_sim::SplitMix64::new(0x0a1b2c3d);
        for _ in 0..500 {
            let n = (rng.next_u64() % 12) as usize;
            let ops: Vec<CommOp> = (0..n)
                .map(|_| {
                    let start = 64 + rng.next_u64() % 64;
                    let words = rng.next_u64() % 20; // empty regions allowed
                    let peer = match rng.next_u64() % 3 {
                        0 => None,
                        v => Some(ThreadId((v % 2) as usize)),
                    };
                    CommOp {
                        region: Region::new(WordAddr(start), words),
                        peer,
                    }
                })
                .collect();
            let out = coalesce_ops(&ops);
            // Same word coverage with the same per-word peer scopes.
            assert_eq!(naive_scopes(&ops), naive_scopes(&out), "{ops:?} -> {out:?}");
            // Minimal: no empty regions, no two same-peer ops that still
            // touch or overlap.
            assert!(out.iter().all(|o| o.region.words > 0));
            for a in 0..out.len() {
                for b in a + 1..out.len() {
                    let (x, y) = (&out[a], &out[b]);
                    if x.peer == y.peer {
                        let disjoint = x.region.end().0 < y.region.start.0
                            || y.region.end().0 < x.region.start.0;
                        assert!(disjoint, "mergeable ops survived: {out:?}");
                    }
                }
            }
            // Sorted by (start, peer).
            let mut sorted = out.clone();
            sorted.sort_by_key(|o| (o.region.start.0, o.peer.map_or(u64::MAX, |p| p.0 as u64)));
            assert_eq!(out, sorted);
        }
    }
}
