//! The execution engine: conservative execution-driven scheduling of
//! simulated threads over one [`Machine`].
//!
//! Each simulated thread runs on an OS thread and talks to the engine
//! over a channel. The engine:
//!
//! 1. makes sure every runnable core has at least one pending op —
//!    receiving from the thread's channel when its queue is empty (the
//!    thread is guaranteed to send one);
//! 2. executes the op of the core with the smallest local time (core id
//!    breaking ties), so machine transitions happen in global
//!    simulated-time order;
//! 3. delivers wakeups produced by synchronization grants immediately, so
//!    no core can act "in the past" of an already-executed transition.
//!
//! # Batched transport
//!
//! Under [`Transport::Batched`] a thread coalesces runs of fire-and-forget
//! ops (stores, computes, posted WB/INV — see `Op::is_batchable`) into one
//! `Op::Batch` message and does not wait for replies to them. The engine
//! **unpacks** each batch into the core's op queue and still executes one
//! op at a time by global minimum-time selection: simulated timing,
//! interleaving, stall ledgers, and traffic are bit-identical to
//! [`Transport::Sync`] — only the host-side channel round-trips disappear.
//! [`EngineStats`] (surfaced through `RunStats::engine`) records how many.
//!
//! If every unfinished core is parked on synchronization, the program has
//! deadlocked; the engine panics with a diagnostic (including each parked
//! core's stall category and, when tracing is enabled, the recent
//! operation history) rather than hanging.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use hic_machine::{Exec, Machine, Op, RunStats};
use hic_mem::Word;
use hic_sim::{CoreId, Cycle, EngineStats};

use crate::ctx::{RtShared, ThreadCtx};

/// How simulated threads ship ops to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Every op is sent as its own message and the thread waits for the
    /// reply — one host round-trip per op. Simple, and the reference
    /// behavior the batched transport must match cycle-for-cycle.
    Sync,
    /// Runs of non-value-returning ops are coalesced into one
    /// `Op::Batch` message of at most `cap` ops; the thread only waits
    /// at value-returning or blocking ops. Same simulated results,
    /// fewer host round-trips.
    Batched { cap: usize },
}

impl Default for Transport {
    fn default() -> Self {
        Transport::Batched { cap: 64 }
    }
}

impl Transport {
    /// Batch capacity (0 = unbatched).
    pub fn batch_cap(self) -> usize {
        match self {
            Transport::Sync => 0,
            Transport::Batched { cap } => cap.max(1),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Queue empty: must pull the next message from the thread.
    NeedsOp,
    /// Has at least one queued op, not yet executed.
    HasOp,
    /// Blocked inside the machine on a synchronization grant.
    Parked,
    /// Thread finished.
    Done,
}

/// The scheduler state for one run: per-core op queues, local clocks,
/// and the [`EngineStats`] ledger.
pub(crate) struct Engine {
    machine: Machine,
    state: Vec<CoreState>,
    /// Per-core local simulated time.
    time: Vec<Cycle>,
    /// Per-core decoded op queue: `(op, needs_reply)`. Batch members are
    /// queued with `needs_reply = false`; individually sent ops (except
    /// `Finish`) with `true`.
    queue: Vec<VecDeque<(Op, bool)>>,
    stats: EngineStats,
}

impl Engine {
    pub(crate) fn new(machine: Machine, nthreads: usize) -> Engine {
        Engine {
            machine,
            state: vec![CoreState::NeedsOp; nthreads],
            time: vec![0; nthreads],
            queue: (0..nthreads).map(|_| VecDeque::new()).collect(),
            stats: EngineStats::new(),
        }
    }

    /// Receive one transport message for core `c` and queue its ops.
    fn refill(&mut self, c: usize, req_rxs: &[Receiver<Op>]) {
        let msg = req_rxs[c].recv().expect("app thread died mid-run");
        self.stats.messages += 1;
        match msg {
            Op::Batch(ops) => {
                debug_assert!(!ops.is_empty(), "empty batch message");
                self.stats.batches += 1;
                for op in ops {
                    debug_assert!(op.is_batchable(), "non-batchable op in batch: {op:?}");
                    self.queue[c].push_back((op, false));
                }
            }
            op => {
                let needs_reply = !matches!(op, Op::Finish);
                self.queue[c].push_back((op, needs_reply));
            }
        }
        self.state[c] = CoreState::HasOp;
    }

    fn deadlock_panic(&self) -> ! {
        let parked: Vec<String> = (0..self.state.len())
            .filter(|&c| self.state[c] == CoreState::Parked)
            .map(|c| {
                let cat = self
                    .machine
                    .parked_category(CoreId(c))
                    .map(|cat| cat.label())
                    .unwrap_or("?");
                format!("core{c} ({cat})")
            })
            .collect();
        let mut msg = format!(
            "deadlock: no runnable core; parked cores: [{}] \
             (a barrier is missing an arrival, or a lock is never released)",
            parked.join(", ")
        );
        if self.machine.trace().enabled() {
            msg.push_str("\nmost recent operations (oldest first):\n");
            msg.push_str(&self.machine.trace().render());
        }
        panic!("{msg}");
    }

    /// Drive the run to completion; returns the machine and its stats
    /// with the engine ledger filled in.
    pub(crate) fn run(
        mut self,
        req_rxs: &[Receiver<Op>],
        reply_txs: &[SyncSender<Option<Word>>],
    ) -> (Machine, RunStats) {
        let nthreads = self.state.len();
        let mut done = 0usize;
        let mut parked_now = 0u64;

        while done < nthreads {
            // 1. Every runnable core must present its next op.
            for c in 0..nthreads {
                if self.state[c] == CoreState::NeedsOp {
                    self.refill(c, req_rxs);
                }
            }
            // 2. Execute the earliest pending op.
            let next = (0..nthreads)
                .filter(|&c| self.state[c] == CoreState::HasOp)
                .min_by_key(|&c| (self.time[c], c));
            let c = match next {
                Some(c) => c,
                None => self.deadlock_panic(),
            };
            let (op, needs_reply) = self.queue[c].pop_front().expect("HasOp implies queued op");
            match self.machine.execute(CoreId(c), &op, self.time[c]) {
                Exec::Done { value, end } => {
                    self.stats.ops_executed += 1;
                    self.time[c] = end;
                    if matches!(op, Op::Finish) {
                        debug_assert!(self.queue[c].is_empty(), "ops queued after Finish");
                        self.state[c] = CoreState::Done;
                        done += 1;
                    } else {
                        if needs_reply {
                            self.stats.round_trips += 1;
                            reply_txs[c].send(value).expect("app thread died");
                        }
                        self.state[c] = if self.queue[c].is_empty() {
                            CoreState::NeedsOp
                        } else {
                            CoreState::HasOp
                        };
                    }
                }
                Exec::Parked => {
                    // Blocking ops are never batched and always flush the
                    // batch first, so a parking core has nothing queued.
                    debug_assert!(
                        self.queue[c].is_empty(),
                        "batch queued behind a blocking op"
                    );
                    debug_assert!(needs_reply, "blocking ops are sent individually");
                    self.stats.ops_executed += 1;
                    self.state[c] = CoreState::Parked;
                    parked_now += 1;
                    self.stats.peak_parked = self.stats.peak_parked.max(parked_now);
                }
            }
            // 3. Deliver wakeups immediately.
            for wk in self.machine.take_wakeups() {
                let i = wk.core.0;
                debug_assert_eq!(self.state[i], CoreState::Parked);
                self.stats.wakeups += 1;
                parked_now -= 1;
                self.time[i] = wk.at;
                reply_txs[i].send(None).expect("app thread died");
                self.state[i] = CoreState::NeedsOp;
            }
        }
        let mut stats = self.machine.finish();
        stats.engine = self.stats;
        (self.machine, stats)
    }
}

/// Run `body` on `nthreads` simulated threads over `machine`.
/// Returns the machine (for result inspection) and the run statistics.
pub(crate) fn run_threads<F>(
    machine: Machine,
    shared: Arc<RtShared>,
    nthreads: usize,
    body: F,
) -> (Machine, RunStats)
where
    F: Fn(&ThreadCtx) + Send + Sync,
{
    assert!(nthreads >= 1);
    assert!(
        nthreads <= machine.config().num_cores(),
        "more threads ({nthreads}) than cores ({})",
        machine.config().num_cores()
    );

    let mut req_txs = Vec::with_capacity(nthreads);
    let mut req_rxs: Vec<Receiver<Op>> = Vec::with_capacity(nthreads);
    let mut reply_txs: Vec<SyncSender<Option<Word>>> = Vec::with_capacity(nthreads);
    let mut reply_rxs = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let (tx, rx) = channel::<Op>();
        req_txs.push(tx);
        req_rxs.push(rx);
        let (tx, rx) = sync_channel::<Option<Word>>(1);
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }

    let body = &body;
    std::thread::scope(move |scope| {
        // `req_txs`/`reply_txs` are moved INTO the scope closure so that an
        // engine panic (deadlock detection, app misuse) drops them during
        // unwinding; blocked app threads then observe channel
        // disconnection and exit, letting the scope join instead of
        // hanging.
        let mut req_txs = req_txs;
        let mut reply_rxs = reply_rxs;
        let reply_txs = reply_txs;
        let req_rxs = req_rxs;
        // Spawn the application threads.
        for (tid, (req, reply)) in req_txs.drain(..).zip(reply_rxs.drain(..)).enumerate() {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let ctx = ThreadCtx::new(tid, req, reply, shared);
                body(&ctx);
                ctx.finish();
            });
        }

        // The engine runs on this thread.
        Engine::new(machine, nthreads).run(&req_rxs, &reply_txs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, IntraConfig};
    use hic_mem::{Region, WordAddr};
    use hic_sim::MachineConfig;

    fn harness(nthreads: usize, cfg: Config, transport: Transport) -> (Machine, Arc<RtShared>) {
        let machine = if cfg.is_coherent() {
            Machine::coherent(MachineConfig::intra_block())
        } else {
            Machine::incoherent(MachineConfig::intra_block())
        };
        let shared = Arc::new(RtShared {
            config: cfg,
            locks: Vec::new(),
            nthreads,
            transport,
        });
        (machine, shared)
    }

    #[test]
    fn single_thread_store_load() {
        let (machine, shared) = harness(1, Config::Intra(IntraConfig::Base), Transport::default());
        let (machine, stats) = run_threads(machine, shared, 1, |ctx| {
            let r = Region::new(WordAddr(16), 4);
            ctx.write(r, 0, 7);
            assert_eq!(ctx.read(r, 0), 7);
            ctx.compute(100);
            // Post the value so a fresh reader (peek) sees it.
            ctx.coh(hic_core::CohInstr::wb_all());
        });
        assert!(stats.total_cycles >= 100);
        assert_eq!(machine.peek_word(WordAddr(16)), 7);
    }

    #[test]
    fn threads_run_deterministically() {
        let run = |transport: Transport| {
            let (machine, shared) = harness(4, Config::Intra(IntraConfig::Base), transport);
            let mut m2 = machine;
            let b = m2.alloc_barrier(4);
            let shared2 = shared;
            let (_, stats) = run_threads(m2, shared2, 4, move |ctx| {
                let r = Region::new(WordAddr(16 * (1 + ctx.tid() as u64)), 4);
                for i in 0..4 {
                    ctx.write(r, i, (ctx.tid() as u32 + 1) * 10 + i as u32);
                }
                ctx.compute(ctx.tid() as u64 * 13);
                ctx.barrier(crate::ctx::BarrierId(b));
            });
            stats
        };
        let a = run(Transport::default());
        let b = run(Transport::default());
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "same program, same cycle count"
        );
        // And the batched transport must not change simulated results at
        // all relative to the synchronous one...
        let s = run(Transport::Sync);
        assert_eq!(a.total_cycles, s.total_cycles);
        assert_eq!(a.ledgers, s.ledgers);
        assert_eq!(a.traffic, s.traffic);
        // ...while actually saving host round-trips.
        assert!(a.engine.batches > 0, "batched run coalesced messages");
        assert!(a.engine.round_trips < s.engine.round_trips);
        assert_eq!(a.engine.ops_executed, s.engine.ops_executed);
        assert_eq!(s.engine.batches, 0);
    }

    #[test]
    fn engine_counts_wakeups_and_peak_parked() {
        let (machine, shared) = harness(4, Config::Intra(IntraConfig::Hcc), Transport::default());
        let mut m2 = machine;
        let b = m2.alloc_barrier(4);
        let (_, stats) = run_threads(m2, shared, 4, move |ctx| {
            ctx.compute(10 * (1 + ctx.tid() as u64));
            ctx.barrier_private(crate::ctx::BarrierId(b));
        });
        // Three cores park at the barrier; the fourth arrival wakes them.
        assert_eq!(stats.engine.wakeups, 3);
        assert_eq!(stats.engine.peak_parked, 3);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_barrier_arrival_is_detected() {
        let (mut machine, shared) =
            harness(2, Config::Intra(IntraConfig::Hcc), Transport::default());
        let b = machine.alloc_barrier(3); // 3 participants, only 2 threads!
        run_threads(machine, shared, 2, move |ctx| {
            ctx.barrier_private(crate::ctx::BarrierId(b));
        });
    }

    #[test]
    fn deadlock_panic_names_stall_categories_and_trace() {
        let (mut machine, shared) =
            harness(2, Config::Intra(IntraConfig::Hcc), Transport::default());
        machine.enable_trace(32);
        let b = machine.alloc_barrier(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_threads(machine, shared, 2, move |ctx| {
                ctx.compute(5);
                ctx.barrier_private(crate::ctx::BarrierId(b));
            });
        }))
        .expect_err("must deadlock");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(
            msg.contains("barrier stall"),
            "stall category missing: {msg}"
        );
        assert!(msg.contains("BarrierArrive"), "trace tail missing: {msg}");
    }
}
