//! The execution engine: conservative execution-driven scheduling of
//! simulated threads over one [`Machine`].
//!
//! Each simulated thread runs on an OS thread. The engine's scheduler
//! state (per-core op queues, local clocks, the machine) lives behind one
//! mutex, and the app threads drive it *cooperatively*: whenever a thread
//! submits ops it executes everything that is safe to execute — its own
//! ops and other cores' — instead of handing off to a dedicated engine
//! thread. Machine transitions happen in global simulated-time order:
//! the pending op with the smallest `(local time, core id)` runs first.
//!
//! # Conservative lookahead
//!
//! A core's local clock never moves backward, so a core that has not yet
//! presented its next op cannot act before its current clock. The
//! engine therefore executes the earliest queued op as soon as it
//! precedes `(time, id)` of **every op-less core** — it does not wait
//! for those cores to actually submit. This is the standard conservative
//! parallel-discrete-event rule, and it produces exactly the same
//! machine-transition sequence as the reference "wait for all cores,
//! then pick the minimum" loop: delayed submissions always order after
//! the op executed early. It matters on the host side only — a thread
//! issuing a load usually finds its own op is already globally minimal
//! and serves itself without a single context switch.
//!
//! Wakeups produced by synchronization grants are delivered immediately
//! after the op that granted them, and each one wakes only the thread it
//! targets (per-core condvars — no thundering herd).
//!
//! The next core is picked either by an O(ncores) scan
//! ([`Scheduler::Linear`], the reference) or from binary heaps keyed by
//! `(local time, core id)` ([`Scheduler::Heap`], the default) — O(log
//! ncores) per op. The run heap has one entry per core with queued ops,
//! and such a core's clock only advances when it executes (which pops
//! the entry), so entries are never stale; the op-less heap is cleaned
//! lazily.
//!
//! # Batched transport
//!
//! Under [`Transport::Batched`] a thread coalesces runs of fire-and-forget
//! ops (stores, computes, posted WB/INV — see `Op::is_batchable`) into one
//! `Op::Batch` message and does not wait for replies to them. The engine
//! **unpacks** each batch into the core's op queue and still executes one
//! op at a time by global minimum-time selection: simulated timing,
//! interleaving, stall ledgers, and traffic are bit-identical to
//! [`Transport::Sync`] — only the host-side reply waits disappear.
//! [`EngineStats`] (surfaced through `RunStats::engine`) records how many.
//!
//! # Failure handling
//!
//! A run that cannot complete — deadlock, watchdog expiry (simulated-
//! cycle budget or host wall-clock), a fatal sanitizer finding under
//! `CheckMode::Strict`, or an unrecoverable injected fault — does not
//! abort the process. The engine latches the *first* [`RunError`], wakes
//! every blocked thread, and unwinds each app thread with a quiet
//! sentinel payload that the thread wrapper catches; the scope joins
//! normally and the error is returned alongside the stats, so a failed
//! run leaves the process fully reusable. If every unfinished core is
//! parked on synchronization the program has deadlocked, and the error
//! names each parked core's stall category (plus the recent operation
//! history when tracing is enabled).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use hic_machine::{Exec, Machine, Op, RunError, RunStats};
use hic_mem::Word;
use hic_sim::{CoreId, Cycle, EngineStats};

use crate::ctx::{RtShared, ThreadCtx};

/// Unwind payload used to exit app threads once the run is dead. The
/// thread wrapper in [`run_threads`] catches it (and only it) so the
/// typed [`RunError`] — not a panic — is what reaches the caller.
pub(crate) struct EngineDead;

/// Suppress the default "thread panicked" stderr line for [`EngineDead`]
/// unwinds; every other payload still reaches the previous hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<EngineDead>().is_none() {
                prev(info);
            }
        }));
    });
}

/// How simulated threads ship ops to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Every op is submitted on its own and the thread waits for the
    /// reply. Simple, and the reference behavior the batched transport
    /// must match cycle-for-cycle.
    Sync,
    /// Runs of non-value-returning ops are coalesced into one
    /// `Op::Batch` message of at most `cap` ops; the thread only waits
    /// at value-returning or blocking ops. Same simulated results,
    /// fewer host round-trips.
    Batched { cap: usize },
}

impl Default for Transport {
    fn default() -> Self {
        Transport::Batched { cap: 64 }
    }
}

impl Transport {
    /// Batch capacity (0 = unbatched).
    pub fn batch_cap(self) -> usize {
        match self {
            Transport::Sync => 0,
            Transport::Batched { cap } => cap.max(1),
        }
    }
}

/// How the engine picks the next core to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Scan all cores for the minimum `(time, core)` — O(ncores) per op.
    /// The reference implementation the heap must match exactly.
    Linear,
    /// Binary heaps keyed by `(time, core)` — O(log ncores) per op.
    #[default]
    Heap,
    /// Bank-parallel conservative PDES: cores are partitioned over
    /// `shards` event domains that run concurrently on host threads.
    /// Core-local ops (L1 hits, computes, epoch markers) retire inside
    /// the issuing thread's shard without any global lock; everything
    /// that touches the shared hierarchy synchronizes through a global
    /// event domain that replays exactly the sequential `(time, core)`
    /// key order, so simulated results are bit-identical to
    /// [`Scheduler::Linear`] (see `crate::sharded` and
    /// `tests/prop_scheduler.rs`). `shards = 0` means "one per host
    /// core"; the count is clamped to `[1, nthreads]`. Machines the
    /// fast path cannot shard (coherent backends, an attached sanitizer,
    /// a fault plan, or tracing — see `Machine::supports_sharding`)
    /// transparently serialize through the sequential heap engine.
    Sharded { shards: usize },
}

impl Scheduler {
    /// Parse a `HIC_ENGINE` value: `linear`, `heap`, `sharded` (one
    /// shard per host core), or `sharded:N`.
    pub fn parse(s: &str) -> Option<Scheduler> {
        match s.trim().to_ascii_lowercase().as_str() {
            "linear" => Some(Scheduler::Linear),
            "heap" => Some(Scheduler::Heap),
            "sharded" => Some(Scheduler::Sharded { shards: 0 }),
            other => {
                let n = other.strip_prefix("sharded:")?;
                n.parse::<usize>()
                    .ok()
                    .map(|shards| Scheduler::Sharded { shards })
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Queue empty: the thread has not yet presented its next op. Its
    /// clock bounds how early its future ops can be.
    NeedsOp,
    /// Has at least one queued op, not yet executed.
    HasOp,
    /// Blocked inside the machine on a synchronization grant.
    Parked,
    /// Thread finished.
    Done,
}

/// The scheduler state for one run: per-core op queues, local clocks,
/// and the [`EngineStats`] ledger. Shared among all app threads behind
/// [`EngineShared`]'s mutex.
struct EngineCore {
    machine: Machine,
    scheduler: Scheduler,
    state: Vec<CoreState>,
    /// Per-core local simulated time.
    time: Vec<Cycle>,
    /// Per-core decoded op queue: `(op, needs_reply)`. Batch members are
    /// queued with `needs_reply = false`; individually sent ops (except
    /// `Finish`) with `true`.
    queue: Vec<VecDeque<(Op, bool)>>,
    /// Under [`Scheduler::Heap`]: one entry per `HasOp` core, keyed by
    /// its current local time. Never stale.
    run_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Under [`Scheduler::Heap`]: entries for `NeedsOp` cores, keyed by
    /// the clock at which they became op-less. Cleaned lazily: an entry
    /// is valid while its core is still `NeedsOp` at that exact time.
    idle_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Unfinished cores whose queue is empty.
    needs_op: usize,
    /// Cores with queued ops.
    has_op: usize,
    /// Per-core reply slot, filled when the core's pending op completes.
    reply: Vec<Option<Option<Word>>>,
    /// Per-core flag: the thread is blocked on its condvar.
    waiting: Vec<bool>,
    /// Cores whose reply was filled while their thread was blocked;
    /// drained into targeted notifications when the driver pauses.
    wake_list: Vec<usize>,
    /// The spawning thread is blocked waiting for completion.
    main_waiting: bool,
    done: usize,
    parked_now: u64,
    /// First fatal condition of the run (deadlock, hang, fatal finding,
    /// app-thread death); every blocked thread exits once it is set.
    dead: Option<RunError>,
    /// Watchdog: fail the run if any core's clock passes this budget.
    watchdog_cycles: Option<Cycle>,
    /// Watchdog: fail the run past this host-time deadline (checked
    /// every [`WALL_CHECK_PERIOD`] ops to keep the hot path cheap).
    deadline: Option<Instant>,
    ops_since_wall_check: u32,
    stats: EngineStats,
}

/// How many executed ops between host wall-clock watchdog checks.
pub(crate) const WALL_CHECK_PERIOD: u32 = 1024;

impl EngineCore {
    fn new(machine: Machine, shared: &RtShared) -> EngineCore {
        let nthreads = shared.nthreads;
        // A sharded run that cannot shard (see `EngineShared::new`)
        // serializes through the default heap picker.
        let scheduler = match shared.scheduler {
            Scheduler::Sharded { .. } => Scheduler::Heap,
            s => s,
        };
        let mut idle_heap = BinaryHeap::with_capacity(nthreads + 4);
        if scheduler == Scheduler::Heap {
            // Every core starts op-less at time 0.
            for c in 0..nthreads {
                idle_heap.push(Reverse((0, c)));
            }
        }
        EngineCore {
            machine,
            scheduler,
            state: vec![CoreState::NeedsOp; nthreads],
            time: vec![0; nthreads],
            queue: (0..nthreads).map(|_| VecDeque::new()).collect(),
            run_heap: BinaryHeap::with_capacity(nthreads),
            idle_heap,
            needs_op: nthreads,
            has_op: 0,
            reply: vec![None; nthreads],
            waiting: vec![false; nthreads],
            wake_list: Vec::with_capacity(nthreads),
            main_waiting: false,
            done: 0,
            parked_now: 0,
            dead: None,
            watchdog_cycles: shared.watchdog_cycles,
            deadline: shared
                .watchdog_wall_ms
                .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
            ops_since_wall_check: 0,
            stats: EngineStats::new(),
        }
    }

    /// Queue one transport message for core `c`.
    fn enqueue(&mut self, c: usize, msg: Op) {
        debug_assert!(
            matches!(self.state[c], CoreState::NeedsOp | CoreState::HasOp),
            "parked or finished core submitted an op"
        );
        self.stats.messages += 1;
        match msg {
            Op::Batch(ops) => {
                debug_assert!(!ops.is_empty(), "empty batch message");
                self.stats.batches += 1;
                for op in ops {
                    debug_assert!(op.is_batchable(), "non-batchable op in batch: {op:?}");
                    self.queue[c].push_back((op, false));
                }
            }
            op => {
                let needs_reply = !matches!(op, Op::Finish);
                self.queue[c].push_back((op, needs_reply));
            }
        }
        if self.state[c] == CoreState::NeedsOp {
            self.state[c] = CoreState::HasOp;
            self.needs_op -= 1;
            self.has_op += 1;
            if self.scheduler == Scheduler::Heap {
                // The core's idle_heap entry goes stale and is dropped
                // lazily by `executable`.
                self.run_heap.push(Reverse((self.time[c], c)));
            }
        }
    }

    /// Mark core `c` op-less at its current clock.
    fn set_needs_op(&mut self, c: usize) {
        self.state[c] = CoreState::NeedsOp;
        self.needs_op += 1;
        if self.scheduler == Scheduler::Heap {
            self.idle_heap.push(Reverse((self.time[c], c)));
        }
    }

    /// May the earliest queued op execute now? True iff some op is
    /// queued and it precedes the clock of every op-less core.
    fn executable(&mut self) -> bool {
        match self.scheduler {
            Scheduler::Heap => {
                let Some(&Reverse(run)) = self.run_heap.peek() else {
                    return false;
                };
                while let Some(&Reverse((t, c))) = self.idle_heap.peek() {
                    if self.state[c] == CoreState::NeedsOp && self.time[c] == t {
                        return run < (t, c);
                    }
                    self.idle_heap.pop();
                }
                true
            }
            Scheduler::Linear => {
                let mut run: Option<(Cycle, usize)> = None;
                let mut idle: Option<(Cycle, usize)> = None;
                for c in 0..self.state.len() {
                    let key = (self.time[c], c);
                    match self.state[c] {
                        CoreState::HasOp if run.is_none_or(|m| key < m) => run = Some(key),
                        CoreState::NeedsOp if idle.is_none_or(|m| key < m) => idle = Some(key),
                        _ => {}
                    }
                }
                match (run, idle) {
                    (None, _) => false,
                    (Some(_), None) => true,
                    (Some(r), Some(i)) => r < i,
                }
            }
            Scheduler::Sharded { .. } => {
                unreachable!("sharded scheduler maps to Heap in EngineCore::new")
            }
        }
    }

    /// The `HasOp` core with the smallest `(time, core)`.
    fn pick(&mut self) -> usize {
        match self.scheduler {
            Scheduler::Heap => {
                let Reverse((t, c)) = self.run_heap.pop().expect("executable implies a run entry");
                debug_assert_eq!(self.state[c], CoreState::HasOp, "stale run_heap entry");
                debug_assert_eq!(self.time[c], t, "run_heap entry out of date");
                c
            }
            Scheduler::Linear => (0..self.state.len())
                .filter(|&c| self.state[c] == CoreState::HasOp)
                .min_by_key(|&c| (self.time[c], c))
                .expect("executable implies a HasOp core"),
            Scheduler::Sharded { .. } => {
                unreachable!("sharded scheduler maps to Heap in EngineCore::new")
            }
        }
    }

    /// Execute the globally earliest queued op and deliver any resulting
    /// wakeups into reply slots (queueing targeted notifications for
    /// blocked threads on `wake_list`).
    fn execute_one(&mut self) {
        let c = self.pick();
        let (op, needs_reply) = self.queue[c].pop_front().expect("HasOp implies queued op");
        match self.machine.execute(CoreId(c), &op, self.time[c]) {
            Exec::Done { value, end } => {
                self.stats.ops_executed += 1;
                self.time[c] = end;
                if matches!(op, Op::Finish) {
                    debug_assert!(self.queue[c].is_empty(), "ops queued after Finish");
                    self.state[c] = CoreState::Done;
                    self.has_op -= 1;
                    self.done += 1;
                } else {
                    if needs_reply {
                        self.stats.round_trips += 1;
                        debug_assert!(self.reply[c].is_none(), "unclaimed reply");
                        self.reply[c] = Some(value);
                        if self.waiting[c] {
                            self.wake_list.push(c);
                        }
                    }
                    if self.queue[c].is_empty() {
                        self.has_op -= 1;
                        self.set_needs_op(c);
                    } else if self.scheduler == Scheduler::Heap {
                        self.run_heap.push(Reverse((end, c)));
                    }
                }
            }
            Exec::Parked => {
                // Blocking ops are never batched and always flush the
                // batch first, so a parking core has nothing queued.
                debug_assert!(
                    self.queue[c].is_empty(),
                    "batch queued behind a blocking op"
                );
                debug_assert!(needs_reply, "blocking ops are sent individually");
                self.stats.ops_executed += 1;
                self.state[c] = CoreState::Parked;
                self.has_op -= 1;
                self.parked_now += 1;
                self.stats.peak_parked = self.stats.peak_parked.max(self.parked_now);
            }
        }
        for wk in self.machine.take_wakeups() {
            let i = wk.core.0;
            debug_assert_eq!(self.state[i], CoreState::Parked);
            self.stats.wakeups += 1;
            self.parked_now -= 1;
            self.time[i] = wk.at;
            self.reply[i] = Some(None);
            if self.waiting[i] {
                self.wake_list.push(i);
            }
            self.set_needs_op(i);
        }
        // Under CheckMode::Strict the sanitizer latches the first finding
        // (and fault injection latches unrecoverable corruption); surface
        // it as the run's error so the program stops at the faulty access
        // instead of completing with bad data.
        if let Some(err) = self.machine.take_fatal() {
            if self.dead.is_none() {
                self.dead = Some(err);
            }
        }
        if self.dead.is_none() {
            if let Some(limit) = self.watchdog_cycles {
                if self.time[c] > limit {
                    self.dead = Some(RunError::Hang {
                        detail: format!(
                            "simulated-cycle budget exceeded: core{c} reached cycle {} \
                             (budget {limit})",
                            self.time[c]
                        ),
                    });
                }
            }
        }
        if let Some(dl) = self.deadline {
            self.ops_since_wall_check += 1;
            if self.ops_since_wall_check >= WALL_CHECK_PERIOD {
                self.ops_since_wall_check = 0;
                if self.dead.is_none() && Instant::now() >= dl {
                    self.dead = Some(RunError::Hang {
                        detail: "host wall-clock watchdog expired before the run completed"
                            .to_string(),
                    });
                }
            }
        }
    }

    /// All unfinished cores are parked on synchronization: nothing can
    /// ever execute again.
    fn deadlocked(&self) -> bool {
        self.needs_op == 0 && self.has_op == 0 && self.done < self.state.len()
    }

    fn deadlock_error(&self) -> RunError {
        let parked: Vec<(usize, String)> = (0..self.state.len())
            .filter(|&c| self.state[c] == CoreState::Parked)
            .map(|c| {
                let cat = self
                    .machine
                    .parked_category(CoreId(c))
                    .map(|cat| cat.label())
                    .unwrap_or("?");
                (c, cat.to_string())
            })
            .collect();
        let trace_tail = if self.machine.trace().enabled() {
            self.machine.trace().render()
        } else {
            String::new()
        };
        RunError::Deadlock { parked, trace_tail }
    }
}

/// The engine handle shared by all thread contexts of one run: either
/// the sequential single-lock engine or the bank-parallel sharded one.
/// `ThreadCtx` only ever calls `submit` / `submit_await` / `mark_dead`,
/// so the two implementations are interchangeable behind this enum.
pub(crate) enum EngineShared {
    Seq(SeqEngine),
    Sharded(crate::sharded::ShardedEngine),
}

impl EngineShared {
    fn new(machine: Machine, shared: &RtShared) -> EngineShared {
        if let Scheduler::Sharded { shards } = shared.scheduler {
            if machine.supports_sharding() {
                return EngineShared::Sharded(crate::sharded::ShardedEngine::new(
                    machine, shared, shards,
                ));
            }
            // Checker, fault plan, tracing, or a coherent backend: the
            // core-local fast path would change observable order, so the
            // whole run serializes through the sequential engine (the
            // scheduler maps to `Heap` in `EngineCore::new`).
        }
        EngineShared::Seq(SeqEngine::new(machine, shared))
    }

    pub(crate) fn submit(&self, c: usize, msg: Op) {
        match self {
            EngineShared::Seq(e) => e.submit(c, msg),
            EngineShared::Sharded(e) => e.submit(c, msg),
        }
    }

    pub(crate) fn submit_await(&self, c: usize, op: Op) -> Option<Word> {
        match self {
            EngineShared::Seq(e) => e.submit_await(c, op),
            EngineShared::Sharded(e) => e.submit_await(c, op),
        }
    }

    pub(crate) fn mark_dead(&self, err: RunError) {
        match self {
            EngineShared::Seq(e) => e.mark_dead(err),
            EngineShared::Sharded(e) => e.mark_dead(err),
        }
    }

    fn await_completion(&self) -> Option<RunError> {
        match self {
            EngineShared::Seq(e) => e.await_completion(),
            EngineShared::Sharded(e) => e.await_completion(),
        }
    }
}

/// The single-lock cooperative engine (`Scheduler::Linear` / `Heap`):
/// submitting threads drive execution under one mutex.
pub(crate) struct SeqEngine {
    core: Mutex<EngineCore>,
    /// One condvar per core: its thread blocks here awaiting a reply.
    cvs: Vec<Condvar>,
    /// The spawning thread blocks here awaiting completion.
    cv_main: Condvar,
}

impl SeqEngine {
    fn new(machine: Machine, shared: &RtShared) -> SeqEngine {
        SeqEngine {
            core: Mutex::new(EngineCore::new(machine, shared)),
            cvs: (0..shared.nthreads).map(|_| Condvar::new()).collect(),
            cv_main: Condvar::new(),
        }
    }

    /// Lock the scheduler state, recovering from poisoning: teardown
    /// after an app-thread panic still needs to set the dead flag and
    /// wake sleepers so the thread scope can join.
    fn lock(&self) -> MutexGuard<'_, EngineCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deliver the targeted notifications queued by `execute_one`.
    fn flush_wakes(&self, g: &mut MutexGuard<'_, EngineCore>) {
        while let Some(i) = g.wake_list.pop() {
            self.cvs[i].notify_all();
        }
        if g.main_waiting && (g.done == g.state.len() || g.dead.is_some()) {
            self.cv_main.notify_all();
        }
    }

    fn wake_everyone(&self, g: &mut MutexGuard<'_, EngineCore>) {
        g.wake_list.clear();
        for cv in &self.cvs {
            cv.notify_all();
        }
        self.cv_main.notify_all();
    }

    /// Declare the run dead: latch the first error, wake every blocked
    /// thread, release the lock, and unwind the calling app thread with
    /// the quiet [`EngineDead`] sentinel (caught by its wrapper in
    /// [`run_threads`], so this is teardown, not a process abort).
    fn die(&self, mut g: MutexGuard<'_, EngineCore>, err: RunError) -> ! {
        if g.dead.is_none() {
            g.dead = Some(err);
        }
        self.wake_everyone(&mut g);
        drop(g);
        std::panic::panic_any(EngineDead);
    }

    /// Submit a fire-and-forget message (a batch or `Finish`) for core
    /// `c`, then execute everything that is safe to execute.
    pub(crate) fn submit(&self, c: usize, msg: Op) {
        let mut g = self.lock();
        if let Some(err) = g.dead.clone() {
            self.die(g, err);
        }
        g.enqueue(c, msg);
        while g.dead.is_none() && g.executable() {
            g.execute_one();
        }
        if let Some(err) = g.dead.clone() {
            self.die(g, err);
        }
        self.flush_wakes(&mut g);
        if g.deadlocked() {
            let err = g.deadlock_error();
            self.die(g, err);
        }
    }

    /// Submit a reply-carrying op for core `c` and drive the scheduler —
    /// executing pending ops of any core in global time order — until
    /// this core's reply is produced.
    pub(crate) fn submit_await(&self, c: usize, op: Op) -> Option<Word> {
        let mut g = self.lock();
        if let Some(err) = g.dead.clone() {
            self.die(g, err);
        }
        g.enqueue(c, op);
        loop {
            // Check death *before* consuming a reply: when Strict
            // checking kills the run at this core's own faulty access,
            // the access has a reply, but the thread must die with it.
            if let Some(err) = g.dead.clone() {
                self.die(g, err);
            }
            if let Some(r) = g.reply[c].take() {
                self.flush_wakes(&mut g);
                return r;
            }
            if g.executable() {
                g.execute_one();
                continue;
            }
            self.flush_wakes(&mut g);
            if g.deadlocked() {
                let err = g.deadlock_error();
                self.die(g, err);
            }
            g.waiting[c] = true;
            g = self.cvs[c].wait(g).unwrap_or_else(|e| e.into_inner());
            g.waiting[c] = false;
        }
    }

    /// Block the spawning thread until every core has finished (returns
    /// `None`) or the run dies (returns the latched error, after waking
    /// every blocked app thread so the scope can join). The app threads
    /// do all the driving — the final `Finish` submission drains the
    /// remaining queues before its thread exits.
    fn await_completion(&self) -> Option<RunError> {
        let mut g = self.lock();
        loop {
            if let Some(err) = g.dead.clone() {
                self.wake_everyone(&mut g);
                return Some(err);
            }
            if g.done == g.state.len() {
                return None;
            }
            g.main_waiting = true;
            g = self.cv_main.wait(g).unwrap_or_else(|e| e.into_inner());
            g.main_waiting = false;
        }
    }

    /// Record that an app thread died without finishing, and wake every
    /// blocked thread so the run tears down instead of hanging.
    pub(crate) fn mark_dead(&self, err: RunError) {
        let mut g = self.lock();
        if g.dead.is_none() {
            g.dead = Some(err);
        }
        self.wake_everyone(&mut g);
    }
}

/// Run `body` on `nthreads` simulated threads over `machine`.
/// Returns the machine (for result inspection), the run statistics, and
/// the [`RunError`] that killed the run, if any. Every app thread is
/// woken and joined before this returns — even on failure the process is
/// left reusable for further runs.
pub(crate) fn run_threads<F>(
    machine: Machine,
    shared: Arc<RtShared>,
    nthreads: usize,
    body: F,
) -> (Machine, RunStats, Option<RunError>)
where
    F: Fn(&ThreadCtx) + Send + Sync,
{
    assert!(nthreads >= 1);
    assert!(
        nthreads <= machine.config().num_cores(),
        "more threads ({nthreads}) than cores ({})",
        machine.config().num_cores()
    );

    install_quiet_hook();
    let engine = Arc::new(EngineShared::new(machine, &shared));
    let body = &body;
    let error = std::thread::scope(|scope| {
        for tid in 0..nthreads {
            let shared = Arc::clone(&shared);
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let exit = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let ctx = ThreadCtx::new(tid, engine, shared);
                    body(&ctx);
                    ctx.finish();
                }));
                if let Err(payload) = exit {
                    // EngineDead is the engine's own quiet teardown
                    // signal — swallow it so the scope joins cleanly.
                    // Anything else is a genuine app-thread panic: the
                    // ThreadCtx destructor already latched ThreadDied
                    // during the unwind (releasing the other threads),
                    // so re-raise it for the caller to see.
                    if !payload.is::<EngineDead>() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        // The spawning thread waits for completion; on death it returns
        // the latched error after waking every blocked app thread, so
        // the scope joins instead of hanging.
        engine.await_completion()
    });

    let shared = Arc::try_unwrap(engine)
        .ok()
        .expect("all thread contexts are dropped after the scope joins");
    match shared {
        EngineShared::Seq(seq) => {
            let core = seq.core.into_inner().unwrap_or_else(|e| e.into_inner());
            let mut stats = if error.is_some() {
                core.machine.finish_after_failure()
            } else {
                core.machine.finish()
            };
            stats.engine = core.stats;
            (core.machine, stats, error)
        }
        EngineShared::Sharded(sh) => sh.teardown(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, IntraConfig};
    use hic_mem::{Region, WordAddr};
    use hic_sim::MachineConfig;

    fn harness(nthreads: usize, cfg: Config, transport: Transport) -> (Machine, Arc<RtShared>) {
        let machine = if cfg.is_coherent() {
            Machine::coherent(MachineConfig::intra_block())
        } else {
            Machine::incoherent(MachineConfig::intra_block())
        };
        let shared = Arc::new(RtShared {
            config: cfg,
            locks: Vec::new(),
            nthreads,
            transport,
            scheduler: Scheduler::default(),
            checking: false,
            overrides: None,
            watchdog_cycles: None,
            watchdog_wall_ms: None,
        });
        (machine, shared)
    }

    #[test]
    fn single_thread_store_load() {
        let (machine, shared) = harness(1, Config::Intra(IntraConfig::Base), Transport::default());
        let (machine, stats, err) = run_threads(machine, shared, 1, |ctx| {
            let r = Region::new(WordAddr(16), 4);
            ctx.write(r, 0, 7);
            assert_eq!(ctx.read(r, 0), 7);
            ctx.compute(100);
            // Post the value so a fresh reader (peek) sees it.
            ctx.coh(hic_core::CohInstr::wb_all());
        });
        assert!(err.is_none());
        assert!(stats.total_cycles >= 100);
        assert_eq!(machine.peek_word(WordAddr(16)), 7);
    }

    #[test]
    fn threads_run_deterministically() {
        let run = |transport: Transport| {
            let (machine, shared) = harness(4, Config::Intra(IntraConfig::Base), transport);
            let mut m2 = machine;
            let b = m2.alloc_barrier(4);
            let shared2 = shared;
            let (_, stats, _) = run_threads(m2, shared2, 4, move |ctx| {
                let r = Region::new(WordAddr(16 * (1 + ctx.tid() as u64)), 4);
                for i in 0..4 {
                    ctx.write(r, i, (ctx.tid() as u32 + 1) * 10 + i as u32);
                }
                ctx.compute(ctx.tid() as u64 * 13);
                ctx.barrier(crate::ctx::BarrierId(b));
            });
            stats
        };
        let a = run(Transport::default());
        let b = run(Transport::default());
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "same program, same cycle count"
        );
        // And the batched transport must not change simulated results at
        // all relative to the synchronous one...
        let s = run(Transport::Sync);
        assert_eq!(a.total_cycles, s.total_cycles);
        assert_eq!(a.ledgers, s.ledgers);
        assert_eq!(a.traffic, s.traffic);
        // ...while actually saving host round-trips.
        assert!(a.engine.batches > 0, "batched run coalesced messages");
        assert!(a.engine.round_trips < s.engine.round_trips);
        assert_eq!(a.engine.ops_executed, s.engine.ops_executed);
        assert_eq!(s.engine.batches, 0);
    }

    #[test]
    fn schedulers_are_observationally_identical() {
        let run = |scheduler: Scheduler| {
            let shared = Arc::new(RtShared {
                config: Config::Intra(IntraConfig::Base),
                locks: Vec::new(),
                nthreads: 4,
                transport: Transport::default(),
                scheduler,
                checking: false,
                overrides: None,
                watchdog_cycles: None,
                watchdog_wall_ms: None,
            });
            let mut m2 = Machine::incoherent(MachineConfig::intra_block());
            let b = m2.alloc_barrier(4);
            let (_, stats, _) = run_threads(m2, shared, 4, move |ctx| {
                let r = Region::new(WordAddr(16 * (1 + ctx.tid() as u64)), 4);
                for i in 0..4 {
                    ctx.write(r, i, (ctx.tid() as u32 + 1) * 10 + i as u32);
                }
                ctx.compute(ctx.tid() as u64 * 13);
                ctx.barrier(crate::ctx::BarrierId(b));
            });
            stats
        };
        let heap = run(Scheduler::Heap);
        let linear = run(Scheduler::Linear);
        assert_eq!(heap.total_cycles, linear.total_cycles);
        assert_eq!(heap.ledgers, linear.ledgers);
        assert_eq!(heap.traffic, linear.traffic);
        assert_eq!(heap.engine.ops_executed, linear.engine.ops_executed);
    }

    #[test]
    fn engine_counts_wakeups_and_peak_parked() {
        let (machine, shared) = harness(4, Config::Intra(IntraConfig::Hcc), Transport::default());
        let mut m2 = machine;
        let b = m2.alloc_barrier(4);
        let (_, stats, _) = run_threads(m2, shared, 4, move |ctx| {
            ctx.compute(10 * (1 + ctx.tid() as u64));
            ctx.barrier_with(crate::ctx::BarrierId(b), crate::ctx::BarrierOpts::none());
        });
        // Three cores park at the barrier; the fourth arrival wakes them.
        assert_eq!(stats.engine.wakeups, 3);
        assert_eq!(stats.engine.peak_parked, 3);
    }

    #[test]
    fn missing_barrier_arrival_is_detected() {
        let (mut machine, shared) =
            harness(2, Config::Intra(IntraConfig::Hcc), Transport::default());
        let b = machine.alloc_barrier(3); // 3 participants, only 2 threads!
        let (_, _, err) = run_threads(machine, shared, 2, move |ctx| {
            ctx.barrier_with(crate::ctx::BarrierId(b), crate::ctx::BarrierOpts::none());
        });
        let Some(RunError::Deadlock { parked, .. }) = err else {
            unreachable!("expected a deadlock error, got {err:?}");
        };
        assert_eq!(parked.len(), 2, "both cores parked: {parked:?}");
    }

    #[test]
    fn deadlock_error_names_stall_categories_and_trace() {
        let (mut machine, shared) =
            harness(2, Config::Intra(IntraConfig::Hcc), Transport::default());
        machine.enable_trace(32);
        let b = machine.alloc_barrier(3);
        let (_, _, err) = run_threads(machine, shared, 2, move |ctx| {
            ctx.compute(5);
            ctx.barrier_with(crate::ctx::BarrierId(b), crate::ctx::BarrierOpts::none());
        });
        let msg = err.expect("must deadlock").to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(
            msg.contains("barrier stall"),
            "stall category missing: {msg}"
        );
        assert!(msg.contains("BarrierArrive"), "trace tail missing: {msg}");
    }

    #[test]
    fn cycle_watchdog_reports_hang() {
        let (machine, _) = harness(1, Config::Intra(IntraConfig::Base), Transport::default());
        let shared = Arc::new(RtShared {
            config: Config::Intra(IntraConfig::Base),
            locks: Vec::new(),
            nthreads: 1,
            transport: Transport::default(),
            scheduler: Scheduler::default(),
            checking: false,
            overrides: None,
            watchdog_cycles: Some(50),
            watchdog_wall_ms: None,
        });
        let (_, _, err) = run_threads(machine, shared, 1, |ctx| {
            for _ in 0..100 {
                ctx.compute(10);
            }
        });
        let Some(RunError::Hang { detail }) = err else {
            unreachable!("expected a hang error, got {err:?}");
        };
        assert!(detail.contains("budget"), "{detail}");
    }
}
