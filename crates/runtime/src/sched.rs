//! The conservative execution-driven scheduler.
//!
//! Each simulated thread runs on an OS thread and blocks after issuing
//! each op. The scheduler:
//!
//! 1. collects the pending op of every runnable core (blocking on the
//!    per-core channel — the thread is guaranteed to send one);
//! 2. executes the op of the core with the smallest local time (core id
//!    breaking ties), so machine transitions happen in global
//!    simulated-time order;
//! 3. delivers wakeups produced by synchronization grants immediately, so
//!    no core can act "in the past" of an already-executed transition.
//!
//! If every unfinished core is parked on synchronization, the program has
//! deadlocked; the scheduler panics with a diagnostic rather than hanging.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::Arc;

use hic_machine::{Exec, Machine, Op, RunStats};
use hic_mem::Word;
use hic_sim::{CoreId, Cycle};

use crate::ctx::{RtShared, ThreadCtx};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Must pull the next op from the thread.
    NeedsOp,
    /// Has a pending op, not yet executed.
    HasOp,
    /// Blocked inside the machine on a synchronization grant.
    Parked,
    /// Thread finished.
    Done,
}

/// Run `body` on `nthreads` simulated threads over `machine`.
/// Returns the machine (for result inspection) and the run statistics.
pub(crate) fn run_threads<F>(
    mut machine: Machine,
    shared: Arc<RtShared>,
    nthreads: usize,
    body: F,
) -> (Machine, RunStats)
where
    F: Fn(&ThreadCtx) + Send + Sync,
{
    assert!(nthreads >= 1);
    assert!(
        nthreads <= machine.config().num_cores(),
        "more threads ({nthreads}) than cores ({})",
        machine.config().num_cores()
    );

    let mut req_txs = Vec::with_capacity(nthreads);
    let mut req_rxs: Vec<Receiver<Op>> = Vec::with_capacity(nthreads);
    let mut reply_txs: Vec<Sender<Option<Word>>> = Vec::with_capacity(nthreads);
    let mut reply_rxs = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let (tx, rx) = unbounded::<Op>();
        req_txs.push(tx);
        req_rxs.push(rx);
        let (tx, rx) = bounded::<Option<Word>>(1);
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }

    let body = &body;
    std::thread::scope(move |scope| {
        // `req_txs`/`reply_txs` are moved INTO the scope closure so that a
        // scheduler panic (deadlock detection, app misuse) drops them
        // during unwinding; blocked app threads then observe channel
        // disconnection and exit, letting the scope join instead of
        // hanging.
        let mut req_txs = req_txs;
        let mut reply_rxs = reply_rxs;
        let reply_txs = reply_txs;
        let req_rxs = req_rxs;
        // Spawn the application threads.
        for (tid, (req, reply)) in req_txs.drain(..).zip(reply_rxs.drain(..)).enumerate() {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let ctx = ThreadCtx {
                    tid,
                    req,
                    reply,
                    shared,
                    pending_compute: std::cell::Cell::new(0),
                };
                body(&ctx);
                ctx.finish();
            });
        }

        // The scheduler runs on this thread.
        let mut state = vec![CoreState::NeedsOp; nthreads];
        let mut time: Vec<Cycle> = vec![0; nthreads];
        let mut pending: Vec<Option<Op>> = vec![None; nthreads];
        let mut done = 0usize;

        while done < nthreads {
            // 1. Every runnable core must present its op.
            for c in 0..nthreads {
                if state[c] == CoreState::NeedsOp {
                    let op = req_rxs[c].recv().expect("app thread died mid-run");
                    pending[c] = Some(op);
                    state[c] = CoreState::HasOp;
                }
            }
            // 2. Execute the earliest pending op.
            let next = (0..nthreads)
                .filter(|&c| state[c] == CoreState::HasOp)
                .min_by_key(|&c| (time[c], c));
            let c = match next {
                Some(c) => c,
                None => {
                    let parked: Vec<usize> = (0..nthreads)
                        .filter(|&c| state[c] == CoreState::Parked)
                        .collect();
                    panic!(
                        "deadlock: no runnable core; parked cores: {parked:?} \
                         (a barrier is missing an arrival, or a lock is never released)"
                    );
                }
            };
            let op = pending[c].take().expect("HasOp implies a pending op");
            match machine.execute(CoreId(c), &op, time[c]) {
                Exec::Done { value, end } => {
                    time[c] = end;
                    if matches!(op, Op::Finish) {
                        state[c] = CoreState::Done;
                        done += 1;
                    } else {
                        reply_txs[c].send(value).expect("app thread died");
                        state[c] = CoreState::NeedsOp;
                    }
                }
                Exec::Parked => {
                    state[c] = CoreState::Parked;
                }
            }
            // 3. Deliver wakeups immediately.
            for wk in machine.take_wakeups() {
                let i = wk.core.0;
                debug_assert_eq!(state[i], CoreState::Parked);
                time[i] = wk.at;
                reply_txs[i].send(None).expect("app thread died");
                state[i] = CoreState::NeedsOp;
            }
        }
        let stats = machine.finish();
        (machine, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, IntraConfig};
    use hic_mem::{Region, WordAddr};
    use hic_sim::MachineConfig;

    fn harness(nthreads: usize, cfg: Config) -> (Machine, Arc<RtShared>) {
        let machine = if cfg.is_coherent() {
            Machine::coherent(MachineConfig::intra_block())
        } else {
            Machine::incoherent(MachineConfig::intra_block())
        };
        let shared = Arc::new(RtShared { config: cfg, locks: Vec::new(), nthreads });
        (machine, shared)
    }

    #[test]
    fn single_thread_store_load() {
        let (machine, shared) = harness(1, Config::Intra(IntraConfig::Base));
        let (machine, stats) = run_threads(machine, shared, 1, |ctx| {
            let r = Region::new(WordAddr(16), 4);
            ctx.write(r, 0, 7);
            assert_eq!(ctx.read(r, 0), 7);
            ctx.compute(100);
            // Post the value so a fresh reader (peek) sees it.
            ctx.coh(hic_core::CohInstr::wb_all());
        });
        assert!(stats.total_cycles >= 100);
        assert_eq!(machine.peek_word(WordAddr(16)), 7);
    }

    #[test]
    fn threads_run_deterministically() {
        let run = || {
            let (machine, shared) = harness(4, Config::Intra(IntraConfig::Base));
            let mut m2 = machine;
            let b = m2.alloc_barrier(4);
            let shared2 = shared;
            let (_, stats) = run_threads(m2, shared2, 4, move |ctx| {
                let r = Region::new(WordAddr(16 * (1 + ctx.tid() as u64)), 4);
                for i in 0..4 {
                    ctx.write(r, i, (ctx.tid() as u32 + 1) * 10 + i as u32);
                }
                ctx.compute(ctx.tid() as u64 * 13);
                ctx.barrier(crate::ctx::BarrierId(b));
            });
            stats.total_cycles
        };
        assert_eq!(run(), run(), "same program, same cycle count");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_barrier_arrival_is_detected() {
        let (mut machine, shared) = harness(2, Config::Intra(IntraConfig::Hcc));
        let b = machine.alloc_barrier(3); // 3 participants, only 2 threads!
        run_threads(machine, shared, 2, move |ctx| {
            ctx.barrier_private(crate::ctx::BarrierId(b));
        });
    }
}
