//! The configurations evaluated in the paper (Table II).

use hic_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// Intra-block configurations (upper half of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraConfig {
    /// Hardware cache coherence (directory MESI).
    Hcc,
    /// Baseline: WB ALL and INV ALL around every synchronization.
    Base,
    /// Base plus the MEB (critical sections drain via the MEB).
    BM,
    /// Base plus the IEB (critical sections skip the up-front INV ALL).
    BI,
    /// Base plus both buffers.
    BMI,
}

impl IntraConfig {
    pub const ALL: [IntraConfig; 5] = [
        IntraConfig::Hcc,
        IntraConfig::Base,
        IntraConfig::BM,
        IntraConfig::BI,
        IntraConfig::BMI,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IntraConfig::Hcc => "HCC",
            IntraConfig::Base => "Base",
            IntraConfig::BM => "B+M",
            IntraConfig::BI => "B+I",
            IntraConfig::BMI => "B+M+I",
        }
    }

    pub fn uses_meb(self) -> bool {
        matches!(self, IntraConfig::BM | IntraConfig::BMI)
    }

    pub fn uses_ieb(self) -> bool {
        matches!(self, IntraConfig::BI | IntraConfig::BMI)
    }

    pub fn is_coherent(self) -> bool {
        self == IntraConfig::Hcc
    }
}

/// Inter-block configurations (lower half of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterConfig {
    /// Hardware cache coherence (hierarchical directory MESI).
    Hcc,
    /// Baseline: WB ALL to L3 and INV ALL from L2 at every epoch boundary.
    Base,
    /// WB of specific addresses to L3; INV of specific addresses from L2.
    Addr,
    /// Level-adaptive WB_CONS and INV_PROD.
    AddrL,
}

impl InterConfig {
    pub const ALL: [InterConfig; 4] = [
        InterConfig::Hcc,
        InterConfig::Base,
        InterConfig::Addr,
        InterConfig::AddrL,
    ];

    pub fn name(self) -> &'static str {
        match self {
            InterConfig::Hcc => "HCC",
            InterConfig::Base => "Base",
            InterConfig::Addr => "Addr",
            InterConfig::AddrL => "Addr+L",
        }
    }

    pub fn is_coherent(self) -> bool {
        self == InterConfig::Hcc
    }
}

/// A fully-specified run configuration: machine shape + management scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Config {
    Intra(IntraConfig),
    Inter(InterConfig),
}

impl Config {
    pub fn name(self) -> &'static str {
        match self {
            Config::Intra(c) => c.name(),
            Config::Inter(c) => c.name(),
        }
    }

    pub fn is_coherent(self) -> bool {
        match self {
            Config::Intra(c) => c.is_coherent(),
            Config::Inter(c) => c.is_coherent(),
        }
    }

    /// The machine this configuration runs on.
    pub fn machine_config(self) -> MachineConfig {
        match self {
            Config::Intra(_) => MachineConfig::intra_block(),
            Config::Inter(_) => MachineConfig::inter_block(),
        }
    }

    /// Number of hardware threads (= cores) available.
    pub fn num_threads(self) -> usize {
        self.machine_config().num_cores()
    }

    pub fn intra(self) -> Option<IntraConfig> {
        match self {
            Config::Intra(c) => Some(c),
            _ => None,
        }
    }

    pub fn inter(self) -> Option<InterConfig> {
        match self {
            Config::Inter(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_names() {
        let intra: Vec<_> = IntraConfig::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(intra, ["HCC", "Base", "B+M", "B+I", "B+M+I"]);
        let inter: Vec<_> = InterConfig::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(inter, ["HCC", "Base", "Addr", "Addr+L"]);
    }

    #[test]
    fn buffer_usage_per_config() {
        assert!(!IntraConfig::Base.uses_meb());
        assert!(IntraConfig::BM.uses_meb());
        assert!(!IntraConfig::BM.uses_ieb());
        assert!(IntraConfig::BI.uses_ieb());
        assert!(IntraConfig::BMI.uses_meb() && IntraConfig::BMI.uses_ieb());
        assert!(!IntraConfig::Hcc.uses_meb() && !IntraConfig::Hcc.uses_ieb());
    }

    #[test]
    fn machine_shapes() {
        assert_eq!(Config::Intra(IntraConfig::Base).num_threads(), 16);
        assert_eq!(Config::Inter(InterConfig::Base).num_threads(), 32);
        assert!(Config::Intra(IntraConfig::Hcc).is_coherent());
        assert!(!Config::Inter(InterConfig::AddrL).is_coherent());
    }
}
