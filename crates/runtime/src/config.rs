//! The configurations evaluated in the paper (Table II), plus the
//! machine topology they run on.
//!
//! A [`Config`] pairs a coherence-management *scheme* (which protocol or
//! WB/INV discipline the run uses) with a validated [`Topology`] (the
//! machine's geometry). The paper's two shapes are the defaults —
//! `Config::Intra(..)` runs on the 16-core single block,
//! `Config::Inter(..)` on 4 blocks × 8 cores — and
//! [`Config::with_topology`] retargets a scheme onto any other validated
//! geometry (the sweep behind `bench_host --geometry`).

use hic_sim::{ConfigError, MachineConfig, Topology};
use serde::{Deserialize, Serialize};

/// Intra-block configurations (upper half of Table II), plus the
/// update-based Dragon protocol from the extended protocol zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraConfig {
    /// Hardware cache coherence (directory MESI).
    Hcc,
    /// Hardware cache coherence, update-based (directory Dragon).
    /// Not part of Table II — excluded from [`IntraConfig::ALL`].
    Dragon,
    /// Baseline: WB ALL and INV ALL around every synchronization.
    Base,
    /// Base plus the MEB (critical sections drain via the MEB).
    BM,
    /// Base plus the IEB (critical sections skip the up-front INV ALL).
    BI,
    /// Base plus both buffers.
    BMI,
}

impl IntraConfig {
    /// The five Table II configurations (Dragon is an extension and is
    /// swept separately).
    pub const ALL: [IntraConfig; 5] = [
        IntraConfig::Hcc,
        IntraConfig::Base,
        IntraConfig::BM,
        IntraConfig::BI,
        IntraConfig::BMI,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IntraConfig::Hcc => "HCC",
            IntraConfig::Dragon => "Dragon",
            IntraConfig::Base => "Base",
            IntraConfig::BM => "B+M",
            IntraConfig::BI => "B+I",
            IntraConfig::BMI => "B+M+I",
        }
    }

    pub fn uses_meb(self) -> bool {
        matches!(self, IntraConfig::BM | IntraConfig::BMI)
    }

    pub fn uses_ieb(self) -> bool {
        matches!(self, IntraConfig::BI | IntraConfig::BMI)
    }

    pub fn is_coherent(self) -> bool {
        matches!(self, IntraConfig::Hcc | IntraConfig::Dragon)
    }
}

/// Inter-block configurations (lower half of Table II), plus Dragon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterConfig {
    /// Hardware cache coherence (hierarchical directory MESI).
    Hcc,
    /// Hardware cache coherence, update-based (hierarchical Dragon).
    /// Not part of Table II — excluded from [`InterConfig::ALL`].
    Dragon,
    /// Baseline: WB ALL to L3 and INV ALL from L2 at every epoch boundary.
    Base,
    /// WB of specific addresses to L3; INV of specific addresses from L2.
    Addr,
    /// Level-adaptive WB_CONS and INV_PROD.
    AddrL,
}

impl InterConfig {
    /// The four Table II configurations (Dragon is an extension and is
    /// swept separately).
    pub const ALL: [InterConfig; 4] = [
        InterConfig::Hcc,
        InterConfig::Base,
        InterConfig::Addr,
        InterConfig::AddrL,
    ];

    pub fn name(self) -> &'static str {
        match self {
            InterConfig::Hcc => "HCC",
            InterConfig::Dragon => "Dragon",
            InterConfig::Base => "Base",
            InterConfig::Addr => "Addr",
            InterConfig::AddrL => "Addr+L",
        }
    }

    pub fn is_coherent(self) -> bool {
        matches!(self, InterConfig::Hcc | InterConfig::Dragon)
    }
}

/// The coherence-management scheme of a run: which half of Table II it
/// belongs to and which row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    Intra(IntraConfig),
    Inter(InterConfig),
}

impl Scheme {
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Intra(c) => c.name(),
            Scheme::Inter(c) => c.name(),
        }
    }

    pub fn is_coherent(self) -> bool {
        match self {
            Scheme::Intra(c) => c.is_coherent(),
            Scheme::Inter(c) => c.is_coherent(),
        }
    }

    pub fn is_dragon(self) -> bool {
        matches!(
            self,
            Scheme::Intra(IntraConfig::Dragon) | Scheme::Inter(InterConfig::Dragon)
        )
    }
}

/// A fully-specified run configuration: management scheme + machine
/// topology.
///
/// The associated functions [`Config::Intra`] and [`Config::Inter`]
/// construct the paper's configurations on the paper's shapes, so the
/// historical `Config::Intra(IntraConfig::Base)` expression keeps
/// working; matching on the scheme goes through [`Config::scheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    scheme: Scheme,
    topology: Topology,
}

impl Config {
    /// An intra-block scheme on the paper's single-block topology
    /// (1 block × 16 cores, Table III).
    #[allow(non_snake_case)] // constructor: reads as the old enum variant
    pub fn Intra(c: IntraConfig) -> Config {
        Config {
            scheme: Scheme::Intra(c),
            topology: Topology::intra_block(),
        }
    }

    /// An inter-block scheme on the paper's hierarchical topology
    /// (4 blocks × 8 cores + shared L3, Table III).
    #[allow(non_snake_case)] // constructor: reads as the old enum variant
    pub fn Inter(c: InterConfig) -> Config {
        Config {
            scheme: Scheme::Inter(c),
            topology: Topology::inter_block(),
        }
    }

    /// Retarget this scheme onto another validated topology. Fails with
    /// [`ConfigError::SchemeMismatch`] when the scheme's hierarchy
    /// assumption disagrees with the shape: intra-block schemes need a
    /// single block, inter-block schemes need a hierarchical machine.
    pub fn with_topology(self, topology: Topology) -> Result<Config, ConfigError> {
        let hierarchical = matches!(self.scheme, Scheme::Inter(_));
        if topology.is_hierarchical() != hierarchical {
            return Err(ConfigError::SchemeMismatch {
                scheme: self.scheme.name(),
                blocks: topology.blocks(),
            });
        }
        Ok(Config {
            scheme: self.scheme,
            topology,
        })
    }

    pub fn scheme(self) -> Scheme {
        self.scheme
    }

    pub fn topology(self) -> Topology {
        self.topology
    }

    pub fn name(self) -> &'static str {
        self.scheme.name()
    }

    pub fn is_coherent(self) -> bool {
        self.scheme.is_coherent()
    }

    pub fn is_dragon(self) -> bool {
        self.scheme.is_dragon()
    }

    /// The machine this configuration runs on.
    pub fn machine_config(self) -> MachineConfig {
        MachineConfig::with_topology(self.topology)
    }

    /// Number of hardware threads (= cores) available.
    pub fn num_threads(self) -> usize {
        self.topology.num_cores()
    }

    pub fn intra(self) -> Option<IntraConfig> {
        match self.scheme {
            Scheme::Intra(c) => Some(c),
            _ => None,
        }
    }

    pub fn inter(self) -> Option<InterConfig> {
        match self.scheme {
            Scheme::Inter(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_sim::TopologyBuilder;

    #[test]
    fn table2_names() {
        let intra: Vec<_> = IntraConfig::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(intra, ["HCC", "Base", "B+M", "B+I", "B+M+I"]);
        let inter: Vec<_> = InterConfig::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(inter, ["HCC", "Base", "Addr", "Addr+L"]);
    }

    #[test]
    fn dragon_is_an_extension_not_a_table2_row() {
        assert!(!IntraConfig::ALL.contains(&IntraConfig::Dragon));
        assert!(!InterConfig::ALL.contains(&InterConfig::Dragon));
        assert!(IntraConfig::Dragon.is_coherent());
        assert!(Config::Intra(IntraConfig::Dragon).is_dragon());
        assert!(Config::Inter(InterConfig::Dragon).is_dragon());
        assert!(!Config::Intra(IntraConfig::Hcc).is_dragon());
    }

    #[test]
    fn buffer_usage_per_config() {
        assert!(!IntraConfig::Base.uses_meb());
        assert!(IntraConfig::BM.uses_meb());
        assert!(!IntraConfig::BM.uses_ieb());
        assert!(IntraConfig::BI.uses_ieb());
        assert!(IntraConfig::BMI.uses_meb() && IntraConfig::BMI.uses_ieb());
        assert!(!IntraConfig::Hcc.uses_meb() && !IntraConfig::Hcc.uses_ieb());
    }

    #[test]
    fn machine_shapes() {
        assert_eq!(Config::Intra(IntraConfig::Base).num_threads(), 16);
        assert_eq!(Config::Inter(InterConfig::Base).num_threads(), 32);
        assert!(Config::Intra(IntraConfig::Hcc).is_coherent());
        assert!(!Config::Inter(InterConfig::AddrL).is_coherent());
    }

    #[test]
    fn with_topology_retargets_matching_shapes() {
        let eight_by_eight = TopologyBuilder::new(8, 8).validate().unwrap();
        let c = Config::Inter(InterConfig::Base)
            .with_topology(eight_by_eight)
            .unwrap();
        assert_eq!(c.num_threads(), 64);
        assert_eq!(c.name(), "Base");
        let flat = TopologyBuilder::new(1, 4).validate().unwrap();
        let c = Config::Intra(IntraConfig::BMI).with_topology(flat).unwrap();
        assert_eq!(c.num_threads(), 4);
    }

    #[test]
    fn with_topology_rejects_scheme_mismatch() {
        let flat = TopologyBuilder::new(1, 4).validate().unwrap();
        let err = Config::Inter(InterConfig::Base)
            .with_topology(flat)
            .unwrap_err();
        assert!(matches!(err, ConfigError::SchemeMismatch { blocks: 1, .. }));
        let hier = TopologyBuilder::new(2, 4).validate().unwrap();
        let err = Config::Intra(IntraConfig::Base)
            .with_topology(hier)
            .unwrap_err();
        assert!(matches!(err, ConfigError::SchemeMismatch { blocks: 2, .. }));
    }
}
