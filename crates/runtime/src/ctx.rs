//! The thread-side API: every memory access and synchronization of a
//! simulated application goes through a [`ThreadCtx`].
//!
//! The context translates high-level events (barrier, lock, flag,
//! epoch-boundary plans) into the op sequence mandated by the active
//! configuration — this is where the paper's annotation methodology
//! (§IV-A, §V-A) lives:
//!
//! * barriers: `WB ALL` before, `INV ALL` after (incoherent configs);
//! * critical sections: `[WB ALL if OCC]`, `INV ALL` *before* the acquire,
//!   `WB ALL` before the release, `[INV ALL after release if OCC]`, with
//!   the MEB / IEB replacing the critical-section `ALL` operations under
//!   `B+M` / `B+I`;
//! * flags: `WB ALL` before a set, `INV ALL` after a completed wait;
//! * data races: per-word WB / INV around the racy accesses (Figure 6);
//! * model-2 epoch plans: global or level-adaptive WB/INV per Table II.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use hic_core::{CohInstr, Target};
use hic_machine::{Op, RunError};
use hic_mem::{f32_to_word, word_to_f32, Region, Word, WordAddr};
use hic_sim::{Cycle, ThreadId};
use hic_sync::SyncId;

use crate::config::{Config, InterConfig, Scheme};
use crate::engine::{EngineShared, Scheduler, Transport};
use crate::plan::{EpochPlan, PlanOverrides};

/// What data a synchronization operation moves on one side (the WB half
/// before the sync, or the INV half after it).
#[derive(Debug, Clone, Copy, Default)]
pub enum SyncData<'a> {
    /// Conservative default: everything (`WB ALL` / `INV ALL` flavors,
    /// §IV-A1).
    #[default]
    All,
    /// Nothing to move on this side (thread-private phase change, or the
    /// data travels through another mechanism such as epoch plans).
    None,
    /// Only these regions ("the programmer can often provide information
    /// to reduce WB and INV operations", §IV-A1).
    Regions(&'a [Region]),
}

/// Data-movement options for [`ThreadCtx::barrier_with`] — the single
/// choke point through which every barrier flavor passes, so tooling (the
/// `hic-check` sanitizer in particular) sees one sync primitive with
/// explicit carried WB/INV hints rather than three ad-hoc entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct BarrierOpts<'a> {
    /// Writeback carried *before* the arrival (producer side).
    pub wb: SyncData<'a>,
    /// Invalidation carried *after* the release (consumer side).
    pub inv: SyncData<'a>,
}

impl BarrierOpts<'static> {
    /// The model-1 default: `WB ALL` before, `INV ALL` after.
    pub fn all() -> Self {
        BarrierOpts {
            wb: SyncData::All,
            inv: SyncData::All,
        }
    }

    /// Pure ordering, no data movement on either side.
    pub fn none() -> Self {
        BarrierOpts {
            wb: SyncData::None,
            inv: SyncData::None,
        }
    }
}

impl<'a> BarrierOpts<'a> {
    /// Region-hinted movement; `None` on a side means "nothing to move".
    pub fn hinted(wb: Option<&'a [Region]>, inv: Option<&'a [Region]>) -> BarrierOpts<'a> {
        let side = |o: Option<&'a [Region]>| match o {
            Some(rs) => SyncData::Regions(rs),
            None => SyncData::None,
        };
        BarrierOpts {
            wb: side(wb),
            inv: side(inv),
        }
    }
}

/// Data-movement options for [`ThreadCtx::flag_set_opts`] /
/// [`ThreadCtx::flag_wait_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagOpts {
    /// `true` skips the carried `WB ALL` / `INV ALL` annotations: the raw
    /// synchronization primitive. The sync still *orders* the threads —
    /// which is exactly the bug pattern `examples/staleness.rs`
    /// demonstrates and the sanitizer detects.
    pub raw: bool,
}

impl FlagOpts {
    /// The model-1 default: annotations carried.
    pub fn annotated() -> FlagOpts {
        FlagOpts { raw: false }
    }

    /// No data movement, ordering only.
    pub fn raw() -> FlagOpts {
        FlagOpts { raw: true }
    }
}

/// Handle to a barrier declared on the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierId(pub(crate) SyncId);

/// Handle to a lock declared on the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockId(pub(crate) usize);

/// Handle to a condition flag declared on the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagId(pub(crate) SyncId);

#[derive(Debug, Clone, Copy)]
pub(crate) struct LockInfo {
    pub id: SyncId,
    /// Does this lock guard a pattern with Outside-Critical-section
    /// Communication (§IV-A1, Figure 4d)? Unless the programmer states
    /// otherwise, the model must assume it does.
    pub occ: bool,
}

/// Immutable state shared by all thread contexts of one run.
pub(crate) struct RtShared {
    pub config: Config,
    pub locks: Vec<LockInfo>,
    pub nthreads: usize,
    pub transport: Transport,
    pub scheduler: Scheduler,
    /// The incoherence sanitizer is attached: racy accessors emit
    /// `Op::MarkRacy` hints ahead of themselves (zero simulated cost,
    /// and never emitted when checking is off).
    pub checking: bool,
    /// Per-call-site plan substitutions (`hic-lint` optimizer output).
    pub overrides: Option<Arc<PlanOverrides>>,
    /// Watchdog: fail the run with [`RunError::Hang`] once any core's
    /// simulated clock exceeds this budget.
    pub watchdog_cycles: Option<Cycle>,
    /// Watchdog: fail the run with [`RunError::Hang`] once this much
    /// host wall-clock time has elapsed.
    pub watchdog_wall_ms: Option<u64>,
}

/// The per-thread handle applications program against.
pub struct ThreadCtx {
    tid: usize,
    engine: Arc<EngineShared>,
    shared: Arc<RtShared>,
    /// Compute cycles accumulated by [`ThreadCtx::tick`], flushed as one
    /// `Op::Compute` before the next real operation.
    pending_compute: Cell<u64>,
    /// Batchable ops coalesced since the last flush (empty under
    /// [`Transport::Sync`]); shipped as one `Op::Batch` message.
    batch: RefCell<Vec<Op>>,
    /// Set by [`ThreadCtx::finish`]; a context dropped without it means
    /// the app thread died (panicked) mid-run.
    finished: Cell<bool>,
    /// Number of [`ThreadCtx::plan_wb`] calls issued so far — the call
    /// *site* index plan overrides are keyed by.
    wb_sites: Cell<usize>,
    /// Number of [`ThreadCtx::plan_inv`] calls issued so far.
    inv_sites: Cell<usize>,
}

impl ThreadCtx {
    pub(crate) fn new(tid: usize, engine: Arc<EngineShared>, shared: Arc<RtShared>) -> ThreadCtx {
        ThreadCtx {
            tid,
            engine,
            shared,
            pending_compute: Cell::new(0),
            batch: RefCell::new(Vec::new()),
            finished: Cell::new(false),
            wb_sites: Cell::new(0),
            inv_sites: Cell::new(0),
        }
    }

    /// This thread's id (= its core id; one-to-one mapping, no migration).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Total number of threads in the run.
    pub fn nthreads(&self) -> usize {
        self.shared.nthreads
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.shared.config
    }

    fn coherent(&self) -> bool {
        self.shared.config.is_coherent()
    }

    /// Batch capacity of the active transport (0 = send everything
    /// synchronously).
    fn batch_cap(&self) -> usize {
        self.shared.transport.batch_cap()
    }

    /// Turn accumulated [`ThreadCtx::tick`] cycles into a `Compute` op.
    fn flush_compute(&self) {
        let pending = self.pending_compute.replace(0);
        if pending > 0 {
            self.dispatch(Op::Compute(pending));
        }
    }

    /// Ship the coalesced batch (if any) as one message. Batch members
    /// return no values, so the thread does not wait for a reply.
    fn flush_batch(&self) {
        let ops = std::mem::take(&mut *self.batch.borrow_mut());
        if !ops.is_empty() {
            self.engine.submit(self.tid, Op::Batch(ops));
        }
    }

    /// Route one op through the active transport: coalesce it if it is
    /// batchable, otherwise submit it on its own and drive the engine
    /// until its reply is produced.
    fn dispatch(&self, op: Op) -> Option<Word> {
        let cap = self.batch_cap();
        if cap > 0 && op.is_batchable() {
            let mut batch = self.batch.borrow_mut();
            batch.push(op);
            if batch.len() >= cap {
                drop(batch);
                self.flush_batch();
            }
            None
        } else {
            self.flush_batch();
            self.engine.submit_await(self.tid, op)
        }
    }

    /// Issue one op in program order (preceded by any deferred compute).
    fn issue(&self, op: Op) -> Option<Word> {
        self.flush_compute();
        self.dispatch(op)
    }

    /// Accumulate `cycles` of modeled computation cheaply; merged into a
    /// single `Compute` op immediately before the next real operation.
    /// Use this for per-element arithmetic costs in inner loops.
    pub fn tick(&self, cycles: u64) {
        self.pending_compute
            .set(self.pending_compute.get() + cycles);
    }

    // ------------------------------------------------------------------
    // Data accesses
    // ------------------------------------------------------------------

    /// Load a word.
    pub fn load(&self, w: WordAddr) -> Word {
        self.issue(Op::Load(w)).expect("load returns a value")
    }

    /// Store a word.
    pub fn store(&self, w: WordAddr, v: Word) {
        self.issue(Op::Store(w, v));
    }

    /// Load element `i` of a region.
    pub fn read(&self, r: Region, i: u64) -> Word {
        self.load(r.at(i))
    }

    /// Store element `i` of a region.
    pub fn write(&self, r: Region, i: u64, v: Word) {
        self.store(r.at(i), v)
    }

    /// Load element `i` of a region as `f32`.
    pub fn read_f32(&self, r: Region, i: u64) -> f32 {
        word_to_f32(self.read(r, i))
    }

    /// Store element `i` of a region as `f32`.
    pub fn write_f32(&self, r: Region, i: u64, v: f32) {
        self.write(r, i, f32_to_word(v))
    }

    /// Uncacheable load: served by the shared cache level, never
    /// allocated in the L1 (used by the MPI library, §IV).
    pub fn load_unc(&self, w: WordAddr) -> Word {
        self.issue(Op::LoadUnc(w)).expect("load returns a value")
    }

    /// Uncacheable store (see [`ThreadCtx::load_unc`]).
    pub fn store_unc(&self, w: WordAddr, v: Word) {
        self.issue(Op::StoreUnc(w, v));
    }

    /// Model `cycles` of pure computation.
    pub fn compute(&self, cycles: u64) {
        if cycles > 0 {
            self.issue(Op::Compute(cycles));
        }
    }

    /// Issue a raw coherence-management instruction (escape hatch for
    /// programmer-refined annotations; no-op under HCC).
    pub fn coh(&self, instr: CohInstr) {
        if !self.coherent() {
            self.issue(Op::Coh(instr));
        }
    }

    // ------------------------------------------------------------------
    // Racy accesses (Figure 6)
    // ------------------------------------------------------------------

    /// Store that must become globally visible despite racing (the write
    /// side of Figure 6b): store + per-word WB.
    pub fn racy_store(&self, w: WordAddr, v: Word) {
        if self.shared.checking {
            self.issue(Op::MarkRacy(w));
        }
        self.store(w, v);
        if !self.coherent() {
            self.issue(Op::Coh(CohInstr::wb(Target::word(w))));
        }
    }

    /// Load that must observe remote updates despite racing (the read side
    /// of Figure 6b): per-word INV + load.
    pub fn racy_load(&self, w: WordAddr) -> Word {
        if self.shared.checking {
            self.issue(Op::MarkRacy(w));
        }
        if !self.coherent() {
            self.issue(Op::Coh(CohInstr::inv(Target::word(w))));
        }
        self.load(w)
    }

    // ------------------------------------------------------------------
    // Synchronization with automatic annotation (programming model 1)
    // ------------------------------------------------------------------

    /// Global barrier with explicit data-movement options — the single
    /// entry point every barrier flavor reduces to.
    ///
    /// Under incoherent configurations the WB side issues immediately
    /// before the arrival and the INV side immediately after the release
    /// (§IV-A1); both operate globally (to L3 / from L2) on the
    /// inter-block machine. Coherent (HCC) runs ignore the options:
    /// hardware moves the data.
    pub fn barrier_with(&self, b: BarrierId, opts: BarrierOpts<'_>) {
        if self.coherent() {
            self.issue(Op::BarrierArrive(b.0));
            return;
        }
        let inter = matches!(self.shared.config.scheme(), Scheme::Inter(_));
        match opts.wb {
            SyncData::All => {
                // All incoherent inter configs communicate cross-block at
                // barriers conservatively; Addr/Addr+L refine *epoch* data
                // movement via plans, not the barrier-global semantics.
                self.issue(Op::Coh(if inter {
                    CohInstr::wb_l3(Target::All)
                } else {
                    CohInstr::wb_all()
                }));
            }
            SyncData::None => {}
            SyncData::Regions(regions) => {
                for &r in regions {
                    let t = Target::range(r);
                    self.issue(Op::Coh(if inter {
                        CohInstr::wb_l3(t)
                    } else {
                        CohInstr::wb(t)
                    }));
                }
            }
        }
        self.issue(Op::BarrierArrive(b.0));
        match opts.inv {
            SyncData::All => {
                self.issue(Op::Coh(if inter {
                    CohInstr::inv_l2(Target::All)
                } else {
                    CohInstr::inv_all()
                }));
            }
            SyncData::None => {}
            SyncData::Regions(regions) => {
                for &r in regions {
                    let t = Target::range(r);
                    self.issue(Op::Coh(if inter {
                        CohInstr::inv_l2(t)
                    } else {
                        CohInstr::inv(t)
                    }));
                }
            }
        }
    }

    /// Global barrier with the default annotations: `WB ALL` immediately
    /// before, `INV ALL` immediately after (§IV-A1). Sugar for
    /// [`ThreadCtx::barrier_with`] with [`BarrierOpts::all`].
    pub fn barrier(&self, b: BarrierId) {
        self.barrier_with(b, BarrierOpts::all());
    }

    /// Barrier carrying only the hinted regions (PR 3 API).
    #[deprecated(
        since = "0.1.0",
        note = "use `barrier_with(b, BarrierOpts::hinted(wb, inv))`"
    )]
    pub fn barrier_hinted(&self, b: BarrierId, wb: Option<&[Region]>, inv: Option<&[Region]>) {
        self.barrier_with(b, BarrierOpts::hinted(wb, inv));
    }

    /// Barrier carrying no data movement at all (PR 3 API).
    #[deprecated(since = "0.1.0", note = "use `barrier_with(b, BarrierOpts::none())`")]
    pub fn barrier_private(&self, b: BarrierId) {
        self.barrier_with(b, BarrierOpts::none());
    }

    /// Acquire a lock, inserting the critical-section annotations of the
    /// active configuration.
    pub fn lock(&self, l: LockId) {
        let info = self.shared.locks[l.0];
        if self.coherent() {
            // HCC and Dragon: hardware moves the data.
            self.issue(Op::LockAcquire(info.id));
            return;
        }
        match self.shared.config.scheme() {
            Scheme::Intra(cfg) => {
                if info.occ {
                    // Post everything written since the last full WB so
                    // consumers of outside-critical-section data see it.
                    self.issue(Op::Coh(CohInstr::wb_all()));
                }
                if cfg.uses_ieb() {
                    // Lazy invalidation: first reads inside the critical
                    // section refresh on demand.
                    self.issue(Op::IebBegin);
                } else {
                    // INV placed immediately *before* the acquire to keep
                    // the critical section short (§IV-A1).
                    self.issue(Op::Coh(CohInstr::inv_all()));
                }
                self.issue(Op::LockAcquire(info.id));
                if cfg.uses_meb() {
                    self.issue(Op::MebBegin);
                }
            }
            Scheme::Inter(_) => {
                if info.occ {
                    self.issue(Op::Coh(CohInstr::wb_l3(Target::All)));
                }
                self.issue(Op::LockAcquire(info.id));
                // Unlike the intra-block case, the INV must come *after*
                // the acquire: INV_L2 drops lines from the *shared* L2,
                // and same-block peers can legitimately re-fill it with
                // then-fresh (later stale) lines while this core waits in
                // the lock queue. The paper's "INV immediately before the
                // acquire" optimization (§IV-A1) relies on the invalidated
                // cache being private, which only holds for the L1.
                self.issue(Op::Coh(CohInstr::inv_l2(Target::All)));
            }
        }
    }

    /// Release a lock, inserting the exit annotations.
    pub fn unlock(&self, l: LockId) {
        let info = self.shared.locks[l.0];
        if self.coherent() {
            self.issue(Op::LockRelease(info.id));
            return;
        }
        match self.shared.config.scheme() {
            Scheme::Intra(cfg) => {
                if cfg.uses_ieb() {
                    self.issue(Op::IebEnd);
                }
                // Post the critical section's writes (served by the MEB
                // under B+M, since recording started at the acquire).
                self.issue(Op::Coh(CohInstr::wb_all()));
                self.issue(Op::LockRelease(info.id));
                if info.occ {
                    // Prepare to consume data produced outside earlier
                    // holders' critical sections.
                    self.issue(Op::Coh(CohInstr::inv_all()));
                }
            }
            Scheme::Inter(_) => {
                self.issue(Op::Coh(CohInstr::wb_l3(Target::All)));
                self.issue(Op::LockRelease(info.id));
                if info.occ {
                    self.issue(Op::Coh(CohInstr::inv_l2(Target::All)));
                }
            }
        }
    }

    /// Set a condition flag — the single entry point for both the
    /// annotated and raw variants. With `raw: false`, a `WB ALL` issues
    /// first so the waiter sees everything written before the set
    /// (§IV-A1, Figure 4c); with `raw: true` the set only orders.
    pub fn flag_set_opts(&self, f: FlagId, opts: FlagOpts) {
        if !opts.raw && !self.coherent() {
            let instr = match self.shared.config.scheme() {
                Scheme::Inter(_) => CohInstr::wb_l3(Target::All),
                _ => CohInstr::wb_all(),
            };
            self.issue(Op::Coh(instr));
        }
        self.issue(Op::FlagSet(f.0));
    }

    /// Wait for a condition flag. With `raw: false`, an `INV ALL` issues
    /// after the wait completes so subsequent reads see the producer's
    /// data; with `raw: true` the wait only orders.
    pub fn flag_wait_opts(&self, f: FlagId, opts: FlagOpts) {
        self.issue(Op::FlagWait(f.0));
        if !opts.raw && !self.coherent() {
            let instr = match self.shared.config.scheme() {
                Scheme::Inter(_) => CohInstr::inv_l2(Target::All),
                _ => CohInstr::inv_all(),
            };
            self.issue(Op::Coh(instr));
        }
    }

    /// Set a condition flag with the default annotations. Sugar for
    /// [`ThreadCtx::flag_set_opts`] with [`FlagOpts::annotated`].
    pub fn flag_set(&self, f: FlagId) {
        self.flag_set_opts(f, FlagOpts::annotated());
    }

    /// Wait for a condition flag with the default annotations. Sugar for
    /// [`ThreadCtx::flag_wait_opts`] with [`FlagOpts::annotated`].
    pub fn flag_wait(&self, f: FlagId) {
        self.flag_wait_opts(f, FlagOpts::annotated());
    }

    /// Clear a condition flag (no data movement implied).
    pub fn flag_clear(&self, f: FlagId) {
        self.issue(Op::FlagClear(f.0));
    }

    // ------------------------------------------------------------------
    // Epoch plans (programming model 2)
    // ------------------------------------------------------------------

    /// Execute the write-back half of an epoch plan (call at the *end* of
    /// a producing epoch, before the synchronization). When the builder
    /// installed [`PlanOverrides`], the override for this call site (if
    /// any) is issued instead of `plan`.
    pub fn plan_wb(&self, plan: &EpochPlan) {
        let site = self.wb_sites.get();
        self.wb_sites.set(site + 1);
        let plan = match &self.shared.overrides {
            Some(o) => o.wb_at(self.tid, site).unwrap_or(plan),
            None => plan,
        };
        self.plan_wb_ops(plan);
    }

    fn plan_wb_ops(&self, plan: &EpochPlan) {
        if self.coherent() {
            return;
        }
        match self.shared.config.scheme() {
            Scheme::Inter(InterConfig::Base) => {
                self.issue(Op::Coh(CohInstr::wb_l3(Target::All)));
            }
            Scheme::Inter(InterConfig::Addr) => {
                for op in &plan.wb {
                    self.issue(Op::Coh(CohInstr::wb_l3(Target::range(op.region))));
                }
            }
            Scheme::Inter(InterConfig::AddrL) => {
                for op in &plan.wb {
                    let t = Target::range(op.region);
                    let instr = match op.peer {
                        Some(peer) => CohInstr::wb_cons(t, peer),
                        None => CohInstr::wb_l3(t),
                    };
                    self.issue(Op::Coh(instr));
                }
            }
            _ => {
                // Model-2 programs can also run on the single-block
                // machine; everything is local there.
                for op in &plan.wb {
                    self.issue(Op::Coh(CohInstr::wb(Target::range(op.region))));
                }
            }
        }
    }

    /// Execute the invalidation half of an epoch plan (call at the *start*
    /// of a consuming epoch, after the synchronization). Subject to
    /// [`PlanOverrides`] like [`ThreadCtx::plan_wb`].
    pub fn plan_inv(&self, plan: &EpochPlan) {
        let site = self.inv_sites.get();
        self.inv_sites.set(site + 1);
        let plan = match &self.shared.overrides {
            Some(o) => o.inv_at(self.tid, site).unwrap_or(plan),
            None => plan,
        };
        self.plan_inv_ops(plan);
    }

    fn plan_inv_ops(&self, plan: &EpochPlan) {
        if self.coherent() {
            return;
        }
        match self.shared.config.scheme() {
            Scheme::Inter(InterConfig::Base) => {
                self.issue(Op::Coh(CohInstr::inv_l2(Target::All)));
            }
            Scheme::Inter(InterConfig::Addr) => {
                for op in &plan.inv {
                    self.issue(Op::Coh(CohInstr::inv_l2(Target::range(op.region))));
                }
            }
            Scheme::Inter(InterConfig::AddrL) => {
                for op in &plan.inv {
                    let t = Target::range(op.region);
                    let instr = match op.peer {
                        Some(peer) => CohInstr::inv_prod(t, peer),
                        None => CohInstr::inv_l2(t),
                    };
                    self.issue(Op::Coh(instr));
                }
            }
            _ => {
                for op in &plan.inv {
                    self.issue(Op::Coh(CohInstr::inv(Target::range(op.region))));
                }
            }
        }
    }

    /// An inter-block barrier *without* implicit global data movement:
    /// model-2 programs move data via plans, the barrier only orders.
    pub fn plan_barrier(&self, b: BarrierId) {
        self.barrier_with(b, BarrierOpts::none());
    }

    /// Convenience: full model-2 epoch boundary — the producing side of
    /// `plan`, the barrier, then the consuming side.
    pub fn epoch_boundary(&self, b: BarrierId, plan: &EpochPlan) {
        self.plan_wb(plan);
        self.plan_barrier(b);
        self.plan_inv(plan);
    }

    /// Peer thread id helper.
    pub fn thread(&self, t: usize) -> ThreadId {
        ThreadId(t)
    }

    pub(crate) fn finish(&self) {
        self.flush_compute();
        self.flush_batch();
        // No reply for Finish; leftover queued ops are drained by the
        // spawning thread after the app threads exit.
        self.engine.submit(self.tid, Op::Finish);
        self.finished.set(true);
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        if !self.finished.get() {
            // The app thread is unwinding mid-run (assertion failure in
            // app code, machine panic, ...). Wake every blocked sibling
            // so the run tears down instead of hanging.
            self.engine.mark_dead(RunError::ThreadDied {
                detail: "app thread died mid-run".to_string(),
            });
        }
    }
}
