//! Declarative program records for static analysis.
//!
//! A [`ProgramRecord`] describes a model-2 program *without running it*:
//! per thread, the ordered sequence of epoch-level events — region read /
//! write summaries, the `EpochPlan` passed to each `plan_wb` / `plan_inv`
//! call site, and the synchronization operations (barriers with their
//! carried [`SyncData`](crate::SyncData) halves, flag sets / waits /
//! clears). `hic-lint` consumes the record to prove WB/INV sufficiency
//! and to compute minimized [`PlanOverrides`](crate::PlanOverrides) the
//! runtime swaps in at the same call sites.
//!
//! The record's event order per thread must match the program's dynamic
//! order, and in particular the number and order of `plan_wb` /
//! `plan_inv` calls must match exactly — site `k` of the record is site
//! `k` of the run. Apps build both from the same loop structure so they
//! cannot drift; [`ProgramRecord::plan_sites`] exposes the counts so
//! harnesses can cross-check.

use hic_mem::{Region, WordAddr};

use crate::config::Config;
use crate::ctx::{BarrierId, FlagId};
use crate::plan::EpochPlan;

/// Owned mirror of [`crate::SyncData`]: what one side of a sync op moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecSync {
    /// `WB ALL` / `INV ALL`.
    All,
    /// Nothing moves on this side.
    None,
    /// Only these regions.
    Regions(Vec<Region>),
}

/// One recorded per-thread event.
#[derive(Debug, Clone, PartialEq)]
pub enum RecEvent {
    /// The thread reads every word of the region in this epoch. Declare
    /// reads *before* writes of the same epoch (the paper's DEF-USE
    /// convention: uses refer to values from before the epoch's defs).
    Reads(Region),
    /// The thread writes every word of the region in this epoch.
    Writes(Region),
    /// A `plan_wb` call site with the plan the program passes.
    PlanWb(EpochPlan),
    /// A `plan_inv` call site with the plan the program passes.
    PlanInv(EpochPlan),
    /// A barrier arrival with its carried data-movement halves.
    Barrier {
        bar: usize,
        wb: RecSync,
        inv: RecSync,
    },
    /// A flag set (release side); `raw` skips the carried `WB ALL`.
    FlagSet { flag: usize, raw: bool },
    /// A flag wait (acquire side); `raw` skips the carried `INV ALL`.
    FlagWait { flag: usize, raw: bool },
    /// A flag clear (no data movement, no ordering).
    FlagClear { flag: usize },
}

/// A whole recorded program: the static input to `hic-lint`.
#[derive(Debug, Clone)]
pub struct ProgramRecord {
    pub config: Config,
    pub nthreads: usize,
    /// Allocation map (region, name) — findings report `name[index]`.
    pub regions: Vec<(Region, String)>,
    /// Barriers declared on the builder: (raw sync id, participants).
    pub barriers: Vec<(usize, usize)>,
    /// Regions the host peeks after the run (verification readback).
    /// WB ops covering them are pinned: the optimizer never prunes or
    /// downgrades them, because `peek` only sees data that left the L1s.
    pub host_reads: Vec<Region>,
    /// Per-thread event sequences.
    pub threads: Vec<Vec<RecEvent>>,
}

impl ProgramRecord {
    /// An empty record (normally obtained via
    /// [`crate::ProgramBuilder::record`], which seeds config, regions and
    /// barriers from the builder).
    pub fn new(config: Config, nthreads: usize) -> ProgramRecord {
        ProgramRecord {
            config,
            nthreads,
            regions: Vec::new(),
            barriers: Vec::new(),
            host_reads: Vec::new(),
            threads: vec![Vec::new(); nthreads],
        }
    }

    /// Cursor for appending thread `t`'s events in program order.
    pub fn thread(&mut self, t: usize) -> RecThread<'_> {
        RecThread {
            events: &mut self.threads[t],
        }
    }

    /// Declare that the host peeks `r` after the run (pins its WBs).
    pub fn host_reads(&mut self, r: Region) {
        self.host_reads.push(r);
    }

    /// Participant count of barrier `bar` (raw sync id).
    pub fn barrier_participants(&self, bar: usize) -> Option<usize> {
        self.barriers
            .iter()
            .find(|(id, _)| *id == bar)
            .map(|&(_, p)| p)
    }

    /// `name[index]` of the allocation containing `w`, if any.
    pub fn locate(&self, w: WordAddr) -> Option<(&str, u64)> {
        self.regions
            .iter()
            .find(|(r, _)| r.contains(w))
            .map(|(r, name)| (name.as_str(), w.0 - r.start.0))
    }

    /// Per-thread `(plan_wb, plan_inv)` call-site counts — the shape a
    /// [`PlanOverrides`](crate::PlanOverrides) for this record must have.
    pub fn plan_sites(&self) -> Vec<(usize, usize)> {
        self.threads
            .iter()
            .map(|evs| {
                let wb = evs
                    .iter()
                    .filter(|e| matches!(e, RecEvent::PlanWb(_)))
                    .count();
                let inv = evs
                    .iter()
                    .filter(|e| matches!(e, RecEvent::PlanInv(_)))
                    .count();
                (wb, inv)
            })
            .collect()
    }

    /// Total events across all threads.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Every planned WB/INV op in the record, in (thread, program-order)
    /// order — the mutation space a fuzzing harness enumerates. Each ref
    /// addresses one [`crate::CommOp`] inside one plan call site.
    pub fn plan_op_refs(&self) -> Vec<PlanOpRef> {
        let mut out = Vec::new();
        for (t, evs) in self.threads.iter().enumerate() {
            let (mut wb_site, mut inv_site) = (0usize, 0usize);
            for ev in evs {
                match ev {
                    RecEvent::PlanWb(plan) => {
                        for index in 0..plan.wb.len() {
                            out.push(PlanOpRef {
                                thread: t,
                                is_wb: true,
                                site: wb_site,
                                index,
                            });
                        }
                        wb_site += 1;
                    }
                    RecEvent::PlanInv(plan) => {
                        for index in 0..plan.inv.len() {
                            out.push(PlanOpRef {
                                thread: t,
                                is_wb: false,
                                site: inv_site,
                                index,
                            });
                        }
                        inv_site += 1;
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Mutable access to thread `t`'s `site`-th `plan_wb` (`wb = true`)
    /// or `plan_inv` plan, for in-place mutation. `None` when the thread
    /// or site does not exist.
    pub fn plan_mut(&mut self, t: usize, site: usize, wb: bool) -> Option<&mut EpochPlan> {
        let mut seen = 0usize;
        for ev in self.threads.get_mut(t)? {
            let plan = match ev {
                RecEvent::PlanWb(p) if wb => p,
                RecEvent::PlanInv(p) if !wb => p,
                _ => continue,
            };
            if seen == site {
                return Some(plan);
            }
            seen += 1;
        }
        None
    }
}

/// Identity of one planned op inside a [`ProgramRecord`]: thread `t`'s
/// `site`-th `plan_wb`/`plan_inv` call, op `index` within that plan's
/// WB (resp. INV) vector. Produced by [`ProgramRecord::plan_op_refs`];
/// resolves through [`ProgramRecord::plan_mut`] +
/// [`EpochPlan::side`](crate::EpochPlan::side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOpRef {
    pub thread: usize,
    pub is_wb: bool,
    pub site: usize,
    pub index: usize,
}

/// Append-only cursor mirroring the [`crate::ThreadCtx`] API, so a
/// record-building function reads like the thread body it describes.
pub struct RecThread<'a> {
    events: &'a mut Vec<RecEvent>,
}

impl RecThread<'_> {
    /// The epoch reads every word of `r` (empty regions are dropped).
    pub fn reads(&mut self, r: Region) -> &mut Self {
        if r.words > 0 {
            self.events.push(RecEvent::Reads(r));
        }
        self
    }

    /// The epoch writes every word of `r` (empty regions are dropped).
    pub fn writes(&mut self, r: Region) -> &mut Self {
        if r.words > 0 {
            self.events.push(RecEvent::Writes(r));
        }
        self
    }

    /// Mirror of [`crate::ThreadCtx::plan_wb`].
    pub fn plan_wb(&mut self, plan: &EpochPlan) -> &mut Self {
        self.events.push(RecEvent::PlanWb(plan.clone()));
        self
    }

    /// Mirror of [`crate::ThreadCtx::plan_inv`].
    pub fn plan_inv(&mut self, plan: &EpochPlan) -> &mut Self {
        self.events.push(RecEvent::PlanInv(plan.clone()));
        self
    }

    /// Mirror of [`crate::ThreadCtx::barrier`] (`WB ALL` / `INV ALL`).
    pub fn barrier(&mut self, b: BarrierId) -> &mut Self {
        self.barrier_with(b, RecSync::All, RecSync::All)
    }

    /// Mirror of [`crate::ThreadCtx::plan_barrier`] (ordering only).
    pub fn plan_barrier(&mut self, b: BarrierId) -> &mut Self {
        self.barrier_with(b, RecSync::None, RecSync::None)
    }

    /// Mirror of [`crate::ThreadCtx::barrier_with`].
    pub fn barrier_with(&mut self, b: BarrierId, wb: RecSync, inv: RecSync) -> &mut Self {
        self.events.push(RecEvent::Barrier {
            bar: (b.0).0,
            wb,
            inv,
        });
        self
    }

    /// Mirror of [`crate::ThreadCtx::epoch_boundary`].
    pub fn epoch_boundary(&mut self, b: BarrierId, plan: &EpochPlan) -> &mut Self {
        self.plan_wb(plan).plan_barrier(b).plan_inv(plan)
    }

    /// Mirror of [`crate::ThreadCtx::flag_set`] /
    /// [`crate::ThreadCtx::flag_set_opts`].
    pub fn flag_set(&mut self, f: FlagId, raw: bool) -> &mut Self {
        self.events.push(RecEvent::FlagSet { flag: (f.0).0, raw });
        self
    }

    /// Mirror of [`crate::ThreadCtx::flag_wait`] /
    /// [`crate::ThreadCtx::flag_wait_opts`].
    pub fn flag_wait(&mut self, f: FlagId, raw: bool) -> &mut Self {
        self.events.push(RecEvent::FlagWait { flag: (f.0).0, raw });
        self
    }

    /// Mirror of [`crate::ThreadCtx::flag_clear`].
    pub fn flag_clear(&mut self, f: FlagId) -> &mut Self {
        self.events.push(RecEvent::FlagClear { flag: (f.0).0 });
        self
    }
}
