//! Bank-parallel conservative PDES engine (`Scheduler::Sharded`).
//!
//! The sequential engine (`crate::engine`) executes every op under one
//! mutex in nondecreasing `(local time, core id)` key order. Profiling
//! (`BENCH_host.json`) shows the overwhelming majority of those ops are
//! **core-local**: L1-hit loads and stores, compute bursts, and the
//! zero-latency epoch markers. None of them reads or writes anything
//! outside the issuing core's private L1/MEB/IEB slice, none of them
//! moves a flit, and their latencies depend only on configuration — so
//! executing them out of global key order is unobservable. That is the
//! classic conservative parallel-discrete-event-simulation argument,
//! with the mesh's minimum hop latency (`Mesh::min_hop_lookahead`)
//! guaranteeing that no cross-tile effect can complete faster than the
//! ops we commute past it.
//!
//! This engine splits execution into two kinds of event domain:
//!
//! * **Shards** — the cores are partitioned core `c` → shard
//!   `c % shards`. Each shard is a mutex around the per-core
//!   `PartSlot`s of its cores, holding the detachable
//!   [`CoreSlice`] (L1 + MEB + IEB, checked out of the machine at
//!   start-up), a private stall ledger, the core's clock, and local
//!   counters. A thread executing a core-local op takes only its own
//!   shard's lock: threads in different shards proceed fully in
//!   parallel, and even same-shard threads only contend on a spinless
//!   mutex for a few dozen nanoseconds per op.
//! * **The global domain** — one mutex around the [`Machine`] plus the
//!   scheduler bookkeeping. Every op that touches shared state (cache
//!   misses, uncached accesses, WB/INV, synchronization, `Finish`)
//!   is *presented* to the global domain and executed by the classic
//!   conservative rule: the earliest pending `(time, core)` key runs
//!   only once no shard-local core could still present an earlier one.
//!
//! The conservative bound is communicated through per-core `published`
//! clocks (atomics written by shard threads) and a `wait_min` atomic
//! (written by the global driver): a local thread that advances its
//! clock past `wait_min` takes the global lock and drives, using the
//! Dekker-style store-then-load protocol on SeqCst atomics so a wakeup
//! can never be missed.
//!
//! **Observational equality.** The global domain executes exactly the
//! ops the sequential engine would execute on the machine, in exactly
//! the same key order, from identical per-core clocks; the commuted
//! local ops touch disjoint per-core state with config-only latencies
//! and charge only the `Rest` stall category (merged into the machine's
//! ledgers at teardown — sums are commutative). Simulated cycles, stall
//! ledgers, all six traffic categories, event counters, and readable
//! memory are therefore **bit-identical** to `Scheduler::Linear`; the
//! property suite (`tests/prop_scheduler.rs`) and the golden-equivalence
//! suite pin this.
//!
//! Machines the fast path cannot shard — coherent backends, an attached
//! sanitizer, a fault plan, tracing — never reach this module: the
//! facade in `crate::engine` serializes them through the sequential
//! engine (checking "serializes through the global domain" by
//! construction).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use hic_machine::{CoreSlice, Exec, Machine, Op, RunError, RunStats};
use hic_mem::Word;
use hic_sim::{CoreId, Cycle, EngineStats, ShardStats, StallCategory, StallLedger};

use crate::ctx::RtShared;
use crate::engine::{EngineDead, WALL_CHECK_PERIOD};

/// A core's scheduling state as seen by the global domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// The core's thread is executing local ops inside its shard (or
    /// host code between ops); its `published` clock bounds the key of
    /// whatever it presents next. Equivalent to the sequential engine's
    /// `NeedsOp`: later-keyed pending ops must wait for it.
    Local,
    /// The core has presented a global op that has not executed yet.
    Queued,
    /// The core's op parked it inside the machine on a sync grant.
    Parked,
    /// The core executed `Finish`.
    Done,
}

/// Per-core state owned by a shard: the detachable machine slice plus
/// everything the local fast path needs without the global lock.
struct PartSlot {
    /// The core's L1/MEB/IEB, checked out of the machine. `None` while
    /// the core is presenting a global op (the slice is then attached
    /// to the machine so the driver can execute against it).
    slice: Option<CoreSlice>,
    /// Stall cycles charged by local ops (always `Rest`); merged into
    /// the machine's per-core ledger at teardown.
    ledger: StallLedger,
    /// The core's local simulated clock (mirrors `published[c]`).
    time: Cycle,
    local_ops: u64,
    messages: u64,
    batches: u64,
    round_trips: u64,
    /// Ops routed through the global domain (cross-shard messages).
    global_ops: u64,
    /// Global-lock acquisitions that found the lock held.
    lock_waits: u64,
    /// Local ops since the last host wall-clock watchdog check.
    ops_since_wall: u32,
}

impl PartSlot {
    fn new(slice: CoreSlice) -> PartSlot {
        PartSlot {
            slice: Some(slice),
            ledger: StallLedger::new(),
            time: 0,
            local_ops: 0,
            messages: 0,
            batches: 0,
            round_trips: 0,
            global_ops: 0,
            lock_waits: 0,
            ops_since_wall: 0,
        }
    }
}

/// The global event domain: the machine and the conservative scheduler.
struct GlobalState {
    machine: Machine,
    status: Vec<Status>,
    /// Pending global op per `Queued` core: `(op, needs_reply)`.
    pending: Vec<Option<(Op, bool)>>,
    /// The core's clock as known to the global domain.
    gtime: Vec<Cycle>,
    /// Reply slot, filled when the core's presented op completes. Set
    /// for every non-`Finish` op — the presenting thread always waits
    /// for the end time — but only `needs_reply` ops count round-trips.
    reply: Vec<Option<Option<Word>>>,
    /// Per-core flag: the thread is blocked on its condvar.
    waiting: Vec<bool>,
    wake_list: Vec<usize>,
    main_waiting: bool,
    /// Cores in `Status::Local`.
    locals: usize,
    /// Cores in `Status::Queued`.
    queued: usize,
    done: usize,
    parked_now: u64,
    dead: Option<RunError>,
    watchdog_cycles: Option<Cycle>,
    deadline: Option<Instant>,
    ops_since_wall: u32,
    // Global-domain halves of the EngineStats ledger.
    ops_executed: u64,
    round_trips: u64,
    wakeups: u64,
    peak_parked: u64,
    lookahead_stalls: u64,
}

/// The sharded engine handle (see the module docs for the protocol).
pub(crate) struct ShardedEngine {
    /// `shards[s]` owns the slots of cores `c` with `c % nshards == s`,
    /// at slot index `c / nshards`.
    shards: Vec<Mutex<Vec<PartSlot>>>,
    global: Mutex<GlobalState>,
    /// Per-core published clocks: the conservative bound. A `Local`
    /// core's next op can only carry a key `>= (published[c], c)`.
    published: Vec<AtomicU64>,
    /// Time component of the earliest blocked pending key (`u64::MAX`
    /// when nothing is blocked). Local threads that advance past it
    /// take the global lock and drive; the Dekker store/load pairing
    /// with `published` makes the handoff missed-wakeup-free.
    wait_min: AtomicU64,
    /// Lock-free mirror of `GlobalState::dead.is_some()`.
    dead: AtomicBool,
    /// One condvar per core: its thread blocks here while its presented
    /// op waits for the conservative bound.
    cvs: Vec<Condvar>,
    cv_main: Condvar,
    nshards: usize,
    /// L1 round-trip latency, the only timing the local path needs.
    l1_rt: u64,
    /// Watchdogs, immutable after construction so the local path can
    /// check them without the global lock (the driver keeps its own
    /// copies inside `GlobalState`).
    watchdog_cycles: Option<Cycle>,
    deadline: Option<Instant>,
}

impl ShardedEngine {
    pub(crate) fn new(mut machine: Machine, shared: &RtShared, shards: usize) -> ShardedEngine {
        let n = shared.nthreads;
        let nshards = if shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            shards
        }
        .clamp(1, n);
        let l1_rt = machine.config().l1_rt;
        let watchdog_cycles = shared.watchdog_cycles;
        let deadline = shared
            .watchdog_wall_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        let mut slots: Vec<Vec<PartSlot>> = (0..nshards).map(|_| Vec::new()).collect();
        for c in 0..n {
            let slice = machine
                .detach_core(CoreId(c))
                .expect("supports_sharding implies detachable cores");
            slots[c % nshards].push(PartSlot::new(slice));
        }
        ShardedEngine {
            shards: slots.into_iter().map(Mutex::new).collect(),
            global: Mutex::new(GlobalState {
                machine,
                status: vec![Status::Local; n],
                pending: (0..n).map(|_| None).collect(),
                gtime: vec![0; n],
                reply: vec![None; n],
                waiting: vec![false; n],
                wake_list: Vec::with_capacity(n),
                main_waiting: false,
                locals: n,
                queued: 0,
                done: 0,
                parked_now: 0,
                dead: None,
                watchdog_cycles,
                deadline,
                ops_since_wall: 0,
                ops_executed: 0,
                round_trips: 0,
                wakeups: 0,
                peak_parked: 0,
                lookahead_stalls: 0,
            }),
            published: (0..n).map(|_| AtomicU64::new(0)).collect(),
            wait_min: AtomicU64::new(u64::MAX),
            dead: AtomicBool::new(false),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            cv_main: Condvar::new(),
            nshards,
            l1_rt,
            watchdog_cycles,
            deadline,
        }
    }

    fn slot_of(&self, c: usize) -> usize {
        c / self.nshards
    }

    fn lock_shard(&self, c: usize) -> MutexGuard<'_, Vec<PartSlot>> {
        self.shards[c % self.nshards]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Lock the global domain, counting a contention miss against the
    /// core's slot when the lock was already held.
    fn lock_global(&self, lock_waits: &mut u64) -> MutexGuard<'_, GlobalState> {
        match self.global.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                *lock_waits += 1;
                self.global.lock().unwrap_or_else(|e| e.into_inner())
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    fn lock_global_plain(&self) -> MutexGuard<'_, GlobalState> {
        self.global.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deliver the targeted notifications queued by the driver.
    fn flush_wakes(&self, g: &mut MutexGuard<'_, GlobalState>) {
        while let Some(i) = g.wake_list.pop() {
            self.cvs[i].notify_all();
        }
        if g.main_waiting && (g.done == g.status.len() || g.dead.is_some()) {
            self.cv_main.notify_all();
        }
    }

    fn wake_everyone(&self, g: &mut MutexGuard<'_, GlobalState>) {
        g.wake_list.clear();
        for cv in &self.cvs {
            cv.notify_all();
        }
        self.cv_main.notify_all();
    }

    /// Declare the run dead and unwind the calling app thread with the
    /// quiet `EngineDead` sentinel (mirrors `SeqEngine::die`).
    fn die(&self, mut g: MutexGuard<'_, GlobalState>, err: RunError) -> ! {
        if g.dead.is_none() {
            g.dead = Some(err);
        }
        self.dead.store(true, SeqCst);
        self.wake_everyone(&mut g);
        drop(g);
        std::panic::panic_any(EngineDead);
    }

    /// Die with whatever error is already latched (lock-free fast path
    /// saw the `dead` mirror set).
    fn die_latched(&self) -> ! {
        let g = self.lock_global_plain();
        let err = g.dead.clone().unwrap_or(RunError::ThreadDied {
            detail: "engine torn down before the run completed".to_string(),
        });
        self.die(g, err);
    }

    pub(crate) fn mark_dead(&self, err: RunError) {
        let mut g = self.lock_global_plain();
        if g.dead.is_none() {
            g.dead = Some(err);
        }
        self.dead.store(true, SeqCst);
        self.wake_everyone(&mut g);
    }

    pub(crate) fn await_completion(&self) -> Option<RunError> {
        let mut g = self.lock_global_plain();
        loop {
            if let Some(err) = g.dead.clone() {
                self.wake_everyone(&mut g);
                return Some(err);
            }
            if g.done == g.status.len() {
                return None;
            }
            g.main_waiting = true;
            g = self.cv_main.wait(g).unwrap_or_else(|e| e.into_inner());
            g.main_waiting = false;
        }
    }

    /// Submit a fire-and-forget message (a batch or `Finish`) for core
    /// `c` (mirrors `SeqEngine::submit`).
    pub(crate) fn submit(&self, c: usize, msg: Op) {
        if self.dead.load(SeqCst) {
            self.die_latched();
        }
        match msg {
            Op::Batch(ops) => {
                debug_assert!(!ops.is_empty(), "empty batch message");
                let mut g = self.lock_shard(c);
                let si = self.slot_of(c);
                g[si].messages += 1;
                g[si].batches += 1;
                for op in ops {
                    debug_assert!(op.is_batchable(), "non-batchable op in batch: {op:?}");
                    g = self.run_op(c, g, op, false).1;
                }
            }
            Op::Finish => {
                let mut g = self.lock_shard(c);
                g[self.slot_of(c)].messages += 1;
                self.present_finish(c, g);
            }
            op => {
                let mut g = self.lock_shard(c);
                g[self.slot_of(c)].messages += 1;
                drop(self.run_op(c, g, op, false));
            }
        }
    }

    /// Submit a reply-carrying op for core `c` and return its value
    /// (mirrors `SeqEngine::submit_await`).
    pub(crate) fn submit_await(&self, c: usize, op: Op) -> Option<Word> {
        if self.dead.load(SeqCst) {
            self.die_latched();
        }
        let mut g = self.lock_shard(c);
        g[self.slot_of(c)].messages += 1;
        self.run_op(c, g, op, true).0
    }

    /// Execute one op for core `c`: locally inside the shard when the
    /// core slice can retire it, otherwise through the global domain.
    /// Takes and returns the shard guard so batch members run without
    /// re-locking in the common all-local case.
    fn run_op<'a>(
        &'a self,
        c: usize,
        mut g: MutexGuard<'a, Vec<PartSlot>>,
        op: Op,
        needs_reply: bool,
    ) -> (Option<Word>, MutexGuard<'a, Vec<PartSlot>>) {
        let si = self.slot_of(c);
        let slot = &mut g[si];
        let slice = slot
            .slice
            .as_mut()
            .expect("thread owns its slice between ops");
        if let Some((value, lat)) = slice.try_execute(&op, self.l1_rt) {
            slot.ledger.charge(StallCategory::Rest, lat);
            slot.time += lat;
            slot.local_ops += 1;
            if needs_reply {
                slot.round_trips += 1;
            }
            let now = slot.time;
            let mut fatal: Option<RunError> = None;
            if let Some(limit) = self.watchdog_cycles {
                if now > limit {
                    fatal = Some(RunError::Hang {
                        detail: format!(
                            "simulated-cycle budget exceeded: core{c} reached cycle {now} \
                             (budget {limit})"
                        ),
                    });
                }
            }
            if let Some(dl) = self.deadline {
                slot.ops_since_wall += 1;
                if slot.ops_since_wall >= WALL_CHECK_PERIOD {
                    slot.ops_since_wall = 0;
                    if fatal.is_none() && Instant::now() >= dl {
                        fatal = Some(RunError::Hang {
                            detail: "host wall-clock watchdog expired before the run completed"
                                .to_string(),
                        });
                    }
                }
            }
            if let Some(err) = fatal {
                drop(g);
                let gg = self.lock_global_plain();
                self.die(gg, err);
            }
            if self.dead.load(SeqCst) {
                drop(g);
                self.die_latched();
            }
            // Publish the new clock, then (Dekker pairing with the
            // driver's wait_min-store / published-load) check whether
            // the global domain was waiting for this core to get past a
            // blocked pending key — if so, take the global lock and
            // drive it forward. Holding the shard guard here is fine:
            // shard -> global is the legal lock order and the driver
            // never touches shards.
            self.published[c].store(now, SeqCst);
            if now >= self.wait_min.load(SeqCst) {
                let slot = &mut g[si];
                let mut gg = self.lock_global(&mut slot.lock_waits);
                self.drive(&mut gg);
                let flushed = gg.dead.clone();
                self.flush_wakes(&mut gg);
                if let Some(err) = flushed {
                    drop(g);
                    self.die(gg, err);
                }
            }
            return (value, g);
        }
        self.present_global(c, g, op, needs_reply)
    }

    /// Route `op` through the global domain: attach the core's slice to
    /// the machine, enqueue the op at the core's current clock, drive,
    /// and wait until the driver executes it (in conservative key
    /// order), then take the slice back. The shard guard is dropped for
    /// the whole wait — holding it would stop same-shard cores from
    /// advancing their clocks, which global progress may require.
    fn present_global<'a>(
        &'a self,
        c: usize,
        mut g: MutexGuard<'a, Vec<PartSlot>>,
        op: Op,
        needs_reply: bool,
    ) -> (Option<Word>, MutexGuard<'a, Vec<PartSlot>>) {
        let si = self.slot_of(c);
        let slot = &mut g[si];
        slot.global_ops += 1;
        let now = slot.time;
        let slice = slot
            .slice
            .take()
            .expect("thread owns its slice between ops");
        let mut lock_waits = 0;
        drop(g);

        let mut gg = self.lock_global(&mut lock_waits);
        // Attach before any die path so the slice can never be lost:
        // from here on the machine owns it until we detach below.
        gg.machine.attach_core(CoreId(c), slice);
        if let Some(err) = gg.dead.clone() {
            self.die(gg, err);
        }
        debug_assert_eq!(
            gg.status[c],
            Status::Local,
            "core presented while not local"
        );
        gg.status[c] = Status::Queued;
        gg.locals -= 1;
        gg.queued += 1;
        gg.gtime[c] = now;
        gg.pending[c] = Some((op, needs_reply));
        self.drive(&mut gg);
        loop {
            if let Some(err) = gg.dead.clone() {
                self.die(gg, err);
            }
            if let Some(r) = gg.reply[c].take() {
                let end = gg.gtime[c];
                let slice = gg
                    .machine
                    .detach_core(CoreId(c))
                    .expect("sharded machine has detachable cores");
                self.flush_wakes(&mut gg);
                drop(gg);
                let mut g = self.lock_shard(c);
                let slot = &mut g[si];
                slot.lock_waits += lock_waits;
                slot.slice = Some(slice);
                slot.time = end;
                return (r, g);
            }
            self.flush_wakes(&mut gg);
            gg.waiting[c] = true;
            gg = self.cvs[c].wait(gg).unwrap_or_else(|e| e.into_inner());
            gg.waiting[c] = false;
        }
    }

    /// Present `Finish` fire-and-forget: the slice stays attached to the
    /// machine for good (final stats and peeks read it there), and the
    /// thread returns without waiting — the last finisher's `drive`
    /// call drains everything left, exactly like the sequential engine.
    fn present_finish(&self, c: usize, mut g: MutexGuard<'_, Vec<PartSlot>>) {
        let si = self.slot_of(c);
        let slot = &mut g[si];
        slot.global_ops += 1;
        let now = slot.time;
        let slice = slot
            .slice
            .take()
            .expect("thread owns its slice between ops");
        let mut lock_waits = 0;
        drop(g);

        let mut gg = self.lock_global(&mut lock_waits);
        gg.machine.attach_core(CoreId(c), slice);
        if let Some(err) = gg.dead.clone() {
            self.die(gg, err);
        }
        debug_assert_eq!(
            gg.status[c],
            Status::Local,
            "core presented while not local"
        );
        gg.status[c] = Status::Queued;
        gg.locals -= 1;
        gg.queued += 1;
        gg.gtime[c] = now;
        gg.pending[c] = Some((Op::Finish, false));
        self.drive(&mut gg);
        let dead = gg.dead.clone();
        self.flush_wakes(&mut gg);
        if let Some(err) = dead {
            self.die(gg, err);
        }
    }

    /// The conservative driver: execute pending global ops in
    /// `(time, core)` key order while the bound allows, then publish
    /// `wait_min` for the shard threads. Must run under the global lock.
    fn drive(&self, gg: &mut MutexGuard<'_, GlobalState>) {
        let n = gg.status.len();
        loop {
            if gg.dead.is_some() {
                self.wait_min.store(u64::MAX, SeqCst);
                return;
            }
            // Earliest pending key.
            let mut best: Option<(Cycle, usize)> = None;
            for c in 0..n {
                if gg.status[c] == Status::Queued {
                    let key = (gg.gtime[c], c);
                    if best.is_none_or(|m| key < m) {
                        best = Some(key);
                    }
                }
            }
            let Some((t, c)) = best else {
                self.wait_min.store(u64::MAX, SeqCst);
                break;
            };
            // Conservative bound: every Local core could still present
            // an op at its published clock. Publish what we are waiting
            // for FIRST, then re-read the published clocks — the SeqCst
            // total order guarantees that a local thread advancing past
            // `t` either sees our store (and comes to drive) or we see
            // its new clock here.
            self.wait_min.store(t, SeqCst);
            let blocked = (0..n).any(|x| {
                gg.status[x] == Status::Local && (self.published[x].load(SeqCst), x) < (t, c)
            });
            if blocked {
                gg.lookahead_stalls += 1;
                return;
            }
            self.execute_pending(gg, c);
        }
        // Nothing pending: if no core can ever make progress again, the
        // run is deadlocked (mirrors `EngineCore::deadlocked`).
        if gg.dead.is_none() && gg.locals == 0 && gg.queued == 0 && gg.done < n {
            let err = self.deadlock_error(gg);
            gg.dead = Some(err);
            self.dead.store(true, SeqCst);
            self.wake_everyone(gg);
        }
    }

    /// Execute core `c`'s pending op on the machine and deliver the
    /// consequences (mirrors `EngineCore::execute_one`).
    fn execute_pending(&self, gg: &mut MutexGuard<'_, GlobalState>, c: usize) {
        let (op, needs_reply) = gg.pending[c].take().expect("queued core has a pending op");
        let now = gg.gtime[c];
        gg.queued -= 1;
        match gg.machine.execute(CoreId(c), &op, now) {
            Exec::Done { value, end } => {
                gg.ops_executed += 1;
                gg.gtime[c] = end;
                if matches!(op, Op::Finish) {
                    gg.status[c] = Status::Done;
                    gg.done += 1;
                } else {
                    // The core immediately counts as Local again at its
                    // completed clock — its next op (possibly an earlier
                    // key than other pending ops) must keep blocking
                    // them, exactly like a sequential `NeedsOp` core.
                    gg.status[c] = Status::Local;
                    gg.locals += 1;
                    self.published[c].store(end, SeqCst);
                    if needs_reply {
                        gg.round_trips += 1;
                    }
                    debug_assert!(gg.reply[c].is_none(), "unclaimed reply");
                    gg.reply[c] = Some(value);
                    if gg.waiting[c] {
                        gg.wake_list.push(c);
                    }
                }
            }
            Exec::Parked => {
                debug_assert!(needs_reply, "blocking ops are sent individually");
                gg.ops_executed += 1;
                gg.status[c] = Status::Parked;
                gg.parked_now += 1;
                gg.peak_parked = gg.peak_parked.max(gg.parked_now);
            }
        }
        for wk in gg.machine.take_wakeups() {
            let i = wk.core.0;
            debug_assert_eq!(gg.status[i], Status::Parked);
            gg.wakeups += 1;
            gg.parked_now -= 1;
            gg.status[i] = Status::Local;
            gg.locals += 1;
            gg.gtime[i] = wk.at;
            self.published[i].store(wk.at, SeqCst);
            gg.reply[i] = Some(None);
            if gg.waiting[i] {
                gg.wake_list.push(i);
            }
        }
        if let Some(err) = gg.machine.take_fatal() {
            if gg.dead.is_none() {
                gg.dead = Some(err);
                self.dead.store(true, SeqCst);
            }
        }
        if gg.dead.is_none() {
            if let Some(limit) = gg.watchdog_cycles {
                if gg.gtime[c] > limit {
                    gg.dead = Some(RunError::Hang {
                        detail: format!(
                            "simulated-cycle budget exceeded: core{c} reached cycle {} \
                             (budget {limit})",
                            gg.gtime[c]
                        ),
                    });
                    self.dead.store(true, SeqCst);
                }
            }
        }
        if let Some(dl) = gg.deadline {
            gg.ops_since_wall += 1;
            if gg.ops_since_wall >= WALL_CHECK_PERIOD {
                gg.ops_since_wall = 0;
                if gg.dead.is_none() && Instant::now() >= dl {
                    gg.dead = Some(RunError::Hang {
                        detail: "host wall-clock watchdog expired before the run completed"
                            .to_string(),
                    });
                    self.dead.store(true, SeqCst);
                }
            }
        }
        if gg.dead.is_some() {
            self.wake_everyone(gg);
        }
    }

    fn deadlock_error(&self, gg: &GlobalState) -> RunError {
        let parked: Vec<(usize, String)> = (0..gg.status.len())
            .filter(|&c| gg.status[c] == Status::Parked)
            .map(|c| {
                let cat = gg
                    .machine
                    .parked_category(CoreId(c))
                    .map(|cat| cat.label())
                    .unwrap_or("?");
                (c, cat.to_string())
            })
            .collect();
        let trace_tail = if gg.machine.trace().enabled() {
            gg.machine.trace().render()
        } else {
            String::new()
        };
        RunError::Deadlock { parked, trace_tail }
    }

    /// Reattach every slice still parked in a shard slot, merge the
    /// shard-local ledgers and counters, and finish the machine.
    pub(crate) fn teardown(self, error: Option<RunError>) -> (Machine, RunStats, Option<RunError>) {
        let nshards = self.nshards;
        let mut gg = self.global.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut per_shard = vec![ShardStats::default(); nshards];
        let mut local_ops = 0u64;
        let mut messages = 0u64;
        let mut batches = 0u64;
        let mut round_trips = 0u64;
        let mut global_ops = 0u64;
        let mut lock_waits = 0u64;
        for (s, shard) in self.shards.into_iter().enumerate() {
            let slots = shard.into_inner().unwrap_or_else(|e| e.into_inner());
            for (k, slot) in slots.into_iter().enumerate() {
                let c = CoreId(k * nshards + s);
                if let Some(slice) = slot.slice {
                    gg.machine.attach_core(c, slice);
                }
                gg.machine.merge_ledger(c, &slot.ledger);
                per_shard[s].local_ops += slot.local_ops;
                per_shard[s].cross_shard_msgs += slot.global_ops;
                per_shard[s].lock_waits += slot.lock_waits;
                local_ops += slot.local_ops;
                messages += slot.messages;
                batches += slot.batches;
                round_trips += slot.round_trips;
                global_ops += slot.global_ops;
                lock_waits += slot.lock_waits;
            }
        }
        let mut stats = if error.is_some() {
            gg.machine.finish_after_failure()
        } else {
            gg.machine.finish()
        };
        stats.engine = EngineStats {
            ops_executed: gg.ops_executed + local_ops,
            messages,
            batches,
            round_trips: gg.round_trips + round_trips,
            wakeups: gg.wakeups,
            peak_parked: gg.peak_parked,
            shard_local_ops: local_ops,
            cross_shard_msgs: global_ops,
            lookahead_stalls: gg.lookahead_stalls,
            lock_waits,
            per_shard,
        };
        (gg.machine, stats, error)
    }
}
