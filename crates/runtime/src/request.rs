//! `RunRequest` — the one canonical description of a simulation run.
//!
//! Historically a run was described by four scattered pieces: the
//! `Config` passed to an `App`, plan overrides threaded through
//! `run_with`, per-binary `--scale` parsing, and four process-global
//! environment knobs (`HIC_CHECK`, `HIC_FAULTS`, `HIC_ENGINE`,
//! `HIC_BENCH_BUDGET_MS`) read ad hoc at different call sites. That made
//! identical runs hard to recognize (a result cache cannot key on "what
//! the environment happened to contain") and concurrent runs impossible
//! to isolate (env vars are process-wide).
//!
//! [`RunRequest`] subsumes all of it: app name, scheme + topology,
//! input scale, sanitizer mode, fault plan, engine choice, watchdogs,
//! and plan overrides, in one serializable value. Everything that starts
//! a run — `App::run_req`, the `hic-serve` sweep server, the bench
//! frontends, tests — builds one of these:
//!
//! * [`RunRequest::new`] for explicit construction;
//! * [`RunRequest::from_env`] for the historical env-knob behavior,
//!   now parsed in exactly one place with typed [`RequestError`]s
//!   (a malformed `HIC_ENGINE=sharded:x` fails loudly and identically
//!   at every call site instead of being silently ignored at some and
//!   panicking at others);
//! * [`RunRequest::parse_key`] to rebuild a request from its canonical
//!   serialized form.
//!
//! [`RunRequest::cache_key`] is the canonical serialization: a compact,
//! versioned, single-line string that is a pure function of every field
//! that can influence the simulated result. Two requests produce the
//! same key iff they describe the same run, so `hic-serve`'s result
//! cache gets exact hits by construction.

use hic_check::CheckMode;
use hic_machine::FaultPlan;
use hic_mem::Region;
use hic_sim::{ThreadId, Topology, TopologyBuilder};

use crate::config::{Config, Scheme};
use crate::engine::Scheduler;
use crate::plan::{CommOp, EpochPlan, PlanOverrides};

/// Input-size class of an application run.
///
/// `Test` through `Paper` in increasing size: `Test` is sub-second
/// (unit/integration tests), `Small` is the default figure-harness size,
/// `Medium`/`Large` are the sweep-server sizes between the harness and
/// the paper's inputs (ROADMAP item 2's `--scale medium`/`large`), and
/// `Paper` is the paper-sized input (64K-point FFT, 512x512 LU, ... —
/// minutes per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second per run).
    Test,
    /// The default figure-harness inputs (seconds per run).
    Small,
    /// Between `Small` and `Large`: sweep-sized inputs that keep a full
    /// app x config cross-product tractable on one host.
    Medium,
    /// Between `Medium` and `Paper`: the largest sweep-server size.
    Large,
    /// Paper-sized inputs (64K-point FFT, 512x512 LU, ... — minutes).
    Paper,
}

impl Scale {
    /// Every scale, smallest first.
    pub const ALL: [Scale; 5] = [
        Scale::Test,
        Scale::Small,
        Scale::Medium,
        Scale::Large,
        Scale::Paper,
    ];

    /// The canonical lower-case name (`"test"`, `"small"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Paper => "paper",
        }
    }

    /// Parse a scale name (the `--scale` argument convention).
    pub fn parse(s: &str) -> Option<Scale> {
        Scale::ALL.iter().copied().find(|v| v.name() == s.trim())
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which seeded [`FaultPlan`] flavor a request runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSpec {
    /// [`FaultPlan::from_seed`]: timing faults plus clean-line bit
    /// flips; every fault recoverable, results must stay bit-identical.
    Recoverable { seed: u64 },
    /// A plan that also flips bits in *dirty* lines
    /// ([`FaultPlan::corrupting`]): the only copy of the data is
    /// destroyed, so the run fails with a typed
    /// `RunError::CorruptDirtyLine`. Used to poison jobs deliberately
    /// when testing the sweep server's per-job failure isolation.
    Corrupting { seed: u64 },
    /// Dirty-line flips with epoch-checkpoint rollback recovery
    /// ([`FaultPlan::corrupting_recoverable`]): corruption is repaired
    /// by restore + replay, so the run must complete bit-identical and
    /// chargeable rollbacks appear in `ResilienceStats`. This is what
    /// `HIC_RECOVER=1` upgrades `HIC_FAULTS` to.
    CorruptingRecover { seed: u64 },
}

impl FaultSpec {
    /// The concrete plan this spec names.
    pub fn plan(self) -> FaultPlan {
        match self {
            FaultSpec::Recoverable { seed } => FaultPlan::from_seed(seed),
            FaultSpec::Corrupting { seed } => FaultPlan::corrupting(seed),
            FaultSpec::CorruptingRecover { seed } => FaultPlan::corrupting_recoverable(seed),
        }
    }

    fn key(self) -> String {
        match self {
            FaultSpec::Recoverable { seed } => format!("r{seed}"),
            FaultSpec::Corrupting { seed } => format!("c{seed}"),
            FaultSpec::CorruptingRecover { seed } => format!("cr{seed}"),
        }
    }

    fn parse(s: &str) -> Option<FaultSpec> {
        // "cr<seed>" first: its single-letter parse ("c" + "r<seed>")
        // fails on the seed, but order still matters for clarity.
        if let Some(rest) = s.strip_prefix("cr") {
            let seed = rest.parse::<u64>().ok()?;
            return Some(FaultSpec::CorruptingRecover { seed });
        }
        let seed = s.get(1..)?.parse::<u64>().ok()?;
        match s.as_bytes().first()? {
            b'r' => Some(FaultSpec::Recoverable { seed }),
            b'c' => Some(FaultSpec::Corrupting { seed }),
            _ => None,
        }
    }
}

/// Why a [`RunRequest`] could not be built or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// An environment knob holds a value its parser rejects.
    BadEnv {
        var: &'static str,
        value: String,
        expected: &'static str,
    },
    /// A serialized request names an unknown field value.
    BadKey { field: &'static str, detail: String },
    /// The scheme/topology pair the request describes is invalid.
    Config(hic_sim::ConfigError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadEnv {
                var,
                value,
                expected,
            } => {
                write!(f, "bad {var}={value:?} (expected {expected})")
            }
            RequestError::BadKey { field, detail } => {
                write!(f, "bad run-request key: {field}: {detail}")
            }
            RequestError::Config(e) => write!(f, "invalid configuration in run request: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<hic_sim::ConfigError> for RequestError {
    fn from(e: hic_sim::ConfigError) -> RequestError {
        RequestError::Config(e)
    }
}

/// The canonical, cache-keyable description of one simulation run.
///
/// See the [module docs](crate::request) for why this exists. Every
/// field that can change the simulated result is part of
/// [`RunRequest::cache_key`]; host-only knobs (watchdogs, the bench
/// iteration budget) are serialized too so a resubmitted job is
/// recognized verbatim, but they cannot change a *successful* run's
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Application name, as `App::name` reports it (`"FFT"`, `"Jacobi"`).
    pub app: String,
    /// Coherence-management scheme + machine topology.
    pub config: Config,
    /// Input-size class.
    pub scale: Scale,
    /// Incoherence-sanitizer mode (subsumes `HIC_CHECK`).
    pub check: CheckMode,
    /// Seeded fault plan, if any (subsumes `HIC_FAULTS`).
    pub fault: Option<FaultSpec>,
    /// Engine/scheduler choice; `None` = the default
    /// [`Scheduler::Heap`] (subsumes `HIC_ENGINE`).
    pub engine: Option<Scheduler>,
    /// Plan substitutions from a static optimizer (`hic-lint`),
    /// installed at matching call sites (subsumes `App::run_with`).
    pub plan_overrides: Option<PlanOverrides>,
    /// Fail with `RunError::Hang` past this simulated-cycle budget.
    pub watchdog_cycles: Option<u64>,
    /// Fail with `RunError::Hang` past this host wall-clock budget.
    pub watchdog_wall_ms: Option<u64>,
    /// Host-side time budget for the bench harness's timed loops
    /// (subsumes `HIC_BENCH_BUDGET_MS`; ignored by plain runs).
    pub budget_ms: Option<u64>,
}

impl RunRequest {
    /// A plain request: no sanitizer, no faults, default engine, no
    /// overrides, no watchdogs. Never consults the environment.
    pub fn new(app: &str, config: Config, scale: Scale) -> RunRequest {
        RunRequest {
            app: app.to_string(),
            config,
            scale,
            check: CheckMode::Off,
            fault: None,
            engine: None,
            plan_overrides: None,
            watchdog_cycles: None,
            watchdog_wall_ms: None,
            budget_ms: None,
        }
    }

    /// The historical environment-knob behavior, centralized: a request
    /// whose check mode, fault seed, engine, and bench budget come from
    /// `HIC_CHECK`, `HIC_FAULTS`, `HIC_ENGINE`, and
    /// `HIC_BENCH_BUDGET_MS`. Malformed values are typed errors — every
    /// call site now rejects `HIC_ENGINE=sharded:x` with the same
    /// message instead of silently running the default engine.
    /// `HIC_RECOVER=1` upgrades the `HIC_FAULTS` seed from the canned
    /// recoverable plan to the corrupting-with-rollback plan: dirty-line
    /// flips land too, repaired by epoch-checkpoint restore + replay.
    pub fn from_env(app: &str, config: Config, scale: Scale) -> Result<RunRequest, RequestError> {
        let mut req = RunRequest::new(app, config, scale);
        if let Some(mode) = env::check_mode()? {
            req.check = mode;
        }
        let recover = env::recover()?;
        req.fault = env::fault_seed()?.map(|seed| {
            if recover {
                FaultSpec::CorruptingRecover { seed }
            } else {
                FaultSpec::Recoverable { seed }
            }
        });
        req.engine = env::engine()?;
        req.budget_ms = env::bench_budget_ms()?;
        Ok(req)
    }

    /// The configuration (scheme + topology) this request runs under.
    pub fn config(&self) -> Config {
        self.config
    }

    /// The concrete fault plan, if the request carries one.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.map(FaultSpec::plan)
    }

    /// The canonical serialized form: a compact, versioned, single-line
    /// string that is a pure function of every request field.
    /// [`RunRequest::parse_key`] inverts it exactly, and two requests
    /// compare equal iff their keys compare equal — which is what makes
    /// it a sound result-cache key.
    pub fn cache_key(&self) -> String {
        let topo = self.config.topology();
        let (mc, mr) = topo.mesh_dims();
        let l3 = match topo.l3() {
            Some(l3) => format!(
                "{}x{}x{}x{}",
                l3.banks, l3.geometry.size_bytes, l3.geometry.ways, l3.rt
            ),
            None => "-".to_string(),
        };
        let opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
        format!(
            "hic1;app={};scheme={};topo={}x{};mesh={}x{};l2={};l3={};scale={};\
             check={};fault={};engine={};wdc={};wdw={};budget={};plans={}",
            self.app,
            scheme_key(self.config.scheme()),
            topo.blocks(),
            topo.cores_per_block(),
            mc,
            mr,
            topo.l2_banks_per_block(),
            l3,
            self.scale.name(),
            check_key(self.check),
            self.fault.map_or("-".to_string(), FaultSpec::key),
            engine_key(self.engine),
            opt(self.watchdog_cycles),
            opt(self.watchdog_wall_ms),
            opt(self.budget_ms),
            plans_key(self.plan_overrides.as_ref()),
        )
    }

    /// Rebuild a request from its [`RunRequest::cache_key`] form.
    /// Round-trips exactly: `parse_key(k).cache_key() == k` for every
    /// key a `RunRequest` produces.
    pub fn parse_key(key: &str) -> Result<RunRequest, RequestError> {
        let bad = |field: &'static str, detail: &str| RequestError::BadKey {
            field,
            detail: detail.to_string(),
        };
        let mut fields = std::collections::HashMap::new();
        let mut parts = key.trim().split(';');
        if parts.next() != Some("hic1") {
            return Err(bad("version", "expected leading \"hic1\""));
        }
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| bad("syntax", &format!("field without '=': {part:?}")))?;
            fields.insert(k, v);
        }
        let get = |k: &'static str| fields.get(k).copied().ok_or(bad(k, "missing"));

        let app = get("app")?.to_string();
        let scheme = parse_scheme(get("scheme")?)
            .ok_or_else(|| bad("scheme", &format!("unknown scheme {:?}", fields["scheme"])))?;
        let dims = |s: &str| -> Option<(usize, usize)> {
            let (a, b) = s.split_once('x')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        };
        let (blocks, cores) =
            dims(get("topo")?).ok_or_else(|| bad("topo", "expected BLOCKSxCORES"))?;
        let (mc, mr) = dims(get("mesh")?).ok_or_else(|| bad("mesh", "expected COLSxROWS"))?;
        let l2: usize = get("l2")?
            .parse()
            .map_err(|_| bad("l2", "expected a bank count"))?;
        let mut builder = TopologyBuilder::new(blocks, cores)
            .mesh(mc, mr)
            .l2_banks_per_block(l2);
        match get("l3")? {
            "-" => {
                if blocks == 1 {
                    builder = builder.no_l3();
                }
            }
            spec => {
                let mut it = spec.split('x').map(|v| v.parse::<u64>());
                let mut next = || -> Result<u64, RequestError> {
                    it.next()
                        .and_then(|v| v.ok())
                        .ok_or(bad("l3", "expected BANKSxSIZExWAYSxRT"))
                };
                let (banks, size, ways, rt) = (next()?, next()?, next()?, next()?);
                builder = builder.l3(
                    hic_sim::CacheGeometry {
                        size_bytes: size as usize,
                        ways: ways as usize,
                        line_bytes: hic_sim::config::line_bytes(),
                    },
                    rt,
                    banks as usize,
                );
            }
        }
        let topology: Topology = builder.validate()?;
        let base = match scheme {
            Scheme::Intra(c) => Config::Intra(c),
            Scheme::Inter(c) => Config::Inter(c),
        };
        let config = base.with_topology(topology)?;

        let scale = Scale::parse(get("scale")?)
            .ok_or_else(|| bad("scale", &format!("unknown scale {:?}", fields["scale"])))?;
        let check = match get("check")? {
            "off" => CheckMode::Off,
            "report" => CheckMode::Report,
            "strict" => CheckMode::Strict,
            other => return Err(bad("check", &format!("unknown mode {other:?}"))),
        };
        let fault = match get("fault")? {
            "-" => None,
            spec => Some(
                FaultSpec::parse(spec)
                    .ok_or_else(|| bad("fault", "expected r<seed> or c<seed>"))?,
            ),
        };
        let engine = match get("engine")? {
            "-" => None,
            spec => Some(
                Scheduler::parse(spec)
                    .ok_or_else(|| bad("engine", &format!("unknown engine {spec:?}")))?,
            ),
        };
        let num = |k: &'static str| -> Result<Option<u64>, RequestError> {
            match get(k)? {
                "-" => Ok(None),
                v => v.parse().map(Some).map_err(|_| bad(k, "expected a number")),
            }
        };
        Ok(RunRequest {
            app,
            config,
            scale,
            check,
            fault,
            engine,
            plan_overrides: parse_plans(get("plans")?, config.num_threads())
                .map_err(|d| bad("plans", &d))?,
            watchdog_cycles: num("wdc")?,
            watchdog_wall_ms: num("wdw")?,
            budget_ms: num("budget")?,
        })
    }
}

fn scheme_key(s: Scheme) -> String {
    match s {
        Scheme::Intra(c) => format!("intra/{}", c.name()),
        Scheme::Inter(c) => format!("inter/{}", c.name()),
    }
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    use crate::config::{InterConfig, IntraConfig};
    let (family, name) = s.split_once('/')?;
    match family {
        "intra" => [
            IntraConfig::Hcc,
            IntraConfig::Dragon,
            IntraConfig::Base,
            IntraConfig::BM,
            IntraConfig::BI,
            IntraConfig::BMI,
        ]
        .into_iter()
        .find(|c| c.name() == name)
        .map(Scheme::Intra),
        "inter" => [
            InterConfig::Hcc,
            InterConfig::Dragon,
            InterConfig::Base,
            InterConfig::Addr,
            InterConfig::AddrL,
        ]
        .into_iter()
        .find(|c| c.name() == name)
        .map(Scheme::Inter),
        _ => None,
    }
}

fn check_key(mode: CheckMode) -> &'static str {
    match mode {
        CheckMode::Off => "off",
        CheckMode::Report => "report",
        CheckMode::Strict => "strict",
    }
}

fn engine_key(engine: Option<Scheduler>) -> String {
    match engine {
        None => "-".to_string(),
        Some(Scheduler::Linear) => "linear".to_string(),
        Some(Scheduler::Heap) => "heap".to_string(),
        Some(Scheduler::Sharded { shards: 0 }) => "sharded".to_string(),
        Some(Scheduler::Sharded { shards }) => format!("sharded:{shards}"),
    }
}

// Plan-override encoding: `-` for none, else `|`-separated site entries
// `SIDE!THREAD!SITE!WBOPS/INVOPS` where each op list is `,`-separated
// `START:WORDS:PEER` triples (`PEER` = thread id or `*` for unknown).
// Threads and sites with no substitution are simply absent.

fn plans_key(overrides: Option<&PlanOverrides>) -> String {
    let Some(o) = overrides else {
        return "-".to_string();
    };
    let ops = |ops: &[CommOp]| -> String {
        ops.iter()
            .map(|op| {
                format!(
                    "{}:{}:{}",
                    op.region.start.0,
                    op.region.words,
                    op.peer.map_or("*".to_string(), |p| p.0.to_string())
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut entries = Vec::new();
    for (side, table) in [("w", &o.wb), ("i", &o.inv)] {
        for (t, sites) in table.iter().enumerate() {
            for (k, plan) in sites.iter().enumerate() {
                if let Some(plan) = plan {
                    entries.push(format!(
                        "{side}!{t}!{k}!{}/{}",
                        ops(&plan.wb),
                        ops(&plan.inv)
                    ));
                }
            }
        }
    }
    if entries.is_empty() {
        "-".to_string()
    } else {
        entries.join("|")
    }
}

fn parse_plans(s: &str, nthreads: usize) -> Result<Option<PlanOverrides>, String> {
    if s == "-" {
        return Ok(None);
    }
    let parse_ops = |s: &str| -> Result<Vec<CommOp>, String> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|op| {
                let mut it = op.split(':');
                let mut next = || it.next().ok_or_else(|| format!("short op {op:?}"));
                let start: u64 = next()?
                    .parse()
                    .map_err(|_| format!("bad start in {op:?}"))?;
                let words: u64 = next()?
                    .parse()
                    .map_err(|_| format!("bad words in {op:?}"))?;
                let peer = match next()? {
                    "*" => None,
                    p => Some(ThreadId(
                        p.parse().map_err(|_| format!("bad peer in {op:?}"))?,
                    )),
                };
                Ok(CommOp {
                    region: Region::new(hic_mem::WordAddr(start), words),
                    peer,
                })
            })
            .collect()
    };
    let mut o = PlanOverrides::new(nthreads);
    for entry in s.split('|') {
        let mut it = entry.split('!');
        let mut next = || it.next().ok_or_else(|| format!("short entry {entry:?}"));
        let side = next()?.to_string();
        let t: usize = next()?
            .parse()
            .map_err(|_| format!("bad thread in {entry:?}"))?;
        let k: usize = next()?
            .parse()
            .map_err(|_| format!("bad site in {entry:?}"))?;
        if t >= nthreads {
            return Err(format!("thread {t} out of range for {nthreads} threads"));
        }
        let body = next()?;
        let (wb, inv) = body
            .split_once('/')
            .ok_or_else(|| format!("entry without '/': {entry:?}"))?;
        let plan = EpochPlan {
            wb: parse_ops(wb)?,
            inv: parse_ops(inv)?,
        };
        match side.as_str() {
            "w" => o.set_wb(t, k, plan),
            "i" => o.set_inv(t, k, plan),
            other => return Err(format!("unknown side {other:?}")),
        }
    }
    Ok(Some(o))
}

/// The four environment knobs, each parsed in exactly one place.
/// `Ok(None)` means "unset"; a set-but-malformed value is a typed
/// [`RequestError::BadEnv`] everywhere.
pub mod env {
    use super::{CheckMode, RequestError, Scheduler};

    fn var(name: &'static str) -> Option<String> {
        std::env::var(name).ok().filter(|v| !v.trim().is_empty())
    }

    /// Parse a `HIC_CHECK`-shaped value: `off`, `report`, or `strict`.
    pub fn parse_check_mode(v: &str) -> Result<CheckMode, RequestError> {
        CheckMode::parse(v).ok_or_else(|| RequestError::BadEnv {
            var: "HIC_CHECK",
            value: v.to_string(),
            expected: "off|report|strict",
        })
    }

    /// Parse a `HIC_FAULTS`-shaped value: a decimal seed.
    pub fn parse_fault_seed(v: &str) -> Result<u64, RequestError> {
        v.trim().parse().map_err(|_| RequestError::BadEnv {
            var: "HIC_FAULTS",
            value: v.to_string(),
            expected: "a decimal seed",
        })
    }

    /// Parse a `HIC_ENGINE`-shaped value: `linear`, `heap`, `sharded`,
    /// or `sharded:N`.
    pub fn parse_engine(v: &str) -> Result<Scheduler, RequestError> {
        Scheduler::parse(v).ok_or_else(|| RequestError::BadEnv {
            var: "HIC_ENGINE",
            value: v.to_string(),
            expected: "linear|heap|sharded[:N]",
        })
    }

    /// Parse a `HIC_BENCH_BUDGET_MS`-shaped value: milliseconds.
    pub fn parse_bench_budget_ms(v: &str) -> Result<u64, RequestError> {
        v.trim().parse().map_err(|_| RequestError::BadEnv {
            var: "HIC_BENCH_BUDGET_MS",
            value: v.to_string(),
            expected: "milliseconds",
        })
    }

    /// `HIC_CHECK`: `off`, `report`, or `strict`.
    pub fn check_mode() -> Result<Option<CheckMode>, RequestError> {
        var("HIC_CHECK").map(|v| parse_check_mode(&v)).transpose()
    }

    /// `HIC_FAULTS`: a decimal seed for the canned recoverable plan.
    pub fn fault_seed() -> Result<Option<u64>, RequestError> {
        var("HIC_FAULTS").map(|v| parse_fault_seed(&v)).transpose()
    }

    /// Parse a `HIC_RECOVER`-shaped value: `0`/`false` or `1`/`true`.
    pub fn parse_recover(v: &str) -> Result<bool, RequestError> {
        match v.trim() {
            "1" | "true" => Ok(true),
            "0" | "false" => Ok(false),
            _ => Err(RequestError::BadEnv {
                var: "HIC_RECOVER",
                value: v.to_string(),
                expected: "0|1|false|true",
            }),
        }
    }

    /// `HIC_RECOVER`: upgrade the `HIC_FAULTS` plan to dirty-line flips
    /// with epoch-checkpoint rollback recovery. Unset means off.
    pub fn recover() -> Result<bool, RequestError> {
        var("HIC_RECOVER")
            .map(|v| parse_recover(&v))
            .transpose()
            .map(|o| o.unwrap_or(false))
    }

    /// `HIC_ENGINE`: `linear`, `heap`, `sharded`, or `sharded:N`.
    pub fn engine() -> Result<Option<Scheduler>, RequestError> {
        var("HIC_ENGINE").map(|v| parse_engine(&v)).transpose()
    }

    /// `HIC_BENCH_BUDGET_MS`: the bench harness's per-measurement time
    /// budget in milliseconds.
    pub fn bench_budget_ms() -> Result<Option<u64>, RequestError> {
        var("HIC_BENCH_BUDGET_MS")
            .map(|v| parse_bench_budget_ms(&v))
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterConfig, IntraConfig};

    #[test]
    fn scale_names_round_trip() {
        for s in Scale::ALL {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
        assert!(Scale::Test < Scale::Small && Scale::Large < Scale::Paper);
    }

    #[test]
    fn fault_spec_keys_round_trip_and_do_not_collide() {
        for spec in [
            FaultSpec::Recoverable { seed: 7 },
            FaultSpec::Corrupting { seed: 7 },
            FaultSpec::CorruptingRecover { seed: 7 },
        ] {
            assert_eq!(FaultSpec::parse(&spec.key()), Some(spec));
        }
        // "cr7" must not parse as Corrupting with a mangled seed.
        assert_eq!(
            FaultSpec::parse("cr7"),
            Some(FaultSpec::CorruptingRecover { seed: 7 })
        );
        assert_eq!(
            FaultSpec::parse("r7"),
            Some(FaultSpec::Recoverable { seed: 7 })
        );
        assert_eq!(FaultSpec::parse("x7"), None);
        let recover = FaultSpec::CorruptingRecover { seed: 7 };
        assert!(recover.plan().recover && recover.plan().flip_dirty);
        assert!(!FaultSpec::Corrupting { seed: 7 }.plan().recover);
    }

    #[test]
    fn plain_key_round_trips() {
        let req = RunRequest::new("FFT", Config::Intra(IntraConfig::BMI), Scale::Test);
        let key = req.cache_key();
        let back = RunRequest::parse_key(&key).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.cache_key(), key);
    }

    #[test]
    fn loaded_key_round_trips() {
        let mut req = RunRequest::new("Jacobi", Config::Inter(InterConfig::AddrL), Scale::Medium);
        req.check = CheckMode::Strict;
        req.fault = Some(FaultSpec::Corrupting { seed: 7 });
        req.engine = Some(Scheduler::Sharded { shards: 4 });
        req.watchdog_cycles = Some(1_000_000);
        req.watchdog_wall_ms = Some(30_000);
        req.budget_ms = Some(200);
        let mut o = PlanOverrides::new(req.config.num_threads());
        o.set_wb(
            0,
            2,
            EpochPlan::new()
                .with_wb(CommOp::known(
                    Region::new(hic_mem::WordAddr(64), 16),
                    ThreadId(3),
                ))
                .with_wb(CommOp::unknown(Region::new(hic_mem::WordAddr(128), 8))),
        );
        o.set_inv(5, 0, EpochPlan::new());
        req.plan_overrides = Some(o);

        let key = req.cache_key();
        let back = RunRequest::parse_key(&key).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.cache_key(), key);
    }

    #[test]
    fn distinct_requests_have_distinct_keys() {
        let base = RunRequest::new("FFT", Config::Intra(IntraConfig::BMI), Scale::Test);
        let mut variants = vec![base.clone()];
        variants.push(RunRequest::new(
            "FFT",
            Config::Intra(IntraConfig::Base),
            Scale::Test,
        ));
        variants.push(RunRequest::new(
            "FFT",
            Config::Intra(IntraConfig::BMI),
            Scale::Small,
        ));
        let mut checked = base.clone();
        checked.check = CheckMode::Report;
        variants.push(checked);
        let mut faulted = base.clone();
        faulted.fault = Some(FaultSpec::Recoverable { seed: 1 });
        variants.push(faulted);
        let mut faulted2 = base.clone();
        faulted2.fault = Some(FaultSpec::Corrupting { seed: 1 });
        variants.push(faulted2);
        let mut faulted3 = base.clone();
        faulted3.fault = Some(FaultSpec::CorruptingRecover { seed: 1 });
        variants.push(faulted3);
        let keys: std::collections::HashSet<String> =
            variants.iter().map(|r| r.cache_key()).collect();
        assert_eq!(keys.len(), variants.len(), "key collision: {keys:?}");
    }

    #[test]
    fn malformed_keys_are_typed_errors() {
        assert!(matches!(
            RunRequest::parse_key("nope"),
            Err(RequestError::BadKey {
                field: "version",
                ..
            })
        ));
        let key = RunRequest::new("FFT", Config::Intra(IntraConfig::Base), Scale::Test)
            .cache_key()
            .replace("scale=test", "scale=galactic");
        assert!(matches!(
            RunRequest::parse_key(&key),
            Err(RequestError::BadKey { field: "scale", .. })
        ));
        let key = RunRequest::new("FFT", Config::Intra(IntraConfig::Base), Scale::Test)
            .cache_key()
            .replace("engine=-", "engine=warp");
        assert!(matches!(
            RunRequest::parse_key(&key),
            Err(RequestError::BadKey {
                field: "engine",
                ..
            })
        ));
    }

    #[test]
    fn env_values_parse_with_typed_errors() {
        // The parsers are tested on values directly — mutating the
        // process env in a unit test would race with other tests in this
        // binary. `from_env` is exercised end-to-end by
        // `tests/serve_api.rs`, which owns its process env.
        assert_eq!(env::parse_check_mode("report"), Ok(CheckMode::Report));
        assert_eq!(env::parse_fault_seed(" 42 "), Ok(42));
        assert_eq!(
            env::parse_engine("sharded:2"),
            Ok(Scheduler::Sharded { shards: 2 })
        );
        assert_eq!(env::parse_bench_budget_ms("50"), Ok(50));

        let err = env::parse_engine("sharded:x").unwrap_err();
        assert!(
            matches!(
                err,
                RequestError::BadEnv {
                    var: "HIC_ENGINE",
                    ..
                }
            ),
            "{err}"
        );
        assert!(env::parse_check_mode("loud").is_err());
        assert!(env::parse_fault_seed("abc").is_err());
        assert!(env::parse_bench_budget_ms("fast").is_err());
        assert_eq!(env::parse_recover("1"), Ok(true));
        assert_eq!(env::parse_recover("false"), Ok(false));
        assert!(matches!(
            env::parse_recover("yes"),
            Err(RequestError::BadEnv {
                var: "HIC_RECOVER",
                ..
            })
        ));
    }
}
