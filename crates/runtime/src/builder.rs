//! Program setup: allocate simulated data, declare synchronization
//! variables, initialize memory, then run.
//!
//! ```no_run
//! use hic_runtime::{Config, IntraConfig, ProgramBuilder};
//!
//! let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
//! let data = p.alloc(1024);
//! let bar = p.barrier();
//! let out = p.run(16, move |ctx| {
//!     let t = ctx.tid() as u64;
//!     ctx.write(data, t, ctx.tid() as u32);
//!     ctx.barrier(bar);
//! });
//! assert_eq!(out.peek(data, 3), 3);
//! ```

use std::sync::Arc;

use hic_check::{CheckMode, Diagnostics};
use hic_machine::{FaultPlan, Machine, RunError, RunStats, TrafficLedger};
use hic_mem::{f32_to_word, word_to_f32, BumpAllocator, Region, Word};
use hic_sim::Cycle;

use crate::config::{Config, Scheme};
use crate::ctx::{BarrierId, FlagId, LockId, LockInfo, RtShared, ThreadCtx};
use crate::engine::{run_threads, Scheduler, Transport};
use crate::plan::PlanOverrides;
use crate::record::ProgramRecord;

/// Builder for one simulated program run.
pub struct ProgramBuilder {
    config: Config,
    machine: Machine,
    alloc: BumpAllocator,
    locks: Vec<LockInfo>,
    transport: Transport,
    /// Explicit scheduler choice; `None` defers to the `HIC_ENGINE`
    /// environment variable (`linear`, `heap`, `sharded`, or
    /// `sharded:N` — how CI runs the whole suite under the parallel
    /// engine without code changes), which in turn defaults to
    /// [`Scheduler::Heap`].
    scheduler: Option<Scheduler>,
    /// Explicit sanitizer mode; `None` defers to the `HIC_CHECK`
    /// environment variable (how CI forces checking on without code
    /// changes), which in turn defaults to `Off`.
    check: Option<CheckMode>,
    /// Allocation names for sanitizer reports.
    regions: Vec<(Region, String)>,
    /// Barriers declared so far: (raw sync id, participants) — captured
    /// for [`ProgramBuilder::record`].
    barriers: Vec<(usize, usize)>,
    /// Plan substitutions from a static optimizer (`hic-lint`).
    overrides: Option<Arc<PlanOverrides>>,
    /// Explicit fault plan; `None` defers to the `HIC_FAULTS`
    /// environment variable (a decimal seed for
    /// [`FaultPlan::from_seed`]), which in turn defaults to no faults.
    fault: Option<FaultPlan>,
    /// Simulated-cycle watchdog budget for the run.
    watchdog_cycles: Option<Cycle>,
    /// Host wall-clock watchdog for the run, in milliseconds.
    watchdog_wall_ms: Option<u64>,
    /// Whether unset knobs fall back to the environment variables.
    /// `true` for hand-built runs (the historical behavior);
    /// [`ProgramBuilder::apply_request`] sets it to `false` because a
    /// [`RunRequest`] is complete by definition — a server running many
    /// jobs concurrently must not let process-global env state leak into
    /// them.
    env_fallback: bool,
}

impl ProgramBuilder {
    /// Create a builder for the given configuration (machine shape and
    /// coherence-management scheme follow from it).
    pub fn new(config: Config) -> ProgramBuilder {
        Self::with_machine_config(config, config.machine_config())
    }

    /// Create a builder with a customized machine (ablation studies:
    /// different MEB/IEB sizes, link latencies, cache geometries). The
    /// machine config must describe the same shape (intra/inter) as
    /// `config`.
    pub fn with_machine_config(config: Config, mc: hic_sim::MachineConfig) -> ProgramBuilder {
        assert_eq!(
            mc.is_hierarchical(),
            matches!(config.scheme(), Scheme::Inter(_)),
            "machine shape must match the configuration family"
        );
        let machine = if config.is_dragon() {
            Machine::dragon(mc)
        } else if config.is_coherent() {
            Machine::coherent(mc)
        } else {
            Machine::incoherent(mc)
        };
        ProgramBuilder {
            config,
            machine,
            alloc: BumpAllocator::new(),
            locks: Vec::new(),
            transport: Transport::default(),
            scheduler: None,
            check: None,
            regions: Vec::new(),
            barriers: Vec::new(),
            overrides: None,
            fault: None,
            watchdog_cycles: None,
            watchdog_wall_ms: None,
            env_fallback: true,
        }
    }

    /// Create a builder whose machine is the flat always-fresh reference
    /// backend (`hic_machine::RefBackend`) in the shape `config`
    /// prescribes. The runtime still inserts `config`'s WB/INV
    /// annotations; the reference backend completes them in zero cycles
    /// and can never serve a stale value. Property tests use this as the
    /// correctness oracle for cache-backed runs.
    pub fn with_reference_backend(config: Config) -> ProgramBuilder {
        let machine = Machine::reference(config.machine_config());
        ProgramBuilder {
            config,
            machine,
            alloc: BumpAllocator::new(),
            locks: Vec::new(),
            transport: Transport::default(),
            scheduler: None,
            check: None,
            regions: Vec::new(),
            barriers: Vec::new(),
            overrides: None,
            fault: None,
            watchdog_cycles: None,
            watchdog_wall_ms: None,
            env_fallback: true,
        }
    }

    /// Configure this run exactly as `req` describes: check mode, fault
    /// plan, scheduler, watchdogs, and plan overrides, all set
    /// explicitly. Environment fallback is disabled — the request is the
    /// complete description, so two runs of the same request behave
    /// identically no matter what `HIC_*` variables the process carries.
    /// (The builder must already have been constructed with
    /// `req.config()`; the request's app name and scale are the caller's
    /// concern.)
    pub fn apply_request(&mut self, req: &crate::request::RunRequest) -> &mut Self {
        debug_assert_eq!(self.config, req.config());
        self.check = Some(req.check);
        self.fault = req.fault_plan();
        self.scheduler = Some(req.engine.unwrap_or_default());
        self.watchdog_cycles = req.watchdog_cycles;
        self.watchdog_wall_ms = req.watchdog_wall_ms;
        self.overrides = req.plan_overrides.clone().map(Arc::new);
        self.env_fallback = false;
        self
    }

    pub fn config(&self) -> Config {
        self.config
    }

    /// Select how threads ship ops to the engine (default:
    /// [`Transport::Batched`] with a 64-op cap). Simulated results are
    /// identical across transports; only host-side round-trip counts in
    /// `stats.engine` differ.
    pub fn transport(&mut self, t: Transport) -> &mut Self {
        self.transport = t;
        self
    }

    /// Select how the engine picks the next core, overriding the
    /// `HIC_ENGINE` environment variable (default:
    /// [`Scheduler::Heap`]). Simulated results are identical across
    /// schedulers; the heap is O(log ncores) per op instead of
    /// O(ncores), and [`Scheduler::Sharded`] executes core-local ops in
    /// parallel on the host.
    pub fn scheduler(&mut self, s: Scheduler) -> &mut Self {
        self.scheduler = Some(s);
        self
    }

    /// Number of hardware threads available.
    pub fn num_threads(&self) -> usize {
        self.config.num_threads()
    }

    /// Allocate a line-aligned region of `words` words.
    pub fn alloc(&mut self, words: u64) -> Region {
        let r = self.alloc.alloc(words);
        self.regions.push((r, format!("r{}", self.regions.len())));
        r
    }

    /// Allocate a line-aligned region with a name that sanitizer
    /// diagnostics use when reporting addresses inside it.
    pub fn alloc_named(&mut self, name: &str, words: u64) -> Region {
        let r = self.alloc.alloc(words);
        self.regions.push((r, name.to_string()));
        r
    }

    /// Allocate without line alignment (arrays may share lines; used by
    /// false-sharing studies).
    pub fn alloc_packed(&mut self, words: u64) -> Region {
        let r = self.alloc.alloc_packed(words);
        self.regions.push((r, format!("r{}", self.regions.len())));
        r
    }

    /// Enable or disable the incoherence sanitizer for this run,
    /// overriding the `HIC_CHECK` environment variable. The sanitizer
    /// only has effect on incoherent backends; coherent and reference
    /// machines never produce stale values to detect.
    pub fn check_mode(&mut self, mode: CheckMode) -> &mut Self {
        self.check = Some(mode);
        self
    }

    /// Inject a deterministic fault plan into this run, overriding the
    /// `HIC_FAULTS` environment variable. See [`FaultPlan`] for what can
    /// be perturbed; every perturbation is protocol-legal, so timing-only
    /// plans never change the results of race-free programs.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault = Some(plan);
        self
    }

    /// Fail the run with [`RunError::Hang`] if any core's simulated
    /// clock exceeds `budget` cycles.
    pub fn watchdog_cycles(&mut self, budget: Cycle) -> &mut Self {
        self.watchdog_cycles = Some(budget);
        self
    }

    /// Fail the run with [`RunError::Hang`] if it takes longer than `ms`
    /// milliseconds of host wall-clock time.
    pub fn watchdog_wall_ms(&mut self, ms: u64) -> &mut Self {
        self.watchdog_wall_ms = Some(ms);
        self
    }

    /// Initialize a region element (memory backdoor, before the run).
    pub fn init(&mut self, r: Region, i: u64, v: Word) {
        self.machine.poke_word(r.at(i), v);
    }

    /// Initialize a region element with an `f32`.
    pub fn init_f32(&mut self, r: Region, i: u64, v: f32) {
        self.init(r, i, f32_to_word(v));
    }

    /// Initialize a whole region from a function of the element index.
    pub fn init_with(&mut self, r: Region, f: impl Fn(u64) -> Word) {
        for i in 0..r.words {
            self.init(r, i, f(i));
        }
    }

    /// Declare a barrier over all `n` participating threads (call with the
    /// same `n` you pass to [`ProgramBuilder::run`]).
    pub fn barrier_of(&mut self, participants: usize) -> BarrierId {
        let id = self.machine.alloc_barrier(participants);
        self.barriers.push((id.0, participants));
        BarrierId(id)
    }

    /// Declare a barrier over every hardware thread.
    pub fn barrier(&mut self) -> BarrierId {
        let n = self.num_threads();
        self.barrier_of(n)
    }

    /// Declare a lock. `occ` states whether communication happens outside
    /// the critical sections it guards (§IV-A1: unless the programmer
    /// explicitly says otherwise, assume it does).
    pub fn lock_occ(&mut self, occ: bool) -> LockId {
        let id = self.machine.alloc_lock();
        self.locks.push(LockInfo { id, occ });
        LockId(self.locks.len() - 1)
    }

    /// Declare a lock with the conservative default (OCC assumed).
    pub fn lock(&mut self) -> LockId {
        self.lock_occ(true)
    }

    /// Declare a condition flag.
    pub fn flag(&mut self) -> FlagId {
        FlagId(self.machine.alloc_flag())
    }

    /// Keep a ring of the most recent `capacity` machine operations;
    /// readable after the run via `outcome.machine().trace()`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.machine.enable_trace(capacity);
    }

    /// Start a [`ProgramRecord`] for a program that will run on
    /// `nthreads` threads, seeded with this builder's configuration,
    /// allocation map, and declared barriers. The caller fills in the
    /// per-thread event sequences (see [`crate::record`]).
    pub fn record(&self, nthreads: usize) -> ProgramRecord {
        let mut rec = ProgramRecord::new(self.config, nthreads);
        rec.regions = self.regions.clone();
        rec.barriers = self.barriers.clone();
        rec
    }

    /// Install per-call-site plan substitutions (from `hic-lint`'s
    /// optimizer): thread `t`'s k-th `plan_wb` / `plan_inv` call issues
    /// the override instead of the plan the program passed, when one is
    /// set for that site.
    pub fn override_plans(&mut self, overrides: PlanOverrides) -> &mut Self {
        self.overrides = Some(Arc::new(overrides));
        self
    }

    /// Run `body` on `nthreads` threads. Thread `i` is pinned to core `i`.
    pub fn run<F>(mut self, nthreads: usize, body: F) -> RunOutcome
    where
        F: Fn(&ThreadCtx) + Send + Sync,
    {
        // Unset knobs fall back to the environment (unless an
        // `apply_request` made this run self-contained), parsed by the
        // one set of parsers in `crate::request::env`. A malformed value
        // is a loud typed error at every call site — historically some
        // sites ignored `HIC_ENGINE=sharded:x` and others panicked.
        let env_err = |e: crate::request::RequestError| -> ! { panic!("{e}") };
        let mode = self.check.unwrap_or_else(|| {
            if self.env_fallback {
                crate::request::env::check_mode().unwrap_or_else(|e| env_err(e))
            } else {
                None
            }
            .unwrap_or(CheckMode::Off)
        });
        if mode != CheckMode::Off {
            self.machine
                .enable_check(mode, std::mem::take(&mut self.regions));
        }
        let fault = self.fault.or_else(|| {
            if self.env_fallback {
                crate::request::env::fault_seed()
                    .unwrap_or_else(|e| env_err(e))
                    .map(FaultPlan::from_seed)
            } else {
                None
            }
        });
        if let Some(plan) = fault {
            self.machine.enable_faults(plan);
        }
        let scheduler = self
            .scheduler
            .or_else(|| {
                if self.env_fallback {
                    crate::request::env::engine().unwrap_or_else(|e| env_err(e))
                } else {
                    None
                }
            })
            .unwrap_or_default();
        let shared = Arc::new(RtShared {
            config: self.config,
            locks: self.locks,
            nthreads,
            transport: self.transport,
            scheduler,
            checking: self.machine.checking(),
            overrides: self.overrides,
            watchdog_cycles: self.watchdog_cycles,
            watchdog_wall_ms: self.watchdog_wall_ms,
        });
        let (machine, stats, error) = run_threads(self.machine, shared, nthreads, body);
        let diagnostics = machine.diagnostics();
        RunOutcome {
            machine,
            stats,
            diagnostics,
            error,
        }
    }
}

/// The results of a finished run — successful or not. Check
/// [`RunOutcome::result`] before trusting [`RunOutcome::peek`]: a failed
/// run's memory reflects the state at the point of failure.
pub struct RunOutcome {
    machine: Machine,
    stats: RunStats,
    diagnostics: Diagnostics,
    error: Option<RunError>,
}

impl RunOutcome {
    /// `Ok(())` if the run completed, or the typed [`RunError`] that
    /// killed it (deadlock, watchdog hang, strict-mode incoherence
    /// finding, unrecoverable fault corruption, app-thread death).
    pub fn result(&self) -> Result<(), &RunError> {
        match &self.error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The fault plan this run executed under, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.machine.fault_plan()
    }

    /// Cycle, stall, traffic, and instruction-count statistics. On a
    /// failed run these cover the simulation up to the failure point.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// What the incoherence sanitizer observed (empty and `Off` when
    /// checking was disabled). See [`crate::CheckMode`].
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// NoC traffic breakdown (shorthand for `stats().traffic`).
    pub fn traffic(&self) -> &TrafficLedger {
        &self.stats.traffic
    }

    /// Read element `i` of a region as a fresh reader would (after final
    /// writebacks).
    pub fn peek(&self, r: Region, i: u64) -> Word {
        self.machine.peek_word(r.at(i))
    }

    /// Read element `i` of a region as `f32`.
    pub fn peek_f32(&self, r: Region, i: u64) -> f32 {
        word_to_f32(self.peek(r, i))
    }

    /// Read a whole region.
    pub fn peek_all(&self, r: Region) -> Vec<Word> {
        (0..r.words).map(|i| self.peek(r, i)).collect()
    }

    /// The machine, for deeper inspection.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterConfig, IntraConfig};
    use crate::plan::{CommOp, EpochPlan};

    #[test]
    fn builder_quickstart_roundtrip() {
        let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
        let data = p.alloc(64);
        p.init_with(data, |i| i as Word);
        let bar = p.barrier_of(4);
        let out = p.run(4, move |ctx| {
            let t = ctx.tid() as u64;
            // Each thread squares its 16 elements.
            for i in (t * 16)..((t + 1) * 16) {
                let v = ctx.read(data, i);
                ctx.write(data, i, v * v);
            }
            ctx.barrier(bar);
        });
        for i in 0..64 {
            assert_eq!(out.peek(data, i), (i * i) as Word);
        }
        assert!(out.stats().total_cycles > 0);
    }

    /// The producer/consumer epoch pattern of Figure 2, on every intra
    /// config: correctness must be configuration-independent.
    #[test]
    fn figure2_pattern_correct_on_all_intra_configs() {
        for cfg in IntraConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let x = p.alloc(16);
            let bar = p.barrier_of(2);
            let out = p.run(2, move |ctx| {
                if ctx.tid() == 0 {
                    for i in 0..16 {
                        ctx.write(x, i, 100 + i as Word);
                    }
                }
                ctx.barrier(bar);
                if ctx.tid() == 1 {
                    let mut sum = 0u32;
                    for i in 0..16 {
                        sum += ctx.read(x, i);
                    }
                    // 100*16 + 0+..+15 = 1720.
                    assert_eq!(sum, 1720, "stale read under {}", cfg.name());
                }
            });
            drop(out);
        }
    }

    #[test]
    fn critical_sections_correct_on_all_intra_configs() {
        for cfg in IntraConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let counter = p.alloc(1);
            let l = p.lock_occ(false);
            let bar = p.barrier_of(8);
            let out = p.run(8, move |ctx| {
                for _ in 0..4 {
                    ctx.lock(l);
                    let v = ctx.read(counter, 0);
                    ctx.write(counter, 0, v + 1);
                    ctx.unlock(l);
                }
                ctx.barrier(bar);
            });
            assert_eq!(out.peek(counter, 0), 32, "lost update under {}", cfg.name());
        }
    }

    #[test]
    fn occ_task_queue_pattern_correct_on_all_intra_configs() {
        // Producer fills a task payload *outside* the critical section,
        // then publishes the index inside it (Figure 4d).
        for cfg in IntraConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let payload = p.alloc(64);
            let head = p.alloc(1);
            let l = p.lock(); // occ = true
            let bar = p.barrier_of(2);
            let out = p.run(2, move |ctx| {
                if ctx.tid() == 0 {
                    for task in 0..4u64 {
                        // Produce payload outside the CS.
                        for i in 0..16 {
                            ctx.write(payload, task * 16 + i, (task * 100 + i) as Word);
                        }
                        ctx.lock(l);
                        ctx.write(head, 0, task as Word + 1);
                        ctx.unlock(l);
                    }
                }
                ctx.barrier(bar);
                if ctx.tid() == 1 {
                    ctx.lock(l);
                    let avail = ctx.read(head, 0) as u64;
                    ctx.unlock(l);
                    assert_eq!(avail, 4);
                    // Consume payloads outside the CS: the OCC INV after
                    // the release makes them visible.
                    for task in 0..avail {
                        for i in 0..16 {
                            assert_eq!(
                                ctx.read(payload, task * 16 + i),
                                (task * 100 + i) as Word,
                                "stale task payload under {}",
                                cfg.name()
                            );
                        }
                    }
                }
            });
            drop(out);
        }
    }

    #[test]
    fn flags_correct_on_all_intra_configs() {
        for cfg in IntraConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let data = p.alloc(8);
            let f = p.flag();
            let out = p.run(2, move |ctx| {
                if ctx.tid() == 0 {
                    for i in 0..8 {
                        ctx.write(data, i, 42 + i as Word);
                    }
                    ctx.flag_set(f);
                } else {
                    ctx.flag_wait(f);
                    for i in 0..8 {
                        assert_eq!(ctx.read(data, i), 42 + i as Word, "under {}", cfg.name());
                    }
                }
            });
            drop(out);
        }
    }

    #[test]
    fn inter_epoch_plans_correct_on_all_inter_configs() {
        // Thread 0 (block 0) produces for thread 8 (block 1) and thread 1
        // (block 0): the classic Figure 7 shape.
        for cfg in InterConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Inter(cfg));
            let x = p.alloc(32);
            let bar = p.barrier_of(9);
            let out = p.run(9, move |ctx| {
                let producer_plan = EpochPlan::new()
                    .with_wb(CommOp::known(x.slice(0, 16), ctx.thread(1)))
                    .with_wb(CommOp::known(x.slice(16, 32), ctx.thread(8)));
                let consumer1 =
                    EpochPlan::new().with_inv(CommOp::known(x.slice(0, 16), ctx.thread(0)));
                let consumer8 =
                    EpochPlan::new().with_inv(CommOp::known(x.slice(16, 32), ctx.thread(0)));
                // Warm stale copies everywhere.
                if ctx.tid() == 1 {
                    ctx.read(x, 0);
                }
                if ctx.tid() == 8 {
                    ctx.read(x, 16);
                }
                ctx.plan_barrier(bar);
                if ctx.tid() == 0 {
                    for i in 0..32 {
                        ctx.write(x, i, 1000 + i as Word);
                    }
                    ctx.plan_wb(&producer_plan);
                }
                ctx.plan_barrier(bar);
                if ctx.tid() == 1 {
                    ctx.plan_inv(&consumer1);
                    for i in 0..16u64 {
                        assert_eq!(
                            ctx.read(x, i),
                            1000 + i as Word,
                            "same-block, {}",
                            cfg.name()
                        );
                    }
                }
                if ctx.tid() == 8 {
                    ctx.plan_inv(&consumer8);
                    for i in 16..32u64 {
                        assert_eq!(
                            ctx.read(x, i),
                            1000 + i as Word,
                            "cross-block, {}",
                            cfg.name()
                        );
                    }
                }
            });
            drop(out);
        }
    }

    #[test]
    fn trace_records_operations() {
        let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
        let data = p.alloc(4);
        p.enable_trace(64);
        let bar = p.barrier_of(2);
        let out = p.run(2, move |ctx| {
            ctx.write(data, ctx.tid() as u64, 1);
            ctx.barrier(bar);
        });
        let trace = out.machine().trace();
        assert!(trace.total_recorded() > 0);
        let evs = trace.events();
        // Stores, WB ALL / INV ALL around the barrier, barrier arrivals,
        // and Finish ops must all appear.
        assert!(evs
            .iter()
            .any(|e| matches!(e.op, hic_machine::Op::Store(_, _))));
        assert!(evs
            .iter()
            .any(|e| matches!(e.op, hic_machine::Op::BarrierArrive(_))));
        assert!(evs.iter().any(|e| e.blocked), "the first arriver parks");
        assert!(!trace.render().is_empty());
    }

    #[test]
    fn racy_flag_pattern_figure6() {
        for cfg in IntraConfig::ALL {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let data = p.alloc(4);
            let flag = p.alloc(1);
            let out = p.run(2, move |ctx| {
                if ctx.tid() == 0 {
                    ctx.write(data, 0, 99);
                    // Figure 6b: WB(data) then WB(flag) via racy_store.
                    ctx.coh(hic_core::CohInstr::wb(hic_core::Target::range(data)));
                    ctx.racy_store(flag.at(0), 1);
                } else {
                    // Spin on the racy flag.
                    let mut spins = 0;
                    while ctx.racy_load(flag.at(0)) == 0 {
                        ctx.compute(50);
                        spins += 1;
                        assert!(spins < 10_000, "flag never observed, {}", cfg.name());
                    }
                    ctx.coh(hic_core::CohInstr::inv(hic_core::Target::range(data)));
                    assert_eq!(ctx.read(data, 0), 99, "data race data, {}", cfg.name());
                }
            });
            drop(out);
        }
    }
}
