//! The message-passing half of programming model 1 (paper §IV).
//!
//! "A message sender and a message receiver communicate by writing to and
//! reading from an on-chip uncacheable shared buffer. Of course, sender
//! and receiver need to synchronize ... the library needs to handle buffer
//! overflows. In communication with multiple recipients such as a
//! broadcast, there is no need to make multiple copies; the sender only
//! needs to perform a single write."
//!
//! [`MpiWorld`] allocates one mailbox per ordered rank pair plus one
//! broadcast buffer per root. Every mailbox word is accessed *only*
//! uncacheably (`LoadUnc` / `StoreUnc`), so no cached copy can go stale —
//! this is exactly why the paper routes MPI through uncacheable storage.
//! Messages longer than the mailbox capacity are chunked (the library's
//! overflow handling).

use hic_mem::{Region, Word};

use crate::builder::ProgramBuilder;
use crate::ctx::{BarrierId, ThreadCtx};

/// Mailbox status word values.
const EMPTY: Word = 0;

/// Per-ordered-pair mailbox: a status word plus a payload area.
#[derive(Debug, Clone, Copy)]
struct Mailbox {
    /// Word 0: 0 = empty, n = a chunk of n payload words is present.
    status: Region,
    payload: Region,
}

/// Communicator handles for an `n`-rank message-passing program.
///
/// Build with [`MpiWorld::new`] *before* `ProgramBuilder::run`, then move
/// (it is `Copy`-free but cheap to clone) into the thread closure.
#[derive(Debug, Clone)]
pub struct MpiWorld {
    ranks: usize,
    capacity: u64,
    /// `boxes[src * ranks + dst]`.
    boxes: Vec<Mailbox>,
    /// One broadcast payload buffer per root, plus a generation counter
    /// the readers poll.
    bcast: Vec<Mailbox>,
    /// Barrier used by collectives.
    bar: BarrierId,
}

impl MpiWorld {
    /// Allocate the communication structures for `ranks` ranks with
    /// `capacity` payload words per mailbox.
    pub fn new(p: &mut ProgramBuilder, ranks: usize, capacity: u64) -> MpiWorld {
        assert!(ranks >= 1 && capacity >= 1);
        let mut boxes = Vec::with_capacity(ranks * ranks);
        for _ in 0..ranks * ranks {
            let status = p.alloc(1);
            let payload = p.alloc(capacity);
            p.init(status, 0, EMPTY);
            boxes.push(Mailbox { status, payload });
        }
        let mut bcast = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let status = p.alloc(1);
            let payload = p.alloc(capacity);
            p.init(status, 0, EMPTY);
            bcast.push(Mailbox { status, payload });
        }
        let bar = p.barrier_of(ranks);
        MpiWorld {
            ranks,
            capacity,
            boxes,
            bcast,
            bar,
        }
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn mailbox(&self, src: usize, dst: usize) -> Mailbox {
        assert!(src < self.ranks && dst < self.ranks, "rank out of range");
        self.boxes[src * self.ranks + dst]
    }

    /// Spin (uncacheably — each poll is a shared-cache round trip, which
    /// is why real machines queue these requests in the controller) until
    /// the status word passes `pred`; returns its value.
    fn wait_status(ctx: &ThreadCtx, status: Region, pred: impl Fn(Word) -> bool) -> Word {
        loop {
            let v = ctx.load_unc(status.at(0));
            if pred(v) {
                return v;
            }
            // Back off a little between polls.
            ctx.compute(20);
        }
    }

    /// Blocking send: chunks `data` through the (src=me, dst) mailbox.
    pub fn send(&self, ctx: &ThreadCtx, dst: usize, data: &[Word]) {
        let me = ctx.tid();
        assert_ne!(me, dst, "send to self");
        let mb = self.mailbox(me, dst);
        for chunk in data.chunks(self.capacity as usize) {
            // Wait until the receiver drained the previous chunk.
            Self::wait_status(ctx, mb.status, |v| v == EMPTY);
            for (i, w) in chunk.iter().enumerate() {
                ctx.store_unc(mb.payload.at(i as u64), *w);
            }
            ctx.store_unc(mb.status.at(0), chunk.len() as Word);
        }
    }

    /// Blocking receive of exactly `len` words from `src`.
    pub fn recv(&self, ctx: &ThreadCtx, src: usize, len: usize) -> Vec<Word> {
        let me = ctx.tid();
        assert_ne!(me, src, "recv from self");
        let mb = self.mailbox(src, me);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let n = Self::wait_status(ctx, mb.status, |v| v != EMPTY) as usize;
            assert!(
                out.len() + n <= len,
                "protocol error: sender sent more than the receiver expects"
            );
            for i in 0..n {
                out.push(ctx.load_unc(mb.payload.at(i as u64)));
            }
            ctx.store_unc(mb.status.at(0), EMPTY);
        }
        out
    }

    /// Broadcast from `root`: a single write, every receiver reads the
    /// same uncacheable location (§IV: "there is no need to make multiple
    /// copies"). Message must fit the mailbox capacity.
    pub fn bcast(&self, ctx: &ThreadCtx, root: usize, data: &mut Vec<Word>) {
        assert!(
            data.len() as u64 <= self.capacity,
            "bcast exceeds mailbox capacity"
        );
        let mb = self.bcast[root];
        if ctx.tid() == root {
            for (i, w) in data.iter().enumerate() {
                ctx.store_unc(mb.payload.at(i as u64), *w);
            }
            ctx.store_unc(mb.status.at(0), data.len() as Word);
        }
        // Everyone synchronizes, then readers pull from the single copy.
        ctx.plan_barrier(self.bar);
        if ctx.tid() != root {
            let n = ctx.load_unc(mb.status.at(0)) as usize;
            data.clear();
            for i in 0..n {
                data.push(ctx.load_unc(mb.payload.at(i as u64)));
            }
        }
        // Leave the buffer reusable.
        ctx.plan_barrier(self.bar);
        if ctx.tid() == root {
            ctx.store_unc(mb.status.at(0), EMPTY);
        }
    }

    /// Sum-reduce one word to `root` (gather through the mailboxes).
    pub fn reduce_sum(&self, ctx: &ThreadCtx, root: usize, value: Word) -> Option<Word> {
        if ctx.tid() == root {
            let mut acc = value;
            for src in 0..self.ranks {
                if src != root {
                    acc = acc.wrapping_add(self.recv(ctx, src, 1)[0]);
                }
            }
            Some(acc)
        } else {
            self.send(ctx, root, &[value]);
            None
        }
    }

    /// Barrier over all ranks.
    pub fn barrier(&self, ctx: &ThreadCtx) {
        ctx.plan_barrier(self.bar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, InterConfig, IntraConfig};

    fn worlds() -> Vec<Config> {
        vec![
            Config::Intra(IntraConfig::Base),
            Config::Intra(IntraConfig::Hcc),
            Config::Inter(InterConfig::Base),
            Config::Inter(InterConfig::Hcc),
        ]
    }

    #[test]
    fn pingpong_roundtrip() {
        for cfg in worlds() {
            let mut p = ProgramBuilder::new(cfg);
            let world = MpiWorld::new(&mut p, 2, 8);
            let out = p.run(2, move |ctx| {
                if ctx.tid() == 0 {
                    world.send(ctx, 1, &[10, 20, 30]);
                    let back = world.recv(ctx, 1, 3);
                    assert_eq!(back, vec![11, 21, 31], "under {}", cfg.name());
                } else {
                    let got = world.recv(ctx, 0, 3);
                    let reply: Vec<Word> = got.iter().map(|w| w + 1).collect();
                    world.send(ctx, 0, &reply);
                }
            });
            assert!(out.stats().total_cycles > 0);
        }
    }

    #[test]
    fn long_messages_are_chunked() {
        let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
        let world = MpiWorld::new(&mut p, 2, 4); // tiny mailbox: forces chunking
        let msg: Vec<Word> = (0..23).collect();
        let want = msg.clone();
        let out = p.run(2, move |ctx| {
            if ctx.tid() == 0 {
                world.send(ctx, 1, &msg);
            } else {
                assert_eq!(world.recv(ctx, 0, 23), want);
            }
        });
        assert!(out.stats().total_cycles > 0);
    }

    #[test]
    fn broadcast_single_copy() {
        for cfg in [
            Config::Inter(InterConfig::Base),
            Config::Inter(InterConfig::Hcc),
        ] {
            let mut p = ProgramBuilder::new(cfg);
            let world = MpiWorld::new(&mut p, 8, 16);
            let out = p.run(8, move |ctx| {
                let mut data = if ctx.tid() == 3 {
                    vec![7, 8, 9]
                } else {
                    Vec::new()
                };
                world.bcast(ctx, 3, &mut data);
                assert_eq!(
                    data,
                    vec![7, 8, 9],
                    "rank {} under {}",
                    ctx.tid(),
                    cfg.name()
                );
            });
            assert!(out.stats().total_cycles > 0);
        }
    }

    #[test]
    fn reduce_sums_all_ranks() {
        let mut p = ProgramBuilder::new(Config::Inter(InterConfig::Base));
        let world = MpiWorld::new(&mut p, 8, 4);
        let total = std::sync::atomic::AtomicU32::new(0);
        let totr = &total;
        p.run(8, move |ctx| {
            if let Some(sum) = world.reduce_sum(ctx, 0, ctx.tid() as Word + 1) {
                totr.store(sum, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 36); // 1+..+8
    }

    #[test]
    fn many_messages_reuse_mailboxes() {
        let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
        let world = MpiWorld::new(&mut p, 4, 4);
        let out = p.run(4, move |ctx| {
            // Ring: each rank sends 5 numbered messages to the next rank.
            let next = (ctx.tid() + 1) % 4;
            let prev = (ctx.tid() + 3) % 4;
            for k in 0..5u32 {
                if ctx.tid() % 2 == 0 {
                    world.send(ctx, next, &[ctx.tid() as Word * 100 + k]);
                    let got = world.recv(ctx, prev, 1);
                    assert_eq!(got[0], prev as Word * 100 + k);
                } else {
                    let got = world.recv(ctx, prev, 1);
                    assert_eq!(got[0], prev as Word * 100 + k);
                    world.send(ctx, next, &[ctx.tid() as Word * 100 + k]);
                }
            }
        });
        assert!(out.stats().total_cycles > 0);
    }
}
