//! Programming-model runtimes for the hardware-incoherent machine.
//!
//! This crate provides what the paper's §IV and §V call the "programming
//! approaches": applications are ordinary Rust closures running on real OS
//! threads, but every memory access and synchronization goes through a
//! [`ThreadCtx`] into the simulated machine. The runtime inserts the WB /
//! INV instructions around synchronization operations according to the
//! configuration under evaluation (Table II):
//!
//! * intra-block: `Base`, `B+M`, `B+I`, `B+M+I`, `HCC`;
//! * inter-block: `Base`, `Addr`, `Addr+L`, `HCC`.
//!
//! Execution is deterministic: the engine (in [`engine`]) processes the
//! pending operation of the runnable core with the smallest local time, so
//! all machine transitions happen in global simulated-time order
//! (conservative execution-driven simulation; DESIGN.md §2). Threads ship
//! ops to the engine over a configurable [`Transport`]: batched by
//! default, with a synchronous one-message-per-op mode as the reference —
//! both produce bit-identical simulated results.

pub mod builder;
pub mod config;
pub mod ctx;
pub mod engine;
pub mod mpi;
pub mod plan;
pub mod record;
pub mod request;
pub mod sharded;

pub use builder::{ProgramBuilder, RunOutcome};
pub use config::{Config, InterConfig, IntraConfig, Scheme};
pub use ctx::{BarrierId, BarrierOpts, FlagId, FlagOpts, LockId, SyncData, ThreadCtx};
pub use engine::{Scheduler, Transport};
pub use hic_check::{CheckMode, Diagnostics, Finding, FindingKind};
pub use hic_machine::{FaultPlan, ResilienceStats, RunError};
pub use mpi::MpiWorld;
pub use plan::{coalesce_ops, CommOp, EpochPlan, PlanOverrides};
pub use record::{PlanOpRef, ProgramRecord, RecEvent, RecSync, RecThread};
pub use request::{FaultSpec, RequestError, RunRequest, Scale};
