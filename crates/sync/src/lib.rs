//! Synchronization support in the shared-cache controller (paper §III-D).
//!
//! Conventional spin-based synchronization relies on the coherence
//! protocol, which a hardware-incoherent hierarchy does not have. Following
//! Tera / IBM RP3 / Cedar, synchronization is instead implemented in the
//! controller of a shared cache: requests are uncacheable, the controller
//! queues them, and it responds only when the requester owns the lock, the
//! barrier is complete, or the flag condition is set.
//!
//! [`SyncController`] is the logical-time state machine: it receives
//! requests stamped with their arrival cycle and decides, deterministically,
//! when each core is granted. The timing simulator adds network latency on
//! both sides and charges the waiting time to the lock/barrier stall
//! categories.

pub mod table;

pub use table::{Grant, SyncController, SyncError, SyncId, SyncVar};
