//! The synchronization table.
//!
//! When a synchronization variable is declared, the shared-cache controller
//! allocates an entry in this table plus some storage in its local memory
//! (paper §III-D). Three primitives are provided: barriers, locks, and
//! condition flags.
//!
//! All decisions are deterministic: waiters are served in
//! (arrival-cycle, core-id) order, so equal simulations produce equal
//! grant schedules.

use hic_sim::{CoreId, Cycle};
use serde::{Deserialize, Serialize};

/// Handle to a synchronization variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SyncId(pub usize);

/// A grant: `core` may resume at `at` (controller-local time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    pub core: CoreId,
    pub at: Cycle,
}

/// Errors from misusing the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The id names no allocated variable.
    Unknown(SyncId),
    /// The variable exists but is not of the requested kind.
    WrongKind(SyncId, &'static str),
    /// A lock release by a core that does not own the lock.
    NotOwner(SyncId, CoreId, Option<CoreId>),
    /// A core issued a second request while already parked.
    AlreadyWaiting(SyncId, CoreId),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Unknown(id) => write!(f, "unknown sync variable {id:?}"),
            SyncError::WrongKind(id, k) => write!(f, "sync variable {id:?} is not a {k}"),
            SyncError::NotOwner(id, c, o) => {
                write!(f, "lock {id:?} released by {c}, but owner is {o:?}")
            }
            SyncError::AlreadyWaiting(id, c) => write!(f, "core {c} already waiting on {id:?}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// One synchronization variable.
#[derive(Debug, Clone)]
pub enum SyncVar {
    Barrier {
        participants: usize,
        /// Cores arrived so far this episode, with their arrival times.
        arrived: Vec<(CoreId, Cycle)>,
        /// Completed episodes (for stats / tests).
        episodes: u64,
    },
    Lock {
        owner: Option<CoreId>,
        /// FIFO of waiting acquirers.
        queue: Vec<(CoreId, Cycle)>,
        acquisitions: u64,
    },
    Flag {
        set: bool,
        waiters: Vec<(CoreId, Cycle)>,
        sets: u64,
    },
}

/// The controller's synchronization table.
#[derive(Debug, Clone, Default)]
pub struct SyncController {
    vars: Vec<SyncVar>,
}

impl SyncController {
    pub fn new() -> SyncController {
        SyncController::default()
    }

    /// Declare a barrier over `participants` cores.
    pub fn alloc_barrier(&mut self, participants: usize) -> SyncId {
        assert!(participants > 0);
        self.vars.push(SyncVar::Barrier {
            participants,
            arrived: Vec::new(),
            episodes: 0,
        });
        SyncId(self.vars.len() - 1)
    }

    /// Declare a lock.
    pub fn alloc_lock(&mut self) -> SyncId {
        self.vars.push(SyncVar::Lock {
            owner: None,
            queue: Vec::new(),
            acquisitions: 0,
        });
        SyncId(self.vars.len() - 1)
    }

    /// Declare a condition flag (initially clear).
    pub fn alloc_flag(&mut self) -> SyncId {
        self.vars.push(SyncVar::Flag {
            set: false,
            waiters: Vec::new(),
            sets: 0,
        });
        SyncId(self.vars.len() - 1)
    }

    /// Number of variables in the table.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    fn var(&mut self, id: SyncId) -> Result<&mut SyncVar, SyncError> {
        self.vars.get_mut(id.0).ok_or(SyncError::Unknown(id))
    }

    /// A core arrives at a barrier at `now`. Returns the grants if this
    /// arrival completes the episode (all participants released at the
    /// latest arrival time), or an empty vec if the core must wait.
    pub fn barrier_arrive(
        &mut self,
        id: SyncId,
        core: CoreId,
        now: Cycle,
    ) -> Result<Vec<Grant>, SyncError> {
        match self.var(id)? {
            SyncVar::Barrier {
                participants,
                arrived,
                episodes,
            } => {
                if arrived.iter().any(|&(c, _)| c == core) {
                    return Err(SyncError::AlreadyWaiting(id, core));
                }
                arrived.push((core, now));
                if arrived.len() == *participants {
                    let release = arrived.iter().map(|&(_, t)| t).max().unwrap_or(now);
                    let mut grants: Vec<Grant> = arrived
                        .drain(..)
                        .map(|(c, _)| Grant {
                            core: c,
                            at: release,
                        })
                        .collect();
                    grants.sort_by_key(|g| g.core);
                    *episodes += 1;
                    Ok(grants)
                } else {
                    Ok(Vec::new())
                }
            }
            _ => Err(SyncError::WrongKind(id, "barrier")),
        }
    }

    /// A core requests a lock at `now`. Returns the grant if the lock was
    /// free; otherwise the core queues (FIFO by arrival, core id breaking
    /// ties) and the grant arrives on a later release.
    pub fn lock_acquire(
        &mut self,
        id: SyncId,
        core: CoreId,
        now: Cycle,
    ) -> Result<Option<Grant>, SyncError> {
        match self.var(id)? {
            SyncVar::Lock {
                owner,
                queue,
                acquisitions,
            } => {
                if owner.is_none() && queue.is_empty() {
                    *owner = Some(core);
                    *acquisitions += 1;
                    Ok(Some(Grant { core, at: now }))
                } else {
                    if *owner == Some(core) || queue.iter().any(|&(c, _)| c == core) {
                        return Err(SyncError::AlreadyWaiting(id, core));
                    }
                    queue.push((core, now));
                    // Keep deterministic (arrival, core) order.
                    queue.sort_by_key(|&(c, t)| (t, c));
                    Ok(None)
                }
            }
            _ => Err(SyncError::WrongKind(id, "lock")),
        }
    }

    /// The owner releases the lock at `now`. Returns the grant for the next
    /// queued waiter, if any.
    pub fn lock_release(
        &mut self,
        id: SyncId,
        core: CoreId,
        now: Cycle,
    ) -> Result<Option<Grant>, SyncError> {
        match self.var(id)? {
            SyncVar::Lock {
                owner,
                queue,
                acquisitions,
            } => {
                if *owner != Some(core) {
                    return Err(SyncError::NotOwner(id, core, *owner));
                }
                if queue.is_empty() {
                    *owner = None;
                    Ok(None)
                } else {
                    let (next, req_t) = queue.remove(0);
                    *owner = Some(next);
                    *acquisitions += 1;
                    Ok(Some(Grant {
                        core: next,
                        at: now.max(req_t),
                    }))
                }
            }
            _ => Err(SyncError::WrongKind(id, "lock")),
        }
    }

    /// Set a condition flag at `now`. Returns grants releasing all waiters.
    pub fn flag_set(&mut self, id: SyncId, now: Cycle) -> Result<Vec<Grant>, SyncError> {
        match self.var(id)? {
            SyncVar::Flag { set, waiters, sets } => {
                *set = true;
                *sets += 1;
                let mut grants: Vec<Grant> = waiters
                    .drain(..)
                    .map(|(c, t)| Grant {
                        core: c,
                        at: now.max(t),
                    })
                    .collect();
                grants.sort_by_key(|g| g.core);
                Ok(grants)
            }
            _ => Err(SyncError::WrongKind(id, "flag")),
        }
    }

    /// Clear a condition flag (for reuse across phases).
    pub fn flag_clear(&mut self, id: SyncId) -> Result<(), SyncError> {
        match self.var(id)? {
            SyncVar::Flag { set, .. } => {
                *set = false;
                Ok(())
            }
            _ => Err(SyncError::WrongKind(id, "flag")),
        }
    }

    /// A core checks a flag at `now`. Grant immediately if set, else the
    /// core parks until `flag_set`.
    pub fn flag_wait(
        &mut self,
        id: SyncId,
        core: CoreId,
        now: Cycle,
    ) -> Result<Option<Grant>, SyncError> {
        match self.var(id)? {
            SyncVar::Flag { set, waiters, .. } => {
                if *set {
                    Ok(Some(Grant { core, at: now }))
                } else {
                    if waiters.iter().any(|&(c, _)| c == core) {
                        return Err(SyncError::AlreadyWaiting(id, core));
                    }
                    waiters.push((core, now));
                    Ok(None)
                }
            }
            _ => Err(SyncError::WrongKind(id, "flag")),
        }
    }

    /// Total completed barrier episodes / lock acquisitions / flag sets
    /// (stat hook for tests and traces).
    pub fn stats(&self, id: SyncId) -> u64 {
        match &self.vars[id.0] {
            SyncVar::Barrier { episodes, .. } => *episodes,
            SyncVar::Lock { acquisitions, .. } => *acquisitions,
            SyncVar::Flag { sets, .. } => *sets,
        }
    }

    /// Are any cores parked anywhere in the table? Used for deadlock
    /// detection in the simulator loop.
    pub fn has_waiters(&self) -> bool {
        self.vars.iter().any(|v| match v {
            SyncVar::Barrier { arrived, .. } => !arrived.is_empty(),
            SyncVar::Lock { queue, .. } => !queue.is_empty(),
            SyncVar::Flag { waiters, .. } => !waiters.is_empty(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut c = SyncController::new();
        let b = c.alloc_barrier(3);
        assert!(c.barrier_arrive(b, CoreId(0), 10).unwrap().is_empty());
        assert!(c.barrier_arrive(b, CoreId(1), 30).unwrap().is_empty());
        let grants = c.barrier_arrive(b, CoreId(2), 20).unwrap();
        assert_eq!(grants.len(), 3);
        assert!(
            grants.iter().all(|g| g.at == 30),
            "release at latest arrival"
        );
        assert_eq!(c.stats(b), 1);
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let mut c = SyncController::new();
        let b = c.alloc_barrier(2);
        c.barrier_arrive(b, CoreId(0), 1).unwrap();
        assert_eq!(c.barrier_arrive(b, CoreId(1), 2).unwrap().len(), 2);
        c.barrier_arrive(b, CoreId(1), 5).unwrap();
        let g = c.barrier_arrive(b, CoreId(0), 9).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|g| g.at == 9));
        assert_eq!(c.stats(b), 2);
    }

    #[test]
    fn double_barrier_arrival_is_an_error() {
        let mut c = SyncController::new();
        let b = c.alloc_barrier(2);
        c.barrier_arrive(b, CoreId(0), 1).unwrap();
        assert!(matches!(
            c.barrier_arrive(b, CoreId(0), 2),
            Err(SyncError::AlreadyWaiting(_, _))
        ));
    }

    #[test]
    fn free_lock_grants_immediately() {
        let mut c = SyncController::new();
        let l = c.alloc_lock();
        let g = c.lock_acquire(l, CoreId(3), 100).unwrap().unwrap();
        assert_eq!(
            g,
            Grant {
                core: CoreId(3),
                at: 100
            }
        );
    }

    #[test]
    fn contended_lock_grants_fifo_on_release() {
        let mut c = SyncController::new();
        let l = c.alloc_lock();
        c.lock_acquire(l, CoreId(0), 10).unwrap().unwrap();
        assert!(c.lock_acquire(l, CoreId(1), 20).unwrap().is_none());
        assert!(c.lock_acquire(l, CoreId(2), 15).unwrap().is_none());
        // Core 2 asked earlier; FIFO by arrival time.
        let g = c.lock_release(l, CoreId(0), 50).unwrap().unwrap();
        assert_eq!(g.core, CoreId(2));
        assert_eq!(g.at, 50);
        let g = c.lock_release(l, CoreId(2), 60).unwrap().unwrap();
        assert_eq!(g.core, CoreId(1));
        // Fully released.
        assert!(c.lock_release(l, CoreId(1), 70).unwrap().is_none());
        assert_eq!(c.stats(l), 3);
    }

    #[test]
    fn grant_time_never_precedes_request() {
        let mut c = SyncController::new();
        let l = c.alloc_lock();
        c.lock_acquire(l, CoreId(0), 10).unwrap();
        c.lock_acquire(l, CoreId(1), 100).unwrap();
        // Release before the waiter's own request time: grant at the
        // waiter's request time.
        let g = c.lock_release(l, CoreId(0), 40).unwrap().unwrap();
        assert_eq!(g.at, 100);
    }

    #[test]
    fn release_by_non_owner_is_an_error() {
        let mut c = SyncController::new();
        let l = c.alloc_lock();
        c.lock_acquire(l, CoreId(0), 1).unwrap();
        assert!(matches!(
            c.lock_release(l, CoreId(1), 2),
            Err(SyncError::NotOwner(_, _, Some(CoreId(0))))
        ));
    }

    #[test]
    fn equal_arrival_ties_break_by_core_id() {
        let mut c = SyncController::new();
        let l = c.alloc_lock();
        c.lock_acquire(l, CoreId(9), 0).unwrap();
        c.lock_acquire(l, CoreId(5), 7).unwrap();
        c.lock_acquire(l, CoreId(3), 7).unwrap();
        let g = c.lock_release(l, CoreId(9), 8).unwrap().unwrap();
        assert_eq!(g.core, CoreId(3));
    }

    #[test]
    fn flag_wait_parks_until_set() {
        let mut c = SyncController::new();
        let f = c.alloc_flag();
        assert!(c.flag_wait(f, CoreId(1), 10).unwrap().is_none());
        assert!(c.flag_wait(f, CoreId(2), 12).unwrap().is_none());
        let grants = c.flag_set(f, 30).unwrap();
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.at == 30));
        // Once set, waits sail through.
        let g = c.flag_wait(f, CoreId(3), 40).unwrap().unwrap();
        assert_eq!(g.at, 40);
        assert_eq!(c.stats(f), 1);
    }

    #[test]
    fn flag_clear_re_arms_the_flag() {
        let mut c = SyncController::new();
        let f = c.alloc_flag();
        c.flag_set(f, 1).unwrap();
        c.flag_clear(f).unwrap();
        assert!(c.flag_wait(f, CoreId(0), 2).unwrap().is_none());
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut c = SyncController::new();
        let b = c.alloc_barrier(2);
        let l = c.alloc_lock();
        assert!(matches!(
            c.lock_acquire(b, CoreId(0), 0),
            Err(SyncError::WrongKind(_, "lock"))
        ));
        assert!(matches!(
            c.flag_set(l, 0),
            Err(SyncError::WrongKind(_, "flag"))
        ));
        assert!(matches!(
            c.barrier_arrive(l, CoreId(0), 0),
            Err(SyncError::WrongKind(_, "barrier"))
        ));
    }

    #[test]
    fn unknown_id_is_an_error() {
        let mut c = SyncController::new();
        assert!(matches!(
            c.flag_set(SyncId(7), 0),
            Err(SyncError::Unknown(_))
        ));
    }

    #[test]
    fn has_waiters_tracks_parked_cores() {
        let mut c = SyncController::new();
        let b = c.alloc_barrier(2);
        assert!(!c.has_waiters());
        c.barrier_arrive(b, CoreId(0), 0).unwrap();
        assert!(c.has_waiters());
        c.barrier_arrive(b, CoreId(1), 0).unwrap();
        assert!(!c.has_waiters());
    }
}
