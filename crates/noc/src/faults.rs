//! Deterministic link-timing perturbation for the mesh.
//!
//! [`LinkFaults`] adds protocol-legal latency noise to every directed
//! link the mesh routes over: a static per-link jitter (modeling route
//! asymmetry or a marginal repeater) and transient traversal-windowed
//! slowdowns (modeling a link that is periodically degraded, e.g. by
//! near-threshold voltage droop — see PAPERS.md, Runnemede). Both are
//! pure functions of a seed and per-link traversal counts, so a faulted
//! run is exactly reproducible. Latency is the *only* thing perturbed:
//! no message is reordered, lost, or rerouted here, which is what makes
//! the perturbation legal for the incoherent protocol (correctness may
//! not depend on NoC timing, DESIGN.md §12).

use std::cell::Cell;

/// Stateless 64-bit mixer (SplitMix64 finalizer). Used to derive
/// per-link decisions from `(seed, key)` without a shared RNG stream,
/// so decisions are independent of the order links are queried in.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded per-link latency perturbation. Installed into a [`crate::Mesh`]
/// with [`crate::Mesh::set_faults`]; all latency queries then route
/// through `LinkFaults::extra`.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    seed: u64,
    /// Static extra cycles per directed link, uniform in `0..=jitter_max`.
    jitter_max: u64,
    /// Every `slow_period` traversals of a link, the next `slow_len`
    /// traversals are slowed by `slow_factor`. 0 disables slowdowns.
    slow_period: u64,
    slow_len: u64,
    /// Latency multiplier while a link is slowed (>= 1).
    slow_factor: u64,
    /// Per-directed-link traversal counts, indexed by the caller's key.
    /// `Cell` because latency queries take `&self`; the mesh lives behind
    /// the engine mutex, so only `Send` is required, never `Sync`.
    counters: Vec<Cell<u64>>,
}

impl LinkFaults {
    pub fn new(
        seed: u64,
        jitter_max: u64,
        slow_period: u64,
        slow_len: u64,
        slow_factor: u64,
    ) -> LinkFaults {
        assert!(
            slow_factor >= 1,
            "slow_factor is a multiplier, must be >= 1"
        );
        LinkFaults {
            seed,
            jitter_max,
            slow_period,
            slow_len,
            slow_factor,
            counters: Vec::new(),
        }
    }

    /// True when every amplitude is zero: installing this plan cannot
    /// change any latency.
    pub fn is_zero(&self) -> bool {
        self.jitter_max == 0 && (self.slow_period == 0 || self.slow_factor == 1)
    }

    /// Size the traversal-counter table for `n_keys` directed links.
    /// Called by the mesh when the faults are installed.
    pub(crate) fn size_for(&mut self, n_keys: usize) {
        self.counters = vec![Cell::new(0); n_keys];
    }

    /// Extra one-way cycles for one traversal of the directed link `key`
    /// whose fault-free latency is `base`. Local accesses (`base == 0`)
    /// cross no link and are never perturbed.
    pub(crate) fn extra(&self, key: usize, base: u64) -> u64 {
        if base == 0 {
            return 0;
        }
        let mut extra = 0;
        if self.jitter_max > 0 {
            extra += mix64(self.seed ^ 0xA5A5_0000 ^ key as u64) % (self.jitter_max + 1);
        }
        if self.slow_period > 0 && self.slow_factor > 1 {
            let n = self.counters[key].get();
            self.counters[key].set(n + 1);
            // Per-link phase offset so the whole mesh does not degrade in
            // lockstep.
            let phase = mix64(self.seed ^ 0x5A5A_0000 ^ key as u64) % self.slow_period;
            if (n + phase) % self.slow_period < self.slow_len {
                extra += base * (self.slow_factor - 1);
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amplitudes_never_perturb() {
        let mut f = LinkFaults::new(7, 0, 0, 0, 1);
        f.size_for(16);
        assert!(f.is_zero());
        for key in 0..16 {
            for _ in 0..10 {
                assert_eq!(f.extra(key, 8), 0);
            }
        }
    }

    #[test]
    fn local_access_is_never_perturbed() {
        let mut f = LinkFaults::new(7, 100, 2, 2, 8);
        f.size_for(4);
        assert_eq!(f.extra(0, 0), 0);
    }

    #[test]
    fn jitter_is_static_per_link_and_bounded() {
        let mut f = LinkFaults::new(42, 3, 0, 0, 1);
        f.size_for(64);
        for key in 0..64 {
            let first = f.extra(key, 8);
            assert!(first <= 3);
            assert_eq!(f.extra(key, 8), first, "jitter must be static per link");
        }
        // Some link must actually be jittered, else the knob is dead.
        assert!((0..64).any(|key| f.extra(key, 8) > 0));
    }

    #[test]
    fn slowdown_windows_scale_base_latency() {
        let mut f = LinkFaults::new(1, 0, 4, 2, 3);
        f.size_for(1);
        let extras: Vec<u64> = (0..16).map(|_| f.extra(0, 10)).collect();
        // 2 of every 4 traversals are slowed by (3-1)*base = 20.
        assert_eq!(extras.iter().filter(|&&e| e == 20).count(), 8);
        assert_eq!(extras.iter().filter(|&&e| e == 0).count(), 8);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let mk = || {
            let mut f = LinkFaults::new(99, 4, 3, 1, 2);
            f.size_for(8);
            (0..32).map(|i| f.extra(i % 8, 12)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
