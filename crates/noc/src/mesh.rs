//! 2D-mesh geometry and XY-routing hop computation.
//!
//! Tiles are laid out row-major on the smallest square-ish grid that fits
//! all cores. Each core tile hosts its private L1 plus one bank of the
//! shared cache (L2 banks are per-core in the paper's intra-block machine).
//! Memory controllers and L3 banks sit at the four corners ("connected to
//! each chip corner", Table III).

use crate::faults::LinkFaults;
use hic_sim::CoreId;
use serde::{Deserialize, Serialize};

/// A position on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    pub x: usize,
    pub y: usize,
}

impl Tile {
    /// Manhattan distance (number of XY-routed hops) to another tile.
    #[inline]
    pub fn hops_to(self, other: Tile) -> u64 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u64
    }
}

/// A 2D mesh hosting `n` core tiles.
///
/// With [`Mesh::set_faults`] installed, every latency query is perturbed
/// by the seeded [`LinkFaults`] model (the no-faults path is untouched).
/// The no-op serde derives ignore the runtime-only `faults` field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    n_tiles: usize,
    hop_cycles: u64,
    faults: Option<LinkFaults>,
}

impl Mesh {
    /// Build a mesh for `n` cores on the smallest square-ish grid that
    /// fits them. Machines should use [`Mesh::for_config`] instead, which
    /// honors the topology's explicit dimensions; this inference helper
    /// remains for tests and ad-hoc meshes.
    pub fn new(n: usize, hop_cycles: u64) -> Mesh {
        assert!(n > 0);
        let cols = (n as f64).sqrt().ceil() as usize;
        Mesh::with_dims(cols, n.div_ceil(cols), n, hop_cycles)
    }

    /// Build a mesh with explicit dimensions hosting `n` core tiles.
    pub fn with_dims(cols: usize, rows: usize, n: usize, hop_cycles: u64) -> Mesh {
        assert!(n > 0, "mesh needs at least one tile");
        assert!(cols * rows >= n, "{cols}x{rows} mesh cannot host {n} tiles");
        Mesh {
            cols,
            rows,
            n_tiles: n,
            hop_cycles,
            faults: None,
        }
    }

    /// The mesh a machine configuration describes: the topology's
    /// explicit (validated) dimensions, never inferred from core count.
    pub fn for_config(cfg: &hic_sim::MachineConfig) -> Mesh {
        let (cols, rows) = cfg.topology.mesh_dims();
        Mesh::with_dims(cols, rows, cfg.num_cores(), cfg.hop_cycles)
    }

    /// Install a seeded link-fault model. All subsequent latency queries
    /// are perturbed deterministically; traversal counters start at zero.
    pub fn set_faults(&mut self, mut faults: LinkFaults) {
        faults.size_for(self.key_stride() * self.key_stride());
        self.faults = Some(faults);
    }

    /// Directed-link key space: tiles `0..n_tiles` plus the four corners
    /// mapped to `n_tiles..n_tiles+4`.
    fn key_stride(&self) -> usize {
        self.n_tiles + 4
    }

    /// Fault perturbation for one traversal of the directed link from
    /// endpoint key `a` to endpoint key `b` with fault-free latency `base`.
    #[inline]
    fn perturb(&self, a: usize, b: usize, base: u64) -> u64 {
        match &self.faults {
            None => base,
            Some(f) => base + f.extra(a * self.key_stride() + b, base),
        }
    }

    /// Grid dimensions (columns, rows).
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Tile of core / bank `i` (row-major placement).
    pub fn tile(&self, i: usize) -> Tile {
        assert!(i < self.n_tiles, "tile index {i} out of {}", self.n_tiles);
        Tile {
            x: i % self.cols,
            y: i / self.cols,
        }
    }

    /// Tile of one of the four corners, indexed 0..4
    /// (NW, NE, SW, SE). Memory controllers and L3 banks live here.
    pub fn corner(&self, i: usize) -> Tile {
        match i % 4 {
            0 => Tile { x: 0, y: 0 },
            1 => Tile {
                x: self.cols - 1,
                y: 0,
            },
            2 => Tile {
                x: 0,
                y: self.rows - 1,
            },
            _ => Tile {
                x: self.cols - 1,
                y: self.rows - 1,
            },
        }
    }

    /// One-way hop count between two core tiles.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        self.tile(a).hops_to(self.tile(b))
    }

    /// One-way latency between two core tiles, cycles.
    pub fn latency(&self, a: usize, b: usize) -> u64 {
        self.perturb(a, b, self.hops(a, b) * self.hop_cycles)
    }

    /// Round-trip latency between two core tiles, cycles. The two legs
    /// are perturbed independently (a request and its reply traverse the
    /// directed links `a->b` and `b->a`).
    pub fn rt_latency(&self, a: usize, b: usize) -> u64 {
        self.latency(a, b) + self.latency(b, a)
    }

    /// One-way latency from core tile `a` to corner `c`, cycles.
    pub fn latency_to_corner(&self, a: usize, c: usize) -> u64 {
        let base = self.tile(a).hops_to(self.corner(c)) * self.hop_cycles;
        self.perturb(a, self.n_tiles + c % 4, base)
    }

    /// Round-trip latency from core tile `a` to corner `c`, cycles.
    pub fn rt_latency_to_corner(&self, a: usize, c: usize) -> u64 {
        let base = self.tile(a).hops_to(self.corner(c)) * self.hop_cycles;
        self.perturb(a, self.n_tiles + c % 4, base) + self.perturb(self.n_tiles + c % 4, a, base)
    }

    /// The nearest corner to a core tile (a request picks the closest
    /// memory controller).
    pub fn nearest_corner(&self, a: usize) -> usize {
        (0..4)
            .min_by_key(|&c| self.tile(a).hops_to(self.corner(c)))
            .expect("four corners")
    }

    /// Latency helper used by coherence: the farthest of a set of tiles
    /// from `from` (an invalidation round completes when the slowest ack
    /// returns).
    pub fn max_rt_latency<'a>(&self, from: usize, to: impl IntoIterator<Item = &'a usize>) -> u64 {
        to.into_iter()
            .map(|&t| self.rt_latency(from, t))
            .max()
            .unwrap_or(0)
    }

    /// Convenience: round trip from a core to an L2 bank where cores and
    /// banks share tiles (bank `b` is at tile `b`).
    pub fn core_to_bank_rt(&self, core: CoreId, bank: usize) -> u64 {
        self.rt_latency(core.0, bank)
    }

    pub fn hop_cycles(&self) -> u64 {
        self.hop_cycles
    }

    /// Conservative lookahead bound for parallel-in-host simulation: no
    /// interaction between distinct tiles completes in fewer simulated
    /// cycles than one mesh hop. Installed faults only ever *add* latency
    /// (see `installed_faults_only_add_latency`), so the bound holds on a
    /// faulted mesh too. A sharded event-domain engine may therefore run
    /// any core ahead of the global timeline by up to this many cycles
    /// without reordering cross-tile effects.
    pub fn min_hop_lookahead(&self) -> u64 {
        self.hop_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cores_make_a_4x4_grid() {
        let m = Mesh::new(16, 4);
        assert_eq!(m.dims(), (4, 4));
        assert_eq!(m.tile(0), Tile { x: 0, y: 0 });
        assert_eq!(m.tile(5), Tile { x: 1, y: 1 });
        assert_eq!(m.tile(15), Tile { x: 3, y: 3 });
    }

    #[test]
    fn eight_cores_make_a_3x3ish_grid() {
        let m = Mesh::new(8, 4);
        let (c, r) = m.dims();
        assert!(c * r >= 8);
        assert_eq!(c, 3);
    }

    #[test]
    fn local_tile_has_zero_network_latency() {
        let m = Mesh::new(16, 4);
        assert_eq!(m.rt_latency(5, 5), 0);
    }

    #[test]
    fn hop_latency_is_manhattan_times_hop_cycles() {
        let m = Mesh::new(16, 4);
        // Tile 0 = (0,0), tile 15 = (3,3): 6 hops each way.
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.latency(0, 15), 24);
        assert_eq!(m.rt_latency(0, 15), 48);
        // Symmetric.
        assert_eq!(m.rt_latency(15, 0), 48);
    }

    #[test]
    fn corners_are_distinct_on_4x4() {
        let m = Mesh::new(16, 4);
        let corners: std::collections::HashSet<_> = (0..4).map(|i| m.corner(i)).collect();
        assert_eq!(corners.len(), 4);
    }

    #[test]
    fn nearest_corner_for_corner_tile_is_itself() {
        let m = Mesh::new(16, 4);
        assert_eq!(m.corner(m.nearest_corner(0)), m.tile(0));
        // Tile 15 = (3,3) = SE corner.
        assert_eq!(m.corner(m.nearest_corner(15)), m.tile(15));
    }

    #[test]
    fn max_rt_latency_picks_farthest() {
        let m = Mesh::new(16, 4);
        let sharers = [1usize, 15usize];
        assert_eq!(m.max_rt_latency(0, sharers.iter()), m.rt_latency(0, 15));
        assert_eq!(m.max_rt_latency(0, [].iter()), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn tile_out_of_range_panics() {
        Mesh::new(4, 4).tile(4);
    }

    #[test]
    fn installed_faults_only_add_latency() {
        let mut m = Mesh::new(16, 4);
        let base: Vec<u64> = (0..16).map(|t| m.rt_latency(0, t)).collect();
        m.set_faults(LinkFaults::new(3, 5, 0, 0, 1));
        let faulted: Vec<u64> = (0..16).map(|t| m.rt_latency(0, t)).collect();
        for (b, f) in base.iter().zip(&faulted) {
            assert!(f >= b, "faults must never make a link faster");
        }
        assert!(
            base.iter().zip(&faulted).any(|(b, f)| f > b),
            "a nonzero jitter plan must perturb some link"
        );
        // Local accesses stay free.
        assert_eq!(m.rt_latency(5, 5), 0);
    }

    #[test]
    fn zero_amplitude_faults_are_latency_identical() {
        let mut m = Mesh::new(16, 4);
        let base: Vec<u64> = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| m.rt_latency(a, b))
            .collect();
        m.set_faults(LinkFaults::new(9, 0, 0, 0, 1));
        let zeroed: Vec<u64> = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| m.rt_latency(a, b))
            .collect();
        assert_eq!(base, zeroed);
        assert_eq!(m.rt_latency_to_corner(5, 3), 2 * m.latency_to_corner(5, 3));
    }

    #[test]
    fn min_hop_lookahead_bounds_every_cross_tile_latency() {
        let mut m = Mesh::new(16, 4);
        assert_eq!(m.min_hop_lookahead(), 4);
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert!(m.latency(a, b) >= m.min_hop_lookahead());
                }
            }
        }
        // Faults only add latency, so the bound survives installation.
        m.set_faults(LinkFaults::new(3, 5, 0, 0, 1));
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert!(m.latency(a, b) >= m.min_hop_lookahead());
                }
            }
        }
    }
}
