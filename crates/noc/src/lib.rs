//! On-chip network model: a 2D mesh with XY routing (paper Table III:
//! "2D mesh, 4 cycles/hop, 128-bit links") and a flit-accurate traffic
//! ledger broken down into the categories of paper Figure 10.
//!
//! The network is modeled as latency (hops x cycles/hop, each way) plus
//! accounting; link contention is not queued (see DESIGN.md §5 on the
//! timing-model substitution).

pub mod faults;
pub mod mesh;
pub mod traffic;

pub use faults::{mix64, LinkFaults};
pub use mesh::{Mesh, Tile};
pub use traffic::{TrafficCategory, TrafficLedger};
