//! Flit-level traffic accounting.
//!
//! Paper Figure 10 reports network traffic "in number of 128-bit flits",
//! broken into: traffic between the L2 cache and memory (*memory*), and
//! three L1<->L2 sources: *linefill* (read/write miss fills), *writeback*,
//! and *invalidations*. We add two bookkeeping categories the figure does
//! not plot: *sync* (synchronization request/response control flits) and
//! *l2l3* (L2<->L3 transfers in the inter-block machine), so the ledger is
//! complete for every machine.

use serde::{Deserialize, Serialize};

/// Category of a network transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// L1<->L2 line fills on read/write misses.
    Linefill,
    /// L1->L2 writebacks (dirty words or whole lines).
    Writeback,
    /// Coherence invalidation requests and acknowledgements. Always zero
    /// in the incoherent machine — self-invalidation is cache-local.
    Invalidation,
    /// L2<->memory (or L3<->memory) transfers.
    Memory,
    /// L2<->L3 transfers (inter-block machine only).
    L2L3,
    /// Synchronization control messages.
    Sync,
}

impl TrafficCategory {
    /// The four categories plotted in paper Figure 10, in stack order.
    pub const FIG10: [TrafficCategory; 4] = [
        TrafficCategory::Memory,
        TrafficCategory::Linefill,
        TrafficCategory::Writeback,
        TrafficCategory::Invalidation,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TrafficCategory::Linefill => "linefill",
            TrafficCategory::Writeback => "writeback",
            TrafficCategory::Invalidation => "invalidation",
            TrafficCategory::Memory => "memory",
            TrafficCategory::L2L3 => "l2-l3",
            TrafficCategory::Sync => "sync",
        }
    }
}

/// Running flit totals per category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    pub linefill: u64,
    pub writeback: u64,
    pub invalidation: u64,
    pub memory: u64,
    pub l2l3: u64,
    pub sync: u64,
}

impl TrafficLedger {
    pub fn new() -> TrafficLedger {
        TrafficLedger::default()
    }

    /// Add `flits` to `cat`.
    #[inline]
    pub fn add(&mut self, cat: TrafficCategory, flits: u64) {
        match cat {
            TrafficCategory::Linefill => self.linefill += flits,
            TrafficCategory::Writeback => self.writeback += flits,
            TrafficCategory::Invalidation => self.invalidation += flits,
            TrafficCategory::Memory => self.memory += flits,
            TrafficCategory::L2L3 => self.l2l3 += flits,
            TrafficCategory::Sync => self.sync += flits,
        }
    }

    /// Flits recorded under `cat`.
    #[inline]
    pub fn get(&self, cat: TrafficCategory) -> u64 {
        match cat {
            TrafficCategory::Linefill => self.linefill,
            TrafficCategory::Writeback => self.writeback,
            TrafficCategory::Invalidation => self.invalidation,
            TrafficCategory::Memory => self.memory,
            TrafficCategory::L2L3 => self.l2l3,
            TrafficCategory::Sync => self.sync,
        }
    }

    /// Total across all categories.
    pub fn total(&self) -> u64 {
        self.linefill + self.writeback + self.invalidation + self.memory + self.l2l3 + self.sync
    }

    /// Total across only the Figure 10 categories (what the paper plots).
    pub fn fig10_total(&self) -> u64 {
        TrafficCategory::FIG10.iter().map(|&c| self.get(c)).sum()
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &TrafficLedger) -> TrafficLedger {
        TrafficLedger {
            linefill: self.linefill + o.linefill,
            writeback: self.writeback + o.writeback,
            invalidation: self.invalidation + o.invalidation,
            memory: self.memory + o.memory,
            l2l3: self.l2l3 + o.l2l3,
            sync: self.sync + o.sync,
        }
    }
}

impl std::ops::AddAssign for TrafficLedger {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.merged(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut t = TrafficLedger::new();
        t.add(TrafficCategory::Linefill, 5);
        t.add(TrafficCategory::Memory, 10);
        t.add(TrafficCategory::Sync, 2);
        assert_eq!(t.get(TrafficCategory::Linefill), 5);
        assert_eq!(t.total(), 17);
        // Sync is excluded from the Figure 10 view.
        assert_eq!(t.fig10_total(), 15);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = TrafficLedger::new();
        a.add(TrafficCategory::Writeback, 3);
        let mut b = TrafficLedger::new();
        b.add(TrafficCategory::Writeback, 4);
        b.add(TrafficCategory::Invalidation, 1);
        a += b;
        assert_eq!(a.writeback, 7);
        assert_eq!(a.invalidation, 1);
    }

    #[test]
    fn fig10_categories_are_the_papers_four() {
        let labels: Vec<_> = TrafficCategory::FIG10.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["memory", "linefill", "writeback", "invalidation"]
        );
    }
}
