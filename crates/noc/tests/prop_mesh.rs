//! Property tests for the mesh: metric sanity (symmetry, identity,
//! triangle inequality) for any machine size, and ledger arithmetic.

use proptest::prelude::*;

use hic_noc::{Mesh, TrafficCategory, TrafficLedger};

proptest! {
    #[test]
    fn mesh_latency_is_a_metric(n in 1usize..64, hop in 1u64..16) {
        let m = Mesh::new(n, hop);
        for a in 0..n {
            prop_assert_eq!(m.latency(a, a), 0, "identity");
            for b in 0..n {
                prop_assert_eq!(m.latency(a, b), m.latency(b, a), "symmetry");
                prop_assert_eq!(m.rt_latency(a, b), 2 * m.latency(a, b));
                for c in 0..n {
                    prop_assert!(
                        m.latency(a, c) <= m.latency(a, b) + m.latency(b, c),
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn hops_scale_linearly_with_hop_cycles(n in 2usize..32, hop in 1u64..12) {
        let m1 = Mesh::new(n, 1);
        let mh = Mesh::new(n, hop);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(mh.latency(a, b), m1.latency(a, b) * hop);
            }
        }
    }

    #[test]
    fn nearest_corner_is_really_nearest(n in 1usize..64) {
        let m = Mesh::new(n, 4);
        for a in 0..n {
            let best = m.nearest_corner(a);
            for c in 0..4 {
                prop_assert!(
                    m.latency_to_corner(a, best) <= m.latency_to_corner(a, c),
                    "tile {a}: corner {best} must not be beaten by corner {c}"
                );
            }
        }
    }

    #[test]
    fn traffic_ledger_merge_is_commutative_and_total_additive(
        adds in proptest::collection::vec((0usize..6, 0u64..1000), 0..40)
    ) {
        let cats = [
            TrafficCategory::Linefill,
            TrafficCategory::Writeback,
            TrafficCategory::Invalidation,
            TrafficCategory::Memory,
            TrafficCategory::L2L3,
            TrafficCategory::Sync,
        ];
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        for (i, (cat, flits)) in adds.iter().enumerate() {
            if i % 2 == 0 {
                a.add(cats[*cat], *flits);
            } else {
                b.add(cats[*cat], *flits);
            }
        }
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        prop_assert_eq!(a.merged(&b).total(), a.total() + b.total());
    }
}
