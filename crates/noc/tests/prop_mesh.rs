//! Property tests for the mesh: metric sanity (symmetry, identity,
//! triangle inequality) for any machine size, and ledger arithmetic.
//!
//! Randomized with the in-repo deterministic `SplitMix64` (fixed seeds,
//! reproducible failures — re-run with the printed seed to debug).

use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::SplitMix64;

#[test]
fn mesh_latency_is_a_metric() {
    let mut rng = SplitMix64::new(0xA110);
    for case in 0..24 {
        let n = 1 + rng.below(63) as usize;
        let hop = 1 + rng.below(15);
        let m = Mesh::new(n, hop);
        for a in 0..n {
            assert_eq!(m.latency(a, a), 0, "identity (case {case}, n={n})");
            for b in 0..n {
                assert_eq!(
                    m.latency(a, b),
                    m.latency(b, a),
                    "symmetry (case {case}, n={n})"
                );
                assert_eq!(m.rt_latency(a, b), 2 * m.latency(a, b));
                for c in 0..n {
                    assert!(
                        m.latency(a, c) <= m.latency(a, b) + m.latency(b, c),
                        "triangle inequality (case {case}, n={n}, {a}->{b}->{c})"
                    );
                }
            }
        }
    }
}

#[test]
fn hops_scale_linearly_with_hop_cycles() {
    let mut rng = SplitMix64::new(0xA111);
    for case in 0..24 {
        let n = 2 + rng.below(30) as usize;
        let hop = 1 + rng.below(11);
        let m1 = Mesh::new(n, 1);
        let mh = Mesh::new(n, hop);
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    mh.latency(a, b),
                    m1.latency(a, b) * hop,
                    "case {case}: n={n}, hop={hop}, {a}->{b}"
                );
            }
        }
    }
}

#[test]
fn nearest_corner_is_really_nearest() {
    let mut rng = SplitMix64::new(0xA112);
    for case in 0..32 {
        let n = 1 + rng.below(63) as usize;
        let m = Mesh::new(n, 4);
        for a in 0..n {
            let best = m.nearest_corner(a);
            for c in 0..4 {
                assert!(
                    m.latency_to_corner(a, best) <= m.latency_to_corner(a, c),
                    "case {case}: tile {a}: corner {best} must not be beaten by corner {c}"
                );
            }
        }
    }
}

#[test]
fn traffic_ledger_merge_is_commutative_and_total_additive() {
    let cats = [
        TrafficCategory::Linefill,
        TrafficCategory::Writeback,
        TrafficCategory::Invalidation,
        TrafficCategory::Memory,
        TrafficCategory::L2L3,
        TrafficCategory::Sync,
    ];
    let mut rng = SplitMix64::new(0xA113);
    for _case in 0..64 {
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        for i in 0..rng.below(40) {
            let cat = cats[rng.below(cats.len() as u64) as usize];
            let flits = rng.below(1000);
            if i % 2 == 0 {
                a.add(cat, flits);
            } else {
                b.add(cat, flits);
            }
        }
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).total(), a.total() + b.total());
    }
}
