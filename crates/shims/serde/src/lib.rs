//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no crates.io access, so
//! the real `serde` cannot be fetched. Nothing in the workspace currently
//! *calls* a serializer — types are only annotated with
//! `#[derive(Serialize, Deserialize)]` so that figure/report rows keep a
//! stable machine-readable shape for when a real serializer is wired up.
//! This shim keeps those annotations compiling: the derive macros expand
//! to nothing and the traits are empty markers.
//!
//! To switch back to real serde, point the workspace `serde` entry at the
//! registry again; no source file needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name. The no-op derive does
/// not implement it; nothing in this workspace takes `T: Serialize`
/// bounds.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
