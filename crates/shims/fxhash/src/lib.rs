//! Offline stand-in for the `fxhash` / `rustc-hash` crates: the Fx
//! multiply-rotate hash used by the Rust compiler.
//!
//! Two properties matter to the simulator:
//!
//! * **Fast**: a few ALU ops per word, an order of magnitude cheaper than
//!   std's SipHash for the small integer keys (line addresses) that the
//!   coherence directories and park tables are keyed by.
//! * **Deterministic**: no per-process random state (std's `RandomState`
//!   seeds SipHash differently on every run). Identical runs produce
//!   identical table layouts, so any incidental iteration is repeatable
//!   and simulated results cannot depend on process entropy.
//!
//! Not DoS-resistant — fine for a simulator that only hashes its own
//! addresses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Zero-sized builder producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: rotate, xor, multiply per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 7) as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&((i * 7) as u32)));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef");
        let mut b = FxHasher::default();
        b.write(b"0123456789abcdef");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"0123456789abcdeg");
        assert_ne!(a.finish(), c.finish());
    }
}
