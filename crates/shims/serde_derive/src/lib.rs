//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the real `serde_derive` cannot be fetched. The codebase only *annotates*
//! types for serialization (there is no serializer wired up anywhere yet);
//! these derives therefore expand to nothing, keeping every annotation
//! source-compatible until a real serde can be swapped back in via one
//! line in the workspace `Cargo.toml`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
