//! Cholesky — left-looking column Cholesky factorization with a
//! lock-protected column queue and per-column completion flags
//! (SPLASH-2 Cholesky analogue).
//!
//! Communication patterns (Table I): **Outside critical** (main) — a
//! thread claims a column inside a tiny critical section, but the column
//! data it then consumes was produced *outside* earlier holders' critical
//! sections — plus **Barrier**, **Critical**, and **Flag** (the paper
//! converted Cholesky's busy-waiting to flag synchronization; so do we).

use hic_runtime::ProgramBuilder;
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Cholesky {
    scale: Scale,
    n: usize,
}

impl Cholesky {
    pub fn new(scale: Scale) -> Cholesky {
        let n = match scale {
            Scale::Test => 16,
            Scale::Small => 40,
            Scale::Medium => 64,
            Scale::Large => 128,
            Scale::Paper => 256, // stands in for tk15.O's factor dimension
        };
        Cholesky { scale, n }
    }

    /// SPD input: A = B·Bᵀ scaled + n·I, generated deterministically.
    fn input(&self) -> Vec<f32> {
        let n = self.n;
        let mut rng = SplitMix64::new(0xC0DE + n as u64);
        let b: Vec<f32> = (0..n * n).map(|_| rng.unit_f32() - 0.5).collect();
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0f32;
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s;
                a[j * n + i] = s;
            }
            a[i * n + i] += n as f32;
        }
        a
    }

    /// Host reference: left-looking column Cholesky, same op order.
    fn host_chol(&self, a: &mut [f32]) {
        let n = self.n;
        for k in 0..n {
            for j in 0..k {
                let ajk = a[k * n + j];
                for i in k..n {
                    a[i * n + k] -= a[i * n + j] * ajk;
                }
            }
            let d = a[k * n + k].sqrt();
            a[k * n + k] = d;
            for i in k + 1..n {
                a[i * n + k] /= d;
            }
        }
        // Zero the strictly upper triangle (not part of L).
        for i in 0..n {
            for j in i + 1..n {
                a[i * n + j] = 0.0;
            }
        }
    }
}

impl App for Cholesky {
    fn name(&self) -> &'static str {
        "Cholesky"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(
            &[SyncPattern::OutsideCritical],
            &[
                SyncPattern::Barrier,
                SyncPattern::Critical,
                SyncPattern::Flag,
            ],
        )
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let input = self.input();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        // Column-major storage: the column a task owns is contiguous, as
        // in SPLASH-2 Cholesky's panel layout. (Row-major would make every
        // line shared by 16 column owners — pathological false sharing no
        // real code uses.)
        let m = p.alloc((n * n) as u64);
        for i in 0..n {
            for j in 0..n {
                p.init_f32(m, (j * n + i) as u64, input[i * n + j]);
            }
        }
        let next_col = p.alloc(1); // shared queue head
        let queue_lock = p.lock(); // OCC: column data produced outside CS
        let done_flags: Vec<_> = (0..n).map(|_| p.flag()).collect();
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            ctx.barrier(bar);
            let idx = |i: usize, j: usize| (j * n + i) as u64; // column-major
                                                               // Thread-local memo of flags already waited for: once waited,
                                                               // the column is known final and fresh in this cache epoch
                                                               // discipline.
            let mut seen = vec![false; n];
            loop {
                // Claim the next column (critical section, Figure 4b).
                ctx.lock(queue_lock);
                let k = ctx.read(next_col, 0) as usize;
                if k < n {
                    ctx.write(next_col, 0, k as u32 + 1);
                }
                ctx.unlock(queue_lock);
                if k >= n {
                    break;
                }
                // Left-looking update: consume final columns j < k.
                for j in 0..k {
                    if !seen[j] {
                        ctx.flag_wait(done_flags[j]);
                        seen[j] = true;
                    }
                    let ajk = ctx.read_f32(m, idx(k, j));
                    if ajk != 0.0 {
                        for i in k..n {
                            let v = ctx.read_f32(m, idx(i, k)) - ctx.read_f32(m, idx(i, j)) * ajk;
                            ctx.write_f32(m, idx(i, k), v);
                            ctx.tick(2);
                        }
                    } else {
                        ctx.tick(1);
                    }
                }
                // Scale.
                let d = ctx.read_f32(m, idx(k, k)).sqrt();
                ctx.write_f32(m, idx(k, k), d);
                for i in k + 1..n {
                    let v = ctx.read_f32(m, idx(i, k)) / d;
                    ctx.write_f32(m, idx(i, k), v);
                    ctx.tick(4);
                }
                // Publish: the flag set performs the WB of the column.
                ctx.flag_set(done_flags[k]);
            }
            ctx.barrier(bar);
            // Zero upper triangle in parallel (own row chunk).
            let chunk = n.div_ceil(ctx.nthreads());
            let t = ctx.tid();
            for i in t * chunk..((t + 1) * chunk).min(n) {
                for j in i + 1..n {
                    ctx.write_f32(m, idx(i, j), 0.0);
                }
            }
            ctx.barrier(bar);
        });

        let mut href = self.input();
        self.host_chol(&mut href);
        let mut max_err = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let got = out.peek_f32(m, (j * n + i) as u64);
                let want = href[i * n + j];
                max_err = max_err.max((got - want).abs() / want.abs().max(1.0));
            }
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-3,
            format!("n={n}, max rel error {max_err:.2e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The host factor must satisfy L * L^T = A.
    #[test]
    fn host_cholesky_reconstructs_the_input() {
        let ch = Cholesky {
            scale: Scale::Test,
            n: 24,
        };
        let a0 = ch.input();
        let mut l = ch.input();
        ch.host_chol(&mut l);
        let n = 24;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0f64;
                for k in 0..n {
                    s += l[i * n + k] as f64 * l[j * n + k] as f64;
                }
                let want = a0[i * n + j] as f64;
                assert!(
                    (s - want).abs() < 1e-2 * want.abs().max(1.0),
                    "A[{i}][{j}]: L*L^T={s} want {want}"
                );
            }
        }
    }

    /// The factor is lower triangular with a positive diagonal.
    #[test]
    fn host_cholesky_factor_is_lower_triangular() {
        let ch = Cholesky {
            scale: Scale::Test,
            n: 16,
        };
        let mut l = ch.input();
        ch.host_chol(&mut l);
        for i in 0..16 {
            assert!(l[i * 16 + i] > 0.0, "diagonal {i}");
            for j in i + 1..16 {
                assert_eq!(l[i * 16 + j], 0.0, "upper ({i},{j})");
            }
        }
    }
}
