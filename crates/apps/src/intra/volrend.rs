//! Volrend — volume ray casting with a scanline task queue
//! (SPLASH-2 Volrend analogue).
//!
//! Two frames are rendered with different opacity transfer settings; a
//! global barrier separates the frames, and within a frame scanline jobs
//! come from a lock-protected queue. The queue head for the next frame is
//! reset by thread 0 *outside* a critical section and consumed by other
//! threads after their own queue operations — the **Outside critical**
//! pattern. Table I: main **Barrier, Outside critical**.

use hic_runtime::ProgramBuilder;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Volrend {
    scale: Scale,
    /// Volume is `n x n x n` density samples.
    n: usize,
    /// Image is `w x w`.
    w: usize,
}

impl Volrend {
    pub fn new(scale: Scale) -> Volrend {
        let (n, w) = match scale {
            Scale::Test => (8, 12),
            Scale::Small => (16, 28),
            Scale::Medium => (32, 64),
            Scale::Large => (64, 128),
            Scale::Paper => (128, 256), // stands in for the "head" dataset
        };
        Volrend { scale, n, w }
    }

    /// Synthetic density volume: a soft sphere plus a diagonal ramp.
    fn density(n: usize, x: usize, y: usize, z: usize) -> f32 {
        let c = (n as f32 - 1.0) / 2.0;
        let dx = (x as f32 - c) / c;
        let dy = (y as f32 - c) / c;
        let dz = (z as f32 - c) / c;
        let r2 = dx * dx + dy * dy + dz * dz;
        let sphere = (1.0 - r2).max(0.0);
        sphere * 0.8 + 0.05 * ((x + y + z) as f32 / (3.0 * n as f32))
    }

    /// Integrate one ray through the volume at image pixel (ix, iy) for a
    /// given frame's opacity scale.
    fn cast(
        vol: &dyn Fn(usize, usize, usize) -> f32,
        n: usize,
        w: usize,
        ix: usize,
        iy: usize,
        opacity: f32,
    ) -> f32 {
        // Nearest-sample orthographic ray along z.
        let vx = ((ix * n) / w).min(n - 1);
        let vy = ((iy * n) / w).min(n - 1);
        let mut transmittance = 1.0f32;
        let mut light = 0.0f32;
        for z in 0..n {
            let d = vol(vx, vy, z);
            let a = (d * opacity).min(1.0);
            light += transmittance * a * (0.3 + 0.7 * (z as f32 / n as f32));
            transmittance *= 1.0 - a;
            if transmittance < 1e-3 {
                break;
            }
        }
        light
    }

    fn host_render(&self, opacity: f32) -> Vec<f32> {
        let n = self.n;
        let vol = move |x: usize, y: usize, z: usize| Self::density(n, x, y, z);
        let mut img = vec![0.0f32; self.w * self.w];
        for iy in 0..self.w {
            for ix in 0..self.w {
                img[iy * self.w + ix] = Self::cast(&vol, n, self.w, ix, iy, opacity);
            }
        }
        img
    }
}

impl App for Volrend {
    fn name(&self) -> &'static str {
        "Volrend"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier, SyncPattern::OutsideCritical], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let (n, w) = (self.n, self.w);
        let opacities = [1.2f32, 2.4f32];

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let volume = p.alloc((n * n * n) as u64);
        let image = p.alloc((w * w) as u64 * opacities.len() as u64);
        let next_line = p.alloc(1);
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    p.init_f32(
                        volume,
                        ((x * n + y) * n + z) as u64,
                        Volrend::density(n, x, y, z),
                    );
                }
            }
        }
        let queue_lock = p.lock(); // OCC: queue reset happens outside a CS
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            for (frame, &opacity) in opacities.iter().enumerate() {
                // Thread 0 resets the scanline queue for this frame
                // *outside* any critical section; the barrier's WB/INV
                // publishes it.
                if ctx.tid() == 0 {
                    ctx.write(next_line, 0, 0);
                }
                ctx.barrier(bar);
                loop {
                    ctx.lock(queue_lock);
                    let line = ctx.read(next_line, 0) as usize;
                    if line < w {
                        ctx.write(next_line, 0, line as u32 + 1);
                    }
                    ctx.unlock(queue_lock);
                    if line >= w {
                        break;
                    }
                    // Render scanline `line`, sampling the volume through
                    // simulated memory.
                    for ix in 0..w {
                        let vol = |x: usize, y: usize, z: usize| {
                            ctx.read_f32(volume, ((x * n + y) * n + z) as u64)
                        };
                        let v = Volrend::cast(&vol, n, w, ix, line, opacity);
                        ctx.write_f32(image, (frame * w * w + line * w + ix) as u64, v);
                        ctx.tick(6 + 2 * n as u64);
                    }
                }
                ctx.barrier(bar);
            }
        });

        let mut max_err = 0.0f32;
        for (frame, &opacity) in opacities.iter().enumerate() {
            let want = self.host_render(opacity);
            for i in 0..w * w {
                let got = out.peek_f32(image, (frame * w * w + i) as u64);
                max_err = max_err.max((got - want[i]).abs());
            }
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-4,
            format!("vol {n}^3, image {w}x{w}, 2 frames, max error {max_err:.2e}"),
        )
    }
}
