//! FFT — barrier-structured radix-2 Cooley-Tukey (SPLASH-2 FFT analogue).
//!
//! Communication pattern (Table I): **Barrier** only. Each butterfly stage
//! is an epoch; the all-to-all data exchange between stages is exactly
//! what barrier-delimited WB ALL / INV ALL orchestrates.
//!
//! The simulated kernel and the host reference execute the identical f32
//! operation sequence, so results are compared with a tight tolerance.

use hic_runtime::ProgramBuilder;
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Fft {
    scale: Scale,
    n: usize,
}

impl Fft {
    pub fn new(scale: Scale) -> Fft {
        let n = match scale {
            Scale::Test => 256,
            Scale::Small => 8192,
            Scale::Medium => 16384,
            Scale::Large => 32768,
            Scale::Paper => 65536, // the paper's 64K points
        };
        Fft { scale, n }
    }

    /// Host reference: identical algorithm, identical operation order.
    fn host_fft(re: &mut [f32], im: &mut [f32]) {
        let n = re.len();
        let logn = n.trailing_zeros();
        // Bit-reverse copy.
        let (sre, sim_) = (re.to_vec(), im.to_vec());
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - logn);
            re[i] = sre[j];
            im[i] = sim_[j];
        }
        for s in 1..=logn {
            let m = 1usize << s;
            let half = m / 2;
            for j in 0..n / 2 {
                let group = j / half;
                let pos = j % half;
                let i1 = group * m + pos;
                let i2 = i1 + half;
                let ang = -2.0 * std::f32::consts::PI * pos as f32 / m as f32;
                let (wr, wi) = (ang.cos(), ang.sin());
                let (ar, ai) = (re[i1], im[i1]);
                let (br, bi) = (re[i2], im[i2]);
                let tr = wr * br - wi * bi;
                let ti = wr * bi + wi * br;
                re[i1] = ar + tr;
                im[i1] = ai + ti;
                re[i2] = ar - tr;
                im[i2] = ai - ti;
            }
        }
    }

    fn input(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = SplitMix64::new(0xFF7);
        let re: Vec<f32> = (0..self.n).map(|_| rng.unit_f32() - 0.5).collect();
        let im: Vec<f32> = (0..self.n).map(|_| rng.unit_f32() - 0.5).collect();
        (re, im)
    }
}

impl App for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier], &[])
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let logn = n.trailing_zeros();
        let (in_re, in_im) = self.input();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let src_re = p.alloc(n as u64);
        let src_im = p.alloc(n as u64);
        let re = p.alloc(n as u64);
        let im = p.alloc(n as u64);
        for i in 0..n {
            p.init_f32(src_re, i as u64, in_re[i]);
            p.init_f32(src_im, i as u64, in_im[i]);
        }
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let chunk = n.div_ceil(nthreads);
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            // Bit-reverse permutation into the working arrays.
            for i in lo..hi {
                let j = (i.reverse_bits() >> (usize::BITS - logn)) as u64;
                let vr = ctx.read(src_re, j);
                let vi = ctx.read(src_im, j);
                ctx.write(re, i as u64, vr);
                ctx.write(im, i as u64, vi);
                ctx.tick(2);
            }
            ctx.barrier(bar);
            // log2(n) butterfly stages, one barrier epoch each.
            let nb = n / 2;
            let bchunk = nb.div_ceil(nthreads);
            let (blo, bhi) = (t * bchunk, ((t + 1) * bchunk).min(nb));
            for s in 1..=logn {
                let m = 1usize << s;
                let half = m / 2;
                for j in blo..bhi {
                    let group = j / half;
                    let pos = j % half;
                    let i1 = (group * m + pos) as u64;
                    let i2 = i1 + half as u64;
                    let ang = -2.0 * std::f32::consts::PI * pos as f32 / m as f32;
                    let (wr, wi) = (ang.cos(), ang.sin());
                    let ar = ctx.read_f32(re, i1);
                    let ai = ctx.read_f32(im, i1);
                    let br = ctx.read_f32(re, i2);
                    let bi = ctx.read_f32(im, i2);
                    let tr = wr * br - wi * bi;
                    let ti = wr * bi + wi * br;
                    ctx.write_f32(re, i1, ar + tr);
                    ctx.write_f32(im, i1, ai + ti);
                    ctx.write_f32(re, i2, ar - tr);
                    ctx.write_f32(im, i2, ai - ti);
                    ctx.tick(10);
                }
                ctx.barrier(bar);
            }
        });

        // Host reference.
        let (mut href, mut himf) = (in_re, in_im);
        Fft::host_fft(&mut href, &mut himf);
        let mut max_err = 0.0f32;
        for i in 0..n {
            let dr = (out.peek_f32(re, i as u64) - href[i]).abs();
            let di = (out.peek_f32(im, i as u64) - himf[i]).abs();
            max_err = max_err.max(dr).max(di);
        }
        let tol = 1e-3 * (n as f32).sqrt();
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= tol,
            format!("n={n}, max abs error {max_err:.2e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The host FFT must agree with a naive O(n^2) DFT — validating the
    /// reference the simulator is checked against.
    #[test]
    fn host_fft_matches_naive_dft() {
        let n = 64usize;
        let fft = Fft {
            scale: Scale::Test,
            n,
        };
        let (re_in, im_in) = fft.input();
        let (mut re, mut im) = (re_in.clone(), im_in.clone());
        Fft::host_fft(&mut re, &mut im);
        for k in 0..n {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for (j, (&xr, &xi)) in re_in.iter().zip(&im_in).enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                sr += xr as f64 * ang.cos() - xi as f64 * ang.sin();
                si += xr as f64 * ang.sin() + xi as f64 * ang.cos();
            }
            assert!(
                (re[k] as f64 - sr).abs() < 1e-3 && (im[k] as f64 - si).abs() < 1e-3,
                "bin {k}: fft=({}, {}) dft=({sr}, {si})",
                re[k],
                im[k]
            );
        }
    }

    /// Parseval's identity as an independent energy check.
    #[test]
    fn host_fft_preserves_energy() {
        let fft = Fft {
            scale: Scale::Test,
            n: 256,
        };
        let (re_in, im_in) = fft.input();
        let (mut re, mut im) = (re_in.clone(), im_in.clone());
        Fft::host_fft(&mut re, &mut im);
        let time: f64 = re_in
            .iter()
            .zip(&im_in)
            .map(|(&a, &b)| (a * a + b * b) as f64)
            .sum();
        let freq: f64 = re
            .iter()
            .zip(&im)
            .map(|(&a, &b)| (a * a + b * b) as f64)
            .sum();
        let ratio = freq / (time * 256.0);
        assert!((ratio - 1.0).abs() < 1e-4, "Parseval ratio {ratio}");
    }
}
