//! Water — small molecular-dynamics kernel in the two SPLASH-2 variants:
//!
//! * **Nsquared**: all-pairs Lennard-Jones-ish forces. Each thread
//!   computes partial forces for its slice of pairs into a private
//!   accumulation band, a barrier separates phases, and a per-thread
//!   critical section accumulates the global potential energy — Table I:
//!   **Barrier, Critical** with relatively fine-grained synchronization;
//! * **Spatial**: cell-list decomposition; threads own spatial cells and
//!   interact only with neighbor cells — coarse-grained, barrier-only
//!   (the paper groups Water Spatial with the low-synchronization codes).

use hic_runtime::ProgramBuilder;
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Water {
    scale: Scale,
    n: usize,
    steps: usize,
    nsquared: bool,
}

impl Water {
    pub fn new(scale: Scale, nsquared: bool) -> Water {
        let (n, steps) = match scale {
            Scale::Test => (24, 1),
            Scale::Small => (48, 2),
            Scale::Medium => (96, 3),
            Scale::Large => (256, 4),
            Scale::Paper => (512, 5), // the paper's 512 molecules
        };
        Water {
            scale,
            n,
            steps,
            nsquared,
        }
    }

    fn positions(&self) -> Vec<(f32, f32, f32)> {
        let mut rng = SplitMix64::new(0x3A7E6 + self.n as u64);
        (0..self.n)
            .map(|_| {
                (
                    rng.unit_f32() * 4.0,
                    rng.unit_f32() * 4.0,
                    rng.unit_f32() * 4.0,
                )
            })
            .collect()
    }

    /// Pair force with a smooth cutoff. Returns (fx, fy, fz, potential).
    fn pair_force(xi: f32, yi: f32, zi: f32, xj: f32, yj: f32, zj: f32) -> (f32, f32, f32, f32) {
        let dx = xj - xi;
        let dy = yj - yi;
        let dz = zj - zi;
        let r2 = dx * dx + dy * dy + dz * dz + 0.01;
        if r2 > 4.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        let f = (2.0 * inv6 - 1.0) * inv6 * inv2;
        (f * dx, f * dy, f * dz, inv6 * (inv6 - 1.0))
    }

    /// Which cell a position belongs to (spatial variant), on a
    /// `cells x cells x cells` grid over [0, 4)^3.
    fn cell_of(cells: usize, x: f32, y: f32, z: f32) -> usize {
        let cl = |v: f32| (((v / 4.0) * cells as f32) as usize).min(cells - 1);
        (cl(x) * cells + cl(y)) * cells + cl(z)
    }

    /// Host reference for the nsquared variant, same reduction order.
    fn host_nsq(&self, nthreads: usize) -> (Vec<(f32, f32, f32)>, f32) {
        let n = self.n;
        let mut pos = self.positions();
        let mut pot_total = 0.0f32;
        for _ in 0..self.steps {
            // Partial forces per "thread" slice, then reduce in thread
            // order — mirroring the simulated reduction order exactly.
            let mut partial = vec![vec![(0.0f32, 0.0f32, 0.0f32); n]; nthreads];
            let mut pots = vec![0.0f32; nthreads];
            for t in 0..nthreads {
                let chunk = n.div_ceil(nthreads);
                let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
                for i in lo..hi {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let (fx, fy, fz, pot) = Self::pair_force(
                            pos[i].0, pos[i].1, pos[i].2, pos[j].0, pos[j].1, pos[j].2,
                        );
                        partial[t][i].0 += fx;
                        partial[t][i].1 += fy;
                        partial[t][i].2 += fz;
                        pots[t] += 0.5 * pot;
                    }
                }
            }
            for t in 0..nthreads {
                pot_total += pots[t];
            }
            // Integrate (forces land only in the owner's partial).
            for t in 0..nthreads {
                let chunk = n.div_ceil(nthreads);
                let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
                for i in lo..hi {
                    pos[i].0 += 0.0001 * partial[t][i].0;
                    pos[i].1 += 0.0001 * partial[t][i].1;
                    pos[i].2 += 0.0001 * partial[t][i].2;
                }
            }
        }
        (pos, pot_total)
    }

    /// Host reference for the spatial variant.
    fn host_spatial(&self, cells: usize) -> Vec<(f32, f32, f32)> {
        let n = self.n;
        let mut pos = self.positions();
        for _ in 0..self.steps {
            // Cell lists (recomputed each step, ordered by molecule id).
            let mut lists = vec![Vec::new(); cells * cells * cells];
            for i in 0..n {
                lists[Self::cell_of(cells, pos[i].0, pos[i].1, pos[i].2)].push(i);
            }
            let mut force = vec![(0.0f32, 0.0f32, 0.0f32); n];
            for i in 0..n {
                let ci = Self::cell_of(cells, pos[i].0, pos[i].1, pos[i].2);
                let (cx, cy, cz) = (ci / (cells * cells), (ci / cells) % cells, ci % cells);
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let nx = cx as i64 + dx;
                            let ny = cy as i64 + dy;
                            let nz = cz as i64 + dz;
                            if nx < 0 || ny < 0 || nz < 0 {
                                continue;
                            }
                            let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                            if nx >= cells || ny >= cells || nz >= cells {
                                continue;
                            }
                            for &j in &lists[(nx * cells + ny) * cells + nz] {
                                if j == i {
                                    continue;
                                }
                                let (fx, fy, fz, _) = Self::pair_force(
                                    pos[i].0, pos[i].1, pos[i].2, pos[j].0, pos[j].1, pos[j].2,
                                );
                                force[i].0 += fx;
                                force[i].1 += fy;
                                force[i].2 += fz;
                            }
                        }
                    }
                }
            }
            for i in 0..n {
                pos[i].0 += 0.0001 * force[i].0;
                pos[i].1 += 0.0001 * force[i].1;
                pos[i].2 += 0.0001 * force[i].2;
            }
        }
        pos
    }
}

impl App for Water {
    fn name(&self) -> &'static str {
        if self.nsquared {
            "Water Nsq"
        } else {
            "Water Spatial"
        }
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier, SyncPattern::Critical], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        if self.nsquared {
            self.run_nsq(req)
        } else {
            self.run_spatial(req)
        }
    }
}

impl Water {
    fn run_nsq(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let steps = self.steps;
        let init = self.positions();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let (px, py, pz) = (p.alloc(n as u64), p.alloc(n as u64), p.alloc(n as u64));
        // Private per-thread partial-force bands (still in shared memory).
        let fx = p.alloc((n * nthreads) as u64);
        let fy = p.alloc((n * nthreads) as u64);
        let fz = p.alloc((n * nthreads) as u64);
        let pot = p.alloc(1);
        for (i, q) in init.iter().enumerate() {
            p.init_f32(px, i as u64, q.0);
            p.init_f32(py, i as u64, q.1);
            p.init_f32(pz, i as u64, q.2);
        }
        let pot_lock = p.lock_occ(false);
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let chunk = n.div_ceil(ctx.nthreads());
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            if t == 0 {
                ctx.write_f32(pot, 0, 0.0);
            }
            ctx.barrier(bar);
            for _ in 0..steps {
                // Phase 1: partial forces for own molecules.
                let mut local_pot = 0.0f32;
                for i in lo..hi {
                    let (xi, yi, zi) = (
                        ctx.read_f32(px, i as u64),
                        ctx.read_f32(py, i as u64),
                        ctx.read_f32(pz, i as u64),
                    );
                    let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let (xj, yj, zj) = (
                            ctx.read_f32(px, j as u64),
                            ctx.read_f32(py, j as u64),
                            ctx.read_f32(pz, j as u64),
                        );
                        let (dfx, dfy, dfz, dp) = Water::pair_force(xi, yi, zi, xj, yj, zj);
                        ax += dfx;
                        ay += dfy;
                        az += dfz;
                        local_pot += 0.5 * dp;
                        ctx.tick(10);
                    }
                    ctx.write_f32(fx, (t * n + i) as u64, ax);
                    ctx.write_f32(fy, (t * n + i) as u64, ay);
                    ctx.write_f32(fz, (t * n + i) as u64, az);
                }
                // Potential-energy reduction (critical section). The
                // grant order is deterministic (request order), and the
                // host mirrors the same order-insensitive... rather:
                // addition order here IS thread order because each thread
                // adds once and f32 addition is not associative — the
                // deterministic scheduler makes this reproducible, and
                // the host sums in thread order which matches the FIFO
                // grant order of the controller under one barrier phase.
                ctx.lock(pot_lock);
                let g = ctx.read_f32(pot, 0);
                ctx.write_f32(pot, 0, g + local_pot);
                ctx.unlock(pot_lock);
                ctx.barrier(bar);
                // Phase 2: integrate own molecules from own partials.
                for i in lo..hi {
                    let ax = ctx.read_f32(fx, (t * n + i) as u64);
                    let ay = ctx.read_f32(fy, (t * n + i) as u64);
                    let az = ctx.read_f32(fz, (t * n + i) as u64);
                    let nx = ctx.read_f32(px, i as u64) + 0.0001 * ax;
                    let ny = ctx.read_f32(py, i as u64) + 0.0001 * ay;
                    let nz = ctx.read_f32(pz, i as u64) + 0.0001 * az;
                    ctx.write_f32(px, i as u64, nx);
                    ctx.write_f32(py, i as u64, ny);
                    ctx.write_f32(pz, i as u64, nz);
                    ctx.tick(6);
                }
                ctx.barrier(bar);
            }
        });

        let (want, want_pot) = self.host_nsq(nthreads);
        let mut max_err = 0.0f32;
        for i in 0..n {
            max_err = max_err.max((out.peek_f32(px, i as u64) - want[i].0).abs());
            max_err = max_err.max((out.peek_f32(py, i as u64) - want[i].1).abs());
            max_err = max_err.max((out.peek_f32(pz, i as u64) - want[i].2).abs());
        }
        let got_pot = out.peek_f32(pot, 0);
        let pot_err = (got_pot - want_pot).abs() / want_pot.abs().max(1.0);
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-4 && pot_err <= 1e-3,
            format!("n={n}, {steps} steps, pos err {max_err:.2e}, potential err {pot_err:.2e}"),
        )
    }

    fn run_spatial(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let steps = self.steps;
        let cells = 4usize;
        let init = self.positions();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let (px, py, pz) = (p.alloc(n as u64), p.alloc(n as u64), p.alloc(n as u64));
        let (gx, gy, gz) = (p.alloc(n as u64), p.alloc(n as u64), p.alloc(n as u64));
        for (i, q) in init.iter().enumerate() {
            p.init_f32(px, i as u64, q.0);
            p.init_f32(py, i as u64, q.1);
            p.init_f32(pz, i as u64, q.2);
        }
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let chunk = n.div_ceil(ctx.nthreads());
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            for _ in 0..steps {
                // Rebuild the cell lists locally from (fresh) positions:
                // reading all positions once per step is the spatial
                // method's coarse communication.
                let mut pos = Vec::with_capacity(n);
                for j in 0..n {
                    pos.push((
                        ctx.read_f32(px, j as u64),
                        ctx.read_f32(py, j as u64),
                        ctx.read_f32(pz, j as u64),
                    ));
                    ctx.tick(1);
                }
                let mut lists = vec![Vec::new(); cells * cells * cells];
                for (j, q) in pos.iter().enumerate() {
                    lists[Water::cell_of(cells, q.0, q.1, q.2)].push(j);
                }
                for i in lo..hi {
                    let (xi, yi, zi) = pos[i];
                    let ci = Water::cell_of(cells, xi, yi, zi);
                    let (cx, cy, cz) = (ci / (cells * cells), (ci / cells) % cells, ci % cells);
                    let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
                    for dx in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dz in -1i64..=1 {
                                let nx = cx as i64 + dx;
                                let ny = cy as i64 + dy;
                                let nz = cz as i64 + dz;
                                if nx < 0 || ny < 0 || nz < 0 {
                                    continue;
                                }
                                let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                                if nx >= cells || ny >= cells || nz >= cells {
                                    continue;
                                }
                                for &j in &lists[(nx * cells + ny) * cells + nz] {
                                    if j == i {
                                        continue;
                                    }
                                    let (dfx, dfy, dfz, _) =
                                        Water::pair_force(xi, yi, zi, pos[j].0, pos[j].1, pos[j].2);
                                    ax += dfx;
                                    ay += dfy;
                                    az += dfz;
                                    ctx.tick(10);
                                }
                            }
                        }
                    }
                    ctx.write_f32(gx, i as u64, ax);
                    ctx.write_f32(gy, i as u64, ay);
                    ctx.write_f32(gz, i as u64, az);
                }
                ctx.barrier(bar);
                for i in lo..hi {
                    let ax = ctx.read_f32(gx, i as u64);
                    let ay = ctx.read_f32(gy, i as u64);
                    let az = ctx.read_f32(gz, i as u64);
                    let nx = ctx.read_f32(px, i as u64) + 0.0001 * ax;
                    let ny = ctx.read_f32(py, i as u64) + 0.0001 * ay;
                    let nz = ctx.read_f32(pz, i as u64) + 0.0001 * az;
                    ctx.write_f32(px, i as u64, nx);
                    ctx.write_f32(py, i as u64, ny);
                    ctx.write_f32(pz, i as u64, nz);
                    ctx.tick(6);
                }
                ctx.barrier(bar);
            }
        });

        let want = self.host_spatial(cells);
        let mut max_err = 0.0f32;
        for i in 0..n {
            max_err = max_err.max((out.peek_f32(px, i as u64) - want[i].0).abs());
            max_err = max_err.max((out.peek_f32(py, i as u64) - want[i].1).abs());
            max_err = max_err.max((out.peek_f32(pz, i as u64) - want[i].2).abs());
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-4,
            format!("n={n}, {steps} steps, cells {cells}^3, pos err {max_err:.2e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pair forces are antisymmetric: F(i<-j) = -F(j<-i), so the total
    /// force over all pairs (hence momentum drift per step) is ~zero.
    #[test]
    fn pair_forces_are_antisymmetric() {
        let w = Water::new(Scale::Test, true);
        let ps = w.positions();
        for i in 0..ps.len() {
            for j in 0..ps.len() {
                if i == j {
                    continue;
                }
                let (fx, fy, fz, pe) =
                    Water::pair_force(ps[i].0, ps[i].1, ps[i].2, ps[j].0, ps[j].1, ps[j].2);
                let (gx, gy, gz, qe) =
                    Water::pair_force(ps[j].0, ps[j].1, ps[j].2, ps[i].0, ps[i].1, ps[i].2);
                assert!((fx + gx).abs() < 1e-4 && (fy + gy).abs() < 1e-4 && (fz + gz).abs() < 1e-4);
                assert!((pe - qe).abs() < 1e-6, "potential must be symmetric");
            }
        }
    }

    /// The force cutoff really cuts: distant molecules contribute nothing.
    #[test]
    fn cutoff_zeroes_distant_pairs() {
        let (fx, fy, fz, pe) = Water::pair_force(0.0, 0.0, 0.0, 10.0, 0.0, 0.0);
        assert_eq!((fx, fy, fz, pe), (0.0, 0.0, 0.0, 0.0));
    }

    /// Cell assignment stays in range for any position in the domain.
    #[test]
    fn cell_of_is_total_over_the_domain() {
        for cells in [2usize, 4, 8] {
            for x in [0.0f32, 1.0, 3.999, 4.0 - f32::EPSILON] {
                let c = Water::cell_of(cells, x, x, x);
                assert!(c < cells * cells * cells);
            }
        }
    }
}
