//! Raytrace — sphere-scene ray caster with a central job queue
//! (SPLASH-2 Raytrace analogue).
//!
//! Work is distributed in image tiles through a lock-protected queue:
//! frequent, tiny critical sections — the paper calls out Raytrace's
//! "frequent lock accesses in a set of job queues" as the reason it
//! suffers most under Base. A benign **data race** on a global progress
//! counter is enforced with per-word WB/INV (Figure 6), mirroring the
//! Table I classification: main **Critical**, other **Barrier, Data
//! race**.

use hic_runtime::ProgramBuilder;
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

/// Sphere record: cx, cy, cz, r, shade (5 words).
const SPHERE_WORDS: u64 = 5;

pub struct Raytrace {
    scale: Scale,
    width: usize,
    height: usize,
    tile: usize,
    nspheres: usize,
}

impl Raytrace {
    pub fn new(scale: Scale) -> Raytrace {
        let (w, ns) = match scale {
            Scale::Test => (16, 4),
            Scale::Small => (64, 8),
            Scale::Medium => (128, 12),
            Scale::Large => (256, 16),
            Scale::Paper => (512, 32), // stands in for the teapot scene
        };
        Raytrace {
            scale,
            width: w,
            height: w,
            tile: 4,
            nspheres: ns,
        }
    }

    fn scene(&self) -> Vec<[f32; 5]> {
        let mut rng = SplitMix64::new(0x7EA907);
        (0..self.nspheres)
            .map(|_| {
                [
                    rng.unit_f32() * 2.0 - 1.0,
                    rng.unit_f32() * 2.0 - 1.0,
                    1.5 + rng.unit_f32() * 2.0,
                    0.2 + rng.unit_f32() * 0.3,
                    0.2 + rng.unit_f32() * 0.8,
                ]
            })
            .collect()
    }

    /// Shade of the pixel ray through (px, py): nearest-hit Lambert-ish.
    fn shade(scene: &[[f32; 5]], px: f32, py: f32) -> f32 {
        // Ray from origin through the image plane at z=1.
        let (dx, dy, dz) = (px, py, 1.0f32);
        let norm = (dx * dx + dy * dy + dz * dz).sqrt();
        let (dx, dy, dz) = (dx / norm, dy / norm, dz / norm);
        let mut best_t = f32::INFINITY;
        let mut best_shade = 0.0f32;
        for s in scene {
            let (cx, cy, cz, r, sh) = (s[0], s[1], s[2], s[3], s[4]);
            // |o + t d - c|^2 = r^2 with o = 0.
            let b = dx * cx + dy * cy + dz * cz;
            let c = cx * cx + cy * cy + cz * cz - r * r;
            let disc = b * b - c;
            if disc > 0.0 {
                let t = b - disc.sqrt();
                if t > 0.0 && t < best_t {
                    best_t = t;
                    // Cheap shading: depth-attenuated sphere shade.
                    best_shade = sh / (1.0 + 0.2 * t);
                }
            }
        }
        best_shade
    }

    fn host_render(&self, scene: &[[f32; 5]]) -> Vec<f32> {
        let mut img = vec![0.0f32; self.width * self.height];
        for y in 0..self.height {
            for x in 0..self.width {
                let px = (x as f32 + 0.5) / self.width as f32 * 2.0 - 1.0;
                let py = (y as f32 + 0.5) / self.height as f32 * 2.0 - 1.0;
                img[y * self.width + x] = Self::shade(scene, px, py);
            }
        }
        img
    }
}

impl App for Raytrace {
    fn name(&self) -> &'static str {
        "Raytrace"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(
            &[SyncPattern::Critical],
            &[SyncPattern::Barrier, SyncPattern::DataRace],
        )
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let (w, h, tile) = (self.width, self.height, self.tile);
        let ns = self.nspheres;
        let scene = self.scene();
        let tiles_x = w / tile;
        let tiles_y = h / tile;
        let njobs = tiles_x * tiles_y;

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let spheres = p.alloc(ns as u64 * SPHERE_WORDS);
        let image = p.alloc((w * h) as u64);
        let next_job = p.alloc(1);
        let progress = p.alloc(1); // racy counter
        for (i, s) in scene.iter().enumerate() {
            for (k, v) in s.iter().enumerate() {
                p.init_f32(spheres, i as u64 * SPHERE_WORDS + k as u64, *v);
            }
        }
        // Job payloads are not communicated through the queue (the scene
        // is read-only): no outside-critical communication.
        let queue_lock = p.lock_occ(false);
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            ctx.barrier(bar);
            loop {
                // Tiny critical section: claim a tile.
                ctx.lock(queue_lock);
                let job = ctx.read(next_job, 0) as usize;
                if job < njobs {
                    ctx.write(next_job, 0, job as u32 + 1);
                }
                ctx.unlock(queue_lock);
                if job >= njobs {
                    break;
                }
                let ty = job / tiles_x;
                let tx = job % tiles_x;
                // Load the scene (L1-resident after the first tile).
                let mut local_scene = Vec::with_capacity(ns);
                for i in 0..ns as u64 {
                    let mut s = [0.0f32; 5];
                    for (k, slot) in s.iter_mut().enumerate() {
                        *slot = ctx.read_f32(spheres, i * SPHERE_WORDS + k as u64);
                    }
                    local_scene.push(s);
                }
                for dy in 0..tile {
                    for dx in 0..tile {
                        let x = tx * tile + dx;
                        let y = ty * tile + dy;
                        let px = (x as f32 + 0.5) / w as f32 * 2.0 - 1.0;
                        let py = (y as f32 + 0.5) / h as f32 * 2.0 - 1.0;
                        let v = Raytrace::shade(&local_scene, px, py);
                        // Tile-major framebuffer: a tile's pixels are
                        // contiguous, so tiles owned by different threads
                        // never share cache lines (as real renderers lay
                        // out their buffers).
                        let idx = job * tile * tile + dy * tile + dx;
                        ctx.write_f32(image, idx as u64, v);
                        ctx.tick(8 + 6 * ns as u64);
                    }
                }
                // Benign racy progress counter (Figure 6 enforcement):
                // increments may still be lost to interleaving, which is
                // acceptable for a progress display — the point is that
                // the *memory update* itself becomes visible.
                let seen = ctx.racy_load(progress.at(0));
                ctx.racy_store(progress.at(0), seen + tile as u32 * tile as u32);
            }
            ctx.barrier(bar);
        });

        let want = self.host_render(&scene);
        let mut max_err = 0.0f32;
        for y in 0..h {
            for x in 0..w {
                let (ty, tx) = (y / tile, x / tile);
                let job = ty * tiles_x + tx;
                let idx = job * tile * tile + (y % tile) * tile + (x % tile);
                let got = out.peek_f32(image, idx as u64);
                max_err = max_err.max((got - want[y * w + x]).abs());
            }
        }
        // The racy counter must be visible and nonzero (its exact value is
        // racy by design).
        let progress_seen = out.peek(progress, 0);
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-4 && progress_seen > 0,
            format!(
                "{w}x{h}, {njobs} tile jobs, max pixel error {max_err:.2e}, progress {progress_seen}"
            ),
        )
    }
}
