//! Barnes — 2D Barnes-Hut N-body (SPLASH-2 Barnes analogue).
//!
//! Phases per timestep, separated by barriers:
//!
//! 1. **Tree build**: threads insert their particles into a shared
//!    quadtree; each insertion is a critical section (one tree lock), and
//!    node-pool cells written by earlier holders are consumed by later
//!    holders — the **Outside critical** pattern;
//! 2. **Force computation**: read-only tree traversal with a theta
//!    opening criterion, writing own accelerations;
//! 3. **Integration**: update own positions/velocities.
//!
//! Patterns (Table I): main **Barrier, Outside critical**; other
//! **Critical**.

use hic_mem::Region;
use hic_runtime::{ProgramBuilder, ThreadCtx};
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

/// Node record layout inside the node pool (words):
/// 0: kind (0 empty leaf slot, 1 leaf, 2 internal)
/// 1: particle index (leaves)
/// 2..6: children (internal), u32 node indices (0 = none; node 0 is root
///       so 0 doubles as "none" safely because the root is never a child)
/// 6: mass (f32)
/// 7: com x (f32)
/// 8: com y (f32)
/// 9: cell center x (f32)
/// 10: cell center y (f32)
/// 11: cell half-size (f32)
const NODE_WORDS: u64 = 12;
const K_EMPTY: u32 = 0;
const K_LEAF: u32 = 1;
const K_INTERNAL: u32 = 2;

pub struct Barnes {
    scale: Scale,
    n: usize,
    theta: f32,
}

#[derive(Clone, Copy)]
struct Particle {
    x: f32,
    y: f32,
}

impl Barnes {
    pub fn new(scale: Scale) -> Barnes {
        let n = match scale {
            Scale::Test => 48,
            Scale::Small => 160,
            Scale::Medium => 512,
            Scale::Large => 4096,
            Scale::Paper => 16384, // the paper's 16K particles
        };
        Barnes {
            scale,
            n,
            theta: 0.6,
        }
    }

    fn particles(&self) -> Vec<Particle> {
        let mut rng = SplitMix64::new(0xBA12E5);
        (0..self.n)
            .map(|_| Particle {
                x: rng.unit_f32() * 2.0 - 1.0,
                y: rng.unit_f32() * 2.0 - 1.0,
            })
            .collect()
    }

    /// Host reference: the same quadtree algorithm with the same
    /// deterministic insertion order (threads insert chunk-by-chunk in a
    /// globally serialized order: the sim serializes insertions via the
    /// tree lock in deterministic grant order, which is request order —
    /// so the host mirrors insertion by ascending particle index *per
    /// claim sequence*). To keep host and sim trees identical, the sim
    /// inserts particles in strict global index order using a ticket
    /// scheme (see `run`), and the host does the same here.
    fn host_forces(&self, ps: &[Particle]) -> Vec<(f32, f32)> {
        let mut tree = HostTree::new();
        for (i, p) in ps.iter().enumerate() {
            tree.insert(i, p.x, p.y, ps);
        }
        tree.finalize(ps);
        ps.iter()
            .map(|p| tree.force(p.x, p.y, self.theta))
            .collect()
    }
}

/// Host-side quadtree mirroring the simulated layout/logic.
struct HostTree {
    nodes: Vec<[f32; 12]>,
}

impl HostTree {
    fn new() -> HostTree {
        let mut t = HostTree { nodes: Vec::new() };
        // Root cell covering [-2, 2]^2.
        t.alloc(0.0, 0.0, 2.0);
        t
    }

    fn alloc(&mut self, cx: f32, cy: f32, half: f32) -> usize {
        self.nodes.push([0.0; 12]);
        let id = self.nodes.len() - 1;
        self.nodes[id][0] = K_EMPTY as f32;
        self.nodes[id][9] = cx;
        self.nodes[id][10] = cy;
        self.nodes[id][11] = half;
        id
    }

    fn quadrant(cx: f32, cy: f32, x: f32, y: f32) -> usize {
        (if x >= cx { 1 } else { 0 }) + (if y >= cy { 2 } else { 0 })
    }

    fn insert(&mut self, pi: usize, x: f32, y: f32, ps: &[Particle]) {
        let mut node = 0usize;
        loop {
            let kind = self.nodes[node][0] as u32;
            match kind {
                K_EMPTY => {
                    self.nodes[node][0] = K_LEAF as f32;
                    self.nodes[node][1] = pi as f32;
                    return;
                }
                K_LEAF => {
                    // Split: push the resident particle down, retry.
                    let old = self.nodes[node][1] as usize;
                    self.nodes[node][0] = K_INTERNAL as f32;
                    let (cx, cy, h) = (
                        self.nodes[node][9],
                        self.nodes[node][10],
                        self.nodes[node][11],
                    );
                    let q = Self::quadrant(cx, cy, ps[old].x, ps[old].y);
                    let (ncx, ncy) = (
                        cx + if q & 1 != 0 { h / 2.0 } else { -h / 2.0 },
                        cy + if q & 2 != 0 { h / 2.0 } else { -h / 2.0 },
                    );
                    let child = self.alloc(ncx, ncy, h / 2.0);
                    self.nodes[node][2 + q] = child as f32;
                    self.nodes[child][0] = K_LEAF as f32;
                    self.nodes[child][1] = old as f32;
                }
                _ => {
                    let (cx, cy, h) = (
                        self.nodes[node][9],
                        self.nodes[node][10],
                        self.nodes[node][11],
                    );
                    let q = Self::quadrant(cx, cy, x, y);
                    let child = self.nodes[node][2 + q] as usize;
                    if child == 0 {
                        let (ncx, ncy) = (
                            cx + if q & 1 != 0 { h / 2.0 } else { -h / 2.0 },
                            cy + if q & 2 != 0 { h / 2.0 } else { -h / 2.0 },
                        );
                        let nc = self.alloc(ncx, ncy, h / 2.0);
                        self.nodes[node][2 + q] = nc as f32;
                        self.nodes[nc][0] = K_LEAF as f32;
                        self.nodes[nc][1] = pi as f32;
                        return;
                    }
                    node = child;
                }
            }
        }
    }

    /// Bottom-up mass/center-of-mass (iterative, highest index first —
    /// children always have higher indices than parents... they do not in
    /// general, so iterate until fixpoint over reverse topological order
    /// by repeated passes; with our allocation order children are always
    /// allocated after parents, so one reverse pass suffices).
    fn finalize(&mut self, ps: &[Particle]) {
        for i in (0..self.nodes.len()).rev() {
            match self.nodes[i][0] as u32 {
                K_LEAF => {
                    let p = self.nodes[i][1] as usize;
                    self.nodes[i][6] = 1.0;
                    self.nodes[i][7] = ps[p].x;
                    self.nodes[i][8] = ps[p].y;
                }
                K_INTERNAL => {
                    let (mut m, mut sx, mut sy) = (0.0f32, 0.0f32, 0.0f32);
                    for q in 0..4 {
                        let c = self.nodes[i][2 + q] as usize;
                        if c != 0 {
                            m += self.nodes[c][6];
                            sx += self.nodes[c][7] * self.nodes[c][6];
                            sy += self.nodes[c][8] * self.nodes[c][6];
                        }
                    }
                    self.nodes[i][6] = m;
                    if m > 0.0 {
                        self.nodes[i][7] = sx / m;
                        self.nodes[i][8] = sy / m;
                    }
                }
                _ => {}
            }
        }
    }

    fn force(&self, x: f32, y: f32, theta: f32) -> (f32, f32) {
        let (mut fx, mut fy) = (0.0f32, 0.0f32);
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let kind = self.nodes[n][0] as u32;
            if kind == K_EMPTY {
                continue;
            }
            let m = self.nodes[n][6];
            let (px, py) = (self.nodes[n][7], self.nodes[n][8]);
            let dx = px - x;
            let dy = py - y;
            let d2 = dx * dx + dy * dy + 1e-4;
            let d = d2.sqrt();
            let size = self.nodes[n][11] * 2.0;
            if kind == K_LEAF || size / d < theta {
                if d2 > 1e-4 {
                    let f = m / (d2 * d);
                    fx += f * dx;
                    fy += f * dy;
                }
            } else {
                for q in 0..4 {
                    let c = self.nodes[n][2 + q] as usize;
                    if c != 0 {
                        stack.push(c);
                    }
                }
            }
        }
        (fx, fy)
    }
}

// ----------------------------------------------------------------------
// Simulated-side tree helpers (same layout, ops through the ThreadCtx)
// ----------------------------------------------------------------------

struct SimTree {
    pool: Region,
    count: Region, // pool allocation counter (word 0)
}

impl SimTree {
    fn nf(&self, ctx: &ThreadCtx, node: u64, w: u64) -> f32 {
        ctx.read_f32(self.pool, node * NODE_WORDS + w)
    }
    fn nset_f(&self, ctx: &ThreadCtx, node: u64, w: u64, v: f32) {
        ctx.write_f32(self.pool, node * NODE_WORDS + w, v);
    }
    fn nu(&self, ctx: &ThreadCtx, node: u64, w: u64) -> u32 {
        ctx.read(self.pool, node * NODE_WORDS + w)
    }
    fn nset_u(&self, ctx: &ThreadCtx, node: u64, w: u64, v: u32) {
        ctx.write(self.pool, node * NODE_WORDS + w, v);
    }

    fn alloc(&self, ctx: &ThreadCtx, cx: f32, cy: f32, half: f32) -> u64 {
        let id = ctx.read(self.count, 0) as u64;
        ctx.write(self.count, 0, id as u32 + 1);
        self.nset_u(ctx, id, 0, K_EMPTY);
        for q in 0..4 {
            self.nset_u(ctx, id, 2 + q, 0);
        }
        self.nset_f(ctx, id, 9, cx);
        self.nset_f(ctx, id, 10, cy);
        self.nset_f(ctx, id, 11, half);
        id
    }

    /// Insert particle `pi` (position known host-side: positions are
    /// read from simulated memory by the caller). Runs inside the tree
    /// critical section.
    fn insert(&self, ctx: &ThreadCtx, pi: u64, x: f32, y: f32, px: Region, py: Region) {
        let mut node = 0u64;
        loop {
            ctx.tick(3);
            match self.nu(ctx, node, 0) {
                K_EMPTY => {
                    self.nset_u(ctx, node, 0, K_LEAF);
                    self.nset_u(ctx, node, 1, pi as u32);
                    return;
                }
                K_LEAF => {
                    let old = self.nu(ctx, node, 1) as u64;
                    self.nset_u(ctx, node, 0, K_INTERNAL);
                    let cx = self.nf(ctx, node, 9);
                    let cy = self.nf(ctx, node, 10);
                    let h = self.nf(ctx, node, 11);
                    let ox = ctx.read_f32(px, old);
                    let oy = ctx.read_f32(py, old);
                    let q = HostTree::quadrant(cx, cy, ox, oy) as u64;
                    let ncx = cx + if q & 1 != 0 { h / 2.0 } else { -h / 2.0 };
                    let ncy = cy + if q & 2 != 0 { h / 2.0 } else { -h / 2.0 };
                    let child = self.alloc(ctx, ncx, ncy, h / 2.0);
                    self.nset_u(ctx, node, 2 + q, child as u32);
                    self.nset_u(ctx, child, 0, K_LEAF);
                    self.nset_u(ctx, child, 1, old as u32);
                }
                _ => {
                    let cx = self.nf(ctx, node, 9);
                    let cy = self.nf(ctx, node, 10);
                    let h = self.nf(ctx, node, 11);
                    let q = HostTree::quadrant(cx, cy, x, y) as u64;
                    let child = self.nu(ctx, node, 2 + q) as u64;
                    if child == 0 {
                        let ncx = cx + if q & 1 != 0 { h / 2.0 } else { -h / 2.0 };
                        let ncy = cy + if q & 2 != 0 { h / 2.0 } else { -h / 2.0 };
                        let nc = self.alloc(ctx, ncx, ncy, h / 2.0);
                        self.nset_u(ctx, node, 2 + q, nc as u32);
                        self.nset_u(ctx, nc, 0, K_LEAF);
                        self.nset_u(ctx, nc, 1, pi as u32);
                        return;
                    }
                    node = child;
                }
            }
        }
    }
}

impl App for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(
            &[SyncPattern::Barrier, SyncPattern::OutsideCritical],
            &[SyncPattern::Critical],
        )
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let theta = self.theta;
        let ps = self.particles();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let px = p.alloc(n as u64);
        let py = p.alloc(n as u64);
        let ax = p.alloc(n as u64);
        let ay = p.alloc(n as u64);
        // Node pool: generous upper bound on quadtree size.
        let pool = p.alloc(8 * n as u64 * NODE_WORDS);
        let count = p.alloc(1);
        let ticket = p.alloc(1);
        for (i, part) in ps.iter().enumerate() {
            p.init_f32(px, i as u64, part.x);
            p.init_f32(py, i as u64, part.y);
        }
        let tree_lock = p.lock(); // OCC: node data crosses CS boundaries
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let tree = SimTree { pool, count };
            let t = ctx.tid();
            // Root allocation + ticket reset by thread 0.
            if t == 0 {
                ctx.lock(tree_lock);
                let root = tree.alloc(ctx, 0.0, 0.0, 2.0);
                debug_assert_eq!(root, 0);
                ctx.write(ticket, 0, 0);
                ctx.unlock(tree_lock);
            }
            ctx.barrier(bar);
            // Phase 1: tree build. Insertions must happen in a globally
            // deterministic order for host comparison: a ticket inside the
            // critical section serializes particle index order.
            loop {
                ctx.lock(tree_lock);
                let i = ctx.read(ticket, 0) as u64;
                if i < n as u64 {
                    ctx.write(ticket, 0, i as u32 + 1);
                    let x = ctx.read_f32(px, i);
                    let y = ctx.read_f32(py, i);
                    tree.insert(ctx, i, x, y, px, py);
                }
                ctx.unlock(tree_lock);
                if i >= n as u64 {
                    break;
                }
            }
            ctx.barrier(bar);
            // Phase 2: bottom-up mass summary, done by thread 0 (the
            // SPLASH code parallelizes this; a serial phase keeps the
            // kernel small while the communication shape — everyone then
            // reads what thread 0 wrote — is preserved by the barrier).
            if t == 0 {
                let total = ctx.read(count, 0) as u64;
                for i in (0..total).rev() {
                    match tree.nu(ctx, i, 0) {
                        K_LEAF => {
                            let pi = tree.nu(ctx, i, 1) as u64;
                            tree.nset_f(ctx, i, 6, 1.0);
                            let vx = ctx.read_f32(px, pi);
                            let vy = ctx.read_f32(py, pi);
                            tree.nset_f(ctx, i, 7, vx);
                            tree.nset_f(ctx, i, 8, vy);
                        }
                        K_INTERNAL => {
                            let (mut m, mut sx, mut sy) = (0.0f32, 0.0f32, 0.0f32);
                            for q in 0..4 {
                                let c = tree.nu(ctx, i, 2 + q) as u64;
                                if c != 0 {
                                    let cm = tree.nf(ctx, c, 6);
                                    m += cm;
                                    sx += tree.nf(ctx, c, 7) * cm;
                                    sy += tree.nf(ctx, c, 8) * cm;
                                }
                            }
                            tree.nset_f(ctx, i, 6, m);
                            if m > 0.0 {
                                tree.nset_f(ctx, i, 7, sx / m);
                                tree.nset_f(ctx, i, 8, sy / m);
                            }
                            ctx.tick(8);
                        }
                        _ => {}
                    }
                }
            }
            ctx.barrier(bar);
            // Phase 3: force computation over own particles.
            let chunk = n.div_ceil(ctx.nthreads());
            for i in (t * chunk) as u64..(((t + 1) * chunk).min(n)) as u64 {
                let x = ctx.read_f32(px, i);
                let y = ctx.read_f32(py, i);
                let (mut fx, mut fy) = (0.0f32, 0.0f32);
                let mut stack = vec![0u64];
                while let Some(nd) = stack.pop() {
                    let kind = tree.nu(ctx, nd, 0);
                    if kind == K_EMPTY {
                        continue;
                    }
                    let m = tree.nf(ctx, nd, 6);
                    let pxv = tree.nf(ctx, nd, 7);
                    let pyv = tree.nf(ctx, nd, 8);
                    let dx = pxv - x;
                    let dy = pyv - y;
                    let d2 = dx * dx + dy * dy + 1e-4;
                    let d = d2.sqrt();
                    let size = tree.nf(ctx, nd, 11) * 2.0;
                    ctx.tick(12);
                    if kind == K_LEAF || size / d < theta {
                        if d2 > 1e-4 {
                            let f = m / (d2 * d);
                            fx += f * dx;
                            fy += f * dy;
                        }
                    } else {
                        for q in 0..4 {
                            let c = tree.nu(ctx, nd, 2 + q) as u64;
                            if c != 0 {
                                stack.push(c);
                            }
                        }
                    }
                }
                ctx.write_f32(ax, i, fx);
                ctx.write_f32(ay, i, fy);
            }
            ctx.barrier(bar);
        });

        let want = self.host_forces(&ps);
        let mut max_err = 0.0f32;
        for i in 0..n {
            let gx = out.peek_f32(ax, i as u64);
            let gy = out.peek_f32(ay, i as u64);
            max_err = max_err
                .max((gx - want[i].0).abs())
                .max((gy - want[i].1).abs());
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-3,
            format!("n={n}, max force error {max_err:.2e}"),
        )
    }
}
