//! LU — blocked dense LU factorization without pivoting (SPLASH-2 LU
//! analogue), in both layouts the paper runs:
//!
//! * **contiguous**: each B x B block is stored contiguously and
//!   line-aligned, so blocks owned by different threads never share cache
//!   lines;
//! * **non-contiguous**: the matrix is plain row-major, so a block's rows
//!   are strided and adjacent blocks share lines (false-sharing prone).
//!
//! Communication pattern (Table I): **Barrier** only — the three phases
//! of step k (diagonal factorization, perimeter update, interior update)
//! are separated by global barriers.

use hic_mem::Region;
use hic_runtime::{ProgramBuilder, ThreadCtx};
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Lu {
    scale: Scale,
    n: usize,
    b: usize,
    contiguous: bool,
}

/// Index of element (i, j) in the chosen layout.
#[derive(Clone, Copy)]
struct Layout {
    n: usize,
    b: usize,
    contiguous: bool,
}

impl Layout {
    #[inline]
    fn idx(&self, i: usize, j: usize) -> u64 {
        if self.contiguous {
            let nb = self.n / self.b;
            let (bi, bj) = (i / self.b, j / self.b);
            let base = (bi * nb + bj) * self.b * self.b;
            (base + (i % self.b) * self.b + (j % self.b)) as u64
        } else {
            (i * self.n + j) as u64
        }
    }
}

impl Lu {
    pub fn new(scale: Scale, contiguous: bool) -> Lu {
        let (n, b) = match scale {
            Scale::Test => (16, 4),
            // B = 16 matches SPLASH-2: one block row = one 64-byte line,
            // so the non-contiguous layout differs in locality, not in
            // artificial false sharing.
            Scale::Small => (64, 16),
            Scale::Medium => (128, 16),
            Scale::Large => (256, 16),
            Scale::Paper => (512, 16), // the paper's 512x512
        };
        Lu {
            scale,
            n,
            b,
            contiguous,
        }
    }

    fn input(&self) -> Vec<f32> {
        let n = self.n;
        let mut rng = SplitMix64::new(0x1u64 + n as u64);
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = rng.unit_f32();
            }
            a[i * n + i] += n as f32; // diagonal dominance: stable, no pivot
        }
        a
    }

    /// Host reference: the same blocked algorithm, same operation order.
    fn host_lu(&self, a: &mut [f32]) {
        let (n, b) = (self.n, self.b);
        let nb = n / b;
        let at = |a: &[f32], i: usize, j: usize| a[i * n + j];
        for k in 0..nb {
            // Diagonal block.
            for c in k * b..(k + 1) * b {
                for r in c + 1..(k + 1) * b {
                    a[r * n + c] /= at(a, c, c);
                }
                for r in c + 1..(k + 1) * b {
                    for cc in c + 1..(k + 1) * b {
                        a[r * n + cc] -= at(a, r, c) * at(a, c, cc);
                    }
                }
            }
            // Perimeter: row blocks (k, j).
            for j in k + 1..nb {
                for c in k * b..(k + 1) * b {
                    for r in c + 1..(k + 1) * b {
                        for cc in j * b..(j + 1) * b {
                            a[r * n + cc] -= at(a, r, c) * at(a, c, cc);
                        }
                    }
                }
            }
            // Perimeter: column blocks (i, k).
            for i in k + 1..nb {
                for c in k * b..(k + 1) * b {
                    for r in i * b..(i + 1) * b {
                        a[r * n + c] /= at(a, c, c);
                    }
                    for r in i * b..(i + 1) * b {
                        for cc in c + 1..(k + 1) * b {
                            a[r * n + cc] -= at(a, r, c) * at(a, c, cc);
                        }
                    }
                }
            }
            // Interior.
            for i in k + 1..nb {
                for j in k + 1..nb {
                    for r in i * b..(i + 1) * b {
                        for c in k * b..(k + 1) * b {
                            let l = at(a, r, c);
                            for cc in j * b..(j + 1) * b {
                                a[r * n + cc] -= l * at(a, c, cc);
                            }
                        }
                    }
                }
            }
        }
    }

    /// 2D-scatter block ownership, as in SPLASH-2 LU.
    fn owner(nb: usize, nthreads: usize, bi: usize, bj: usize) -> usize {
        let _ = nb;
        let pr = (nthreads as f64).sqrt() as usize;
        let pr = pr.max(1);
        let pc = nthreads / pr;
        (bi % pr) * pc + (bj % pc)
    }
}

/// Simulated-side element helpers.
fn get(ctx: &ThreadCtx, m: Region, l: Layout, i: usize, j: usize) -> f32 {
    ctx.read_f32(m, l.idx(i, j))
}

fn put(ctx: &ThreadCtx, m: Region, l: Layout, i: usize, j: usize, v: f32) {
    ctx.write_f32(m, l.idx(i, j), v);
}

impl App for Lu {
    fn name(&self) -> &'static str {
        if self.contiguous {
            "LU cont"
        } else {
            "LU non-cont"
        }
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier], &[])
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let (n, b) = (self.n, self.b);
        let nb = n / b;
        let layout = Layout {
            n,
            b,
            contiguous: self.contiguous,
        };
        let input = self.input();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let m = p.alloc((n * n) as u64);
        for i in 0..n {
            for j in 0..n {
                p.init_f32(m, layout.idx(i, j), input[i * n + j]);
            }
        }
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            for k in 0..nb {
                // Phase 1: diagonal block factorization by its owner.
                if Lu::owner(nb, nthreads, k, k) == t {
                    for c in k * b..(k + 1) * b {
                        let pivot = get(ctx, m, layout, c, c);
                        for r in c + 1..(k + 1) * b {
                            let v = get(ctx, m, layout, r, c) / pivot;
                            put(ctx, m, layout, r, c, v);
                            ctx.tick(4);
                        }
                        for r in c + 1..(k + 1) * b {
                            let l = get(ctx, m, layout, r, c);
                            for cc in c + 1..(k + 1) * b {
                                let v = get(ctx, m, layout, r, cc) - l * get(ctx, m, layout, c, cc);
                                put(ctx, m, layout, r, cc, v);
                                ctx.tick(2);
                            }
                        }
                    }
                }
                ctx.barrier(bar);
                // Phase 2: perimeter updates.
                for j in k + 1..nb {
                    if Lu::owner(nb, nthreads, k, j) == t {
                        for c in k * b..(k + 1) * b {
                            for r in c + 1..(k + 1) * b {
                                let l = get(ctx, m, layout, r, c);
                                for cc in j * b..(j + 1) * b {
                                    let v =
                                        get(ctx, m, layout, r, cc) - l * get(ctx, m, layout, c, cc);
                                    put(ctx, m, layout, r, cc, v);
                                    ctx.tick(2);
                                }
                            }
                        }
                    }
                }
                for i in k + 1..nb {
                    if Lu::owner(nb, nthreads, i, k) == t {
                        for c in k * b..(k + 1) * b {
                            let pivot = get(ctx, m, layout, c, c);
                            for r in i * b..(i + 1) * b {
                                let v = get(ctx, m, layout, r, c) / pivot;
                                put(ctx, m, layout, r, c, v);
                                ctx.tick(4);
                            }
                            for r in i * b..(i + 1) * b {
                                let l = get(ctx, m, layout, r, c);
                                for cc in c + 1..(k + 1) * b {
                                    let v =
                                        get(ctx, m, layout, r, cc) - l * get(ctx, m, layout, c, cc);
                                    put(ctx, m, layout, r, cc, v);
                                    ctx.tick(2);
                                }
                            }
                        }
                    }
                }
                ctx.barrier(bar);
                // Phase 3: interior updates.
                for i in k + 1..nb {
                    for j in k + 1..nb {
                        if Lu::owner(nb, nthreads, i, j) == t {
                            for r in i * b..(i + 1) * b {
                                for c in k * b..(k + 1) * b {
                                    let l = get(ctx, m, layout, r, c);
                                    for cc in j * b..(j + 1) * b {
                                        let v = get(ctx, m, layout, r, cc)
                                            - l * get(ctx, m, layout, c, cc);
                                        put(ctx, m, layout, r, cc, v);
                                        ctx.tick(2);
                                    }
                                }
                            }
                        }
                    }
                }
                ctx.barrier(bar);
            }
        });

        let mut href = self.input();
        self.host_lu(&mut href);
        let mut max_err = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let got = out.peek_f32(m, layout.idx(i, j));
                let want = href[i * n + j];
                max_err = max_err.max((got - want).abs() / want.abs().max(1.0));
            }
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-3,
            format!("n={n}, b={b}, max rel error {max_err:.2e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The host LU must satisfy L * U = A (the factorization identity),
    /// validating the reference the simulated runs are compared against.
    #[test]
    fn host_lu_reconstructs_the_input() {
        let lu = Lu {
            scale: Scale::Test,
            n: 32,
            b: 8,
            contiguous: true,
        };
        let a0 = lu.input();
        let mut f = a0.clone();
        lu.host_lu(&mut f);
        let n = 32;
        for i in 0..n {
            for j in 0..n {
                // (L*U)[i][j] with L unit-lower, U upper from the packed f.
                let mut s = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { f[i * n + k] as f64 };
                    let u = f[k * n + j] as f64;
                    s += l * u;
                }
                let want = a0[i * n + j] as f64;
                assert!(
                    (s - want).abs() < 1e-2 * want.abs().max(1.0),
                    "A[{i}][{j}]: L*U={s} want {want}"
                );
            }
        }
    }

    /// Both layouts address every element exactly once (bijectivity).
    #[test]
    fn layouts_are_bijective() {
        for contiguous in [true, false] {
            let l = Layout {
                n: 16,
                b: 4,
                contiguous,
            };
            let mut seen = std::collections::HashSet::new();
            for i in 0..16 {
                for j in 0..16 {
                    assert!(seen.insert(l.idx(i, j)), "collision at ({i},{j})");
                    assert!(l.idx(i, j) < 256);
                }
            }
        }
    }
}
