//! The intra-block application suite (programming model 1, §IV).

pub mod barnes;
pub mod cholesky;
pub mod fft;
pub mod lu;
pub mod ocean;
pub mod raytrace;
pub mod volrend;
pub mod water;
