//! Ocean — 2D grid relaxation with barrier phases and a lock-protected
//! global residual reduction (SPLASH-2 Ocean analogue), in the two
//! layouts the paper runs:
//!
//! * **contiguous**: the grid's row pitch is padded to a cache-line
//!   multiple, so different threads' row bands never share lines;
//! * **non-contiguous**: an unpadded pitch makes band-boundary rows share
//!   lines across threads (false-sharing prone in coherent machines,
//!   harmless-but-chatty in incoherent ones).
//!
//! Table I: main **Barrier, Critical**.

use hic_runtime::ProgramBuilder;
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Ocean {
    scale: Scale,
    rows: usize,
    cols: usize,
    iters: usize,
    contiguous: bool,
}

impl Ocean {
    pub fn new(scale: Scale, contiguous: bool) -> Ocean {
        let (rows, cols, iters) = match scale {
            Scale::Test => (18, 10, 2),
            Scale::Small => (34, 18, 4),
            Scale::Medium => (66, 34, 6),
            Scale::Large => (130, 66, 10),
            Scale::Paper => (258, 258, 20), // the paper's 258x258
        };
        Ocean {
            scale,
            rows,
            cols,
            iters,
            contiguous,
        }
    }

    /// Row pitch in words: padded to a full line for the contiguous
    /// layout, exactly `cols` otherwise.
    fn pitch(&self) -> usize {
        if self.contiguous {
            self.cols.next_multiple_of(16)
        } else {
            self.cols
        }
    }

    fn input(&self) -> Vec<f32> {
        let mut rng = SplitMix64::new(0x0CEA + self.rows as u64);
        (0..self.rows * self.cols).map(|_| rng.unit_f32()).collect()
    }

    /// Host reference: Jacobi sweeps with the same op order; returns the
    /// final grid and the per-iteration global residuals.
    fn host(&self) -> (Vec<f32>, Vec<f32>) {
        let (r, c) = (self.rows, self.cols);
        let mut a = self.input();
        let mut b = a.clone();
        let mut residuals = Vec::new();
        for _ in 0..self.iters {
            let mut maxdiff = 0.0f32;
            for i in 1..r - 1 {
                for j in 1..c - 1 {
                    let v = 0.25
                        * (a[(i - 1) * c + j]
                            + a[(i + 1) * c + j]
                            + a[i * c + j - 1]
                            + a[i * c + j + 1]);
                    b[i * c + j] = v;
                    maxdiff = maxdiff.max((v - a[i * c + j]).abs());
                }
            }
            residuals.push(maxdiff);
            std::mem::swap(&mut a, &mut b);
        }
        (a, residuals)
    }
}

impl App for Ocean {
    fn name(&self) -> &'static str {
        if self.contiguous {
            "Ocean cont"
        } else {
            "Ocean non-cont"
        }
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier, SyncPattern::Critical], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let (r, c, iters) = (self.rows, self.cols, self.iters);
        let pitch = self.pitch();
        let input = self.input();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        // Two grids; packed allocation so the non-contiguous layout really
        // shares lines at band boundaries.
        let ga = p.alloc_packed((r * pitch) as u64);
        let gb = p.alloc_packed((r * pitch) as u64);
        let residual = p.alloc(1);
        for i in 0..r {
            for j in 0..c {
                p.init_f32(ga, (i * pitch + j) as u64, input[i * c + j]);
                p.init_f32(gb, (i * pitch + j) as u64, input[i * c + j]);
            }
        }
        let red_lock = p.lock_occ(false);
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            // Interior rows are banded across threads.
            let interior = r - 2;
            let band = interior.div_ceil(ctx.nthreads());
            let (lo, hi) = (1 + t * band, (1 + (t + 1) * band).min(r - 1));
            let grids = [ga, gb];
            for it in 0..iters {
                if t == 0 {
                    ctx.write_f32(residual, 0, 0.0);
                }
                ctx.barrier(bar);
                let src = grids[it % 2];
                let dst = grids[(it + 1) % 2];
                let mut local_max = 0.0f32;
                for i in lo..hi {
                    for j in 1..c - 1 {
                        let up = ctx.read_f32(src, ((i - 1) * pitch + j) as u64);
                        let dn = ctx.read_f32(src, ((i + 1) * pitch + j) as u64);
                        let lf = ctx.read_f32(src, (i * pitch + j - 1) as u64);
                        let rt = ctx.read_f32(src, (i * pitch + j + 1) as u64);
                        let old = ctx.read_f32(src, (i * pitch + j) as u64);
                        let v = 0.25 * (up + dn + lf + rt);
                        ctx.write_f32(dst, (i * pitch + j) as u64, v);
                        local_max = local_max.max((v - old).abs());
                        ctx.tick(6);
                    }
                }
                // Global residual reduction in a critical section.
                ctx.lock(red_lock);
                let g = ctx.read_f32(residual, 0);
                if local_max > g {
                    ctx.write_f32(residual, 0, local_max);
                }
                ctx.unlock(red_lock);
                ctx.barrier(bar);
            }
        });

        let (want, residuals) = self.host();
        let final_grid = if iters % 2 == 0 { ga } else { gb };
        let mut max_err = 0.0f32;
        for i in 0..r {
            for j in 0..c {
                let got = out.peek_f32(final_grid, (i * pitch + j) as u64);
                max_err = max_err.max((got - want[i * c + j]).abs());
            }
        }
        // The last residual must also match (reduction correctness).
        let got_res = out.peek_f32(residual, 0);
        let res_err = (got_res - residuals[iters - 1]).abs();
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-5 && res_err <= 1e-5,
            format!(
                "{r}x{c} (pitch {pitch}), {iters} iters, grid err {max_err:.2e}, residual err {res_err:.2e}"
            ),
        )
    }
}
