//! Jacobi — the paper's 2D Jacobi application, fully instrumented by the
//! `hic-analysis` DEF-USE pass.
//!
//! The grid is row-banded over threads; each sweep reads a 3-row stencil
//! and writes one row, so the only cross-thread data are the band-edge
//! (halo) rows. The analyzer extracts exactly those producer-consumer
//! pairs and emits `WB_CONS` / `INV_PROD` per neighbor — which `Addr+L`
//! resolves to *local* operations whenever both threads share a block.
//! This is the application where level-adaptive instructions shine
//! (paper Figure 11: Jacobi's global WB/INV drop sharply under Addr+L).

use hic_analysis::{Access, Analyzer, ArrayId, Chunks, Node, NodePlans, Pattern, Program};
use hic_mem::Region;
use hic_runtime::{BarrierId, CommOp, Config, EpochPlan, ProgramBuilder, ProgramRecord};
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Jacobi {
    scale: Scale,
    rows: usize,
    cols: usize,
    iters: usize,
}

impl Jacobi {
    pub fn new(scale: Scale) -> Jacobi {
        let (rows, cols, iters) = match scale {
            Scale::Test => (34, 16, 2),
            Scale::Small => (130, 16, 3),
            Scale::Medium => (258, 32, 4),
            Scale::Large => (514, 64, 6),
            Scale::Paper => (1024, 1024, 10),
        };
        Jacobi {
            scale,
            rows,
            cols,
            iters,
        }
    }

    fn input(&self) -> Vec<f32> {
        let mut rng = SplitMix64::new(0x1AC0B1 + self.rows as u64);
        (0..self.rows * self.cols).map(|_| rng.unit_f32()).collect()
    }

    fn host(&self) -> Vec<f32> {
        let (r, c) = (self.rows, self.cols);
        let mut a = self.input();
        let mut b = a.clone();
        for _ in 0..self.iters {
            for i in 1..r - 1 {
                for j in 1..c - 1 {
                    b[i * c + j] = 0.25
                        * (a[(i - 1) * c + j]
                            + a[(i + 1) * c + j]
                            + a[i * c + j - 1]
                            + a[i * c + j + 1]);
                }
            }
            for i in 1..r - 1 {
                for j in 1..c - 1 {
                    a[i * c + j] = 0.25
                        * (b[(i - 1) * c + j]
                            + b[(i + 1) * c + j]
                            + b[i * c + j - 1]
                            + b[i * c + j + 1]);
                }
            }
        }
        a
    }

    /// Builder with allocations, inputs, barrier, and the analyzer's
    /// plans. Shared by [`App::run_with`] and [`App::record`] so the
    /// record describes exactly the program that runs (same addresses,
    /// same plan call sites in the same order).
    fn setup(&self, config: Config) -> (ProgramBuilder, JacobiSetup) {
        let (r, c) = (self.rows, self.cols);
        let input = self.input();

        let mut p = ProgramBuilder::new(config);
        let nthreads = p.num_threads();
        let ga = p.alloc_named("ga", (r * c) as u64);
        let gb = p.alloc_named("gb", (r * c) as u64);
        for i in 0..r * c {
            p.init_f32(ga, i as u64, input[i]);
            p.init_f32(gb, i as u64, input[i]);
        }
        let bar = p.barrier();

        // The affine program the "compiler" sees: two sweeps per
        // iteration (A->B and B->A), looping.
        let interior = (r - 2) as u64;
        let cw = c as i64;
        let program = Program {
            arrays: vec![ga, gb],
            nodes: vec![
                Node::ParFor {
                    iters: interior,
                    reads: vec![Access::new(
                        ArrayId(0),
                        Pattern::Range {
                            scale: cw,
                            lo: 0,
                            hi: 3 * cw,
                        },
                    )],
                    writes: vec![Access::new(
                        ArrayId(1),
                        Pattern::Range {
                            scale: cw,
                            lo: cw,
                            hi: 2 * cw,
                        },
                    )],
                },
                Node::ParFor {
                    iters: interior,
                    reads: vec![Access::new(
                        ArrayId(1),
                        Pattern::Range {
                            scale: cw,
                            lo: 0,
                            hi: 3 * cw,
                        },
                    )],
                    writes: vec![Access::new(
                        ArrayId(0),
                        Pattern::Range {
                            scale: cw,
                            lo: cw,
                            hi: 2 * cw,
                        },
                    )],
                },
            ],
            repeat: true,
        };
        let plans = Analyzer::new(&program, nthreads).analyze();
        let chunks = Chunks::new(interior, nthreads);
        (
            p,
            JacobiSetup {
                nthreads,
                ga,
                gb,
                bar,
                plans,
                chunks,
            },
        )
    }

    /// The final-writeback plan thread `t` posts for verification (only
    /// threads with a non-empty band).
    fn final_wb(&self, s: &JacobiSetup, t: usize) -> Option<EpochPlan> {
        let (ilo, ihi) = s.chunks.range(t);
        if ihi <= ilo {
            return None;
        }
        let c = self.cols as u64;
        let lo_w = (ilo + 1) * c;
        let hi_w = (ihi + 1) * c;
        Some(EpochPlan::new().with_wb(CommOp::unknown(s.ga.slice(lo_w, hi_w))))
    }
}

/// Everything [`Jacobi::setup`] derives from the builder.
struct JacobiSetup {
    nthreads: usize,
    ga: Region,
    gb: Region,
    bar: BarrierId,
    plans: NodePlans,
    chunks: Chunks,
}

impl App for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn record(&self, config: Config) -> Option<ProgramRecord> {
        let (p, s) = self.setup(config);
        let (c, iters) = (self.cols, self.iters);
        let mut rec = p.record(s.nthreads);
        rec.host_reads(s.ga);
        for t in 0..s.nthreads {
            let (ilo, ihi) = s.chunks.range(t);
            let final_wb = self.final_wb(&s, t);
            let mut th = rec.thread(t);
            let grids = [s.ga, s.gb];
            for _ in 0..iters {
                for node in 0..2 {
                    th.plan_inv(&s.plans.start[node][t]);
                    if ihi > ilo {
                        let src = grids[node];
                        let dst = grids[1 - node];
                        // Stencil rows [ilo, ihi+2) read; band rows
                        // [ilo+1, ihi+1) written (full-row summaries,
                        // matching the patterns the analyzer saw).
                        th.reads(src.slice(ilo * c as u64, (ihi + 2) * c as u64));
                        th.writes(dst.slice((ilo + 1) * c as u64, (ihi + 1) * c as u64));
                    }
                    th.plan_wb(&s.plans.end[node][t]);
                    th.plan_barrier(s.bar);
                }
            }
            if let Some(wb) = &final_wb {
                th.plan_wb(wb);
            }
            th.plan_barrier(s.bar);
        }
        Some(rec)
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let (r, c, iters) = (self.rows, self.cols, self.iters);
        let (mut p, s) = self.setup(config);
        p.apply_request(req);
        let JacobiSetup {
            nthreads,
            ga,
            gb,
            bar,
            plans,
            chunks,
        } = s;

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let (ilo, ihi) = chunks.range(t);
            let grids = [ga, gb];
            for _ in 0..iters {
                for node in 0..2 {
                    // Consume: invalidate the halo rows the analyzer found.
                    ctx.plan_inv(&plans.start[node][t]);
                    let src = grids[node];
                    let dst = grids[1 - node];
                    for it in ilo..ihi {
                        let i = it as usize + 1; // interior row
                        for j in 1..c - 1 {
                            let up = ctx.read_f32(src, ((i - 1) * c + j) as u64);
                            let dn = ctx.read_f32(src, ((i + 1) * c + j) as u64);
                            let lf = ctx.read_f32(src, (i * c + j - 1) as u64);
                            let rt = ctx.read_f32(src, (i * c + j + 1) as u64);
                            let v = 0.25 * (up + dn + lf + rt);
                            ctx.write_f32(dst, (i * c + j) as u64, v);
                            ctx.tick(5);
                        }
                    }
                    // Produce: write back the band-edge rows to the
                    // neighbors the analyzer named.
                    ctx.plan_wb(&plans.end[node][t]);
                    ctx.plan_barrier(bar);
                }
            }
            // Post the final grid for verification.
            if ihi > ilo {
                let lo_w = ((ilo as usize + 1) * c) as u64;
                let hi_w = ((ihi as usize + 1) * c) as u64;
                ctx.plan_wb(
                    &hic_runtime::EpochPlan::new()
                        .with_wb(hic_runtime::CommOp::unknown(ga.slice(lo_w, hi_w))),
                );
            }
            ctx.plan_barrier(bar);
        });

        let want = self.host();
        let mut max_err = 0.0f32;
        for i in 0..r * c {
            max_err = max_err.max((out.peek_f32(ga, i as u64) - want[i]).abs());
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-5,
            format!("{r}x{c}, {iters} iters, max err {max_err:.2e}"),
        )
    }
}
