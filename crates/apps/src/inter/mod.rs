//! The inter-block application suite (programming model 2, §V).

pub mod cg;
pub mod ep;
pub mod is;
pub mod jacobi;
