//! CG — conjugate gradient with a sparse random matrix (NAS CG analogue),
//! the paper's irregular application (§V-A2, Figure 8).
//!
//! The sparse matrix-vector product reads `p[col[j]]` through
//! indirection, so the producer of each consumed element is unknown at
//! compile time. An **inspector** loop (simulated, run once and amortized
//! over the solver iterations) resolves, for every remotely-produced
//! element a thread reads, the producing thread; the executor then issues
//! `INV_PROD` only where needed. Writebacks of the updated vectors go to
//! L3 wholesale — "to reduce the complexity of the analysis, we write
//! everything to L3" — which is why level-adaptive support trims CG's
//! global INVs but not its global WBs (paper Figure 11: INVs drop to
//! ~78%, WBs stay at 100%).
//!
//! Column indices are uniform over all rows, so ~3/4 of remote reads
//! cross a block boundary (24 of 31 foreign chunks are in other blocks) —
//! matching the paper's measured 78%.

use hic_analysis::{inspect_indirect, Chunks};
use hic_mem::Region;
use hic_runtime::{BarrierId, CommOp, Config, EpochPlan, ProgramBuilder, ProgramRecord};
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Cg {
    scale: Scale,
    n: usize,
    nnz_per_row: usize,
    iters: usize,
}

struct Csr {
    rowptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f32>,
}

impl Cg {
    pub fn new(scale: Scale) -> Cg {
        let (n, nnz, iters) = match scale {
            Scale::Test => (64, 4, 2),
            Scale::Small => (1024, 8, 3),
            Scale::Medium => (2048, 10, 4),
            Scale::Large => (6000, 12, 8),
            Scale::Paper => (14000, 13, 15), // NAS CG class-S-ish shape
        };
        Cg {
            scale,
            n,
            nnz_per_row: nnz,
            iters,
        }
    }

    /// Deterministic sparse SPD-ish matrix: random off-diagonals plus a
    /// dominant diagonal.
    fn matrix(&self) -> Csr {
        let n = self.n;
        let mut rng = SplitMix64::new(0xC6 + n as u64);
        let mut rowptr = vec![0u32];
        let mut col = Vec::new();
        let mut val = Vec::new();
        for i in 0..n {
            let mut cols: Vec<u32> = (0..self.nnz_per_row - 1)
                .map(|_| rng.below(n as u64) as u32)
                .filter(|&c| c != i as u32)
                .collect();
            cols.push(i as u32);
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col.push(c);
                val.push(if c == i as u32 {
                    self.nnz_per_row as f32 + 1.0
                } else {
                    0.1 + 0.4 * rng.unit_f32()
                });
            }
            rowptr.push(col.len() as u32);
        }
        Csr { rowptr, col, val }
    }

    /// Host CG, mirroring the simulated op order (chunked dots summed in
    /// thread order).
    fn host_cg(&self, m: &Csr, nthreads: usize) -> Vec<f32> {
        let n = self.n;
        let chunks = Chunks::new(n as u64, nthreads);
        let mut x = vec![0.0f32; n];
        let mut r = vec![1.0f32; n];
        let mut pv = vec![1.0f32; n];
        let mut q = vec![0.0f32; n];
        let dot = |a: &[f32], b: &[f32]| -> f32 {
            // Partial dots per thread chunk, reduced in thread order.
            let mut total = 0.0f32;
            for t in 0..nthreads {
                let (lo, hi) = chunks.range(t);
                let mut s = 0.0f32;
                for i in lo..hi {
                    s += a[i as usize] * b[i as usize];
                }
                total += s;
            }
            total
        };
        let mut rsold = dot(&r, &r);
        for _ in 0..self.iters {
            for i in 0..n {
                let mut s = 0.0f32;
                for j in m.rowptr[i] as usize..m.rowptr[i + 1] as usize {
                    s += m.val[j] * pv[m.col[j] as usize];
                }
                q[i] = s;
            }
            let alpha = rsold / dot(&pv, &q);
            for i in 0..n {
                x[i] += alpha * pv[i];
                r[i] -= alpha * q[i];
            }
            let rsnew = dot(&r, &r);
            let beta = rsnew / rsold;
            for i in 0..n {
                pv[i] = r[i] + beta * pv[i];
            }
            rsold = rsnew;
        }
        x
    }

    /// Builder with allocations, inputs, barrier, and the inspector's
    /// per-thread plans. Shared by [`App::run_with`] and [`App::record`]
    /// so the record describes exactly the program that runs.
    fn setup(&self, config: Config) -> (ProgramBuilder, CgSetup) {
        let n = self.n;
        let m = self.matrix();
        let nnz = m.col.len();

        let mut p = ProgramBuilder::new(config);
        let nthreads = p.num_threads();
        let chunks = Chunks::new(n as u64, nthreads);
        let rowptr = p.alloc_named("rowptr", n as u64 + 1);
        let colr = p.alloc_named("col", nnz as u64);
        let valr = p.alloc_named("val", nnz as u64);
        let xv = p.alloc_named("x", n as u64);
        let rv = p.alloc_named("r", n as u64);
        let pvr = p.alloc_named("p", n as u64);
        let qv = p.alloc_named("q", n as u64);
        let conflict = p.alloc_named("conflict", nnz as u64); // the inspector's output array
        let scalars = p.alloc_named("scalars", 4); // 0: dot accumulator, 1: rsold, 2: alpha, 3: beta
        for (i, v) in m.rowptr.iter().enumerate() {
            p.init(rowptr, i as u64, *v);
        }
        for i in 0..nnz {
            p.init(colr, i as u64, m.col[i]);
            p.init_f32(valr, i as u64, m.val[i]);
        }
        let partials = p.alloc_named("partials", nthreads as u64); // per-thread dot partials
        for i in 0..n as u64 {
            p.init_f32(xv, i, 0.0);
            p.init_f32(rv, i, 1.0);
            p.init_f32(pvr, i, 1.0);
            p.init_f32(qv, i, 0.0);
        }
        let bar = p.barrier();

        // The inspector's *result* is also computed host-side so the
        // executor threads can index their plans; the simulated inspector
        // loop pays the corresponding simulated cost.
        let reads_by_thread: Vec<Vec<u64>> = (0..nthreads)
            .map(|t| {
                let (lo, hi) = chunks.range(t);
                (m.rowptr[lo as usize]..m.rowptr[hi as usize])
                    .map(|j| m.col[j as usize] as u64)
                    .collect()
            })
            .collect();
        let inv_plans = inspect_indirect(&reads_by_thread, chunks, pvr);
        (
            p,
            CgSetup {
                m,
                nthreads,
                chunks,
                rowptr,
                colr,
                valr,
                xv,
                rv,
                pvr,
                qv,
                conflict,
                scalars,
                partials,
                bar,
                reads_by_thread,
                inv_plans,
            },
        )
    }
}

/// Everything [`Cg::setup`] derives from the builder.
struct CgSetup {
    m: Csr,
    nthreads: usize,
    chunks: Chunks,
    rowptr: Region,
    colr: Region,
    valr: Region,
    xv: Region,
    rv: Region,
    pvr: Region,
    qv: Region,
    conflict: Region,
    scalars: Region,
    partials: Region,
    bar: BarrierId,
    reads_by_thread: Vec<Vec<u64>>,
    inv_plans: Vec<EpochPlan>,
}

/// Maximal contiguous runs of a (possibly unsorted, duplicated) element
/// set — the precise read summary of an indirect access.
fn element_runs(elems: &[u64]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<u64> = elems.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &e in &sorted {
        match runs.last_mut() {
            Some((_, hi)) if *hi == e => *hi = e + 1,
            _ => runs.push((e, e + 1)),
        }
    }
    runs
}

impl App for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn record(&self, config: Config) -> Option<ProgramRecord> {
        let (p, s) = self.setup(config);
        let iters = self.iters;
        let mut rec = p.record(s.nthreads);
        rec.host_reads(s.xv);
        let empty = EpochPlan::new();
        for t in 0..s.nthreads {
            let (lo, hi) = s.chunks.range(t);
            let (jlo, jhi) = (
                s.m.rowptr[lo as usize] as u64,
                s.m.rowptr[hi as usize] as u64,
            );
            let my_chunk = |r: Region| r.slice(lo, hi);
            let my_partial = s.partials.slice(t as u64, t as u64 + 1);
            let wb_partial = EpochPlan::new().with_wb(CommOp::unknown(my_partial));
            let inv_partials = EpochPlan::new().with_inv(CommOp::unknown(s.partials));
            let wb_scalars = EpochPlan::new().with_wb(CommOp::unknown(s.scalars));
            let scalar_inv = EpochPlan::new().with_inv(CommOp::unknown(s.scalars));
            let wb_p = EpochPlan::new().with_wb(CommOp::unknown(my_chunk(s.pvr)));
            let pvr_runs = element_runs(&s.reads_by_thread[t]);
            let my_inv = s.inv_plans[t].clone();
            let mut th = rec.thread(t);

            // dot(a, b) as the closure records it: partials written and
            // published, thread 0 combines.
            macro_rules! dot {
                ($a:expr, $b:expr) => {
                    th.reads(my_chunk($a)).reads(my_chunk($b));
                    th.writes(my_partial);
                    th.plan_wb(&wb_partial).plan_barrier(s.bar);
                    if t == 0 {
                        th.plan_inv(&inv_partials);
                        th.reads(s.partials);
                        th.writes(s.scalars.slice(0, 1));
                    }
                };
            }

            // Inspector epoch.
            th.reads(s.rowptr.slice(lo, hi + 1));
            th.reads(s.colr.slice(jlo, jhi));
            th.writes(s.conflict.slice(jlo, jhi));
            th.epoch_boundary(s.bar, &empty);

            // rsold = dot(r, r).
            dot!(s.rv, s.rv);
            if t == 0 {
                th.reads(s.scalars.slice(0, 1));
                th.writes(s.scalars.slice(1, 2));
                th.plan_wb(&wb_scalars);
            }
            th.plan_barrier(s.bar);

            for _ in 0..iters {
                // q = A p over own rows, p consumed through indirection.
                th.plan_inv(&my_inv);
                th.reads(s.rowptr.slice(lo, hi + 1));
                th.reads(s.colr.slice(jlo, jhi));
                th.reads(s.valr.slice(jlo, jhi));
                th.reads(s.conflict.slice(jlo, jhi));
                for &(elo, ehi) in &pvr_runs {
                    th.reads(s.pvr.slice(elo, ehi));
                }
                th.writes(my_chunk(s.qv));
                th.epoch_boundary(s.bar, &empty);

                // alpha = rsold / dot(p, q).
                dot!(s.pvr, s.qv);
                if t == 0 {
                    th.reads(s.scalars.slice(0, 2));
                    th.writes(s.scalars.slice(2, 3));
                    th.plan_wb(&wb_scalars);
                }
                th.plan_barrier(s.bar);
                th.plan_inv(&scalar_inv);
                th.reads(s.scalars.slice(2, 3));

                // x += alpha p; r -= alpha q (own chunks).
                th.reads(my_chunk(s.xv))
                    .reads(my_chunk(s.pvr))
                    .reads(my_chunk(s.rv))
                    .reads(my_chunk(s.qv));
                th.writes(my_chunk(s.xv)).writes(my_chunk(s.rv));
                th.epoch_boundary(s.bar, &empty);

                // rsnew = dot(r, r); beta = rsnew / rsold.
                dot!(s.rv, s.rv);
                if t == 0 {
                    th.reads(s.scalars.slice(0, 2));
                    th.writes(s.scalars.slice(3, 4));
                    th.writes(s.scalars.slice(1, 2));
                    th.plan_wb(&wb_scalars);
                }
                th.plan_barrier(s.bar);
                th.plan_inv(&scalar_inv);
                th.reads(s.scalars.slice(3, 4));

                // p = r + beta p (own chunk).
                th.reads(my_chunk(s.rv)).reads(my_chunk(s.pvr));
                th.writes(my_chunk(s.pvr));
                th.plan_wb(&wb_p).plan_barrier(s.bar);
            }
            // Final: publish x for the host verifier.
            th.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(my_chunk(s.xv))));
            th.plan_barrier(s.bar);
        }
        Some(rec)
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let iters = self.iters;
        let (mut p, s) = self.setup(config);
        p.apply_request(req);
        let CgSetup {
            m,
            nthreads,
            chunks,
            rowptr,
            colr,
            valr,
            xv,
            rv,
            pvr,
            qv,
            conflict,
            scalars,
            partials,
            bar,
            reads_by_thread: _,
            inv_plans,
        } = s;
        let nnz = m.col.len();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let (lo, hi) = chunks.range(t);
            let (lo, hi) = (lo as usize, hi as usize);

            // --- Simulated inspector (Figure 8, lines 5-13): for each of
            // this thread's nonzeros, record the producing thread of the
            // element it reads. Runs once; amortized over iterations.
            let jlo = ctx.read(rowptr, lo as u64);
            let jhi = ctx.read(rowptr, hi as u64);
            for j in jlo..jhi {
                let c = ctx.read(colr, j as u64) as u64;
                let owner = chunks.owner(c) as u32;
                ctx.write(conflict, j as u64, owner);
                ctx.tick(3);
            }
            ctx.epoch_boundary(bar, &EpochPlan::new());

            // Per-thread epoch plans.
            let my_inv = &inv_plans[t];
            let my_p_chunk = pvr.slice(lo as u64, hi as u64);
            let wb_p = EpochPlan::new().with_wb(CommOp::unknown(my_p_chunk));
            let scalar_inv = EpochPlan::new().with_inv(CommOp::unknown(scalars));

            // dot(a, b): per-thread partials combined serially by thread
            // 0, the usual translation of an OpenMP reduction clause. The
            // combine order is thread order, which the host mirrors.
            let my_partial = partials.slice(t as u64, t as u64 + 1);
            let dot = |a: hic_mem::Region, b: hic_mem::Region| {
                let mut s = 0.0f32;
                for i in lo..hi {
                    s += ctx.read_f32(a, i as u64) * ctx.read_f32(b, i as u64);
                    ctx.tick(2);
                }
                ctx.write_f32(partials, t as u64, s);
                // Reduction: consumers of partials cannot be ordered
                // against the producers, so the writeback goes global.
                ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(my_partial)));
                ctx.plan_barrier(bar);
                if t == 0 {
                    ctx.plan_inv(&EpochPlan::new().with_inv(CommOp::unknown(partials)));
                    let mut total = 0.0f32;
                    for tt in 0..ctx.nthreads() as u64 {
                        total += ctx.read_f32(partials, tt);
                        ctx.tick(1);
                    }
                    ctx.write_f32(scalars, 0, total);
                }
            };

            // rsold = dot(r, r).
            dot(rv, rv);
            if t == 0 {
                let rsold = ctx.read_f32(scalars, 0);
                ctx.write_f32(scalars, 1, rsold);
                ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(scalars)));
            }
            ctx.plan_barrier(bar);

            for _ in 0..iters {
                // q = A p over own rows; p consumed through indirection:
                // the executor invalidates exactly the remotely-produced
                // elements the inspector found (INV_PROD under Addr+L).
                ctx.plan_inv(my_inv);
                for i in lo..hi {
                    let jl = ctx.read(rowptr, i as u64);
                    let jh = ctx.read(rowptr, i as u64 + 1);
                    let mut s = 0.0f32;
                    for j in jl..jh {
                        let c = ctx.read(colr, j as u64) as u64;
                        let v = ctx.read_f32(valr, j as u64);
                        // The executor consults the conflict array (a
                        // simulated read, as in Figure 8 line 21).
                        let _owner = ctx.read(conflict, j as u64);
                        s += v * ctx.read_f32(pvr, c);
                        ctx.tick(4);
                    }
                    ctx.write_f32(qv, i as u64, s);
                }
                ctx.epoch_boundary(bar, &EpochPlan::new());

                // alpha = rsold / dot(p, q).
                dot(pvr, qv);
                if t == 0 {
                    let pq = ctx.read_f32(scalars, 0);
                    let rsold = ctx.read_f32(scalars, 1);
                    ctx.write_f32(scalars, 2, rsold / pq);
                    ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(scalars)));
                }
                ctx.plan_barrier(bar);
                ctx.plan_inv(&scalar_inv);
                let alpha = ctx.read_f32(scalars, 2);

                // x += alpha p; r -= alpha q (own chunks, no comm).
                for i in lo..hi {
                    let nx = ctx.read_f32(xv, i as u64) + alpha * ctx.read_f32(pvr, i as u64);
                    ctx.write_f32(xv, i as u64, nx);
                    let nr = ctx.read_f32(rv, i as u64) - alpha * ctx.read_f32(qv, i as u64);
                    ctx.write_f32(rv, i as u64, nr);
                    ctx.tick(4);
                }
                ctx.epoch_boundary(bar, &EpochPlan::new());

                // rsnew = dot(r, r); beta = rsnew / rsold.
                dot(rv, rv);
                if t == 0 {
                    let rsnew = ctx.read_f32(scalars, 0);
                    let rsold = ctx.read_f32(scalars, 1);
                    ctx.write_f32(scalars, 3, rsnew / rsold);
                    ctx.write_f32(scalars, 1, rsnew);
                    ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(scalars)));
                }
                ctx.plan_barrier(bar);
                ctx.plan_inv(&scalar_inv);
                let beta = ctx.read_f32(scalars, 3);

                // p = r + beta p (own chunk): p is the next matvec's
                // input — written back wholesale to L3 (paper: "we write
                // everything to L3" on the producer side).
                for i in lo..hi {
                    let np = ctx.read_f32(rv, i as u64) + beta * ctx.read_f32(pvr, i as u64);
                    ctx.write_f32(pvr, i as u64, np);
                    ctx.tick(3);
                }
                ctx.plan_wb(&wb_p);
                ctx.plan_barrier(bar);
            }
            // Final: write back x so the verifier sees it.
            ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(xv.slice(lo as u64, hi as u64))));
            ctx.plan_barrier(bar);
        });

        let want = self.host_cg(&m, nthreads);
        let mut max_err = 0.0f32;
        for i in 0..n {
            let got = out.peek_f32(xv, i as u64);
            max_err = max_err.max((got - want[i]).abs() / want[i].abs().max(1e-3));
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            max_err <= 1e-2,
            format!("n={n}, nnz={nnz}, {iters} iters, max rel err {max_err:.2e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CG is a solver: the residual ||b - A x|| after the host run must be
    /// far below the initial ||b|| (b = ones, x0 = 0).
    #[test]
    fn host_cg_reduces_the_residual() {
        let cg = Cg {
            scale: Scale::Test,
            n: 128,
            nnz_per_row: 6,
            iters: 8,
        };
        let m = cg.matrix();
        let x = cg.host_cg(&m, 8);
        let n = 128;
        let mut res2 = 0.0f64;
        for i in 0..n {
            let mut ax = 0.0f64;
            for j in m.rowptr[i] as usize..m.rowptr[i + 1] as usize {
                ax += m.val[j] as f64 * x[m.col[j] as usize] as f64;
            }
            let r = 1.0 - ax;
            res2 += r * r;
        }
        let initial2 = n as f64; // ||b||^2 with b = ones
        assert!(
            res2 < 1e-4 * initial2,
            "residual^2 {res2} vs initial {initial2}: CG failed to converge"
        );
    }

    /// The generated matrix is structurally sane: sorted unique columns
    /// per row, a diagonal in every row, strict diagonal dominance.
    #[test]
    fn matrix_is_diagonally_dominant_csr() {
        let cg = Cg {
            scale: Scale::Test,
            n: 64,
            nnz_per_row: 5,
            iters: 1,
        };
        let m = cg.matrix();
        for i in 0..64usize {
            let row = &m.col[m.rowptr[i] as usize..m.rowptr[i + 1] as usize];
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {i} not sorted/unique"
            );
            assert!(row.contains(&(i as u32)), "row {i} missing diagonal");
            let (mut diag, mut off) = (0.0f32, 0.0f32);
            for j in m.rowptr[i] as usize..m.rowptr[i + 1] as usize {
                if m.col[j] == i as u32 {
                    diag = m.val[j];
                } else {
                    off += m.val[j].abs();
                }
            }
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }
}
