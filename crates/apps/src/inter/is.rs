//! IS — NAS "Integer Sort" analogue: bucket sort by counting.
//!
//! Phases (each an epoch bounded by barriers):
//!
//! 1. every thread histograms its key chunk into its own row of a
//!    per-thread counts matrix, and folds its counts into a global
//!    histogram inside a critical section (the **reduction**);
//! 2. every thread reads the *whole* counts matrix to compute exclusive
//!    scatter offsets — every row has every thread as a consumer, so the
//!    compiler cannot name a single consumer and must write back globally
//!    (multi-consumer data gets a single global WB, §V-A1);
//! 3. every thread scatters its keys to their final positions.
//!
//! Like EP, the reduction structure leaves nothing for level-adaptive
//! instructions to localize: `Addr+L` matches `Addr` (paper Figure 11).

use hic_runtime::{CommOp, EpochPlan, ProgramBuilder};
use hic_sim::rng::SplitMix64;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

pub struct Is {
    scale: Scale,
    n: usize,
    buckets: usize,
}

impl Is {
    pub fn new(scale: Scale) -> Is {
        let (n, buckets) = match scale {
            Scale::Test => (256, 16),
            Scale::Small => (8192, 32),
            Scale::Medium => (1 << 14, 64),
            Scale::Large => (1 << 15, 256),
            Scale::Paper => (1 << 16, 1024),
        };
        Is { scale, n, buckets }
    }

    fn keys(&self) -> Vec<u32> {
        let mut rng = SplitMix64::new(0x15 + self.n as u64);
        (0..self.n)
            .map(|_| rng.below(self.buckets as u64) as u32)
            .collect()
    }
}

impl App for Is {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Critical], &[SyncPattern::Barrier])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let n = self.n;
        let nb = self.buckets;
        let keys_in = self.keys();

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let keys = p.alloc(n as u64);
        let counts = p.alloc((nthreads * nb) as u64); // row per thread
        let hist = p.alloc(nb as u64); // global histogram (reduction)
        let sorted = p.alloc(n as u64);
        for (i, k) in keys_in.iter().enumerate() {
            p.init(keys, i as u64, *k);
        }
        for i in 0..(nthreads * nb) as u64 {
            p.init(counts, i, 0);
        }
        for i in 0..nb as u64 {
            p.init(hist, i, 0);
        }
        let red_lock = p.lock_occ(false);
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let nthreads = ctx.nthreads();
            let chunk = n.div_ceil(nthreads);
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            let my_row = counts.slice((t * nb) as u64, ((t + 1) * nb) as u64);

            // Phase 1: local histogram of own keys.
            let mut local = vec![0u32; nb];
            for i in lo..hi {
                let k = ctx.read(keys, i as u64) as usize;
                local[k] += 1;
                ctx.tick(2);
            }
            for (b, c) in local.iter().enumerate() {
                ctx.write(counts, (t * nb + b) as u64, *c);
            }
            // Reduction into the global histogram (critical section).
            ctx.lock(red_lock);
            for (b, c) in local.iter().enumerate() {
                if *c > 0 {
                    let cur = ctx.read(hist, b as u64);
                    ctx.write(hist, b as u64, cur + c);
                }
            }
            ctx.unlock(red_lock);
            // The counts matrix has every thread as a consumer: global WB.
            let plan = EpochPlan::new().with_wb(CommOp::unknown(my_row));
            ctx.epoch_boundary(bar, &plan);

            // Phase 2: read the whole counts matrix (multi-producer data:
            // invalidate it all; producers unknown at this granularity).
            let plan = EpochPlan::new().with_inv(CommOp::unknown(counts));
            ctx.plan_inv(&plan);
            // offset[b] = total keys in buckets < b, plus keys equal to b
            // from threads before t.
            let mut bucket_start = vec![0u32; nb];
            let mut acc = 0u32;
            for b in 0..nb {
                bucket_start[b] = acc;
                for tt in 0..nthreads {
                    acc += ctx.read(counts, (tt * nb + b) as u64);
                    ctx.tick(1);
                }
            }
            let mut my_offset = vec![0u32; nb];
            for b in 0..nb {
                let mut off = bucket_start[b];
                for tt in 0..t {
                    off += ctx.read(counts, (tt * nb + b) as u64);
                }
                my_offset[b] = off;
            }

            // Phase 3: scatter own keys (write positions are data-dependent:
            // unanalyzable -> global WB of the output).
            for i in lo..hi {
                let k = ctx.read(keys, i as u64) as usize;
                ctx.write(sorted, my_offset[k] as u64, k as u32);
                my_offset[k] += 1;
                ctx.tick(2);
            }
            let plan = EpochPlan::new().with_wb(CommOp::unknown(sorted));
            ctx.epoch_boundary(bar, &plan);
        });

        // Verify: sorted output equals the host sort, and the global
        // histogram matches.
        let mut want = keys_in.clone();
        want.sort_unstable();
        let mut ok = true;
        for i in 0..n {
            ok &= out.peek(sorted, i as u64) == want[i];
        }
        let mut wh = vec![0u32; nb];
        for &k in &keys_in {
            wh[k as usize] += 1;
        }
        for b in 0..nb {
            ok &= out.peek(hist, b as u64) == wh[b];
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            ok,
            format!("n={n}, {nb} buckets"),
        )
    }
}
