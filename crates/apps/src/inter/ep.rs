//! EP — NAS "Embarrassingly Parallel" analogue.
//!
//! Each thread generates random pairs, filters them through the unit-disk
//! acceptance test, computes Gaussian deviates, and accumulates sums plus
//! annulus counts. The only communication is the terminal **reduction**
//! into global accumulators (a critical section) — a pattern with no
//! producer-consumer ordering, so level-adaptive WB/INV cannot help and
//! `Addr+L` degenerates to `Addr` (paper §VII-C: "EP and IS show no
//! impact").

use hic_runtime::{BarrierId, CommOp, Config, EpochPlan, ProgramBuilder, ProgramRecord};
use hic_sim::rng::SplitMix64;
use hic_sim::ThreadId;

use crate::{App, AppRun, PatternInfo, RunRequest, Scale, SyncPattern};

const BINS: usize = 10;

pub struct Ep {
    scale: Scale,
    pairs_per_thread: usize,
}

impl Ep {
    pub fn new(scale: Scale) -> Ep {
        let pairs_per_thread = match scale {
            Scale::Test => 64,
            Scale::Small => 8192,
            Scale::Medium => 1 << 14,
            Scale::Large => 1 << 15,
            Scale::Paper => 1 << 16,
        };
        Ep {
            scale,
            pairs_per_thread,
        }
    }

    /// Host reference of one thread's generation loop.
    fn host_thread(t: usize, pairs: usize) -> (f32, f32, [u32; BINS]) {
        let mut rng = SplitMix64::new(0xE9 + t as u64 * 7919);
        let (mut sx, mut sy) = (0.0f32, 0.0f32);
        let mut q = [0u32; BINS];
        for _ in 0..pairs {
            let x = rng.unit_f32() * 2.0 - 1.0;
            let y = rng.unit_f32() * 2.0 - 1.0;
            let t2 = x * x + y * y;
            if t2 <= 1.0 && t2 > 0.0 {
                let f = (-2.0 * t2.ln() / t2).sqrt();
                let gx = x * f;
                let gy = y * f;
                sx += gx;
                sy += gy;
                let m = gx.abs().max(gy.abs()) as usize;
                q[m.min(BINS - 1)] += 1;
            }
        }
        (sx, sy, q)
    }
}

impl App for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Critical], &[SyncPattern::Barrier])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let pairs = self.pairs_per_thread;

        let mut p = ProgramBuilder::new(config);
        p.apply_request(req);
        let nthreads = p.num_threads();
        let q_global = p.alloc(BINS as u64);
        let sums = p.alloc(2);
        for i in 0..BINS as u64 {
            p.init(q_global, i, 0);
        }
        p.init_f32(sums, 0, 0.0);
        p.init_f32(sums, 1, 0.0);
        let red_lock = p.lock_occ(false);
        let bar = p.barrier();

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            // Generation is pure compute: charge its cost.
            let (sx, sy, q) = Ep::host_thread(t, pairs);
            ctx.tick(pairs as u64 * 18);
            // Reduction with no producer-consumer order: a critical
            // section over the global accumulators.
            ctx.lock(red_lock);
            for (b, qb) in q.iter().enumerate() {
                let cur = ctx.read(q_global, b as u64);
                ctx.write(q_global, b as u64, cur + qb);
            }
            let gx = ctx.read_f32(sums, 0);
            let gy = ctx.read_f32(sums, 1);
            ctx.write_f32(sums, 0, gx + sx);
            ctx.write_f32(sums, 1, gy + sy);
            ctx.unlock(red_lock);
            // Epoch boundary: the reduced values flow to the verifying
            // reader. Consumers of a reduction are unknown -> global ops.
            let plan = EpochPlan::new()
                .with_wb(CommOp::unknown(q_global))
                .with_wb(CommOp::unknown(sums));
            ctx.epoch_boundary(bar, &plan);
            // Thread 0 reads the result (the serial "print" section).
            if t == 0 {
                let plan = EpochPlan::new()
                    .with_inv(CommOp::unknown(q_global))
                    .with_inv(CommOp::unknown(sums));
                ctx.plan_inv(&plan);
                let mut total = 0u32;
                for b in 0..BINS as u64 {
                    total += ctx.read(q_global, b);
                }
                ctx.tick(total as u64 / 1000 + 1);
            }
        });

        // Host reference: sum over threads.
        let (mut wx, mut wy) = (0.0f32, 0.0f32);
        let mut wq = [0u32; BINS];
        for t in 0..nthreads {
            let (sx, sy, q) = Ep::host_thread(t, pairs);
            wx += sx;
            wy += sy;
            for b in 0..BINS {
                wq[b] += q[b];
            }
        }
        let mut ok = true;
        for b in 0..BINS {
            ok &= out.peek(q_global, b as u64) == wq[b];
        }
        // f32 sums reassociate across lock-grant order: loose tolerance.
        let ex = (out.peek_f32(sums, 0) - wx).abs();
        let ey = (out.peek_f32(sums, 1) - wy).abs();
        ok &= ex <= 1e-2 * wx.abs().max(1.0) && ey <= 1e-2 * wy.abs().max(1.0);
        AppRun::finish(
            self.name(),
            config,
            &out,
            ok,
            format!(
                "{} pairs/thread, counts {:?}, sum err ({ex:.2e}, {ey:.2e})",
                pairs, wq
            ),
        )
    }
}

/// The paper's suggested rewrite (§VII-C): "one could re-write the code to
/// have hierarchical reductions, which reduce first inside the block and
/// then globally". This extension variant gathers per-thread partials to a
/// block leader (a producer-consumer pair level-adaptive instructions CAN
/// localize), then reduces the four block sums globally — so `Addr+L`
/// finally has something to win on in a reduction code.
pub struct EpHier {
    scale: Scale,
    pairs_per_thread: usize,
}

impl EpHier {
    pub fn new(scale: Scale) -> EpHier {
        let pairs_per_thread = match scale {
            Scale::Test => 64,
            Scale::Small => 8192,
            Scale::Medium => 1 << 14,
            Scale::Large => 1 << 15,
            Scale::Paper => 1 << 16,
        };
        EpHier {
            scale,
            pairs_per_thread,
        }
    }

    /// Builder with allocations and barriers. Shared by [`App::run_with`]
    /// and [`App::record`].
    fn setup(&self, config: Config) -> (ProgramBuilder, EpHierSetup) {
        let mut p = ProgramBuilder::new(config);
        let nthreads = p.num_threads();
        let mc = config.machine_config();
        let cpb = mc.cores_per_block();
        let nblocks = mc.num_blocks();
        // Per-thread partial counts (one bin set per thread, line-spaced),
        // per-block sums, and the global result.
        let partials = p.alloc_named("partials", (nthreads * BINS) as u64);
        let block_sums = p.alloc_named("block_sums", (nblocks * BINS) as u64);
        let global = p.alloc_named("global", BINS as u64);
        let block_bars: Vec<_> = (0..nblocks).map(|_| p.barrier_of(cpb)).collect();
        let bar = p.barrier();
        (
            p,
            EpHierSetup {
                nthreads,
                cpb,
                nblocks,
                partials,
                block_sums,
                global,
                block_bars,
                bar,
            },
        )
    }
}

/// Everything [`EpHier::setup`] derives from the builder.
struct EpHierSetup {
    nthreads: usize,
    cpb: usize,
    nblocks: usize,
    partials: hic_mem::Region,
    block_sums: hic_mem::Region,
    global: hic_mem::Region,
    block_bars: Vec<BarrierId>,
    bar: BarrierId,
}

impl App for EpHier {
    fn name(&self) -> &'static str {
        "EP-hier"
    }

    fn patterns(&self) -> PatternInfo {
        PatternInfo::new(&[SyncPattern::Barrier], &[])
    }

    fn scale(&self) -> Scale {
        self.scale
    }

    fn record(&self, config: Config) -> Option<ProgramRecord> {
        let (p, s) = self.setup(config);
        let mut rec = p.record(s.nthreads);
        rec.host_reads(s.global);
        let bins = BINS as u64;
        for t in 0..s.nthreads {
            let block = t / s.cpb;
            let leader = block * s.cpb;
            let mine = s.partials.slice(t as u64 * bins, (t as u64 + 1) * bins);
            let mut th = rec.thread(t);
            // Level 1: publish partials to the block leader.
            th.writes(mine);
            th.plan_wb(&EpochPlan::new().with_wb(CommOp::known(mine, ThreadId(leader))));
            th.plan_barrier(s.block_bars[block]);
            // Level 2: leaders combine their block, publish globally.
            if t == leader {
                let all = s.partials.slice(
                    (block * s.cpb) as u64 * bins,
                    ((block + 1) * s.cpb) as u64 * bins,
                );
                th.plan_inv(&EpochPlan::new().with_inv(CommOp::unknown(all)));
                th.reads(all);
                let mine_bs = s
                    .block_sums
                    .slice(block as u64 * bins, (block as u64 + 1) * bins);
                th.writes(mine_bs);
                th.plan_wb(&EpochPlan::new().with_wb(CommOp::known(mine_bs, ThreadId(0))));
            }
            th.plan_barrier(s.bar);
            // Level 3: thread 0 combines the block sums.
            if t == 0 {
                th.plan_inv(&EpochPlan::new().with_inv(CommOp::unknown(s.block_sums)));
                th.reads(s.block_sums);
                th.writes(s.global);
                th.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(s.global)));
            }
            th.plan_barrier(s.bar);
        }
        Some(rec)
    }

    fn run_req(&self, req: &RunRequest) -> AppRun {
        let config = req.config();
        let pairs = self.pairs_per_thread;
        let (mut p, s) = self.setup(config);
        p.apply_request(req);
        let EpHierSetup {
            nthreads,
            cpb,
            nblocks,
            partials,
            block_sums,
            global,
            block_bars,
            bar,
        } = s;

        let out = p.run(nthreads, move |ctx| {
            let t = ctx.tid();
            let block = t / cpb;
            let leader = block * cpb;
            let (sx, sy, q) = Ep::host_thread(t, pairs);
            let _ = (sx, sy);
            ctx.tick(pairs as u64 * 18);
            // Level 1: publish partials to the block leader — a known
            // producer-consumer pair in the same block, so WB_CONS stays
            // local under Addr+L.
            let mine = partials.slice((t * BINS) as u64, ((t + 1) * BINS) as u64);
            for (b, qb) in q.iter().enumerate() {
                ctx.write(partials, (t * BINS + b) as u64, *qb);
            }
            ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::known(mine, ctx.thread(leader))));
            ctx.plan_barrier(block_bars[block]);
            // Level 2: leaders combine their block, publish globally.
            if t == leader {
                let all = partials.slice(
                    (block * cpb * BINS) as u64,
                    ((block + 1) * cpb * BINS) as u64,
                );
                ctx.plan_inv(&EpochPlan::new().with_inv(CommOp::unknown(all)));
                let mut sums = [0u32; BINS];
                for local in 0..cpb {
                    for (b, s) in sums.iter_mut().enumerate() {
                        *s += ctx.read(partials, ((block * cpb + local) * BINS + b) as u64);
                    }
                }
                for (b, s) in sums.iter().enumerate() {
                    ctx.write(block_sums, (block * BINS + b) as u64, *s);
                }
                let mine = block_sums.slice((block * BINS) as u64, ((block + 1) * BINS) as u64);
                ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::known(mine, ctx.thread(0))));
            }
            ctx.plan_barrier(bar);
            // Level 3: thread 0 combines the block sums.
            if t == 0 {
                ctx.plan_inv(&EpochPlan::new().with_inv(CommOp::unknown(block_sums)));
                for b in 0..BINS {
                    let mut s = 0u32;
                    for blk in 0..nblocks {
                        s += ctx.read(block_sums, (blk * BINS + b) as u64);
                    }
                    ctx.write(global, b as u64, s);
                }
                ctx.plan_wb(&EpochPlan::new().with_wb(CommOp::unknown(global)));
            }
            ctx.plan_barrier(bar);
        });

        let mut wq = [0u32; BINS];
        for t in 0..nthreads {
            let (_, _, q) = Ep::host_thread(t, pairs);
            for b in 0..BINS {
                wq[b] += q[b];
            }
        }
        let mut ok = true;
        for b in 0..BINS {
            ok &= out.peek(global, b as u64) == wq[b];
        }
        AppRun::finish(
            self.name(),
            config,
            &out,
            ok,
            format!("{pairs} pairs/thread, hierarchical reduction, counts {wq:?}"),
        )
    }
}
