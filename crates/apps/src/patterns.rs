//! Communication-pattern classification (paper Table I).
//!
//! Each application declares its main and other synchronization patterns;
//! the `figures table1` harness prints the table from this metadata.

use serde::{Deserialize, Serialize};

/// A synchronization/communication pattern of §IV-A1 (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncPattern {
    /// Program-wide barrier (Figure 4a).
    Barrier,
    /// Critical section under lock (Figure 4b).
    Critical,
    /// Flag set/wait (Figure 4c).
    Flag,
    /// Outside-critical-section communication (Figure 4d).
    OutsideCritical,
    /// Intentional data race enforced with per-word WB/INV (Figure 6).
    DataRace,
}

impl SyncPattern {
    pub fn label(self) -> &'static str {
        match self {
            SyncPattern::Barrier => "Barrier",
            SyncPattern::Critical => "Critical",
            SyncPattern::Flag => "Flag",
            SyncPattern::OutsideCritical => "Outside critical",
            SyncPattern::DataRace => "Data race",
        }
    }
}

/// Table I row: main pattern(s) plus others the application exhibits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternInfo {
    pub main: Vec<SyncPattern>,
    pub other: Vec<SyncPattern>,
}

impl PatternInfo {
    pub fn new(main: &[SyncPattern], other: &[SyncPattern]) -> PatternInfo {
        PatternInfo {
            main: main.to_vec(),
            other: other.to_vec(),
        }
    }

    /// Render like the paper's Table I cells.
    pub fn main_label(&self) -> String {
        self.main
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    }

    pub fn other_label(&self) -> String {
        self.other
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render_like_table1() {
        let p = PatternInfo::new(
            &[SyncPattern::Barrier, SyncPattern::OutsideCritical],
            &[SyncPattern::Critical],
        );
        assert_eq!(p.main_label(), "Barrier, Outside critical");
        assert_eq!(p.other_label(), "Critical");
    }
}
