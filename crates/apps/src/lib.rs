//! Applications for evaluating the hardware-incoherent hierarchy.
//!
//! Two suites, mirroring the paper's evaluation (§VI):
//!
//! * **intra-block** (programming model 1, run on the 16-core single-block
//!   machine): kernels re-derived from the SPLASH-2 applications with the
//!   same synchronization and communication structure — FFT, LU
//!   (contiguous and non-contiguous), Cholesky, Barnes, Raytrace, Volrend,
//!   Ocean (contiguous and non-contiguous), and Water (nsquared and
//!   spatial);
//! * **inter-block** (programming model 2, run on the 4x8 machine):
//!   NAS-style EP, IS, and CG, plus a 2D Jacobi solver, instrumented with
//!   plans from the `hic-analysis` mini-compiler.
//!
//! Every application checks its numerical result against a deterministic
//! host-side reference of the *same* algorithm, so a stale read caused by
//! a wrong annotation policy fails the run visibly.

// Index-style loops mirror the host/simulated math side by side; the
// lint's iterator rewrites would obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod inter;
pub mod intra;
pub mod patterns;

pub use patterns::{PatternInfo, SyncPattern};

use hic_machine::RunStats;
use hic_runtime::{Config, PlanOverrides, ProgramRecord, RunError};

// `Scale` lives with `RunRequest` in hic-runtime now (a request names
// its scale); re-exported here so `hic_apps::Scale` keeps working.
pub use hic_runtime::{RunRequest, Scale};

/// The result of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    pub name: String,
    pub config: Config,
    pub stats: RunStats,
    /// What the incoherence sanitizer observed (empty/`Off` unless the
    /// request asked for a check mode — see hic-check).
    pub diagnostics: hic_runtime::Diagnostics,
    /// Did the simulated result match the host reference?
    pub correct: bool,
    /// Human-readable note (what was checked, residuals, ...).
    pub detail: String,
    /// The typed error that killed the run, when it failed. A failed
    /// run's `stats` cover the simulation up to the failure point and
    /// `correct` is `false` (the result was never produced).
    pub error: Option<RunError>,
}

impl AppRun {
    /// Assemble the result of a finished run. `correct` is the app's
    /// host-reference verdict over the final memory; a run that died
    /// never produced its result, so the verdict is forced to `false`
    /// and the typed error is attached.
    pub fn finish(
        name: &str,
        config: Config,
        out: &hic_runtime::RunOutcome,
        correct: bool,
        detail: String,
    ) -> AppRun {
        let error = out.result().err().cloned();
        AppRun {
            name: name.to_string(),
            config,
            stats: out.stats().clone(),
            diagnostics: out.diagnostics().clone(),
            correct: correct && error.is_none(),
            detail,
            error,
        }
    }
}

/// A runnable application.
///
/// The primary entry point is [`App::run_req`]: the app executes exactly
/// what the [`RunRequest`] describes — nothing is read from the
/// environment, so concurrent runs (the `hic-serve` worker pool) cannot
/// leak state into each other, and a request's `cache_key` fully
/// determines the result. [`App::run`] and [`App::run_with`] are thin
/// wrappers that build the request via [`RunRequest::from_env`],
/// preserving the historical env-knob behavior for the CLI binaries.
pub trait App: Sync {
    /// Short name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// The input-size class this instance was constructed with.
    fn scale(&self) -> Scale;

    /// Communication patterns (Table I).
    fn patterns(&self) -> PatternInfo;

    /// Run exactly what `req` describes and validate the result. The
    /// request's `config` selects the scheme and machine; its check /
    /// fault / engine / watchdog / override fields are applied to the
    /// run verbatim (`ProgramBuilder::apply_request`).
    fn run_req(&self, req: &RunRequest) -> AppRun;

    /// Run under a configuration, with the remaining knobs taken from
    /// the environment ([`RunRequest::from_env`]). Panics on malformed
    /// env values — CLI entry points want the loud failure.
    fn run(&self, config: Config) -> AppRun {
        let req = RunRequest::from_env(self.name(), config, self.scale())
            .unwrap_or_else(|e| panic!("{e}"));
        self.run_req(&req)
    }

    /// The app's declarative [`ProgramRecord`] under a configuration —
    /// its sync structure, per-epoch region access summaries, and the
    /// `EpochPlan` at every plan call site — for `hic-lint`'s static
    /// verifier/optimizer. `None` when the app has no recorded form
    /// (model-1 apps, or data-dependent control flow the record format
    /// cannot express).
    fn record(&self, config: Config) -> Option<ProgramRecord> {
        let _ = config;
        None
    }

    /// Run with plan substitutions from `hic-lint`'s optimizer installed
    /// at the matching call sites. Apps without plan sites ignore the
    /// overrides (`run_req` never installs what the app cannot consume).
    fn run_with(&self, config: Config, overrides: Option<PlanOverrides>) -> AppRun {
        let mut req = RunRequest::from_env(self.name(), config, self.scale())
            .unwrap_or_else(|e| panic!("{e}"));
        req.plan_overrides = overrides;
        self.run_req(&req)
    }
}

/// The intra-block suite at a given scale, in the paper's Figure 9 order.
pub fn intra_apps(scale: Scale) -> Vec<Box<dyn App>> {
    vec![
        Box::new(intra::fft::Fft::new(scale)),
        Box::new(intra::lu::Lu::new(scale, true)),
        Box::new(intra::lu::Lu::new(scale, false)),
        Box::new(intra::cholesky::Cholesky::new(scale)),
        Box::new(intra::barnes::Barnes::new(scale)),
        Box::new(intra::raytrace::Raytrace::new(scale)),
        Box::new(intra::volrend::Volrend::new(scale)),
        Box::new(intra::ocean::Ocean::new(scale, true)),
        Box::new(intra::ocean::Ocean::new(scale, false)),
        Box::new(intra::water::Water::new(scale, true)),
        Box::new(intra::water::Water::new(scale, false)),
    ]
}

/// The inter-block suite at a given scale (EP, IS, CG, Jacobi).
pub fn inter_apps(scale: Scale) -> Vec<Box<dyn App>> {
    vec![
        Box::new(inter::ep::Ep::new(scale)),
        Box::new(inter::is::Is::new(scale)),
        Box::new(inter::cg::Cg::new(scale)),
        Box::new(inter::jacobi::Jacobi::new(scale)),
    ]
}

/// Both suites at a given scale: the 11 intra-block apps followed by the
/// 4 inter-block apps, in the paper's figure order.
pub fn all_apps(scale: Scale) -> Vec<Box<dyn App>> {
    let mut apps = intra_apps(scale);
    apps.extend(inter_apps(scale));
    apps
}

/// Resolve an app by the name [`App::name`] reports, at a given scale —
/// how a [`RunRequest`]'s `app` field becomes a runnable instance.
pub fn app_by_name(name: &str, scale: Scale) -> Option<Box<dyn App>> {
    all_apps(scale).into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_the_papers_apps() {
        let intra = intra_apps(Scale::Test);
        let names: Vec<_> = intra.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "FFT",
                "LU cont",
                "LU non-cont",
                "Cholesky",
                "Barnes",
                "Raytrace",
                "Volrend",
                "Ocean cont",
                "Ocean non-cont",
                "Water Nsq",
                "Water Spatial"
            ]
        );
        let inter = inter_apps(Scale::Test);
        let names: Vec<_> = inter.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["EP", "IS", "CG", "Jacobi"]);
    }
}
