//! Applications for evaluating the hardware-incoherent hierarchy.
//!
//! Two suites, mirroring the paper's evaluation (§VI):
//!
//! * **intra-block** (programming model 1, run on the 16-core single-block
//!   machine): kernels re-derived from the SPLASH-2 applications with the
//!   same synchronization and communication structure — FFT, LU
//!   (contiguous and non-contiguous), Cholesky, Barnes, Raytrace, Volrend,
//!   Ocean (contiguous and non-contiguous), and Water (nsquared and
//!   spatial);
//! * **inter-block** (programming model 2, run on the 4x8 machine):
//!   NAS-style EP, IS, and CG, plus a 2D Jacobi solver, instrumented with
//!   plans from the `hic-analysis` mini-compiler.
//!
//! Every application checks its numerical result against a deterministic
//! host-side reference of the *same* algorithm, so a stale read caused by
//! a wrong annotation policy fails the run visibly.

// Index-style loops mirror the host/simulated math side by side; the
// lint's iterator rewrites would obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod inter;
pub mod intra;
pub mod patterns;

pub use patterns::{PatternInfo, SyncPattern};

use hic_machine::RunStats;
use hic_runtime::{Config, PlanOverrides, ProgramRecord};

/// Input-size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second per run).
    Test,
    /// The default figure-harness inputs (seconds per run).
    Small,
    /// Paper-sized inputs (64K-point FFT, 512x512 LU, ... — minutes).
    Paper,
}

/// The result of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    pub name: String,
    pub config: Config,
    pub stats: RunStats,
    /// What the incoherence sanitizer observed (empty/`Off` unless a
    /// check mode was requested via `HIC_CHECK` — see hic-check).
    pub diagnostics: hic_runtime::Diagnostics,
    /// Did the simulated result match the host reference?
    pub correct: bool,
    /// Human-readable note (what was checked, residuals, ...).
    pub detail: String,
}

/// A runnable application.
pub trait App: Sync {
    /// Short name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Communication patterns (Table I).
    fn patterns(&self) -> PatternInfo;

    /// Run under a configuration and validate the result.
    fn run(&self, config: Config) -> AppRun;

    /// The app's declarative [`ProgramRecord`] under a configuration —
    /// its sync structure, per-epoch region access summaries, and the
    /// `EpochPlan` at every plan call site — for `hic-lint`'s static
    /// verifier/optimizer. `None` when the app has no recorded form
    /// (model-1 apps, or data-dependent control flow the record format
    /// cannot express).
    fn record(&self, config: Config) -> Option<ProgramRecord> {
        let _ = config;
        None
    }

    /// Run with plan substitutions from `hic-lint`'s optimizer installed
    /// at the matching call sites. Apps without plan sites (or without a
    /// recorded form) ignore the overrides.
    fn run_with(&self, config: Config, overrides: Option<PlanOverrides>) -> AppRun {
        let _ = overrides;
        self.run(config)
    }
}

/// The intra-block suite at a given scale, in the paper's Figure 9 order.
pub fn intra_apps(scale: Scale) -> Vec<Box<dyn App>> {
    vec![
        Box::new(intra::fft::Fft::new(scale)),
        Box::new(intra::lu::Lu::new(scale, true)),
        Box::new(intra::lu::Lu::new(scale, false)),
        Box::new(intra::cholesky::Cholesky::new(scale)),
        Box::new(intra::barnes::Barnes::new(scale)),
        Box::new(intra::raytrace::Raytrace::new(scale)),
        Box::new(intra::volrend::Volrend::new(scale)),
        Box::new(intra::ocean::Ocean::new(scale, true)),
        Box::new(intra::ocean::Ocean::new(scale, false)),
        Box::new(intra::water::Water::new(scale, true)),
        Box::new(intra::water::Water::new(scale, false)),
    ]
}

/// The inter-block suite at a given scale (EP, IS, CG, Jacobi).
pub fn inter_apps(scale: Scale) -> Vec<Box<dyn App>> {
    vec![
        Box::new(inter::ep::Ep::new(scale)),
        Box::new(inter::is::Is::new(scale)),
        Box::new(inter::cg::Cg::new(scale)),
        Box::new(inter::jacobi::Jacobi::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_the_papers_apps() {
        let intra = intra_apps(Scale::Test);
        let names: Vec<_> = intra.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "FFT",
                "LU cont",
                "LU non-cont",
                "Cholesky",
                "Barnes",
                "Raytrace",
                "Volrend",
                "Ocean cont",
                "Ocean non-cont",
                "Water Nsq",
                "Water Spatial"
            ]
        );
        let inter = inter_apps(Scale::Test);
        let names: Vec<_> = inter.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["EP", "IS", "CG", "Jacobi"]);
    }
}
