//! Property tests for the paper's hardware structures: the write buffer's
//! ordering rules, and the MEB/IEB state machines.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_core::ieb::IebAction;
use hic_core::ordering::{AccessKind, LoadPath, WriteBuffer};
use hic_core::{Ieb, Meb, MebDrain};
use hic_mem::{LineAddr, WordAddr};
use hic_sim::SplitMix64;

fn gen_buffered_kind(rng: &mut SplitMix64) -> AccessKind {
    match rng.below(3) {
        0 => AccessKind::Store,
        1 => AccessKind::Wb,
        _ => AccessKind::Inv,
    }
}

/// Whatever is pushed and popped, per-address FIFO order always holds,
/// and a load's path decision is consistent with the youngest
/// same-address entry.
#[test]
fn write_buffer_fifo_and_load_paths() {
    let mut rng = SplitMix64::new(0xB0FF);
    for case in 0..64 {
        let len = 1 + rng.below(63);
        let mut wb = WriteBuffer::new(16);
        let mut pushed = 0usize;
        for _ in 0..len {
            let kind = gen_buffered_kind(&mut rng);
            let addr = rng.below(8);
            if wb.is_full() {
                wb.pop();
            }
            wb.push(kind, WordAddr(addr));
            pushed += 1;
            assert!(wb.per_address_fifo_holds(), "case {case}");
            // A load to an address with a buffered INV must stall; with a
            // buffered store (and no younger INV) must forward.
            match wb.load_path(WordAddr(addr)) {
                LoadPath::StallForInv { .. } => {}
                LoadPath::ForwardFromStore { .. } => {}
                LoadPath::Proceed => {
                    // Only possible if the youngest same-address entry is
                    // a WB.
                    assert_eq!(kind, AccessKind::Wb, "case {case}");
                }
            }
        }
        assert!(pushed > 0);
    }
}

/// The MEB never reports an ID it was not told about, never reports
/// duplicates, and overflows exactly when more than `cap` distinct
/// IDs arrive.
#[test]
fn meb_reports_exactly_what_was_written() {
    let mut rng = SplitMix64::new(0x4EB1);
    for case in 0..64 {
        let ids: Vec<usize> = (0..rng.below(40)).map(|_| rng.below(32) as usize).collect();
        let cap = 1 + rng.below(19) as usize;
        let mut meb = Meb::new(cap);
        meb.begin_epoch();
        for &id in &ids {
            meb.on_clean_word_write(id);
        }
        let mut distinct: Vec<usize> = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        match meb.drain() {
            MebDrain::Overflowed => {
                assert!(
                    distinct.len() > cap,
                    "case {case}: overflowed with only {} distinct ids (cap {cap})",
                    distinct.len()
                );
            }
            MebDrain::Ids(got) => {
                assert!(distinct.len() <= cap, "case {case}");
                let mut sorted = got.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    got.len(),
                    "case {case}: duplicate IDs reported"
                );
                let mut want = distinct.clone();
                want.sort_unstable();
                let mut g2 = got.clone();
                g2.sort_unstable();
                assert_eq!(g2, want, "case {case}: wrong ID set");
            }
        }
    }
}

/// IEB: within one epoch, each line refreshes at most once as long as
/// capacity is not exceeded; with evictions, re-refreshes can happen
/// but never for a line currently held.
#[test]
fn ieb_refreshes_once_within_capacity() {
    let mut rng = SplitMix64::new(0x1EB1);
    for case in 0..64 {
        let lines: Vec<u64> = (0..1 + rng.below(39)).map(|_| rng.below(6)).collect();
        let cap = 1 + rng.below(7) as usize;
        let mut ieb = Ieb::new(cap);
        ieb.begin_epoch();
        let mut refreshed = std::collections::HashSet::new();
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        let within_capacity = distinct.len() <= cap;
        for &l in &lines {
            match ieb.on_read(LineAddr(l), false) {
                IebAction::RefreshFromShared => {
                    if within_capacity {
                        assert!(
                            refreshed.insert(l),
                            "case {case}: line {l} refreshed twice though the IEB never overflowed"
                        );
                    }
                }
                IebAction::Normal => {
                    assert!(refreshed.contains(&l) || !within_capacity, "case {case}");
                }
            }
        }
        if within_capacity {
            assert_eq!(ieb.evictions(), 0, "case {case}");
        }
    }
}
