//! Property tests for the paper's hardware structures: the write buffer's
//! ordering rules, and the MEB/IEB state machines.

use proptest::prelude::*;

use hic_core::ieb::IebAction;
use hic_core::ordering::{AccessKind, WriteBuffer};
use hic_core::{Ieb, Meb, MebDrain};
use hic_mem::{LineAddr, WordAddr};

fn arb_buffered_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Store),
        Just(AccessKind::Wb),
        Just(AccessKind::Inv),
    ]
}

proptest! {
    /// Whatever is pushed and popped, per-address FIFO order always holds,
    /// and a load's path decision is consistent with the youngest
    /// same-address entry.
    #[test]
    fn write_buffer_fifo_and_load_paths(
        ops in proptest::collection::vec((arb_buffered_kind(), 0u64..8), 1..64)
    ) {
        let mut wb = WriteBuffer::new(16);
        let mut pushed = 0usize;
        for (kind, addr) in ops {
            if wb.is_full() {
                wb.pop();
            }
            wb.push(kind, WordAddr(addr));
            pushed += 1;
            prop_assert!(wb.per_address_fifo_holds());
            // A load to an address with a buffered INV must stall; with a
            // buffered store (and no younger INV) must forward.
            use hic_core::ordering::LoadPath;
            match wb.load_path(WordAddr(addr)) {
                LoadPath::StallForInv { .. } => {}
                LoadPath::ForwardFromStore { .. } => {}
                LoadPath::Proceed => {
                    // Only possible if the youngest same-address entry is
                    // a WB.
                    prop_assert_eq!(kind, AccessKind::Wb);
                }
            }
        }
        prop_assert!(pushed > 0);
    }

    /// The MEB never reports an ID it was not told about, never reports
    /// duplicates, and overflows exactly when more than `cap` distinct
    /// IDs arrive.
    #[test]
    fn meb_reports_exactly_what_was_written(
        ids in proptest::collection::vec(0usize..32, 0..40),
        cap in 1usize..20
    ) {
        let mut meb = Meb::new(cap);
        meb.begin_epoch();
        for &id in &ids {
            meb.on_clean_word_write(id);
        }
        let mut distinct: Vec<usize> = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        match meb.drain() {
            MebDrain::Overflowed => {
                prop_assert!(distinct.len() > cap,
                    "overflowed with only {} distinct ids (cap {})", distinct.len(), cap);
            }
            MebDrain::Ids(got) => {
                prop_assert!(distinct.len() <= cap);
                let mut sorted = got.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), got.len(), "duplicate IDs reported");
                let mut want = distinct.clone();
                want.sort_unstable();
                let mut g2 = got.clone();
                g2.sort_unstable();
                prop_assert_eq!(g2, want, "wrong ID set");
            }
        }
    }

    /// IEB: within one epoch, each line refreshes at most once as long as
    /// capacity is not exceeded; with evictions, re-refreshes can happen
    /// but never for a line currently held.
    #[test]
    fn ieb_refreshes_once_within_capacity(
        lines in proptest::collection::vec(0u64..6, 1..40),
        cap in 1usize..8
    ) {
        let mut ieb = Ieb::new(cap);
        ieb.begin_epoch();
        let mut refreshed = std::collections::HashSet::new();
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        let within_capacity = distinct.len() <= cap;
        for &l in &lines {
            match ieb.on_read(LineAddr(l), false) {
                IebAction::RefreshFromShared => {
                    if within_capacity {
                        prop_assert!(
                            refreshed.insert(l),
                            "line {l} refreshed twice though the IEB never overflowed"
                        );
                    }
                }
                IebAction::Normal => {
                    prop_assert!(refreshed.contains(&l) || !within_capacity);
                }
            }
        }
        if within_capacity {
            prop_assert_eq!(ieb.evictions(), 0);
        }
    }
}
