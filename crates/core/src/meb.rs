//! The Modified Entry Buffer (MEB), paper §IV-B1.
//!
//! A small hardware buffer (16 entries) next to the L1 that accumulates the
//! *line IDs* (not addresses — an ID is the line's slot position in the
//! cache, 9 bits for a 32 KB / 64 B cache) of lines written during the
//! current epoch. At the end of a short epoch that would otherwise execute
//! `WB ALL`, the controller walks the MEB instead of traversing every cache
//! tag, writing back only the (still-)dirty lines it names.
//!
//! Stale entries are possible — a written line may be evicted and its slot
//! refilled by a never-written line — and are *not* removed; the drain
//! simply skips slots that are no longer dirty. If the MEB overflows during
//! the epoch, the terminating `WB ALL` executes normally (full traversal).

use serde::{Deserialize, Serialize};

/// Result of draining the MEB at the end of an epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MebDrain {
    /// The MEB tracked every write: write back the lines at these IDs
    /// (skipping any whose slot is no longer dirty).
    Ids(Vec<usize>),
    /// The MEB overflowed: fall back to a full `WB ALL` traversal.
    Overflowed,
}

/// Modified Entry Buffer state machine.
#[derive(Debug, Clone)]
pub struct Meb {
    capacity: usize,
    ids: Vec<usize>,
    overflowed: bool,
    /// Is the MEB recording (i.e. are we inside a tracked epoch)?
    recording: bool,
}

impl Meb {
    /// An MEB with the given entry capacity (16 in the paper).
    pub fn new(capacity: usize) -> Meb {
        assert!(capacity > 0);
        Meb {
            capacity,
            ids: Vec::with_capacity(capacity),
            overflowed: false,
            recording: false,
        }
    }

    /// Begin a tracked epoch (e.g. on lock acquire): clear and record.
    pub fn begin_epoch(&mut self) {
        self.ids.clear();
        self.overflowed = false;
        self.recording = true;
    }

    /// Is the MEB currently recording?
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Hardware hook: a *clean word* of line-ID `id` was just written in
    /// the L1 (the MEB updates in parallel with the cache write). Inserts
    /// the ID if absent; sets the overflow flag if there is no room.
    pub fn on_clean_word_write(&mut self, id: usize) {
        if !self.recording || self.overflowed {
            return;
        }
        if self.ids.contains(&id) {
            return;
        }
        if self.ids.len() == self.capacity {
            self.overflowed = true;
        } else {
            self.ids.push(id);
        }
    }

    /// Number of IDs currently held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Did the MEB overflow this epoch?
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// End the epoch: return the recorded IDs (or `Overflowed`), and stop
    /// recording.
    pub fn drain(&mut self) -> MebDrain {
        self.recording = false;
        if self.overflowed {
            self.overflowed = false;
            self.ids.clear();
            MebDrain::Overflowed
        } else {
            MebDrain::Ids(std::mem::take(&mut self.ids))
        }
    }

    /// Storage cost in bits: each entry holds a line ID plus a valid bit
    /// (paper Table III: "16 entries. Size: 9b (ID) + 1b (Valid)").
    pub fn storage_bits(&self, line_id_bits: u32) -> u64 {
        self.capacity as u64 * (line_id_bits as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_unique_ids_in_epoch() {
        let mut m = Meb::new(4);
        m.begin_epoch();
        m.on_clean_word_write(7);
        m.on_clean_word_write(3);
        m.on_clean_word_write(7); // duplicate ignored
        assert_eq!(m.len(), 2);
        assert_eq!(m.drain(), MebDrain::Ids(vec![7, 3]));
    }

    #[test]
    fn ignores_writes_outside_epoch() {
        let mut m = Meb::new(4);
        m.on_clean_word_write(1);
        assert!(m.is_empty());
        m.begin_epoch();
        assert!(!m.overflowed());
        m.drain();
        // After drain, recording stops again.
        m.on_clean_word_write(2);
        assert!(m.is_empty());
    }

    #[test]
    fn overflow_forces_full_traversal() {
        let mut m = Meb::new(2);
        m.begin_epoch();
        m.on_clean_word_write(0);
        m.on_clean_word_write(1);
        m.on_clean_word_write(2); // overflows
        assert!(m.overflowed());
        assert_eq!(m.drain(), MebDrain::Overflowed);
        // Next epoch starts fresh.
        m.begin_epoch();
        m.on_clean_word_write(9);
        assert_eq!(m.drain(), MebDrain::Ids(vec![9]));
    }

    #[test]
    fn repeated_writes_to_dirty_words_do_not_grow_meb() {
        // The hardware only inserts on clean->dirty transitions; the caller
        // models that by invoking the hook once per transition. Here we
        // check idempotence for the same ID.
        let mut m = Meb::new(2);
        m.begin_epoch();
        for _ in 0..10 {
            m.on_clean_word_write(5);
        }
        assert_eq!(m.len(), 1);
        assert!(!m.overflowed());
    }

    #[test]
    fn storage_matches_table3() {
        let m = Meb::new(16);
        // 16 entries x (9-bit ID + valid) = 160 bits.
        assert_eq!(m.storage_bits(9), 160);
    }

    #[test]
    fn begin_epoch_clears_previous_state() {
        let mut m = Meb::new(1);
        m.begin_epoch();
        m.on_clean_word_write(0);
        m.on_clean_word_write(1); // overflow
        assert!(m.overflowed());
        m.begin_epoch();
        assert!(!m.overflowed());
        assert!(m.is_empty());
    }
}
