//! The ThreadMap table (paper §V-B).
//!
//! Each block's L2 cache controller holds a small hardware table listing
//! the IDs of the threads mapped to run on that block. The runtime system
//! fills it when threads are spawned and assigned to processors; the
//! mapping may not change afterwards.
//!
//! Level-adaptive instructions consult it: `WB_CONS(addr, cons)` writes
//! back only to L2 if `cons` is local, else to L3; `INV_PROD(addr, prod)`
//! invalidates only the L1 if `prod` is local, else L1 and L2.

use hic_sim::{BlockId, ThreadId};
use serde::{Deserialize, Serialize};

/// Per-block thread-residency table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThreadMap {
    /// `threads[b]` = thread IDs mapped to block `b`, sorted.
    threads: Vec<Vec<ThreadId>>,
}

impl ThreadMap {
    /// An empty map for `blocks` blocks.
    pub fn new(blocks: usize) -> ThreadMap {
        ThreadMap {
            threads: vec![Vec::new(); blocks],
        }
    }

    /// The canonical mapping the runtime uses: thread `i` on core `i`,
    /// with `cores_per_block` consecutive cores per block.
    pub fn identity(blocks: usize, cores_per_block: usize) -> ThreadMap {
        let mut map = ThreadMap::new(blocks);
        for t in 0..blocks * cores_per_block {
            map.assign(ThreadId(t), BlockId(t / cores_per_block));
        }
        map
    }

    /// Record that `thread` runs on `block`. Called by the runtime at
    /// spawn time; a thread may appear in exactly one block.
    pub fn assign(&mut self, thread: ThreadId, block: BlockId) {
        assert!(
            self.block_of(thread).is_none(),
            "{thread} already mapped; the mapping may not change dynamically"
        );
        let list = &mut self.threads[block.0];
        match list.binary_search(&thread) {
            Ok(_) => {}
            Err(pos) => list.insert(pos, thread),
        }
    }

    /// Is `thread` mapped to `block`? This is the hardware check performed
    /// by WB_CONS / INV_PROD in the local L2 controller.
    pub fn is_local(&self, block: BlockId, thread: ThreadId) -> bool {
        self.threads[block.0].binary_search(&thread).is_ok()
    }

    /// The block a thread is mapped to, if any.
    pub fn block_of(&self, thread: ThreadId) -> Option<BlockId> {
        self.threads
            .iter()
            .position(|list| list.binary_search(&thread).is_ok())
            .map(BlockId)
    }

    /// Threads mapped to a block.
    pub fn threads_on(&self, block: BlockId) -> &[ThreadId] {
        &self.threads[block.0]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.threads.len()
    }

    /// Storage cost in bits: each block's table holds up to
    /// `entries_per_block` thread IDs of `thread_id_bits` each plus a
    /// valid bit.
    pub fn storage_bits(&self, entries_per_block: u64, thread_id_bits: u32) -> u64 {
        self.threads.len() as u64 * entries_per_block * (thread_id_bits as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_matches_blocks() {
        let m = ThreadMap::identity(4, 8);
        assert!(m.is_local(BlockId(0), ThreadId(0)));
        assert!(m.is_local(BlockId(0), ThreadId(7)));
        assert!(!m.is_local(BlockId(0), ThreadId(8)));
        assert!(m.is_local(BlockId(3), ThreadId(31)));
        assert_eq!(m.block_of(ThreadId(17)), Some(BlockId(2)));
    }

    #[test]
    fn custom_assignment() {
        let mut m = ThreadMap::new(2);
        m.assign(ThreadId(5), BlockId(1));
        assert!(m.is_local(BlockId(1), ThreadId(5)));
        assert!(!m.is_local(BlockId(0), ThreadId(5)));
        assert_eq!(m.block_of(ThreadId(5)), Some(BlockId(1)));
        assert_eq!(m.block_of(ThreadId(6)), None);
        assert_eq!(m.threads_on(BlockId(1)), &[ThreadId(5)]);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn remapping_a_thread_is_forbidden() {
        // §V-A: "such mapping will not be allowed to change dynamically".
        let mut m = ThreadMap::new(2);
        m.assign(ThreadId(1), BlockId(0));
        m.assign(ThreadId(1), BlockId(1));
    }

    #[test]
    fn storage_cost() {
        let m = ThreadMap::new(4);
        // 4 blocks x 8 entries x (16-bit ID + valid) = 544 bits.
        assert_eq!(m.storage_bits(8, 16), 4 * 8 * 17);
    }
}
