//! Vector-clock epoch bookkeeping for the incoherence sanitizer.
//!
//! The paper's programming models make communication legal only when it is
//! ordered by a synchronization operation *and* accompanied by the right
//! WB/INV flavors (§IV–§V). The sanitizer separates those two conditions:
//! vector clocks track the ordering half (which writes a reader is allowed
//! to expect), while shadow word metadata in `hic-check` tracks the data-
//! movement half (which writes actually became visible). A stale value on
//! an *ordered* read is then precisely a missing WB or INV.
//!
//! Clocks follow the FastTrack convention: thread `t` starts at
//! `vc[t][t] = 1` with every other component 0, and bumps its own
//! component at each release-side sync op. A write stamped with the
//! writer's component `e` is ordered before a read iff the reader's clock
//! has `vc[reader][writer] >= e` — which is false for all other threads
//! until a sync edge propagates the writer's component, so un-synchronized
//! (racy) accesses are never treated as ordered.

/// A per-thread (or per-sync-object) vector clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    v: Vec<u32>,
}

impl VectorClock {
    /// Thread `me`'s initial clock: own component 1, all others 0.
    pub fn thread(n: usize, me: usize) -> VectorClock {
        let mut v = vec![0; n];
        v[me] = 1;
        VectorClock { v }
    }

    /// A sync object's initial clock: all components 0 (orders nothing
    /// until some thread releases through it).
    pub fn object(n: usize) -> VectorClock {
        VectorClock { v: vec![0; n] }
    }

    /// This clock's view of thread `t`'s epoch.
    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.v[t]
    }

    /// Advance `me`'s own component (a release-side sync op: writes after
    /// this point belong to a new epoch).
    #[inline]
    pub fn bump(&mut self, me: usize) {
        self.v[me] += 1;
    }

    /// Component-wise maximum: absorb everything `other` has seen.
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).max(*b);
        }
    }

    /// Is a write stamped `epoch` by thread `t` ordered before a reader
    /// holding this clock?
    #[inline]
    pub fn covers(&self, t: usize, epoch: u32) -> bool {
        self.v[t] >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_threads_do_not_cover_each_other() {
        let a = VectorClock::thread(4, 0);
        // Thread 0's first-epoch writes are stamped 1; thread 1 has not
        // synchronized, so it must not consider them ordered.
        let b = VectorClock::thread(4, 1);
        assert!(a.covers(0, 1));
        assert!(!b.covers(0, 1));
    }

    #[test]
    fn release_acquire_propagates_epochs() {
        let n = 3;
        let mut t0 = VectorClock::thread(n, 0);
        let mut t1 = VectorClock::thread(n, 1);
        let mut flag = VectorClock::object(n);

        let write_epoch = t0.get(0); // t0 stores, stamped 1
        flag.join(&t0); // t0: flag_set (release)
        t0.bump(0);
        t1.join(&flag); // t1: flag_wait granted (acquire)

        assert!(t1.covers(0, write_epoch));
        // t0's post-release writes (stamped 2) stay unordered for t1.
        assert!(!t1.covers(0, t0.get(0)));
    }

    #[test]
    fn barrier_all_join_then_bump() {
        let n = 3;
        let mut clocks: Vec<_> = (0..n).map(|t| VectorClock::thread(n, t)).collect();
        let mut joined = clocks[0].clone();
        for c in &clocks[1..] {
            joined.join(c);
        }
        for (t, c) in clocks.iter_mut().enumerate() {
            *c = joined.clone();
            c.bump(t);
        }
        // Everyone covers everyone's pre-barrier epoch 1...
        for c in &clocks {
            for t in 0..n {
                assert!(c.covers(t, 1));
            }
        }
        // ...but nobody covers anyone else's post-barrier epoch 2.
        assert!(!clocks[0].covers(1, clocks[1].get(1)));
    }
}
