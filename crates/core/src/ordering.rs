//! Instruction-reordering constraints (paper §III-C, Figure 3) and the
//! write-buffer model that enforces them.
//!
//! Required orders (neither compiler nor hardware may break them):
//!
//! * `INV(x) -> ld x` — a load must see the refreshed view;
//! * `st x -> WB(x)` — the writeback must post the value just stored.
//!
//! Desirable orders (kept for performance, e.g. spin loops):
//!
//! * `ld x -> INV(x)`, `WB(x) -> st x`, and both directions of
//!   `st x <-> INV(x)`.
//!
//! Free: loads may move across a WB to the same address in either
//! direction, because WB does not change the local line's value — and
//! moving a load *above* a WB acts as a prefetch.
//!
//! The [`WriteBuffer`] models the retirement path: stores, WBs, and INVs
//! are deposited in order; entries to the same address drain in order; a
//! load may bypass buffered WBs but never a buffered INV to its address.

use hic_mem::WordAddr;
use serde::{Deserialize, Serialize};

/// Kind of access, for ordering-rule queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Load,
    Store,
    Wb,
    Inv,
}

/// Strength of the ordering between two same-address accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderConstraint {
    /// Reordering would change program semantics: forbidden.
    Required,
    /// Reordering is legal but hurts performance or timeliness: retained.
    Desirable,
    /// Reordering is always allowed (and can even help, as a prefetch).
    Free,
}

impl OrderConstraint {
    /// May the hardware or compiler swap the two accesses?
    pub fn may_reorder(self) -> bool {
        matches!(self, OrderConstraint::Free)
    }
}

/// The ordering constraint for `first` program-order-before `second`,
/// both to the same address (Figure 3). Accesses to different addresses
/// are unconstrained by this mechanism.
pub fn constraint(first: AccessKind, second: AccessKind) -> OrderConstraint {
    use AccessKind::*;
    use OrderConstraint::*;
    match (first, second) {
        // Figure 3a.
        (Inv, Load) => Required,
        (Load, Inv) => Desirable,
        // Figure 3b.
        (Store, Wb) => Required,
        (Wb, Store) => Desirable,
        // Figure 3c.
        (Store, Inv) | (Inv, Store) => Desirable,
        // Figure 3d: loads move freely around WB.
        (Load, Wb) | (Wb, Load) => Free,
        // Plain data accesses: ordinary uniprocessor dependences.
        (Store, Store) | (Store, Load) | (Load, Store) => Required,
        (Load, Load) => Free,
        // WB/INV against each other: keep program order (they are both
        // drained through the write buffer like stores).
        (Wb, Wb) | (Inv, Inv) | (Wb, Inv) | (Inv, Wb) => Desirable,
    }
}

/// One entry sitting in the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedOp {
    pub kind: AccessKind,
    pub addr: WordAddr,
    /// Monotone sequence number (program order).
    pub seq: u64,
}

/// Retirement-side write buffer (paper §III-C): stores, WB, and INV retire
/// into it like stores and drain in order per address. Loads consult it:
/// a load to `x` may bypass buffered `WB(x)` entries but must wait for a
/// buffered `INV(x)` (and sees the value of a buffered `st x`, i.e. store
/// forwarding).
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    entries: std::collections::VecDeque<BufferedOp>,
    next_seq: u64,
    capacity: usize,
}

/// What a load may do given the buffer contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPath {
    /// No conflicting entry: the load proceeds to the cache.
    Proceed,
    /// A buffered store to the same address supplies the value.
    ForwardFromStore { seq: u64 },
    /// A buffered INV to the same address: the load must wait until the
    /// buffer drains past it.
    StallForInv { seq: u64 },
}

impl WriteBuffer {
    /// A buffer with the given capacity (entries).
    pub fn new(capacity: usize) -> WriteBuffer {
        assert!(capacity > 0);
        WriteBuffer {
            entries: Default::default(),
            next_seq: 0,
            capacity,
        }
    }

    /// Is the buffer full (the next store/WB/INV would stall at retire)?
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Deposit a store/WB/INV at retirement. Panics on loads (loads do not
    /// occupy the write buffer) and when full (callers must drain first).
    pub fn push(&mut self, kind: AccessKind, addr: WordAddr) -> u64 {
        assert!(kind != AccessKind::Load, "loads are not buffered");
        assert!(!self.is_full(), "write buffer overflow: drain before push");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(BufferedOp { kind, addr, seq });
        seq
    }

    /// Drain the oldest entry (it has been performed in the cache).
    pub fn pop(&mut self) -> Option<BufferedOp> {
        self.entries.pop_front()
    }

    /// Decide the path for a load to `addr` (Figure 3 semantics):
    /// the *youngest* same-address entry governs.
    pub fn load_path(&self, addr: WordAddr) -> LoadPath {
        for e in self.entries.iter().rev() {
            if e.addr != addr {
                continue;
            }
            match e.kind {
                AccessKind::Store => return LoadPath::ForwardFromStore { seq: e.seq },
                AccessKind::Inv => return LoadPath::StallForInv { seq: e.seq },
                AccessKind::Wb => continue, // loads bypass WB freely (Fig 3d)
                AccessKind::Load => unreachable!("loads are not buffered"),
            }
        }
        LoadPath::Proceed
    }

    /// Verify the drain respects per-address program order: entries to the
    /// same address have strictly increasing sequence numbers front to
    /// back. (Invariant check used by property tests.)
    pub fn per_address_fifo_holds(&self) -> bool {
        use std::collections::HashMap;
        let mut last: HashMap<u64, u64> = HashMap::new();
        for e in &self.entries {
            if let Some(&prev) = last.get(&e.addr.0) {
                if prev >= e.seq {
                    return false;
                }
            }
            last.insert(e.addr.0, e.seq);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::*;
    use OrderConstraint::*;

    #[test]
    fn figure3a_inv_then_load_is_required() {
        assert_eq!(constraint(Inv, Load), Required);
        assert!(!constraint(Inv, Load).may_reorder());
        assert_eq!(constraint(Load, Inv), Desirable);
    }

    #[test]
    fn figure3b_store_then_wb_is_required() {
        assert_eq!(constraint(Store, Wb), Required);
        assert_eq!(constraint(Wb, Store), Desirable);
    }

    #[test]
    fn figure3c_store_inv_both_desirable() {
        assert_eq!(constraint(Store, Inv), Desirable);
        assert_eq!(constraint(Inv, Store), Desirable);
    }

    #[test]
    fn figure3d_loads_move_freely_around_wb() {
        assert_eq!(constraint(Load, Wb), Free);
        assert_eq!(constraint(Wb, Load), Free);
        assert!(constraint(Wb, Load).may_reorder());
    }

    #[test]
    fn plain_dependences_are_required() {
        assert_eq!(constraint(Store, Load), Required);
        assert_eq!(constraint(Load, Store), Required);
        assert_eq!(constraint(Store, Store), Required);
        assert_eq!(constraint(Load, Load), Free);
    }

    #[test]
    fn load_bypasses_buffered_wb() {
        let mut wb = WriteBuffer::new(8);
        wb.push(Wb, WordAddr(10));
        assert_eq!(wb.load_path(WordAddr(10)), LoadPath::Proceed);
        assert_eq!(wb.load_path(WordAddr(11)), LoadPath::Proceed);
    }

    #[test]
    fn load_stalls_for_buffered_inv() {
        let mut wb = WriteBuffer::new(8);
        let seq = wb.push(Inv, WordAddr(10));
        assert_eq!(wb.load_path(WordAddr(10)), LoadPath::StallForInv { seq });
        // Different address unaffected.
        assert_eq!(wb.load_path(WordAddr(20)), LoadPath::Proceed);
        // Draining the INV unblocks.
        wb.pop();
        assert_eq!(wb.load_path(WordAddr(10)), LoadPath::Proceed);
    }

    #[test]
    fn load_forwards_from_buffered_store() {
        let mut wb = WriteBuffer::new(8);
        let seq = wb.push(Store, WordAddr(10));
        assert_eq!(
            wb.load_path(WordAddr(10)),
            LoadPath::ForwardFromStore { seq }
        );
    }

    #[test]
    fn youngest_same_address_entry_wins() {
        let mut wb = WriteBuffer::new(8);
        wb.push(Store, WordAddr(10));
        let inv_seq = wb.push(Inv, WordAddr(10));
        // INV is younger than the store: the load must observe the
        // refreshed view, not forward stale data.
        assert_eq!(
            wb.load_path(WordAddr(10)),
            LoadPath::StallForInv { seq: inv_seq }
        );
        // A WB younger still does not lift the store-forwarding of an even
        // younger store.
        let st_seq = wb.push(Store, WordAddr(10));
        wb.push(Wb, WordAddr(10));
        assert_eq!(
            wb.load_path(WordAddr(10)),
            LoadPath::ForwardFromStore { seq: st_seq }
        );
    }

    #[test]
    fn fifo_drain_preserves_per_address_order() {
        let mut wb = WriteBuffer::new(8);
        wb.push(Store, WordAddr(1));
        wb.push(Wb, WordAddr(1));
        wb.push(Store, WordAddr(2));
        assert!(wb.per_address_fifo_holds());
        let a = wb.pop().unwrap();
        let b = wb.pop().unwrap();
        assert!(a.seq < b.seq, "drain is oldest-first");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_to_full_buffer_panics() {
        let mut wb = WriteBuffer::new(1);
        wb.push(Store, WordAddr(0));
        wb.push(Store, WordAddr(1));
    }

    #[test]
    #[should_panic(expected = "loads are not buffered")]
    fn pushing_a_load_panics() {
        WriteBuffer::new(2).push(Load, WordAddr(0));
    }
}
