//! The coherence-management instruction family (paper §III-B and §V).
//!
//! WB and INV are memory instructions that command the cache controller.
//! Flavors:
//!
//! * **granularity**: byte, half word, word, double word, quad word —
//!   taking an operand address;
//! * **range**: start address plus length;
//! * **ALL**: the whole cache, no argument;
//! * **explicit level** (§V): `WB_L3(addr)` writes back through L2 to L3,
//!   `INV_L2(addr)` invalidates from L2 and L1;
//! * **level-adaptive** (§V): `WB_CONS(addr, consumer)` and
//!   `INV_PROD(addr, producer)` consult the ThreadMap and pick the cache
//!   level that actually separates the two threads.
//!
//! Because caches are organized into lines, every flavor expands to the set
//! of cache lines overlapping its target; per-word dirty bits guarantee the
//! expansion never destroys co-located updates.

use hic_mem::addr::{Addr, Region, WORD_BYTES};
use hic_mem::{LineAddr, WordAddr};
use hic_sim::ThreadId;
use serde::{Deserialize, Serialize};

/// Data granularity of a single-operand WB/INV (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    Byte,
    HalfWord,
    Word,
    DoubleWord,
    QuadWord,
}

impl Granularity {
    /// Operand size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Granularity::Byte => 1,
            Granularity::HalfWord => 2,
            Granularity::Word => 4,
            Granularity::DoubleWord => 8,
            Granularity::QuadWord => 16,
        }
    }
}

/// What a WB or INV operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// A single operand of the given granularity at the given address.
    Operand(Addr, Granularity),
    /// A contiguous range of words.
    Range(Region),
    /// The whole cache (`WB ALL` / `INV ALL`).
    All,
}

impl Target {
    /// The cache lines this target expands to, or `None` for `All`
    /// (the controller traverses the tags instead).
    pub fn lines(&self) -> Option<Vec<LineAddr>> {
        match *self {
            Target::Operand(addr, g) => {
                let first = addr.line();
                let last = Addr(addr.0 + g.bytes() - 1).line();
                Some((first.0..=last.0).map(LineAddr).collect())
            }
            Target::Range(r) => Some(r.lines().collect()),
            Target::All => None,
        }
    }

    /// Convenience: a one-word operand target.
    pub fn word(w: WordAddr) -> Target {
        Target::Operand(w.byte_addr(), Granularity::Word)
    }

    /// Convenience: the whole region of an allocation.
    pub fn range(r: Region) -> Target {
        Target::Range(r)
    }

    /// Word-granularity mask restricting the operation within a line, if
    /// the target covers only part of it. `None` means "all words".
    /// Used so a word-granularity WB writes back only that word even when
    /// other words of the line are dirty (minimizing transfer volume is the
    /// point of fine-grained dirty bits; a range or ALL WB covers them all).
    pub fn word_mask(&self, line: LineAddr) -> u16 {
        match *self {
            Target::All => u16::MAX,
            Target::Range(r) => mask_for_span(line, r.start, r.end()),
            Target::Operand(addr, g) => {
                let start = addr.word();
                let end = WordAddr(Addr(addr.0 + g.bytes() - 1).word().0 + 1);
                mask_for_span(line, start, end)
            }
        }
    }
}

fn mask_for_span(line: LineAddr, start: WordAddr, end: WordAddr) -> u16 {
    let lo = line.first_word().0.max(start.0);
    let hi = (line.first_word().0 + hic_mem::addr::WORDS_PER_LINE as u64).min(end.0);
    let mut m = 0u16;
    let base = line.first_word().0;
    for w in lo..hi {
        m |= 1 << (w - base);
    }
    m
}

/// Destination scope of a writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WbScope {
    /// Plain `WB`: push dirty words from L1 to the block's shared L2.
    ToL2,
    /// `WB_L3`: push dirty words from L1 (and L2) all the way to L3.
    ToL3,
    /// `WB_CONS(consumer)`: level-adaptive; the L2 controller's ThreadMap
    /// decides whether L2 suffices (consumer in-block) or L3 is needed.
    Cons(ThreadId),
}

/// Source scope of a self-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvScope {
    /// Plain `INV`: drop lines from the local L1.
    FromL1,
    /// `INV_L2`: drop lines from both L1 and the block's L2.
    FromL2,
    /// `INV_PROD(producer)`: level-adaptive; L1-only if the producer runs
    /// in this block, otherwise L1+L2.
    Prod(ThreadId),
}

/// A fully-specified coherence-management instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CohInstr {
    Wb { target: Target, scope: WbScope },
    Inv { target: Target, scope: InvScope },
}

impl CohInstr {
    /// `WB target` (to L2).
    pub fn wb(target: Target) -> CohInstr {
        CohInstr::Wb {
            target,
            scope: WbScope::ToL2,
        }
    }

    /// `WB ALL`.
    pub fn wb_all() -> CohInstr {
        CohInstr::Wb {
            target: Target::All,
            scope: WbScope::ToL2,
        }
    }

    /// `WB_L3 target`.
    pub fn wb_l3(target: Target) -> CohInstr {
        CohInstr::Wb {
            target,
            scope: WbScope::ToL3,
        }
    }

    /// `WB_CONS(target, consumer)`.
    pub fn wb_cons(target: Target, consumer: ThreadId) -> CohInstr {
        CohInstr::Wb {
            target,
            scope: WbScope::Cons(consumer),
        }
    }

    /// `INV target` (from L1).
    pub fn inv(target: Target) -> CohInstr {
        CohInstr::Inv {
            target,
            scope: InvScope::FromL1,
        }
    }

    /// `INV ALL`.
    pub fn inv_all() -> CohInstr {
        CohInstr::Inv {
            target: Target::All,
            scope: InvScope::FromL1,
        }
    }

    /// `INV_L2 target`.
    pub fn inv_l2(target: Target) -> CohInstr {
        CohInstr::Inv {
            target,
            scope: InvScope::FromL2,
        }
    }

    /// `INV_PROD(target, producer)`.
    pub fn inv_prod(target: Target, producer: ThreadId) -> CohInstr {
        CohInstr::Inv {
            target,
            scope: InvScope::Prod(producer),
        }
    }

    /// Is this a whole-cache (ALL) flavor?
    pub fn is_all(&self) -> bool {
        matches!(
            self,
            CohInstr::Wb {
                target: Target::All,
                ..
            } | CohInstr::Inv {
                target: Target::All,
                ..
            }
        )
    }

    /// Mnemonic, for traces and error messages.
    pub fn mnemonic(&self) -> String {
        match self {
            CohInstr::Wb { target, scope } => {
                let base = match scope {
                    WbScope::ToL2 => "WB".to_string(),
                    WbScope::ToL3 => "WB_L3".to_string(),
                    WbScope::Cons(t) => format!("WB_CONS[{t}]"),
                };
                match target {
                    Target::All => format!("{base} ALL"),
                    _ => base,
                }
            }
            CohInstr::Inv { target, scope } => {
                let base = match scope {
                    InvScope::FromL1 => "INV".to_string(),
                    InvScope::FromL2 => "INV_L2".to_string(),
                    InvScope::Prod(t) => format!("INV_PROD[{t}]"),
                };
                match target {
                    Target::All => format!("{base} ALL"),
                    _ => base,
                }
            }
        }
    }
}

/// A region covering `n` words starting at byte address `a` — helper for
/// building range-flavored instructions from raw addresses.
pub fn range_of(a: Addr, words: u64) -> Region {
    assert_eq!(a.0 % WORD_BYTES, 0, "range base must be word aligned");
    Region::new(a.word(), words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::addr::WORDS_PER_LINE;

    #[test]
    fn operand_within_one_line() {
        let t = Target::Operand(Addr(64), Granularity::Word);
        assert_eq!(t.lines(), Some(vec![LineAddr(1)]));
    }

    #[test]
    fn quadword_operand_can_straddle_lines() {
        // Quad word (16 bytes) starting 8 bytes before a line boundary.
        let t = Target::Operand(Addr(56), Granularity::QuadWord);
        assert_eq!(t.lines(), Some(vec![LineAddr(0), LineAddr(1)]));
    }

    #[test]
    fn range_target_expands_to_overlapping_lines() {
        let r = Region::new(WordAddr(15), 3); // words 15,16,17: lines 0 and 1
        let t = Target::Range(r);
        assert_eq!(t.lines(), Some(vec![LineAddr(0), LineAddr(1)]));
    }

    #[test]
    fn all_target_has_no_line_list() {
        assert_eq!(Target::All.lines(), None);
    }

    #[test]
    fn word_mask_restricts_to_target_words() {
        // Word-granularity WB of word 3 of line 0.
        let t = Target::word(WordAddr(3));
        assert_eq!(t.word_mask(LineAddr(0)), 1 << 3);
        // ALL covers everything.
        assert_eq!(Target::All.word_mask(LineAddr(0)), u16::MAX);
    }

    #[test]
    fn word_mask_for_partial_range() {
        // Range words 14..18: line 0 gets words 14,15; line 1 gets 16,17
        // (i.e. words 0,1 of line 1).
        let t = Target::Range(Region::new(WordAddr(14), 4));
        assert_eq!(t.word_mask(LineAddr(0)), (1 << 14) | (1 << 15));
        assert_eq!(t.word_mask(LineAddr(1)), 0b11);
    }

    #[test]
    fn word_mask_full_line_range() {
        let t = Target::Range(Region::new(WordAddr(0), WORDS_PER_LINE as u64));
        assert_eq!(t.word_mask(LineAddr(0)), u16::MAX);
    }

    #[test]
    fn granularity_sizes() {
        assert_eq!(Granularity::Byte.bytes(), 1);
        assert_eq!(Granularity::HalfWord.bytes(), 2);
        assert_eq!(Granularity::Word.bytes(), 4);
        assert_eq!(Granularity::DoubleWord.bytes(), 8);
        assert_eq!(Granularity::QuadWord.bytes(), 16);
    }

    #[test]
    fn byte_granularity_still_names_its_word() {
        let t = Target::Operand(Addr(5), Granularity::Byte);
        // Byte 5 lives in word 1 of line 0.
        assert_eq!(t.word_mask(LineAddr(0)), 1 << 1);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(CohInstr::wb_all().mnemonic(), "WB ALL");
        assert_eq!(CohInstr::inv_all().mnemonic(), "INV ALL");
        assert_eq!(CohInstr::wb(Target::word(WordAddr(0))).mnemonic(), "WB");
        assert_eq!(CohInstr::wb_l3(Target::All).mnemonic(), "WB_L3 ALL");
        assert_eq!(
            CohInstr::wb_cons(Target::word(WordAddr(0)), ThreadId(3)).mnemonic(),
            "WB_CONS[t3]"
        );
        assert_eq!(
            CohInstr::inv_prod(Target::word(WordAddr(0)), ThreadId(1)).mnemonic(),
            "INV_PROD[t1]"
        );
        assert_eq!(
            CohInstr::inv_l2(Target::word(WordAddr(0))).mnemonic(),
            "INV_L2"
        );
    }

    #[test]
    fn is_all_detection() {
        assert!(CohInstr::wb_all().is_all());
        assert!(CohInstr::inv_all().is_all());
        assert!(!CohInstr::wb(Target::word(WordAddr(9))).is_all());
    }
}
