//! The Invalidated Entry Buffer (IEB), paper §IV-B2.
//!
//! Instead of paying an up-front `INV ALL` at the start of a short epoch,
//! the epoch begins with *no* invalidation, and the IEB — a tiny
//! (4-entry), fast, exact buffer of line addresses — tracks lines that
//! have already been refreshed this epoch and therefore need no
//! invalidation on a future read.
//!
//! On every L1 read:
//!
//! * line address already in the IEB → normal read (fresh this epoch);
//! * read hits and the target word is dirty → normal read (this core
//!   wrote it; cannot be stale);
//! * otherwise: record the address in the IEB, invalidate the line if
//!   resident (first read this epoch), and fetch a fresh copy from the
//!   shared cache.
//!
//! The IEB is FIFO; an evicted entry costs at most one unnecessary
//! invalidation + miss if its line is read again (correctness is
//! unaffected).

use hic_mem::LineAddr;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the read path must do, as decided by the IEB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IebAction {
    /// Proceed as a normal cached read.
    Normal,
    /// First read of this line this epoch: invalidate the local copy (if
    /// any) and fetch fresh from the shared cache.
    RefreshFromShared,
}

/// Invalidated Entry Buffer state machine.
#[derive(Debug, Clone)]
pub struct Ieb {
    capacity: usize,
    entries: VecDeque<LineAddr>,
    active: bool,
    /// Unnecessary refreshes caused by capacity evictions (performance
    /// counter; the paper notes the IEB "sometimes overflows, becoming
    /// ineffective").
    evictions: u64,
}

impl Ieb {
    /// An IEB with the given capacity (4 in the paper).
    pub fn new(capacity: usize) -> Ieb {
        assert!(capacity > 0);
        Ieb {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            active: false,
            evictions: 0,
        }
    }

    /// Begin a lazily-invalidated epoch: clear and activate.
    pub fn begin_epoch(&mut self) {
        self.entries.clear();
        self.active = true;
    }

    /// End the epoch: deactivate (reads go back to the normal path).
    pub fn end_epoch(&mut self) {
        self.active = false;
        self.entries.clear();
    }

    /// Is the IEB governing reads right now?
    pub fn active(&self) -> bool {
        self.active
    }

    /// Number of capacity evictions suffered so far (monotone counter).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Decide the path for a read of `line`. `word_dirty_on_hit` must be
    /// `true` iff the read hits in the L1 *and* the target word's dirty bit
    /// is set. Must only be called while active.
    pub fn on_read(&mut self, line: LineAddr, word_dirty_on_hit: bool) -> IebAction {
        debug_assert!(self.active, "IEB consulted while inactive");
        if self.entries.contains(&line) {
            return IebAction::Normal;
        }
        if word_dirty_on_hit {
            // Written by this core in the past: not stale, no action, and
            // per the paper "no special action is taken" — the line is not
            // recorded either.
            return IebAction::Normal;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back(line);
        IebAction::RefreshFromShared
    }

    /// Storage cost in bits: each entry holds a full line address plus a
    /// valid bit (paper Table III: "4 entries. Size: 40b + 1b").
    pub fn storage_bits(&self, line_addr_bits: u32) -> u64 {
        self.capacity as u64 * (line_addr_bits as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_refreshes_second_is_normal() {
        let mut ieb = Ieb::new(4);
        ieb.begin_epoch();
        assert_eq!(
            ieb.on_read(LineAddr(10), false),
            IebAction::RefreshFromShared
        );
        assert_eq!(ieb.on_read(LineAddr(10), false), IebAction::Normal);
    }

    #[test]
    fn dirty_word_hit_needs_no_refresh() {
        let mut ieb = Ieb::new(4);
        ieb.begin_epoch();
        // The word was written by this core earlier: cannot be stale.
        assert_eq!(ieb.on_read(LineAddr(5), true), IebAction::Normal);
        // And the line was not recorded: a later clean-word read of the
        // same line still refreshes.
        assert_eq!(
            ieb.on_read(LineAddr(5), false),
            IebAction::RefreshFromShared
        );
    }

    #[test]
    fn fifo_eviction_causes_one_extra_refresh() {
        let mut ieb = Ieb::new(2);
        ieb.begin_epoch();
        assert_eq!(
            ieb.on_read(LineAddr(1), false),
            IebAction::RefreshFromShared
        );
        assert_eq!(
            ieb.on_read(LineAddr(2), false),
            IebAction::RefreshFromShared
        );
        // Line 3 evicts line 1.
        assert_eq!(
            ieb.on_read(LineAddr(3), false),
            IebAction::RefreshFromShared
        );
        assert_eq!(ieb.evictions(), 1);
        // Line 1 was evicted: unnecessary (but harmless) refresh.
        assert_eq!(
            ieb.on_read(LineAddr(1), false),
            IebAction::RefreshFromShared
        );
        // Line 3 is still held.
        assert_eq!(ieb.on_read(LineAddr(3), false), IebAction::Normal);
    }

    #[test]
    fn epoch_boundaries_clear_state() {
        let mut ieb = Ieb::new(4);
        ieb.begin_epoch();
        ieb.on_read(LineAddr(9), false);
        ieb.end_epoch();
        assert!(!ieb.active());
        ieb.begin_epoch();
        // Fresh epoch: line 9 must refresh again.
        assert_eq!(
            ieb.on_read(LineAddr(9), false),
            IebAction::RefreshFromShared
        );
    }

    #[test]
    fn storage_matches_table3() {
        let ieb = Ieb::new(4);
        // 4 entries x (40-bit line address + valid) = 164 bits.
        assert_eq!(ieb.storage_bits(40), 164);
    }
}
