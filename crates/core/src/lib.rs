//! The paper's primary contribution: architectural support for managing a
//! hardware-incoherent multiprocessor cache hierarchy.
//!
//! This crate implements, as reusable policy components:
//!
//! * the **WB / INV instruction family** (§III-B, §V): data granularities,
//!   address ranges, whole-cache (`ALL`) flavors, explicit-level flavors
//!   (`WB_L3`, `INV_L2`), and the level-adaptive `WB_CONS` / `INV_PROD`;
//! * the **instruction reordering rules** of §III-C (Figure 3) and a write
//!   buffer model that enforces them;
//! * the **Modified Entry Buffer (MEB)** that accumulates written line IDs
//!   so small critical sections avoid full-cache writeback traversals
//!   (§IV-B1);
//! * the **Invalidated Entry Buffer (IEB)** that turns up-front `INV ALL`
//!   into on-demand first-read invalidations (§IV-B2);
//! * the **ThreadMap** table the L2 controller consults to resolve
//!   level-adaptive instructions (§V-B);
//! * the **storage-overhead model** comparing incoherent vs. directory-MESI
//!   hierarchies (§VII-A).
//!
//! The timing simulator in `hic-machine` drives these components; they are
//! all individually unit-testable state machines.

pub mod epoch;
pub mod ieb;
pub mod isa;
pub mod meb;
pub mod ordering;
pub mod storage;
pub mod threadmap;

pub use epoch::VectorClock;
pub use ieb::Ieb;
pub use isa::{CohInstr, Granularity, InvScope, Target, WbScope};
pub use meb::{Meb, MebDrain};
pub use ordering::{AccessKind, OrderConstraint, WriteBuffer};
pub use storage::{coherent_storage_bits, incoherent_storage_bits, StorageReport};
pub use threadmap::ThreadMap;
