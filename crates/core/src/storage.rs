//! Control/storage-overhead model (paper §VII-A).
//!
//! Compares the storage the two hierarchies need beyond the caches
//! themselves:
//!
//! * **Coherent**: a hierarchical full-map directory (per-L3-line presence
//!   bits over blocks + dirty bit; per-L2-line presence bits over the
//!   block's cores + dirty bit) plus 4 coherence-state bits per L1 and L2
//!   line (MESI stable + transient states).
//! * **Incoherent**: per L1/L2 line a valid bit and per-word dirty bits,
//!   plus the per-core MEB and IEB and the per-block ThreadMap.
//!
//! The L3 data array is identical in both systems and excluded. The paper
//! reports the incoherent hierarchy saving "about 102 KB" on the 32-core
//! (4 blocks x 8 cores) machine; this model reproduces that number.

use hic_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// Bits per line-address entry in the IEB (Table III: 40-bit line address).
pub const IEB_LINE_ADDR_BITS: u32 = 40;
/// Coherence-state bits per line in the MESI hierarchy (§VII-A).
pub const MESI_STATE_BITS: u64 = 4;
/// Thread-ID width for ThreadMap entries.
pub const THREAD_ID_BITS: u32 = 16;

/// Itemized storage bill for one hierarchy, in bits.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageReport {
    pub items: Vec<(String, u64)>,
}

impl StorageReport {
    fn push(&mut self, name: &str, bits: u64) {
        self.items.push((name.to_string(), bits));
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.items.iter().map(|(_, b)| b).sum()
    }

    /// Total in kilobytes (1 KB = 8192 bits).
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }
}

fn hierarchy_lines(cfg: &MachineConfig) -> (u64, u64, u64) {
    let cores = cfg.num_cores() as u64;
    let l1_lines = cores * cfg.l1.num_lines() as u64;
    let l2_lines =
        cfg.num_blocks() as u64 * cfg.l2_banks_per_block() as u64 * cfg.l2.num_lines() as u64;
    let l3_lines = cfg
        .l3()
        .map(|l| l.banks as u64 * l.geometry.num_lines() as u64)
        .unwrap_or(0);
    (l1_lines, l2_lines, l3_lines)
}

/// Storage bill of the hierarchical full-map directory MESI hierarchy.
pub fn coherent_storage_bits(cfg: &MachineConfig) -> StorageReport {
    let (l1_lines, l2_lines, l3_lines) = hierarchy_lines(cfg);
    let mut r = StorageReport::default();
    if l3_lines > 0 {
        // Per L3 line: one presence bit per block + dirty.
        let presence = cfg.num_blocks() as u64;
        r.push("L3 directory (presence + dirty)", l3_lines * (presence + 1));
    }
    // Per L2 line: one presence bit per core in the block + dirty.
    let presence = cfg.cores_per_block() as u64;
    r.push("L2 directory (presence + dirty)", l2_lines * (presence + 1));
    r.push("L1 coherence state", l1_lines * MESI_STATE_BITS);
    r.push("L2 coherence state", l2_lines * MESI_STATE_BITS);
    r
}

/// Storage bill of the hardware-incoherent hierarchy.
pub fn incoherent_storage_bits(cfg: &MachineConfig) -> StorageReport {
    let (l1_lines, l2_lines, _) = hierarchy_lines(cfg);
    let cores = cfg.num_cores() as u64;
    let per_line = 1 + cfg.words_per_line() as u64; // valid + per-word dirty
    let mut r = StorageReport::default();
    r.push("L1 valid + per-word dirty bits", l1_lines * per_line);
    r.push("L2 valid + per-word dirty bits", l2_lines * per_line);
    let meb_bits = cfg.meb_entries as u64 * (cfg.l1.line_id_bits() as u64 + 1);
    r.push("per-core MEB", cores * meb_bits);
    let ieb_bits = cfg.ieb_entries as u64 * (IEB_LINE_ADDR_BITS as u64 + 1);
    r.push("per-core IEB", cores * ieb_bits);
    // ThreadMap: one entry per core in the machine, per block's L2
    // controller (a thread anywhere may be named by WB_CONS/INV_PROD).
    let tm_entries = cores;
    let tm_bits = tm_entries * (THREAD_ID_BITS as u64 + 1);
    r.push("per-block ThreadMap", cfg.num_blocks() as u64 * tm_bits);
    r
}

/// The headline §VII-A number: coherent minus incoherent storage, KB.
pub fn savings_kb(cfg: &MachineConfig) -> f64 {
    coherent_storage_bits(cfg).total_kb() - incoherent_storage_bits(cfg).total_kb()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_bill_matches_hand_computation() {
        let cfg = MachineConfig::inter_block();
        let r = coherent_storage_bits(&cfg);
        // L3: 262144 lines x (4+1) bits = 1,310,720 (160 KB).
        // L2: 65536 lines x (8+1) = 589,824 (72 KB).
        // L1 state: 16384 x 4 = 65,536 (8 KB). L2 state: 65536 x 4 (32 KB).
        assert_eq!(r.total_bits(), 1_310_720 + 589_824 + 65_536 + 262_144);
        assert!((r.total_kb() - 272.0).abs() < 1e-9);
    }

    #[test]
    fn incoherent_bill_matches_hand_computation() {
        let cfg = MachineConfig::inter_block();
        let r = incoherent_storage_bits(&cfg);
        // L1: 16384 x 17 = 278,528. L2: 65536 x 17 = 1,114,112.
        // MEB: 32 x 16 x 10 = 5,120. IEB: 32 x 4 x 41 = 5,248.
        // ThreadMap: 4 x 32 x 17 = 2,176.
        assert_eq!(r.total_bits(), 278_528 + 1_114_112 + 5_120 + 5_248 + 2_176);
    }

    #[test]
    fn savings_are_about_102kb_as_the_paper_reports() {
        // §VII-A: "the hardware-incoherent hierarchy uses about 102KB less
        // storage than the coherent one". Our itemization lands at ~100.5 KB;
        // accept the paper's "about" within a few KB.
        let s = savings_kb(&MachineConfig::inter_block());
        assert!(
            (s - 102.0).abs() < 5.0,
            "expected ~102 KB savings, got {s:.1} KB"
        );
    }

    #[test]
    fn intra_machine_has_no_l3_directory() {
        let cfg = MachineConfig::intra_block();
        let r = coherent_storage_bits(&cfg);
        assert!(r.items.iter().all(|(n, _)| !n.starts_with("L3")));
    }

    #[test]
    fn incoherent_is_cheaper_on_both_machines() {
        for cfg in [MachineConfig::intra_block(), MachineConfig::inter_block()] {
            assert!(
                savings_kb(&cfg) > 0.0,
                "incoherent must need less storage ({:?})",
                cfg.num_cores()
            );
        }
    }
}
