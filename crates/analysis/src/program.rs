//! The affine loop-nest IR the analyzer consumes.
//!
//! A program is a sequence of nodes — serial sections and statically-
//! scheduled parallel loops — optionally repeated (iterative solvers).
//! Each node declares its array accesses with per-iteration patterns.
//! This captures exactly what the paper's ROSE-based analysis extracts
//! from OpenMP source: work partitioning plus DEF/USE sets per loop.

use hic_mem::Region;
use serde::{Deserialize, Serialize};

/// Index of an array in the program's array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub usize);

/// Per-iteration access pattern of one array reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Iteration `i` touches elements `[i*scale + lo, i*scale + hi)`.
    /// `Range{scale: 1, lo: 0, hi: 1}` is the plain `A[i]`;
    /// `Range{scale: m, lo: -m, hi: 2m}` is a row-stencil read.
    Range { scale: i64, lo: i64, hi: i64 },
    /// The whole array, or an unanalyzable reference.
    Whole,
    /// Indirect access: iteration `i` touches the elements listed in
    /// `elems[starts[i]..starts[i+1]]` (CSR-style). Resolved by the
    /// inspector at run time.
    Indirect { starts: Vec<u64>, elems: Vec<u64> },
}

impl Pattern {
    /// `A[i]`.
    pub fn ident() -> Pattern {
        Pattern::Range {
            scale: 1,
            lo: 0,
            hi: 1,
        }
    }

    /// Row access: iteration `i` touches row `i` of width `m`.
    pub fn row(m: i64) -> Pattern {
        Pattern::Range {
            scale: m,
            lo: 0,
            hi: m,
        }
    }

    /// Row stencil: iteration `i` reads rows `i-1 ..= i+1` of width `m`.
    pub fn row_stencil(m: i64) -> Pattern {
        Pattern::Range {
            scale: m,
            lo: -m,
            hi: 2 * m,
        }
    }

    /// Element interval `[lo, hi)` touched by iterations `[a, b)`,
    /// clamped to `[0, len)`. `None` if empty or unanalyzable.
    pub fn touched(&self, a: u64, b: u64, len: u64) -> Option<(u64, u64)> {
        match *self {
            Pattern::Range { scale, lo, hi } => {
                if a >= b {
                    return None;
                }
                let first = (a as i64) * scale + lo;
                let last = (b as i64 - 1) * scale + hi;
                let lo_c = first.max(0) as u64;
                let hi_c = (last.max(0) as u64).min(len);
                (lo_c < hi_c).then_some((lo_c, hi_c))
            }
            _ => None,
        }
    }

    /// Is this a perfectly tiling write pattern (each element produced by
    /// exactly one iteration)? Required to invert producer iterations.
    pub fn tiles_perfectly(&self) -> bool {
        matches!(*self, Pattern::Range { scale, lo, hi } if hi - lo == scale && scale > 0)
    }

    /// The iteration producing element `e` (valid only when
    /// `tiles_perfectly`). `None` when out of the pattern's image.
    pub fn producing_iter(&self, e: u64, iters: u64) -> Option<u64> {
        match *self {
            Pattern::Range { scale, lo, .. } if self.tiles_perfectly() => {
                let x = e as i64 - lo;
                if x < 0 {
                    return None;
                }
                let i = (x / scale) as u64;
                (i < iters).then_some(i)
            }
            _ => None,
        }
    }
}

/// One array reference of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Access {
    pub array: ArrayId,
    pub pattern: Pattern,
}

impl Access {
    pub fn new(array: ArrayId, pattern: Pattern) -> Access {
        Access { array, pattern }
    }

    pub fn whole(array: ArrayId) -> Access {
        Access {
            array,
            pattern: Pattern::Whole,
        }
    }
}

/// One node of the program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A serial section, executed by thread 0 only (§V-A1: "our approach
    /// executes the serial section in only one thread").
    Serial {
        reads: Vec<Access>,
        writes: Vec<Access>,
    },
    /// A statically-scheduled parallel `for` loop.
    ParFor {
        iters: u64,
        reads: Vec<Access>,
        writes: Vec<Access>,
    },
}

impl Node {
    pub fn reads(&self) -> &[Access] {
        match self {
            Node::Serial { reads, .. } | Node::ParFor { reads, .. } => reads,
        }
    }

    pub fn writes(&self) -> &[Access] {
        match self {
            Node::Serial { writes, .. } | Node::ParFor { writes, .. } => writes,
        }
    }
}

/// A whole program: arrays (with their allocated regions) and a node
/// sequence, optionally repeated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Allocated region of each array.
    pub arrays: Vec<Region>,
    pub nodes: Vec<Node>,
    /// Does control flow loop back from the last node to the first
    /// (iterative solvers)? Determines reachability.
    pub repeat: bool,
}

impl Program {
    pub fn array_len(&self, a: ArrayId) -> u64 {
        self.arrays[a.0].words
    }

    /// Is node `j` reachable from node `i` along forward control flow?
    /// (The paper's interprocedural CFG traversal, §V-A1.) With `repeat`,
    /// every node reaches every node.
    pub fn reachable(&self, i: usize, j: usize) -> bool {
        j > i || self.repeat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::WordAddr;

    #[test]
    fn identity_pattern_touch() {
        let p = Pattern::ident();
        assert_eq!(p.touched(4, 8, 100), Some((4, 8)));
        assert_eq!(p.touched(4, 4, 100), None);
        assert!(p.tiles_perfectly());
        assert_eq!(p.producing_iter(7, 100), Some(7));
        assert_eq!(p.producing_iter(100, 100), None);
    }

    #[test]
    fn row_pattern_touch_and_invert() {
        let p = Pattern::row(10);
        assert_eq!(p.touched(2, 4, 1000), Some((20, 40)));
        assert!(p.tiles_perfectly());
        assert_eq!(p.producing_iter(25, 100), Some(2));
    }

    #[test]
    fn stencil_pattern_clamps_at_edges() {
        let p = Pattern::row_stencil(10);
        // Iterations 0..2 read rows -1..2 -> clamped to [0, 30).
        assert_eq!(p.touched(0, 2, 1000), Some((0, 30)));
        // Last iteration of a 10-row array reads past the end -> clamped.
        assert_eq!(p.touched(9, 10, 100), Some((80, 100)));
        assert!(!p.tiles_perfectly(), "stencil reads overlap");
    }

    #[test]
    fn whole_pattern_is_unanalyzable() {
        assert_eq!(Pattern::Whole.touched(0, 10, 100), None);
        assert!(!Pattern::Whole.tiles_perfectly());
    }

    #[test]
    fn reachability() {
        let prog = Program {
            arrays: vec![Region::new(WordAddr(0), 10)],
            nodes: vec![
                Node::Serial {
                    reads: vec![],
                    writes: vec![],
                },
                Node::ParFor {
                    iters: 10,
                    reads: vec![],
                    writes: vec![],
                },
            ],
            repeat: false,
        };
        assert!(prog.reachable(0, 1));
        assert!(!prog.reachable(1, 0));
        let looped = Program {
            repeat: true,
            ..prog
        };
        assert!(looped.reachable(1, 0));
        assert!(looped.reachable(1, 1));
    }
}
