//! DEF-USE analysis over statically-scheduled loops: extracting
//! producer-consumer thread pairs and emitting WB_CONS / INV_PROD
//! placements (paper §V-A1).
//!
//! For every pair of nodes (P, C) where C is reachable from P and some
//! array is written by P and read by C:
//!
//! * compute, per consumer thread, the element interval its chunk reads;
//! * invert the producer's (perfectly tiling) write pattern to find the
//!   producing iterations, hence — through the static schedule — the
//!   producing threads;
//! * for every producer != consumer, emit a `WB_CONS(region, consumer)` at
//!   the end of P on the producer, and an `INV_PROD(region, producer)` at
//!   the start of C on the consumer.
//!
//! When the analysis cannot identify the peer (a `Whole` pattern, or a
//! non-tiling write), it falls back to peer-unknown operations, which the
//! runtime turns into plain global `WB_L3` / `INV_L2` — §V-A1: "the
//! producer writes back the data to the last level cache".

use hic_runtime::{CommOp, EpochPlan};
use hic_sim::ThreadId;

use crate::program::{Node, Pattern, Program};
use crate::schedule::Chunks;

/// Analysis output: for each node, per-thread plans at its start (INV
/// side) and end (WB side).
#[derive(Debug, Clone)]
pub struct NodePlans {
    /// `start[n][t]`: plan to execute after the barrier entering node `n`.
    pub start: Vec<Vec<EpochPlan>>,
    /// `end[n][t]`: plan to execute before the barrier leaving node `n`.
    pub end: Vec<Vec<EpochPlan>>,
}

impl NodePlans {
    fn empty(nodes: usize, threads: usize) -> NodePlans {
        NodePlans {
            start: vec![vec![EpochPlan::new(); threads]; nodes],
            end: vec![vec![EpochPlan::new(); threads]; nodes],
        }
    }

    /// Total planned WB (resp. INV) operations with a known peer across
    /// all nodes and threads — used by tests and the Figure 11 harness.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut wb_known = 0;
        let mut wb_unknown = 0;
        let mut inv_known = 0;
        let mut inv_unknown = 0;
        for per_thread in self.end.iter().chain(self.start.iter()) {
            for plan in per_thread {
                for op in &plan.wb {
                    if op.peer.is_some() {
                        wb_known += 1;
                    } else {
                        wb_unknown += 1;
                    }
                }
                for op in &plan.inv {
                    if op.peer.is_some() {
                        inv_known += 1;
                    } else {
                        inv_unknown += 1;
                    }
                }
            }
        }
        (wb_known, wb_unknown, inv_known, inv_unknown)
    }
}

/// The DEF-USE analyzer.
pub struct Analyzer<'p> {
    program: &'p Program,
    threads: usize,
}

impl<'p> Analyzer<'p> {
    pub fn new(program: &'p Program, threads: usize) -> Analyzer<'p> {
        assert!(threads > 0);
        Analyzer { program, threads }
    }

    /// Iterations executed by thread `t` in node `n` (serial sections run
    /// entirely on thread 0).
    fn thread_iters(&self, node: &Node, t: usize) -> (u64, u64) {
        match node {
            Node::Serial { .. } => {
                if t == 0 {
                    (0, 1)
                } else {
                    (0, 0)
                }
            }
            Node::ParFor { iters, .. } => Chunks::new(*iters, self.threads).range(t),
        }
    }

    fn node_iters(&self, node: &Node) -> u64 {
        match node {
            Node::Serial { .. } => 1,
            Node::ParFor { iters, .. } => *iters,
        }
    }

    /// Effective per-iteration pattern: a serial section's accesses cover
    /// whatever the access says for its single "iteration 0"; a `Whole`
    /// pattern means the full array on iteration 0.
    fn serial_covers_all(node: &Node) -> bool {
        matches!(node, Node::Serial { .. })
    }

    /// Run the analysis.
    pub fn analyze(&self) -> NodePlans {
        let prog = self.program;
        let n_nodes = prog.nodes.len();
        let mut plans = NodePlans::empty(n_nodes, self.threads);

        for (pi, pnode) in prog.nodes.iter().enumerate() {
            for (ci, cnode) in prog.nodes.iter().enumerate() {
                if !prog.reachable(pi, ci) {
                    continue;
                }
                for wacc in pnode.writes() {
                    for racc in cnode.reads() {
                        if wacc.array != racc.array {
                            continue;
                        }
                        // Indirect reads are the inspector's job (§V-A2).
                        if matches!(racc.pattern, Pattern::Indirect { .. }) {
                            continue;
                        }
                        self.pair(&mut plans, pi, pnode, ci, cnode, wacc, racc);
                    }
                }
            }
        }
        // Different (producer-node, array) pairs can emit overlapping or
        // adjacent ops for the same thread; hand the runtime the minimal
        // equivalent set.
        for per_thread in plans.start.iter_mut().chain(plans.end.iter_mut()) {
            for plan in per_thread.iter_mut() {
                *plan = plan.coalesced();
            }
        }
        plans
    }

    #[allow(clippy::too_many_arguments)]
    fn pair(
        &self,
        plans: &mut NodePlans,
        pi: usize,
        pnode: &Node,
        ci: usize,
        cnode: &Node,
        wacc: &crate::program::Access,
        racc: &crate::program::Access,
    ) {
        let array = wacc.array;
        let len = self.program.array_len(array);
        let base = self.program.arrays[array.0];
        let p_iters = self.node_iters(pnode);
        let invertible = wacc.pattern.tiles_perfectly() && !Self::serial_covers_all(pnode);

        for tc in 0..self.threads {
            let (a, b) = self.thread_iters(cnode, tc);
            if a >= b {
                continue;
            }
            // Elements this consumer reads.
            let (elo, ehi) =
                if Self::serial_covers_all(cnode) || matches!(racc.pattern, Pattern::Whole) {
                    (0, len)
                } else {
                    match racc.pattern.touched(a, b, len) {
                        Some(r) => r,
                        None => continue,
                    }
                };

            if !invertible {
                // Unknown producers: peer-less ops. The producer side
                // writes back its whole written range; the consumer
                // invalidates its whole read range.
                let region = base.slice(elo, ehi);
                Self::push_inv(&mut plans.start[ci][tc], CommOp::unknown(region));
                for tp in 0..self.threads {
                    let (pa, pb) = self.thread_iters(pnode, tp);
                    if pa >= pb {
                        continue;
                    }
                    let (wlo, whi) = if Self::serial_covers_all(pnode)
                        || matches!(wacc.pattern, Pattern::Whole)
                    {
                        (0, len)
                    } else {
                        match wacc.pattern.touched(pa, pb, len) {
                            Some(r) => r,
                            None => continue,
                        }
                    };
                    Self::push_wb(
                        &mut plans.end[pi][tp],
                        CommOp::unknown(base.slice(wlo, whi)),
                    );
                }
                continue;
            }

            // Invertible: walk the consumer's element range and group
            // maximal runs by producing thread.
            let mut run_start = elo;
            let mut run_owner: Option<usize> = None;
            let flush = |plans: &mut NodePlans, lo: u64, hi: u64, owner: Option<usize>| {
                let tp = match owner {
                    Some(tp) => tp,
                    None => return,
                };
                if tp == tc || lo >= hi {
                    return;
                }
                let region = base.slice(lo, hi);
                Self::push_inv(
                    &mut plans.start[ci][tc],
                    CommOp::known(region, ThreadId(tp)),
                );
                Self::push_wb(&mut plans.end[pi][tp], CommOp::known(region, ThreadId(tc)));
            };
            let chunks = Chunks::new(p_iters, self.threads);
            for e in elo..ehi {
                let owner = wacc
                    .pattern
                    .producing_iter(e, p_iters)
                    .map(|it| chunks.owner(it));
                if owner != run_owner {
                    flush(plans, run_start, e, run_owner);
                    run_start = e;
                    run_owner = owner;
                }
            }
            flush(plans, run_start, ehi, run_owner);
        }
    }

    fn push_wb(plan: &mut EpochPlan, op: CommOp) {
        if !plan.wb.contains(&op) {
            plan.wb.push(op);
        }
    }

    fn push_inv(plan: &mut EpochPlan, op: CommOp) {
        if !plan.inv.contains(&op) {
            plan.inv.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, ArrayId, Node, Pattern, Program};
    use hic_mem::{Region, WordAddr};

    fn region(words: u64) -> Region {
        Region::new(WordAddr(1024), words)
    }

    /// 1D Jacobi-like: node 0 writes B[i] reading A stencil; node 1 writes
    /// A[i] reading B stencil; repeats.
    fn jacobi_1d(n: u64) -> Program {
        let a = ArrayId(0);
        let b = ArrayId(1);
        Program {
            arrays: vec![
                Region::new(WordAddr(1024), n),
                Region::new(WordAddr(4096), n),
            ],
            nodes: vec![
                Node::ParFor {
                    iters: n,
                    reads: vec![Access::new(
                        a,
                        Pattern::Range {
                            scale: 1,
                            lo: -1,
                            hi: 2,
                        },
                    )],
                    writes: vec![Access::new(b, Pattern::ident())],
                },
                Node::ParFor {
                    iters: n,
                    reads: vec![Access::new(
                        b,
                        Pattern::Range {
                            scale: 1,
                            lo: -1,
                            hi: 2,
                        },
                    )],
                    writes: vec![Access::new(a, Pattern::ident())],
                },
            ],
            repeat: true,
        }
    }

    #[test]
    fn jacobi_halo_exchange_is_neighbor_to_neighbor() {
        let prog = jacobi_1d(64);
        let plans = Analyzer::new(&prog, 4).analyze();
        // Thread 1 consumes node 0's input A at its chunk [16,32): the
        // halo elements 15 (from thread 0) and 32 (from thread 2).
        let inv = &plans.start[0][1].inv;
        assert_eq!(inv.len(), 2, "two halo regions: {inv:?}");
        let froms: Vec<_> = inv.iter().map(|o| o.peer.unwrap().0).collect();
        assert!(froms.contains(&0) && froms.contains(&2));
        // Each halo is exactly one element.
        assert!(inv.iter().all(|o| o.region.words == 1));
        // Producer side: thread 0 in node 1 (which writes A) must WB its
        // chunk-edge element to thread 1.
        let wb = &plans.end[1][0].wb;
        assert!(
            wb.iter()
                .any(|o| o.peer == Some(ThreadId(1)) && o.region.words == 1),
            "thread 0 writes back its edge element: {wb:?}"
        );
        // Interior threads never appear as peers of thread 0 in node 0.
        let inv0 = &plans.start[0][0].inv;
        assert!(inv0.iter().all(|o| o.peer == Some(ThreadId(1))), "{inv0:?}");
    }

    #[test]
    fn no_self_communication() {
        let prog = jacobi_1d(64);
        let plans = Analyzer::new(&prog, 4).analyze();
        for n in 0..2 {
            for t in 0..4 {
                assert!(plans.start[n][t]
                    .inv
                    .iter()
                    .all(|o| o.peer != Some(ThreadId(t))));
                assert!(plans.end[n][t]
                    .wb
                    .iter()
                    .all(|o| o.peer != Some(ThreadId(t))));
            }
        }
    }

    #[test]
    fn serial_section_produces_for_all() {
        // Serial init writes X; parallel loop reads X[i].
        let x = ArrayId(0);
        let prog = Program {
            arrays: vec![region(64)],
            nodes: vec![
                Node::Serial {
                    reads: vec![],
                    writes: vec![Access::whole(x)],
                },
                Node::ParFor {
                    iters: 64,
                    reads: vec![Access::new(x, Pattern::ident())],
                    writes: vec![],
                },
            ],
            repeat: false,
        };
        let plans = Analyzer::new(&prog, 4).analyze();
        // Thread 0 (serial executor) writes back the whole array.
        assert_eq!(plans.end[0][0].wb.len(), 1);
        assert_eq!(
            plans.end[0][0].wb[0].peer, None,
            "consumers unknown -> global WB"
        );
        assert_eq!(plans.end[0][0].wb[0].region.words, 64);
        // Every consumer thread invalidates its read range.
        for t in 0..4 {
            let inv = &plans.start[1][t].inv;
            assert_eq!(inv.len(), 1);
            assert_eq!(inv[0].region.words, 16);
        }
        // Other threads write back nothing at node 0.
        for t in 1..4 {
            assert!(plans.end[0][t].wb.is_empty());
        }
    }

    #[test]
    fn whole_read_consumes_everyone_elses_chunk() {
        // Reduction-gather shape: node 0 writes Y[i] in parallel; node 1
        // is serial and reads all of Y.
        let y = ArrayId(0);
        let prog = Program {
            arrays: vec![region(32)],
            nodes: vec![
                Node::ParFor {
                    iters: 32,
                    reads: vec![],
                    writes: vec![Access::new(y, Pattern::ident())],
                },
                Node::Serial {
                    reads: vec![Access::whole(y)],
                    writes: vec![],
                },
            ],
            repeat: false,
        };
        let plans = Analyzer::new(&prog, 4).analyze();
        // Thread 0 runs the serial read: it must invalidate the chunks of
        // threads 1..3 but not its own.
        let inv = &plans.start[1][0].inv;
        assert_eq!(inv.len(), 3, "{inv:?}");
        let peers: Vec<_> = inv.iter().map(|o| o.peer.unwrap().0).collect();
        assert_eq!(peers, vec![1, 2, 3]);
        // Producers 1..3 write back to consumer 0; producer 0 (= consumer)
        // does not.
        for t in 1..4 {
            assert!(plans.end[0][t]
                .wb
                .iter()
                .any(|o| o.peer == Some(ThreadId(0))));
        }
        assert!(plans.end[0][0].wb.is_empty());
    }

    #[test]
    fn unreachable_pairs_are_ignored() {
        // Node 1 writes what node 0 reads, but there is no loop back.
        let x = ArrayId(0);
        let prog = Program {
            arrays: vec![region(16)],
            nodes: vec![
                Node::ParFor {
                    iters: 16,
                    reads: vec![Access::new(x, Pattern::ident())],
                    writes: vec![],
                },
                Node::ParFor {
                    iters: 16,
                    reads: vec![],
                    writes: vec![Access::new(x, Pattern::ident())],
                },
            ],
            repeat: false,
        };
        let plans = Analyzer::new(&prog, 2).analyze();
        let (wk, wu, ik, iu) = plans.counts();
        assert_eq!(
            (wk, wu, ik, iu),
            (0, 0, 0, 0),
            "no reachable producer-consumer pair"
        );
    }

    #[test]
    fn aligned_chunks_produce_no_communication() {
        // Writer and reader use the same identity pattern and the same
        // chunking: every thread consumes its own data.
        let x = ArrayId(0);
        let prog = Program {
            arrays: vec![region(64)],
            nodes: vec![
                Node::ParFor {
                    iters: 64,
                    reads: vec![],
                    writes: vec![Access::new(x, Pattern::ident())],
                },
                Node::ParFor {
                    iters: 64,
                    reads: vec![Access::new(x, Pattern::ident())],
                    writes: vec![],
                },
            ],
            repeat: false,
        };
        let plans = Analyzer::new(&prog, 4).analyze();
        let (wk, wu, ik, iu) = plans.counts();
        assert_eq!((wk, wu, ik, iu), (0, 0, 0, 0), "perfectly aligned: no comm");
    }
}
