//! Static chunked scheduling of parallel loops.
//!
//! The paper assumes "static scheduling of OpenMP loops with chunk
//! distribution. Thus, each thread gets a set of contiguous iterations"
//! (§V-A2). Knowing the mapping of iteration to thread is what lets the
//! compiler name producer and consumer threads.

use serde::{Deserialize, Serialize};

/// Chunked distribution of `iters` iterations over `threads` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunks {
    pub iters: u64,
    pub threads: usize,
}

impl Chunks {
    pub fn new(iters: u64, threads: usize) -> Chunks {
        assert!(threads > 0);
        Chunks { iters, threads }
    }

    /// Chunk size (ceiling division; the last thread may get fewer).
    pub fn chunk(&self) -> u64 {
        self.iters.div_ceil(self.threads as u64).max(1)
    }

    /// Iteration range `[lo, hi)` of thread `t`.
    pub fn range(&self, t: usize) -> (u64, u64) {
        let c = self.chunk();
        let lo = (t as u64 * c).min(self.iters);
        let hi = ((t as u64 + 1) * c).min(self.iters);
        (lo, hi)
    }

    /// The thread executing iteration `i`.
    pub fn owner(&self, i: u64) -> usize {
        assert!(i < self.iters, "iteration {i} out of {}", self.iters);
        (i / self.chunk()) as usize
    }

    /// Threads whose chunks intersect the iteration interval `[lo, hi)`.
    pub fn owners_of_range(&self, lo: u64, hi: u64) -> std::ops::RangeInclusive<usize> {
        if lo >= hi || lo >= self.iters {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0; // empty
        }
        let hi = hi.min(self.iters);
        self.owner(lo)..=self.owner(hi - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution() {
        let c = Chunks::new(32, 4);
        assert_eq!(c.chunk(), 8);
        assert_eq!(c.range(0), (0, 8));
        assert_eq!(c.range(3), (24, 32));
        assert_eq!(c.owner(0), 0);
        assert_eq!(c.owner(8), 1);
        assert_eq!(c.owner(31), 3);
    }

    #[test]
    fn ragged_distribution() {
        let c = Chunks::new(10, 4);
        assert_eq!(c.chunk(), 3);
        assert_eq!(c.range(0), (0, 3));
        assert_eq!(c.range(3), (9, 10));
        // Every iteration has exactly one owner, owners are monotone.
        let mut prev = 0;
        for i in 0..10 {
            let o = c.owner(i);
            assert!(o >= prev);
            prev = o;
            let (lo, hi) = c.range(o);
            assert!(i >= lo && i < hi);
        }
    }

    #[test]
    fn more_threads_than_iters() {
        let c = Chunks::new(3, 8);
        assert_eq!(c.chunk(), 1);
        assert_eq!(c.range(0), (0, 1));
        assert_eq!(c.range(2), (2, 3));
        assert_eq!(c.range(3), (3, 3)); // empty
        assert_eq!(c.range(7), (3, 3));
    }

    #[test]
    fn owners_of_range_clips() {
        let c = Chunks::new(32, 4);
        assert_eq!(c.owners_of_range(6, 10), 0..=1);
        assert_eq!(c.owners_of_range(0, 32), 0..=3);
        assert!(c.owners_of_range(5, 5).is_empty());
        assert_eq!(c.owners_of_range(30, 100), 3..=3);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn owner_out_of_range_panics() {
        Chunks::new(4, 2).owner(4);
    }
}
