//! The inspector for irregular (indirect) accesses (paper §V-A2).
//!
//! Iterative sparse codes (e.g. conjugate gradient) read arrays through
//! indirection (`p[col[j]]`), which static analysis cannot resolve. Since
//! the access pattern repeats across solver iterations, an inspector runs
//! once, determines for every element a consumer thread reads *which
//! thread produces it* (the `conflict` array of Figure 8), and the
//! executor then issues `INV_PROD` only for elements produced remotely.
//! The inspector's cost is amortized over the iterations that reuse its
//! result.

use hic_runtime::{CommOp, EpochPlan};
use hic_sim::ThreadId;

use crate::schedule::Chunks;

/// Compute the per-consumer-thread invalidation plan for an indirect read.
///
/// * `reads_by_thread[t]` — the element indices thread `t` reads (from the
///   indirection arrays; may contain duplicates, unsorted);
/// * `producer_chunks` — the static schedule of the loop that writes the
///   array (element `e` is produced by `producer_chunks.owner(e)`, the
///   identity `A[i]` write pattern of Figure 8's update loop);
/// * `base` — the array's allocated region.
///
/// Returns one [`EpochPlan`] per consumer thread whose `inv` lists
/// maximal contiguous runs of remotely-produced elements, tagged with the
/// producing thread.
pub fn inspect_indirect(
    reads_by_thread: &[Vec<u64>],
    producer_chunks: Chunks,
    base: hic_mem::Region,
) -> Vec<EpochPlan> {
    let mut plans = Vec::with_capacity(reads_by_thread.len());
    for (tc, reads) in reads_by_thread.iter().enumerate() {
        let mut plan = EpochPlan::new();
        // Deduplicate and sort so remote elements coalesce into runs.
        let mut elems: Vec<u64> = reads.clone();
        elems.sort_unstable();
        elems.dedup();
        let mut run: Option<(u64, u64, usize)> = None; // [lo, hi), producer
        for &e in &elems {
            assert!(
                e < base.words,
                "indirect index {e} out of array of {}",
                base.words
            );
            let tp = producer_chunks.owner(e);
            if tp == tc {
                // Produced locally (the `conflict[i] == tid` fast path of
                // Figure 8): no INV needed. Close any open run.
                if let Some((lo, hi, p)) = run.take() {
                    plan.inv
                        .push(CommOp::known(base.slice(lo, hi), ThreadId(p)));
                }
                continue;
            }
            match run {
                Some((lo, hi, p)) if p == tp && e == hi => run = Some((lo, e + 1, p)),
                Some((lo, hi, p)) => {
                    plan.inv
                        .push(CommOp::known(base.slice(lo, hi), ThreadId(p)));
                    run = Some((e, e + 1, tp));
                }
                None => run = Some((e, e + 1, tp)),
            }
        }
        if let Some((lo, hi, p)) = run {
            plan.inv
                .push(CommOp::known(base.slice(lo, hi), ThreadId(p)));
        }
        plans.push(plan.coalesced());
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::{Region, WordAddr};

    fn base(words: u64) -> Region {
        Region::new(WordAddr(2048), words)
    }

    #[test]
    fn local_reads_need_no_invalidation() {
        // 2 threads over 32 elements: thread 0 owns [0,16).
        let plans = inspect_indirect(
            &[vec![0, 5, 15], vec![16, 31]],
            Chunks::new(32, 2),
            base(32),
        );
        assert!(plans[0].inv.is_empty());
        assert!(plans[1].inv.is_empty());
    }

    #[test]
    fn remote_reads_coalesce_into_runs() {
        // Thread 0 reads 16,17,18 (owned by thread 1) and 20 (thread 1).
        let plans = inspect_indirect(
            &[vec![18, 16, 17, 20, 3], vec![]],
            Chunks::new(32, 2),
            base(32),
        );
        let inv = &plans[0].inv;
        assert_eq!(inv.len(), 2, "{inv:?}");
        assert_eq!(inv[0].region.words, 3); // 16..19
        assert_eq!(inv[1].region.words, 1); // 20
        assert!(inv.iter().all(|o| o.peer == Some(ThreadId(1))));
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let plans = inspect_indirect(&[vec![16, 16, 16]], Chunks::new(32, 2), base(32));
        assert_eq!(plans[0].inv.len(), 1);
        assert_eq!(plans[0].inv[0].region.words, 1);
    }

    #[test]
    fn runs_split_at_producer_boundaries() {
        // 4 threads over 32 elements: chunks of 8. Thread 0 reads 7..10:
        // 7 is its own, 8..10 belong to thread 1.
        let plans = inspect_indirect(&[vec![7, 8, 9]], Chunks::new(32, 4), base(32));
        let inv = &plans[0].inv;
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].peer, Some(ThreadId(1)));
        assert_eq!(inv[0].region.words, 2);
        // Straddling two remote owners splits the run.
        let plans = inspect_indirect(&[vec![14, 15, 16, 17]], Chunks::new(32, 4), base(32));
        let inv = &plans[0].inv;
        assert_eq!(inv.len(), 2, "{inv:?}");
        assert_eq!(inv[0].peer, Some(ThreadId(1)));
        assert_eq!(inv[1].peer, Some(ThreadId(2)));
    }

    #[test]
    #[should_panic(expected = "out of array")]
    fn out_of_bounds_index_is_rejected() {
        inspect_indirect(&[vec![99]], Chunks::new(32, 2), base(32));
    }
}
