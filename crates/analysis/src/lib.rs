//! The mini-compiler for programming model 2 (paper §V-A).
//!
//! The paper instruments OpenMP programs with level-adaptive WB_CONS /
//! INV_PROD using a ROSE-based tool: interprocedural control-flow analysis
//! finds parallel loops that can reach each other, DEF-USE analysis over
//! statically-scheduled loop chunks finds producer-consumer thread pairs,
//! and an inspector handles irregular (indirect) accesses.
//!
//! Here the same algorithm runs over an explicit affine loop-nest IR
//! ([`program::Program`]): each parallel loop declares the arrays it reads
//! and writes with per-iteration access patterns; the analyzer
//! ([`defuse::Analyzer`]) emits, per loop boundary and per thread, the
//! `EpochPlan` (WB_CONS / INV_PROD placements) that the runtime executes.
//! The inspector ([`inspector`]) computes plans for indirect accesses at
//! run time, amortized across iterations exactly as in §V-A2.

pub mod defuse;
pub mod inspector;
pub mod program;
pub mod schedule;

pub use defuse::{Analyzer, NodePlans};
pub use inspector::inspect_indirect;
pub use program::{Access, ArrayId, Node, Pattern, Program};
pub use schedule::Chunks;
