//! `hic-fuzz` — a coverage-guided differential fuzzing campaign that
//! audits the static linter's soundness.
//!
//! The repository carries three views of the same program: the runnable
//! closure the simulator executes, the declarative [`ProgramRecord`]
//! `hic-lint` abstractly interprets, and the dynamic sanitizer's
//! happens-before trace (`hic-check`). This crate stress-tests the
//! claimed relationship between them — *every dynamic staleness finding
//! is explained by a static finding* — on randomly generated programs
//! instead of hand-written ones:
//!
//! * [`desc`] defines the case grammar ([`CaseDesc`]) and its canonical
//!   one-line key; generation is seeded, biased by campaign coverage.
//! * [`build`] materializes a description into BOTH artifacts from one
//!   shared definition (the plans come from a single `plans_for`), so
//!   record and run cannot drift.
//! * [`run`] executes the five-way differential (subject scheme with
//!   and without a recoverable fault plan, MESI, Dragon, flat
//!   reference), audits lint coverage of every sanitizer finding, and
//!   re-runs `optimize`'s minimized plans strict-clean.
//! * [`campaign`] drives seeded deterministic batches, steers
//!   generation toward rarely-exercised features, delta-debugs
//!   interesting cases and persists them to `corpus/` as replayable
//!   one-liners.
//!
//! The CLI (`hic-fuzz`) prints a byte-stable summary on stdout; see
//! DESIGN.md §16.
//!
//! [`ProgramRecord`]: hic_runtime::ProgramRecord

pub mod build;
pub mod campaign;
pub mod desc;
pub mod run;

pub use build::{plans_for, record_of, run_dynamic, Backend, DynOutcome};
pub use campaign::{
    case_seed, corpus_line, load_corpus, minimize, parse_corpus_line, run_campaign, write_corpus,
    CampaignOpts, CampaignSummary,
};
pub use desc::{
    scheme_tag, CaseDesc, EdgeDesc, GenBias, MutKind, MutationDesc, RoundDesc, SyncShape,
};
pub use run::{run_case, CaseOutcome, Verdict, Violation};

/// Replay one corpus line: parse, classify, and return the outcome with
/// the expectation recorded in the line. The caller asserts
/// `outcome.verdict.expect_tag() == expected`.
pub fn replay_line(line: &str) -> Result<(CaseOutcome, String), String> {
    let (desc, expected) = parse_corpus_line(line)?;
    Ok((run_case(&desc), expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_runtime::InterConfig;
    use hic_sim::SplitMix64;

    fn base_clean_desc() -> CaseDesc {
        CaseDesc {
            scheme: InterConfig::Addr,
            blocks: 2,
            cores_per_block: 2,
            threads: 3,
            slice: 8,
            rounds: vec![
                RoundDesc {
                    sync: SyncShape::Barrier,
                    edges: vec![
                        EdgeDesc {
                            p: 0,
                            c: 1,
                            lo: 0,
                            hi: 4,
                        },
                        EdgeDesc {
                            p: 2,
                            c: 0,
                            lo: 2,
                            hi: 8,
                        },
                    ],
                },
                RoundDesc {
                    sync: SyncShape::Flags,
                    edges: vec![EdgeDesc {
                        p: 1,
                        c: 2,
                        lo: 0,
                        hi: 8,
                    }],
                },
            ],
            racy: false,
            fault_seed: 7,
            corrupt: false,
            mutation: None,
        }
    }

    #[test]
    fn key_round_trips() {
        let mut rng = SplitMix64::new(0xf0a2_2026);
        let bias = GenBias::default();
        for _ in 0..200 {
            let d = CaseDesc::generate(&mut rng, &bias);
            let parsed = CaseDesc::parse_key(&d.key()).expect("key parses");
            assert_eq!(parsed, d, "round-trip of {}", d.key());
        }
    }

    #[test]
    fn clean_case_is_clean() {
        let out = run_case(&base_clean_desc());
        assert_eq!(out.verdict.expect_tag(), "clean", "{}", out.detail);
    }

    #[test]
    fn deleting_any_plan_op_is_caught() {
        // The acceptance criterion: on Addr/AddrL (range-scoped ops with
        // pairwise-distinct producers per round), deleting ANY single
        // WB or INV op must surface as covered sanitizer findings.
        let base = base_clean_desc();
        for (r, round) in base.rounds.iter().enumerate() {
            for e in 0..round.edges.len() {
                for wb in [true, false] {
                    let mut d = base.clone();
                    d.mutation = Some(MutationDesc {
                        kind: MutKind::Delete,
                        wb,
                        round: r,
                        edge: e,
                        amount: 0,
                    });
                    let out = run_case(&d);
                    match &out.verdict {
                        Verdict::Findings(_) => {}
                        v => panic!(
                            "delete {}:{}:{} not caught: {} ({})",
                            r,
                            e,
                            if wb { "wb" } else { "inv" },
                            v.expect_tag(),
                            out.detail
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_and_widen_stay_clean() {
        for (kind, amount) in [(MutKind::Duplicate, 1), (MutKind::Widen, 5)] {
            let mut d = base_clean_desc();
            d.mutation = Some(MutationDesc {
                kind,
                wb: true,
                round: 0,
                edge: 0,
                amount,
            });
            let out = run_case(&d);
            assert_eq!(
                out.verdict.expect_tag(),
                "clean",
                "{kind:?}: {}",
                out.detail
            );
        }
    }

    #[test]
    fn racy_case_is_precision_not_violation() {
        let mut d = base_clean_desc();
        d.racy = true;
        let out = run_case(&d);
        assert_eq!(
            out.verdict.expect_tag(),
            "precision:write-race",
            "{}",
            out.detail
        );
    }

    #[test]
    fn recovery_audit_survives_on_a_clean_case() {
        let mut d = base_clean_desc();
        d.corrupt = true;
        let out = run_case(&d);
        assert_eq!(out.verdict.expect_tag(), "clean", "{}", out.detail);
        assert!(d.key().ends_with(";corrupt=1"), "{}", d.key());
    }

    #[test]
    fn keys_without_the_corrupt_field_still_parse() {
        // Corpus lines written before the recovery audit existed carry
        // no corrupt field; they must parse (default false) and
        // re-render to the same key.
        let legacy = base_clean_desc();
        assert!(!legacy.key().contains("corrupt"), "{}", legacy.key());
        let parsed = CaseDesc::parse_key(&legacy.key()).unwrap();
        assert!(!parsed.corrupt);
        assert_eq!(parsed.key(), legacy.key());
    }

    #[test]
    fn campaign_is_deterministic() {
        let opts = CampaignOpts {
            seed: 7,
            cases: 8,
            ..CampaignOpts::default()
        };
        let a = run_campaign(&opts).render();
        let b = run_campaign(&opts).render();
        assert_eq!(a, b);
        assert!(a.contains("run=8"), "{a}");
    }

    #[test]
    fn minimize_preserves_expectation() {
        let mut d = base_clean_desc();
        d.racy = true;
        d.fault_seed = 123_456;
        let expect = run_case(&d).verdict.expect_tag();
        let min = minimize(&d, &expect, 24);
        assert_eq!(run_case(&min).verdict.expect_tag(), expect);
        assert!(
            min.key().len() <= d.key().len(),
            "{} vs {}",
            min.key(),
            d.key()
        );
    }

    #[test]
    fn corpus_line_round_trips() {
        let d = base_clean_desc();
        let line = corpus_line(&d, "clean");
        let (parsed, expect) = parse_corpus_line(&line).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(expect, "clean");
    }
}
