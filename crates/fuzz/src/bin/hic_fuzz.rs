//! `hic-fuzz` — run or replay the differential fuzzing campaign.
//!
//! ```text
//! hic-fuzz [--seed S] [--cases N] [--from N] [--budget-s S]
//!          [--corpus DIR | --no-corpus]
//! hic-fuzz replay FILE...     # replay corpus files, assert verdicts
//! ```
//!
//! The campaign summary goes to stdout and is byte-identical across
//! repeated runs of the same `(seed, from, cases)`; timing and corpus
//! notes go to stderr. Exit status: 0 when the audit held, 1 on any
//! violation (or replay mismatch), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hic_fuzz::{replay_line, run_campaign, CampaignOpts};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hic-fuzz [--seed S] [--cases N] [--from N] [--budget-s S] \
         [--corpus DIR | --no-corpus]\n       hic-fuzz replay FILE..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        return replay(&args[1..]);
    }

    let mut opts = CampaignOpts {
        seed: 2026,
        cases: 200,
        corpus_dir: Some(PathBuf::from("corpus")),
        ..CampaignOpts::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = match arg.as_str() {
            "--seed" => val("--seed").and_then(parse_u64).map(|v| opts.seed = v),
            "--cases" => val("--cases")
                .and_then(parse_u64)
                .map(|v| opts.cases = v as usize),
            "--from" => val("--from")
                .and_then(parse_u64)
                .map(|v| opts.from = v as usize),
            "--budget-s" => val("--budget-s")
                .and_then(parse_u64)
                .map(|v| opts.budget_s = Some(v)),
            "--corpus" => val("--corpus").map(|v| opts.corpus_dir = Some(PathBuf::from(v))),
            "--no-corpus" => {
                opts.corpus_dir = None;
                Ok(())
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("hic-fuzz: {e}");
            return usage();
        }
    }

    let start = Instant::now();
    let summary = run_campaign(&opts);
    print!("{}", summary.render());
    eprintln!(
        "hic-fuzz: {} cases in {:.1}s",
        summary.run,
        start.elapsed().as_secs_f64()
    );
    for p in &summary.corpus_new {
        eprintln!("hic-fuzz: new corpus case {}", p.display());
    }
    if summary.has_violations() {
        eprintln!(
            "hic-fuzz: AUDIT FAILED ({} violations)",
            summary.violations.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn parse_u64(s: String) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
}

fn replay(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut failed = 0usize;
    for f in files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hic-fuzz: {f}: {e}");
                failed += 1;
                continue;
            }
        };
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match replay_line(line) {
                Ok((outcome, expected)) => {
                    let got = outcome.verdict.expect_tag();
                    if got == expected {
                        println!("{f}: ok ({got})");
                    } else {
                        println!(
                            "{f}: MISMATCH expected {expected} got {got} {}",
                            outcome.detail
                        );
                        failed += 1;
                    }
                }
                Err(e) => {
                    eprintln!("hic-fuzz: {f}: {e}");
                    failed += 1;
                }
            }
        }
    }
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
