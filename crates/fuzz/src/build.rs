//! Materialize a [`CaseDesc`] into the two artifacts under audit: the
//! declarative [`ProgramRecord`] `hic-lint` verifies and the runnable
//! program the backends execute. Both are driven by the same description
//! and share [`plans_for`] for every `plan_wb` / `plan_inv` call site,
//! so the record cannot drift from the run — the precondition for using
//! lint-vs-sanitizer disagreement as a soundness signal.
//!
//! Program shape (per thread `t`, `n` threads, `R` rounds, slice `W`):
//!
//! 1. warm-up: read every other thread's `data` slice (captures copies
//!    a missing INV would leave stale), then a global plan-barrier;
//! 2. optional racy block: threads 0 and 1 `racy_store` one word of the
//!    `racy` region, the last thread `racy_load`s it (value discarded);
//! 3. per round: write own slice → `plan_wb` (per-edge WB ops) → the
//!    round's sync shape (global barrier / raw per-edge flags / k-of-n
//!    sub-barrier) → `plan_inv` (per-edge INV ops) → read each consumed
//!    sub-range, write the sum into `out[t*R + r]` → closing global
//!    plan-barrier (orders next round's overwrites after this round's
//!    reads);
//! 4. a final fully-annotated barrier (`WB ALL` / `INV ALL`) so every
//!    backend's final state is host-peekable: `peek` deliberately
//!    ignores L1-dirty data, and the closing `WB ALL` drains it.
//!
//! A stale read therefore persists into the `out` region (the sums),
//! which is what the cross-backend memory comparison checks; the racy
//! word is intentionally schedule-dependent and lives in its own
//! excluded region.

use hic_mem::Region;
use hic_runtime::{
    CheckMode, CommOp, Config, Diagnostics, EpochPlan, FaultPlan, PlanOverrides, ProgramBuilder,
    ProgramRecord, RunError,
};
use hic_sim::{ThreadId, TopologyBuilder};

use crate::desc::{CaseDesc, MutKind, SyncShape};

/// Which backend executes the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The incoherent scheme under audit (`desc.scheme`).
    Subject,
    /// Hierarchical directory MESI (`InterConfig::Hcc`).
    Mesi,
    /// Update-based Dragon.
    Dragon,
    /// The flat always-fresh reference oracle.
    Reference,
}

/// One dynamic execution of a case.
#[derive(Debug, Clone)]
pub struct DynOutcome {
    /// Typed run failure, if any (watchdog hang, deadlock, ...).
    pub error: Option<String>,
    pub diag: Diagnostics,
    /// Final readable `data` region (empty when the run failed).
    pub data: Vec<u32>,
    /// Final readable `out` region (the per-round consumer sums).
    pub out: Vec<u32>,
    /// Epoch-checkpoint rollbacks charged during the run (nonzero only
    /// under a corrupting-but-recoverable fault plan).
    pub rollbacks: u64,
}

/// Cycle budget generous enough for every generated shape; a run that
/// exceeds it is a hang, reported as a typed error, never a stuck fuzzer.
const WATCHDOG_CYCLES: u64 = 50_000_000;
const WATCHDOG_WALL_MS: u64 = 30_000;

/// Deterministic per-word value written by thread `t` in round `r`.
fn val(r: usize, t: usize, i: u64) -> u32 {
    (r as u32 + 1) * 1_000_000 + t as u32 * 1_000 + i as u32
}

/// The WB and INV plans thread `t` passes in round `r` — including the
/// case's mutation. The single shared definition both the runnable
/// program and the record call.
pub fn plans_for(desc: &CaseDesc, data: Region, t: usize, r: usize) -> (EpochPlan, EpochPlan) {
    let slice_range = |p: usize, lo: u64, hi: u64| {
        data.slice(p as u64 * desc.slice + lo, p as u64 * desc.slice + hi)
    };
    let mut wb = EpochPlan::new();
    let mut inv = EpochPlan::new();
    // (side, plan-local index) of the mutation's target op, when thread
    // `t` owns it in this round.
    let mut target: Option<(bool, usize)> = None;
    let (mut wb_idx, mut inv_idx) = (0usize, 0usize);
    for (ei, e) in desc.rounds[r].edges.iter().enumerate() {
        let mutated = desc
            .mutation
            .as_ref()
            .is_some_and(|m| m.round == r && m.edge == ei);
        if e.p == t {
            wb = wb.with_wb(CommOp::known(slice_range(e.p, e.lo, e.hi), ThreadId(e.c)));
            if mutated && desc.mutation.as_ref().unwrap().wb {
                target = Some((true, wb_idx));
            }
            wb_idx += 1;
        }
        if e.c == t {
            inv = inv.with_inv(CommOp::known(slice_range(e.p, e.lo, e.hi), ThreadId(e.p)));
            if mutated && !desc.mutation.as_ref().unwrap().wb {
                target = Some((false, inv_idx));
            }
            inv_idx += 1;
        }
    }
    if let (Some((side, idx)), Some(m)) = (target, &desc.mutation) {
        let plan = if side { &mut wb } else { &mut inv };
        match m.kind {
            MutKind::Delete => {
                plan.delete_op(side, idx);
            }
            MutKind::Duplicate => {
                plan.duplicate_op(side, idx);
            }
            MutKind::Widen => {
                plan.widen_op(side, idx, 0, m.amount);
            }
            MutKind::Narrow => {
                plan.narrow_op(side, idx, 0, m.amount);
            }
        }
    }
    (wb, inv)
}

/// Threads participating in round `r` (producers and consumers).
fn participants(desc: &CaseDesc, r: usize) -> Vec<usize> {
    let mut ps: Vec<usize> = Vec::new();
    for e in &desc.rounds[r].edges {
        for t in [e.p, e.c] {
            if !ps.contains(&t) {
                ps.push(t);
            }
        }
    }
    ps.sort_unstable();
    ps
}

/// The scheme config on the case's topology (for `backend`).
fn config_for(desc: &CaseDesc, backend: Backend) -> Result<Config, String> {
    let topo = TopologyBuilder::new(desc.blocks, desc.cores_per_block)
        .validate()
        .map_err(|e| format!("topology: {e:?}"))?;
    let scheme = match backend {
        Backend::Subject | Backend::Reference => desc.scheme,
        Backend::Mesi => hic_runtime::InterConfig::Hcc,
        Backend::Dragon => hic_runtime::InterConfig::Dragon,
    };
    Config::Inter(scheme)
        .with_topology(topo)
        .map_err(|e| format!("config: {e:?}"))
}

/// Sizes of the two compared regions.
fn geometry(desc: &CaseDesc) -> (u64, u64) {
    let n = desc.threads as u64;
    (n * desc.slice, n * desc.rounds.len() as u64)
}

/// Build the declarative record of a case (what `hic-lint` verifies).
pub fn record_of(desc: &CaseDesc) -> Result<ProgramRecord, String> {
    let config = config_for(desc, Backend::Subject)?;
    let (data_words, out_words) = geometry(desc);
    let n = desc.threads;
    let mut p = ProgramBuilder::new(config);
    let data = p.alloc_named("data", data_words);
    let out = p.alloc_named("out", out_words);
    let racy = desc.racy.then(|| p.alloc_named("racy", 4));
    let bar = p.barrier_of(n);
    let sub_bars: Vec<_> = (0..desc.rounds.len())
        .map(|r| {
            (desc.rounds[r].sync == SyncShape::SubBarrier)
                .then(|| p.barrier_of(participants(desc, r).len()))
        })
        .collect();
    let flags: Vec<Vec<_>> = (0..desc.rounds.len())
        .map(|r| {
            if desc.rounds[r].sync == SyncShape::Flags {
                desc.rounds[r].edges.iter().map(|_| p.flag()).collect()
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut rec = p.record(n);
    rec.host_reads(data);
    rec.host_reads(out);
    let slice_of = |o: usize| data.slice(o as u64 * desc.slice, (o as u64 + 1) * desc.slice);
    for t in 0..n {
        let mut th = rec.thread(t);
        for o in 0..n {
            if o != t {
                th.reads(slice_of(o));
            }
        }
        th.plan_barrier(bar);
        if let Some(racy) = racy {
            // Reads before writes (DEF-USE convention) — relevant when
            // n == 2 and thread 1 is both racy writer and racy reader.
            if t == n - 1 {
                th.reads(racy.slice(0, 1));
            }
            if t == 0 || t == 1 {
                th.writes(racy.slice(0, 1));
            }
        }
        for (r, round) in desc.rounds.iter().enumerate() {
            th.writes(slice_of(t));
            let (wb, inv) = plans_for(desc, data, t, r);
            th.plan_wb(&wb);
            match round.sync {
                SyncShape::Barrier => {
                    th.plan_barrier(bar);
                }
                SyncShape::SubBarrier => {
                    if participants(desc, r).contains(&t) {
                        th.plan_barrier(sub_bars[r].unwrap());
                    }
                }
                SyncShape::Flags => {
                    for (ei, e) in round.edges.iter().enumerate() {
                        if e.p == t {
                            th.flag_set(flags[r][ei], true);
                        }
                    }
                    for (ei, e) in round.edges.iter().enumerate() {
                        if e.c == t {
                            th.flag_wait(flags[r][ei], true);
                        }
                    }
                }
            }
            th.plan_inv(&inv);
            let mut consumed = false;
            for e in &round.edges {
                if e.c == t {
                    th.reads(data.slice(
                        e.p as u64 * desc.slice + e.lo,
                        e.p as u64 * desc.slice + e.hi,
                    ));
                    consumed = true;
                }
            }
            if consumed {
                let o = t as u64 * desc.rounds.len() as u64 + r as u64;
                th.writes(out.slice(o, o + 1));
            }
            th.plan_barrier(bar);
        }
        th.barrier(bar);
    }
    Ok(rec)
}

/// Execute a case on one backend.
pub fn run_dynamic(
    desc: &CaseDesc,
    backend: Backend,
    check: CheckMode,
    fault: Option<FaultPlan>,
    overrides: Option<PlanOverrides>,
) -> Result<DynOutcome, String> {
    let config = config_for(desc, backend)?;
    let (data_words, out_words) = geometry(desc);
    let n = desc.threads;
    let mut p = if backend == Backend::Reference {
        ProgramBuilder::with_reference_backend(config)
    } else {
        ProgramBuilder::new(config)
    };
    p.check_mode(check);
    p.watchdog_cycles(WATCHDOG_CYCLES);
    p.watchdog_wall_ms(WATCHDOG_WALL_MS);
    if let Some(f) = fault {
        p.fault_plan(f);
    }
    if let Some(o) = overrides {
        p.override_plans(o);
    }
    let data = p.alloc_named("data", data_words);
    let out_r = p.alloc_named("out", out_words);
    let racy = desc.racy.then(|| p.alloc_named("racy", 4));
    let bar = p.barrier_of(n);
    let sub_bars: Vec<_> = (0..desc.rounds.len())
        .map(|r| {
            (desc.rounds[r].sync == SyncShape::SubBarrier)
                .then(|| p.barrier_of(participants(desc, r).len()))
        })
        .collect();
    let flags: Vec<Vec<_>> = (0..desc.rounds.len())
        .map(|r| {
            if desc.rounds[r].sync == SyncShape::Flags {
                desc.rounds[r].edges.iter().map(|_| p.flag()).collect()
            } else {
                Vec::new()
            }
        })
        .collect();

    let d = desc.clone();
    let outcome = p.run(n, move |ctx| {
        let t = ctx.tid();
        let n = d.threads;
        for o in 0..n {
            if o != t {
                for i in 0..d.slice {
                    ctx.read(data, o as u64 * d.slice + i);
                }
            }
        }
        ctx.plan_barrier(bar);
        if let Some(racy) = racy {
            if t == 0 {
                ctx.racy_store(racy.at(0), 1_111);
            }
            if t == 1 {
                ctx.racy_store(racy.at(0), 2_222);
            }
            if t == n - 1 {
                let _ = ctx.racy_load(racy.at(0));
            }
        }
        for (r, round) in d.rounds.iter().enumerate() {
            for i in 0..d.slice {
                ctx.write(data, t as u64 * d.slice + i, val(r, t, i));
            }
            let (wb, inv) = plans_for(&d, data, t, r);
            ctx.plan_wb(&wb);
            match round.sync {
                SyncShape::Barrier => ctx.plan_barrier(bar),
                SyncShape::SubBarrier => {
                    if participants(&d, r).contains(&t) {
                        ctx.plan_barrier(sub_bars[r].unwrap());
                    }
                }
                SyncShape::Flags => {
                    for (ei, e) in round.edges.iter().enumerate() {
                        if e.p == t {
                            ctx.flag_set_opts(flags[r][ei], hic_runtime::FlagOpts::raw());
                        }
                    }
                    for (ei, e) in round.edges.iter().enumerate() {
                        if e.c == t {
                            ctx.flag_wait_opts(flags[r][ei], hic_runtime::FlagOpts::raw());
                        }
                    }
                }
            }
            ctx.plan_inv(&inv);
            let mut sum = 0u32;
            let mut consumed = false;
            for e in &round.edges {
                if e.c == t {
                    for i in e.lo..e.hi {
                        sum = sum.wrapping_add(ctx.read(data, e.p as u64 * d.slice + i));
                    }
                    consumed = true;
                }
            }
            if consumed {
                ctx.write(out_r, t as u64 * d.rounds.len() as u64 + r as u64, sum);
            }
            ctx.plan_barrier(bar);
        }
        ctx.barrier(bar);
    });

    let error = outcome.result().err().map(render_err);
    let (data_mem, out_mem) = if error.is_none() {
        (outcome.peek_all(data), outcome.peek_all(out_r))
    } else {
        (Vec::new(), Vec::new())
    };
    Ok(DynOutcome {
        error,
        diag: outcome.diagnostics().clone(),
        data: data_mem,
        out: out_mem,
        rollbacks: outcome.stats().resilience.rollbacks,
    })
}

fn render_err(e: &RunError) -> String {
    format!("{e:?}")
}
