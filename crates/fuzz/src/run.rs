//! Differential execution and verdict classification for one case.
//!
//! A case is judged by running its program five ways — the incoherent
//! subject scheme under a seeded recoverable fault plan and again
//! fault-free (both under report-mode checking), plus the MESI, Dragon
//! and flat-reference coherent oracles — and statically verifying its
//! record with `hic-lint`. Cases with `corrupt` set add a sixth run
//! under a corrupting-but-recoverable plan
//! ([`FaultPlan::corrupting_recoverable`]) that must be survived by
//! rollback recovery ([`Violation::RecoveryBroke`] otherwise). The
//! verdict encodes the audit:
//!
//! * **soundness** — every dynamic sanitizer finding must be explained
//!   by a static finding ([`LintReport::covers`]); an uncovered dynamic
//!   finding means the linter's abstract model missed a real staleness
//!   path and is a [`Violation::Uncovered`];
//! * **divergence** — when the sanitizer is clean, the readable `data` +
//!   `out` memory must be bit-identical across all five runs (the racy
//!   region is excluded by construction); a mismatch with no finding is
//!   a [`Violation::SilentDivergence`] (either a backend bug or a
//!   sanitizer blind spot);
//! * **optimizer** — on statically-clean cases, `optimize`'s minimized
//!   plans must re-verify clean and re-run strict-clean with
//!   bit-identical memory, else [`Violation::OptimizerBroke`];
//! * otherwise the case lands in [`Verdict::Findings`] (expected,
//!   covered findings), [`Verdict::Precision`] (static findings on a
//!   dynamically-clean program — overapproximation, not unsoundness), or
//!   [`Verdict::Clean`].

use hic_check::FindingKind;
use hic_lint::{lint, optimize, LintReport};
use hic_runtime::{CheckMode, FaultPlan};

use crate::build::{record_of, run_dynamic, Backend, DynOutcome};
use crate::desc::CaseDesc;

/// A campaign-stopping audit failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A dynamic finding no static finding explains (lint unsoundness).
    Uncovered,
    /// Backends disagree on readable memory with a clean sanitizer.
    SilentDivergence,
    /// Minimized plans failed re-verification or changed the result.
    OptimizerBroke,
    /// The rollback-recovery audit failed: the subject under a
    /// corrupting-but-recoverable plan either surfaced a typed error
    /// (recovery did not survive the corruption) or, on a
    /// sanitizer-clean case, produced memory that differs from the
    /// fault-free run (recovery changed the answer).
    RecoveryBroke,
    /// The case could not be executed/interleaved at all (generator,
    /// watchdog, or scheduler defect).
    Structural,
}

impl Violation {
    pub fn tag(self) -> &'static str {
        match self {
            Violation::Uncovered => "uncovered",
            Violation::SilentDivergence => "divergence",
            Violation::OptimizerBroke => "optimizer",
            Violation::RecoveryBroke => "recovery",
            Violation::Structural => "structural",
        }
    }
}

/// Classification of one executed case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Lint clean, sanitizer clean, all backends bit-identical.
    Clean,
    /// Sanitizer findings of these kinds, every one statically covered.
    Findings(Vec<FindingKind>),
    /// Static findings of these kinds on a dynamically-clean program.
    Precision(Vec<FindingKind>),
    Violation(Violation),
}

impl Verdict {
    /// The stable expectation tag persisted in corpus lines and asserted
    /// on replay: `clean`, `findings:missing-wb[,...]`,
    /// `precision:write-race[,...]`, `violation:<kind>`.
    pub fn expect_tag(&self) -> String {
        fn kinds(ks: &[FindingKind]) -> String {
            let mut tags: Vec<&str> = ks.iter().map(|k| k.tag()).collect();
            tags.sort_unstable();
            tags.dedup();
            tags.join(",")
        }
        match self {
            Verdict::Clean => "clean".to_string(),
            Verdict::Findings(ks) => format!("findings:{}", kinds(ks)),
            Verdict::Precision(ks) => format!("precision:{}", kinds(ks)),
            Verdict::Violation(v) => format!("violation:{}", v.tag()),
        }
    }

    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation(_))
    }
}

/// Everything the campaign needs from one executed case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    pub desc: CaseDesc,
    pub verdict: Verdict,
    /// The static report (drives coverage steering).
    pub lint: LintReport,
    /// Dynamic finding kinds across both subject runs.
    pub dynamic_kinds: Vec<FindingKind>,
    /// Rollbacks the recovery-audit run charged (0 unless
    /// `desc.corrupt` and the corrupting plan actually struck).
    pub rollbacks: u64,
    /// Human-readable context for violations.
    pub detail: String,
}

fn mem_equal(label: &str, a: &DynOutcome, b: &DynOutcome) -> Result<(), String> {
    if a.data != b.data {
        let i = a.data.iter().zip(&b.data).position(|(x, y)| x != y);
        return Err(format!("{label}: data diverges at word {i:?}"));
    }
    if a.out != b.out {
        let i = a.out.iter().zip(&b.out).position(|(x, y)| x != y);
        return Err(format!("{label}: out diverges at word {i:?}"));
    }
    Ok(())
}

/// Run the full differential audit for one case.
pub fn run_case(desc: &CaseDesc) -> CaseOutcome {
    let fail = |verdict: Violation, detail: String, lint: LintReport| CaseOutcome {
        desc: desc.clone(),
        verdict: Verdict::Violation(verdict),
        lint,
        dynamic_kinds: Vec::new(),
        rollbacks: 0,
        detail,
    };
    let empty_report =
        || LintReport::trivially_clean(hic_runtime::Config::Inter(hic_runtime::InterConfig::Hcc));

    let record = match record_of(desc) {
        Ok(r) => r,
        Err(e) => return fail(Violation::Structural, e, empty_report()),
    };
    let report = lint(&record);
    if !report.errors.is_empty() {
        let detail = report.errors.join("; ");
        return fail(Violation::Structural, detail, report);
    }

    let fault = FaultPlan::from_seed(desc.fault_seed);
    let runs = [
        (
            "subject+fault",
            Backend::Subject,
            CheckMode::Report,
            Some(fault),
        ),
        ("subject", Backend::Subject, CheckMode::Report, None),
        ("mesi", Backend::Mesi, CheckMode::Off, None),
        ("dragon", Backend::Dragon, CheckMode::Off, None),
        ("reference", Backend::Reference, CheckMode::Off, None),
    ];
    let mut outs = Vec::with_capacity(runs.len());
    for (label, backend, check, fault) in runs {
        match run_dynamic(desc, backend, check, fault, None) {
            Ok(o) => {
                if let Some(e) = &o.error {
                    return fail(Violation::Structural, format!("{label}: {e}"), report);
                }
                outs.push((label, o));
            }
            Err(e) => return fail(Violation::Structural, format!("{label}: {e}"), report),
        }
    }
    let subject_fault = &outs[0].1;
    let subject = &outs[1].1;

    // Recovery audit (when the case opts in): the same program under a
    // corrupting-but-recoverable plan must be *survived* — rollback
    // recovery repairs every corrupted dirty line, so a typed error
    // (including CorruptDirtyLine) is a recovery-machinery failure. On
    // sanitizer-clean cases the recovered memory is compared against
    // the fault-free run below.
    let recovered = if desc.corrupt {
        let plan = FaultPlan::corrupting_recoverable(desc.fault_seed);
        match run_dynamic(desc, Backend::Subject, CheckMode::Report, Some(plan), None) {
            Ok(o) => {
                if let Some(e) = &o.error {
                    return fail(
                        Violation::RecoveryBroke,
                        format!("subject+corrupt: {e}"),
                        report,
                    );
                }
                Some(o)
            }
            Err(e) => {
                return fail(
                    Violation::RecoveryBroke,
                    format!("subject+corrupt: {e}"),
                    report,
                )
            }
        }
    } else {
        None
    };
    let rollbacks = recovered.as_ref().map_or(0, |o| o.rollbacks);

    // Soundness: every dynamic finding must be statically explained.
    let mut dynamic_kinds: Vec<FindingKind> = Vec::new();
    for (label, o) in outs.iter().take(2) {
        for f in &o.diag.findings {
            dynamic_kinds.push(f.kind);
            if !report.covers(f) {
                let detail = format!("{label}: uncovered dynamic finding: {}", f.render());
                return CaseOutcome {
                    desc: desc.clone(),
                    verdict: Verdict::Violation(Violation::Uncovered),
                    lint: report,
                    dynamic_kinds,
                    rollbacks,
                    detail,
                };
            }
        }
    }

    let dyn_clean = subject_fault.diag.is_clean() && subject.diag.is_clean();
    if !dyn_clean && dynamic_kinds.is_empty() {
        // `suppressed` without findings cannot normally happen; surface
        // it rather than misclassifying the case as clean.
        return fail(
            Violation::Structural,
            "sanitizer suppressed findings but reported none".to_string(),
            report,
        );
    }

    if !dyn_clean {
        return CaseOutcome {
            desc: desc.clone(),
            verdict: Verdict::Findings(dynamic_kinds.clone()),
            lint: report,
            dynamic_kinds,
            rollbacks,
            detail: String::new(),
        };
    }

    // Sanitizer clean: all five runs must agree on readable memory.
    for (label, o) in &outs[1..] {
        if let Err(e) = mem_equal(label, subject_fault, o) {
            return fail(Violation::SilentDivergence, e, report);
        }
    }
    // ... and so must the recovered run: rollback + replay repaired the
    // corrupted lines, so the readable memory must be bit-identical to
    // the fault-free subject.
    if let Some(rec) = &recovered {
        if let Err(e) = mem_equal("subject+corrupt", subject, rec) {
            return fail(Violation::RecoveryBroke, e, report);
        }
    }

    // Optimizer audit on statically-clean cases: minimized plans must
    // re-verify and re-run (strict, fault-free) bit-identical.
    if report.is_clean() {
        let opt = optimize(&record);
        if opt.stats.fallback || !opt.reverify.is_clean() {
            return fail(
                Violation::OptimizerBroke,
                format!("re-verification failed: {}", opt.reverify.render()),
                report,
            );
        }
        match run_dynamic(
            desc,
            Backend::Subject,
            CheckMode::Strict,
            None,
            Some(opt.overrides),
        ) {
            Ok(o) => {
                if let Some(e) = &o.error {
                    return fail(
                        Violation::OptimizerBroke,
                        format!("strict re-run failed: {e}"),
                        report,
                    );
                }
                if let Err(e) = mem_equal("optimized", subject, &o) {
                    return fail(Violation::OptimizerBroke, e, report);
                }
            }
            Err(e) => return fail(Violation::OptimizerBroke, e, report),
        }
    }

    let verdict = if report.is_clean() {
        Verdict::Clean
    } else {
        Verdict::Precision(report.findings.iter().map(|f| f.kind).collect())
    };
    CaseOutcome {
        desc: desc.clone(),
        verdict,
        lint: report,
        dynamic_kinds,
        rollbacks,
        detail: String::new(),
    }
}
