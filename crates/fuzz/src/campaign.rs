//! The campaign driver: deterministic, resumable, coverage-steered.
//!
//! A campaign derives one [`SplitMix64`] stream per case index from the
//! campaign seed, generates a [`CaseDesc`] under the current
//! [`GenBias`], classifies it with [`run_case`], folds the outcome into
//! the running [`CampaignSummary`], and re-derives the bias from the
//! observed feature counts (rarely-hit schemes, sync shapes and mutation
//! operators get proportionally heavier weights). Because the per-case
//! seed depends only on `(campaign seed, index)` — never on wall time or
//! prior outcomes' timing — the same `(seed, cases)` pair always
//! produces a byte-identical summary, and `--from N` replays the tail of
//! a campaign without re-running its head.
//!
//! Interesting cases (every violation; the first case of each
//! `scheme × expectation` signature) are delta-debugged by [`minimize`]
//! and persisted to the corpus as replayable `key;expect=...` one-liners
//! (see [`corpus_line`]), which `tests/fuzz_corpus.rs` replays on every
//! CI run.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hic_check::FindingKind;
use hic_lint::LintCoverage;
use hic_runtime::InterConfig;
use hic_sim::SplitMix64;

use crate::desc::{scheme_tag, CaseDesc, GenBias, MutKind, SyncShape};
use crate::run::{run_case, CaseOutcome, Verdict};

/// Per-case seed derivation: golden-ratio spaced, so neighbouring case
/// indices land in unrelated parts of the SplitMix64 stream.
pub fn case_seed(campaign_seed: u64, index: usize) -> u64 {
    campaign_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)
}

#[derive(Debug, Clone)]
pub struct CampaignOpts {
    pub seed: u64,
    /// Number of case indices to attempt.
    pub cases: usize,
    /// First case index (resume support): `--from N` continues the same
    /// campaign's per-index stream, with steering reset to default.
    pub from: usize,
    /// Soft wall-clock budget; checked between cases only, so a run
    /// under budget is bit-identical to an unbudgeted run.
    pub budget_s: Option<u64>,
    /// Where to persist minimized interesting cases; `None` disables
    /// corpus writes (used by the determinism tests).
    pub corpus_dir: Option<PathBuf>,
    /// Cap on classify-evaluations per minimization.
    pub minimize_evals: usize,
}

impl Default for CampaignOpts {
    fn default() -> CampaignOpts {
        CampaignOpts {
            seed: 0,
            cases: 0,
            from: 0,
            budget_s: None,
            corpus_dir: None,
            minimize_evals: 24,
        }
    }
}

fn scheme_idx(s: InterConfig) -> usize {
    match s {
        InterConfig::Addr => 1,
        InterConfig::AddrL => 2,
        _ => 0,
    }
}

fn sync_idx(s: SyncShape) -> usize {
    match s {
        SyncShape::Barrier => 0,
        SyncShape::Flags => 1,
        SyncShape::SubBarrier => 2,
    }
}

/// None / Delete / Duplicate / Widen / Narrow.
fn mutation_idx(m: Option<MutKind>) -> usize {
    match m {
        None => 0,
        Some(MutKind::Delete) => 1,
        Some(MutKind::Duplicate) => 2,
        Some(MutKind::Widen) => 3,
        Some(MutKind::Narrow) => 4,
    }
}

/// Feature counters that both steer generation and appear in the
/// summary.
#[derive(Debug, Clone, Default)]
struct Steering {
    schemes: [u64; 3],
    sync: [u64; 3],
    mutations: [u64; 5],
    racy: u64,
    corrupt: u64,
}

impl Steering {
    fn note(&mut self, desc: &CaseDesc) {
        self.schemes[scheme_idx(desc.scheme)] += 1;
        for r in &desc.rounds {
            self.sync[sync_idx(r.sync)] += 1;
        }
        self.mutations[mutation_idx(desc.mutation.as_ref().map(|m| m.kind))] += 1;
        self.racy += desc.racy as u64;
        self.corrupt += desc.corrupt as u64;
    }

    /// Inverse-frequency weights: a feature seen `c` times weighs
    /// `1/(1+c)` relative to an unseen one, scaled by the default bias
    /// so the campaign keeps its clean-baseline majority.
    fn bias(&self) -> GenBias {
        let d = GenBias::default();
        let w = |c: u64| 1.0 / (1.0 + c as f64);
        GenBias {
            scheme: [0, 1, 2].map(|i| d.scheme[i] * w(self.schemes[i])),
            sync: [0, 1, 2].map(|i| d.sync[i] * w(self.sync[i])),
            mutation: [0, 1, 2, 3, 4].map(|i| d.mutation[i] * w(self.mutations[i])),
            racy_rate: (d.racy_rate * 16.0 / (16.0 + self.racy as f64)).max(0.05),
            corrupt_rate: (d.corrupt_rate * 16.0 / (16.0 + self.corrupt as f64)).max(0.05),
        }
    }
}

const KIND_ORDER: [FindingKind; 3] = [
    FindingKind::MissingWb,
    FindingKind::MissingInv,
    FindingKind::WriteRace,
];

fn kind_counts(label: &str, counts: &[u64; 3]) -> String {
    let cells: Vec<String> = KIND_ORDER
        .iter()
        .zip(counts)
        .map(|(k, c)| format!("{}={}", k.tag(), c))
        .collect();
    format!("{label}: {}", cells.join(" "))
}

fn kind_slot(k: FindingKind) -> usize {
    KIND_ORDER.iter().position(|o| *o == k).unwrap_or(0)
}

/// The deterministic campaign report. [`CampaignSummary::render`]
/// contains no timestamps, paths, or durations — repeating a campaign
/// with the same `(seed, from, cases)` must reproduce it byte for byte.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    pub seed: u64,
    pub from: usize,
    pub cases: usize,
    /// Cases actually executed (`< cases` only when the budget cut in).
    pub run: usize,
    /// clean / findings / precision / violation.
    pub verdicts: [u64; 4],
    pub schemes: [u64; 3],
    pub sync: [u64; 3],
    pub mutations: [u64; 5],
    pub racy: u64,
    /// Cases that also ran the corrupting-recovery audit.
    pub corrupt: u64,
    /// Rollbacks summed across every recovery-audit run.
    pub rollbacks: u64,
    /// Dynamic sanitizer finding kinds across subject runs.
    pub dynamic_kinds: [u64; 3],
    /// Static lint finding kinds.
    pub lint_kinds: [u64; 3],
    /// Merged static coverage over every case's lowered program.
    pub coverage: LintCoverage,
    /// One line per violating case: `expect key=... detail=...`.
    pub violations: Vec<String>,
    /// Corpus files written this run (reported on stderr, never part of
    /// `render`, so pre-seeded corpora don't break determinism).
    pub corpus_new: Vec<PathBuf>,
}

impl CampaignSummary {
    fn absorb(&mut self, outcome: &CaseOutcome) {
        self.run += 1;
        let slot = match &outcome.verdict {
            Verdict::Clean => 0,
            Verdict::Findings(_) => 1,
            Verdict::Precision(_) => 2,
            Verdict::Violation(_) => 3,
        };
        self.verdicts[slot] += 1;
        let desc = &outcome.desc;
        self.schemes[scheme_idx(desc.scheme)] += 1;
        for r in &desc.rounds {
            self.sync[sync_idx(r.sync)] += 1;
        }
        self.mutations[mutation_idx(desc.mutation.as_ref().map(|m| m.kind))] += 1;
        self.racy += desc.racy as u64;
        self.corrupt += desc.corrupt as u64;
        self.rollbacks += outcome.rollbacks;
        for k in &outcome.dynamic_kinds {
            self.dynamic_kinds[kind_slot(*k)] += 1;
        }
        for f in &outcome.lint.findings {
            self.lint_kinds[kind_slot(f.kind)] += 1;
        }
        self.coverage.merge(&outcome.lint.coverage);
        if outcome.verdict.is_violation() {
            self.violations.push(format!(
                "{} key={} detail={}",
                outcome.verdict.expect_tag(),
                desc.key(),
                outcome.detail
            ));
        }
    }

    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("hic-fuzz campaign summary (format v1)\n");
        s.push_str(&format!(
            "seed={} from={} cases={} run={}\n",
            self.seed, self.from, self.cases, self.run
        ));
        s.push_str(&format!(
            "verdicts: clean={} findings={} precision={} violation={}\n",
            self.verdicts[0], self.verdicts[1], self.verdicts[2], self.verdicts[3]
        ));
        s.push_str(&format!(
            "schemes: base={} addr={} addrl={}\n",
            self.schemes[0], self.schemes[1], self.schemes[2]
        ));
        s.push_str(&format!(
            "sync-rounds: bar={} flag={} sub={}\n",
            self.sync[0], self.sync[1], self.sync[2]
        ));
        s.push_str(&format!(
            "mutations: none={} del={} dup={} wid={} nar={}\n",
            self.mutations[0],
            self.mutations[1],
            self.mutations[2],
            self.mutations[3],
            self.mutations[4]
        ));
        s.push_str(&format!("racy-cases={}\n", self.racy));
        s.push_str(&format!(
            "recovery-audits={} rollbacks={}\n",
            self.corrupt, self.rollbacks
        ));
        s.push_str(&kind_counts("dynamic-findings", &self.dynamic_kinds));
        s.push('\n');
        s.push_str(&kind_counts("lint-findings", &self.lint_kinds));
        s.push('\n');
        let feats: Vec<String> = self
            .coverage
            .features()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        s.push_str(&format!("lint-coverage: {}\n", feats.join(" ")));
        if self.violations.is_empty() {
            s.push_str("violations: none\n");
        } else {
            s.push_str(&format!("violations: {}\n", self.violations.len()));
            for v in &self.violations {
                s.push_str(&format!("  {v}\n"));
            }
        }
        s
    }
}

/// Run a campaign per `opts`.
pub fn run_campaign(opts: &CampaignOpts) -> CampaignSummary {
    let mut steer = Steering::default();
    let mut summary = CampaignSummary {
        seed: opts.seed,
        from: opts.from,
        cases: opts.cases,
        ..CampaignSummary::default()
    };
    // scheme × expectation signatures already persisted this run.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let start = Instant::now();
    for i in opts.from..opts.from + opts.cases {
        if let Some(budget) = opts.budget_s {
            if start.elapsed().as_secs() >= budget {
                break;
            }
        }
        let mut rng = SplitMix64::new(case_seed(opts.seed, i));
        let desc = CaseDesc::generate(&mut rng, &steer.bias());
        let outcome = run_case(&desc);
        steer.note(&desc);
        let expect = outcome.verdict.expect_tag();
        summary.absorb(&outcome);

        if let Some(dir) = &opts.corpus_dir {
            let sig = format!("{}|{}", scheme_tag(desc.scheme), expect);
            let interesting = outcome.verdict.is_violation()
                || (!matches!(outcome.verdict, Verdict::Clean) && seen.insert(sig));
            if interesting {
                let min = minimize(&desc, &expect, opts.minimize_evals);
                if let Ok((path, new)) = write_corpus(dir, &min, &expect) {
                    if new {
                        summary.corpus_new.push(path);
                    }
                }
            }
        }
    }
    summary
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Structural size metric the minimizer descends on.
fn cost(d: &CaseDesc) -> u64 {
    let edges: usize = d.rounds.iter().map(|r| r.edges.len()).sum();
    d.rounds.len() as u64 * 10_000
        + edges as u64 * 1_000
        + d.threads as u64 * 100
        + (d.blocks * d.cores_per_block) as u64 * 10
        + d.slice
        + d.racy as u64 * 50
        + d.corrupt as u64 * 50
        + (d.fault_seed != 0) as u64
}

/// Strictly-smaller candidate reductions of `d`, biggest wins first.
fn candidates(d: &CaseDesc) -> Vec<CaseDesc> {
    let mut out = Vec::new();
    // Drop a whole round (never the mutation's own).
    if d.rounds.len() > 1 {
        for r in 0..d.rounds.len() {
            if d.mutation.as_ref().is_some_and(|m| m.round == r) {
                continue;
            }
            let mut c = d.clone();
            c.rounds.remove(r);
            if let Some(m) = &mut c.mutation {
                if m.round > r {
                    m.round -= 1;
                }
            }
            out.push(c);
        }
    }
    // Drop a single edge (never the mutation's own).
    for r in 0..d.rounds.len() {
        if d.rounds[r].edges.len() < 2 {
            continue;
        }
        for e in 0..d.rounds[r].edges.len() {
            if d.mutation
                .as_ref()
                .is_some_and(|m| m.round == r && m.edge == e)
            {
                continue;
            }
            let mut c = d.clone();
            c.rounds[r].edges.remove(e);
            if let Some(m) = &mut c.mutation {
                if m.round == r && m.edge > e {
                    m.edge -= 1;
                }
            }
            out.push(c);
        }
    }
    if d.racy {
        let mut c = d.clone();
        c.racy = false;
        out.push(c);
    }
    if d.corrupt {
        let mut c = d.clone();
        c.corrupt = false;
        out.push(c);
    }
    // Shrink the thread count to the highest edge endpoint + 1.
    let used = d
        .rounds
        .iter()
        .flat_map(|r| r.edges.iter())
        .map(|e| e.p.max(e.c))
        .max()
        .unwrap_or(1);
    let want = (used + 1).max(2);
    if want < d.threads {
        let mut c = d.clone();
        c.threads = want;
        out.push(c);
    }
    // Shrink the machine to the smallest 2-block shape that seats them.
    let min_cpb = d.threads.div_ceil(2).max(1);
    if (d.blocks, d.cores_per_block) != (2, min_cpb) && 2 * min_cpb >= d.threads {
        let mut c = d.clone();
        c.blocks = 2;
        c.cores_per_block = min_cpb;
        out.push(c);
    }
    // Shrink every slice to the highest word any edge touches.
    let max_hi = d
        .rounds
        .iter()
        .flat_map(|r| r.edges.iter())
        .map(|e| e.hi)
        .max()
        .unwrap_or(1);
    if max_hi < d.slice {
        let mut c = d.clone();
        c.slice = max_hi;
        out.push(c);
    }
    // Shrink a non-mutated edge's range to one word.
    for r in 0..d.rounds.len() {
        for e in 0..d.rounds[r].edges.len() {
            if d.mutation
                .as_ref()
                .is_some_and(|m| m.round == r && m.edge == e)
            {
                continue;
            }
            if d.rounds[r].edges[e].hi - d.rounds[r].edges[e].lo > 1 {
                let mut c = d.clone();
                c.rounds[r].edges[e].hi = c.rounds[r].edges[e].lo + 1;
                out.push(c);
            }
        }
    }
    if d.fault_seed != 0 {
        let mut c = d.clone();
        c.fault_seed = 0;
        out.push(c);
    }
    if let Some(m) = &d.mutation {
        if m.amount > 1 {
            let mut c = d.clone();
            c.mutation.as_mut().unwrap().amount = 1;
            out.push(c);
        }
    }
    out
}

/// Greedy delta-debugging: repeatedly adopt the first strictly-smaller
/// candidate whose [`run_case`] expectation tag still equals `expect`,
/// until a fixed point or `max_evals` classifications.
pub fn minimize(desc: &CaseDesc, expect: &str, max_evals: usize) -> CaseDesc {
    let mut best = desc.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= max_evals {
                return best;
            }
            if cand.validate().is_err() || cost(&cand) >= cost(&best) {
                continue;
            }
            evals += 1;
            if run_case(&cand).verdict.expect_tag() == expect {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// The replayable one-line corpus format: `key;expect=<tag>`.
pub fn corpus_line(desc: &CaseDesc, expect: &str) -> String {
    format!("{};expect={}", desc.key(), expect)
}

/// Inverse of [`corpus_line`].
pub fn parse_corpus_line(line: &str) -> Result<(CaseDesc, String), String> {
    let line = line.trim();
    let (key, expect) = line
        .rsplit_once(";expect=")
        .ok_or_else(|| format!("corpus line missing ;expect=: {line:?}"))?;
    if expect.is_empty() {
        return Err(format!("empty expectation in {line:?}"));
    }
    Ok((CaseDesc::parse_key(key)?, expect.to_string()))
}

/// FNV-1a, for content-addressed corpus file names.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Persist a case, content-addressed; returns `(path, newly_written)`.
pub fn write_corpus(dir: &Path, desc: &CaseDesc, expect: &str) -> std::io::Result<(PathBuf, bool)> {
    std::fs::create_dir_all(dir)?;
    let line = corpus_line(desc, expect);
    let class = expect.split(':').next().unwrap_or("case");
    let path = dir.join(format!("{class}-{:016x}.case", fnv64(&line)));
    if path.exists() {
        return Ok((path, false));
    }
    std::fs::write(&path, format!("{line}\n"))?;
    Ok((path, true))
}

/// Load every `*.case` file under `dir`, sorted by file name.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<(PathBuf, CaseDesc, String)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let text = std::fs::read_to_string(&p)?;
        let (desc, expect) = parse_corpus_line(&text).map_err(std::io::Error::other)?;
        out.push((p, desc, expect));
    }
    Ok(out)
}
