//! The fuzzer's case grammar: one [`CaseDesc`] describes a whole
//! differential test case — machine shape, communication schedule, sync
//! skeleton, racy mix, fault seed, and an optional plan mutation — and is
//! the *single* source both the runnable program and its
//! [`ProgramRecord`](hic_runtime::ProgramRecord) are materialized from
//! (see `build`), so the two cannot drift.
//!
//! Every description round-trips through a cache-key-style one-liner
//! ([`CaseDesc::key`] / [`CaseDesc::parse_key`], version-tagged
//! `hicfuzz1`), which is the corpus file format and the `replay` wire
//! format.

use hic_runtime::InterConfig;
use hic_sim::SplitMix64;

/// How a round's producers hand off to its consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncShape {
    /// One global barrier arrival (all threads), release + acquire.
    Barrier,
    /// One raw flag per edge: producer sets, consumer waits. The flags
    /// carry no WB/INV — the plans must.
    Flags,
    /// A k-of-n barrier among exactly the round's participants; bystander
    /// threads skip straight to the round's closing barrier.
    SubBarrier,
}

impl SyncShape {
    pub const ALL: [SyncShape; 3] = [SyncShape::Barrier, SyncShape::Flags, SyncShape::SubBarrier];

    pub fn tag(self) -> &'static str {
        match self {
            SyncShape::Barrier => "bar",
            SyncShape::Flags => "flag",
            SyncShape::SubBarrier => "sub",
        }
    }

    fn from_tag(s: &str) -> Option<SyncShape> {
        match s {
            "bar" => Some(SyncShape::Barrier),
            "flag" => Some(SyncShape::Flags),
            "sub" => Some(SyncShape::SubBarrier),
            _ => None,
        }
    }
}

/// One producer → consumer transfer: consumer `c` reads words
/// `[lo, hi)` of producer `p`'s slice after the round's sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDesc {
    pub p: usize,
    pub c: usize,
    pub lo: u64,
    pub hi: u64,
}

/// One communication round: a sync shape plus edges with pairwise
/// distinct producers (so a deleted WB cannot be masked by another WB of
/// the same slice in the same round).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundDesc {
    pub sync: SyncShape,
    pub edges: Vec<EdgeDesc>,
}

/// The four plan mutation operators (over
/// [`EpochPlan`](hic_runtime::EpochPlan)'s mutation helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutKind {
    /// Remove the op: the classic seeded bug, must always be caught.
    Delete,
    /// Push a copy of the op: redundant, must stay clean.
    Duplicate,
    /// Grow the op's region: over-approximated, must stay clean.
    Widen,
    /// Shrink the op's region: under-covered words.
    Narrow,
}

impl MutKind {
    pub const ALL: [MutKind; 4] = [
        MutKind::Delete,
        MutKind::Duplicate,
        MutKind::Widen,
        MutKind::Narrow,
    ];

    pub fn tag(self) -> &'static str {
        match self {
            MutKind::Delete => "del",
            MutKind::Duplicate => "dup",
            MutKind::Widen => "wid",
            MutKind::Narrow => "nar",
        }
    }

    fn from_tag(s: &str) -> Option<MutKind> {
        match s {
            "del" => Some(MutKind::Delete),
            "dup" => Some(MutKind::Duplicate),
            "wid" => Some(MutKind::Widen),
            "nar" => Some(MutKind::Narrow),
            _ => None,
        }
    }
}

/// A mutation applied to one planned op: the op belonging to
/// `rounds[round].edges[edge]`, on the WB (producer) or INV (consumer)
/// side. `amount` is the word count for `Widen`/`Narrow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationDesc {
    pub kind: MutKind,
    pub wb: bool,
    pub round: usize,
    pub edge: usize,
    pub amount: u64,
}

/// A complete fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseDesc {
    /// Incoherent scheme under audit (`Base` / `Addr` / `AddrL`; the
    /// coherent rows are the oracles, not the subject).
    pub scheme: InterConfig,
    pub blocks: usize,
    pub cores_per_block: usize,
    pub threads: usize,
    /// Words per thread-owned slice of the `data` region.
    pub slice: u64,
    pub rounds: Vec<RoundDesc>,
    /// Include the `MarkRacy` block: two threads racy-store one word,
    /// one racy-loads it. Dynamically exempt; statically a write race —
    /// the canonical lint *precision* case.
    pub racy: bool,
    /// Seed for the recoverable [`FaultPlan`](hic_runtime::FaultPlan)
    /// the incoherent run executes under.
    pub fault_seed: u64,
    /// Also run the subject under a corrupting-but-recoverable plan
    /// (`FaultPlan::corrupting_recoverable(fault_seed)`) and audit the
    /// rollback-recovery machinery: the run must complete without a
    /// typed error, and on sanitizer-clean cases its readable memory
    /// must be bit-identical to the fault-free run.
    pub corrupt: bool,
    pub mutation: Option<MutationDesc>,
}

/// Stable tag for a scheme, as used in keys and campaign summaries.
pub fn scheme_tag(s: InterConfig) -> &'static str {
    match s {
        InterConfig::Base => "base",
        InterConfig::Addr => "addr",
        InterConfig::AddrL => "addrl",
        InterConfig::Hcc => "hcc",
        InterConfig::Dragon => "dragon",
    }
}

fn scheme_from_tag(s: &str) -> Option<InterConfig> {
    match s {
        "base" => Some(InterConfig::Base),
        "addr" => Some(InterConfig::Addr),
        "addrl" => Some(InterConfig::AddrL),
        _ => None,
    }
}

impl CaseDesc {
    /// The canonical one-liner: corpus file format, replay wire format,
    /// and minimization identity. [`CaseDesc::parse_key`] is its exact
    /// inverse (round-trip pinned by tests).
    pub fn key(&self) -> String {
        let rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|r| {
                let edges: Vec<String> = r
                    .edges
                    .iter()
                    .map(|e| format!("{}>{}:{}:{}", e.p, e.c, e.lo, e.hi))
                    .collect();
                format!("{}@{}", r.sync.tag(), edges.join(","))
            })
            .collect();
        let m = match &self.mutation {
            Some(m) => format!(
                "{}:{}:{}:{}:{}",
                m.kind.tag(),
                if m.wb { "wb" } else { "inv" },
                m.round,
                m.edge,
                m.amount
            ),
            None => "-".to_string(),
        };
        // `corrupt` is emitted only when set, so pre-recovery corpus
        // keys keep parsing (and re-rendering) unchanged.
        let corrupt = if self.corrupt { ";corrupt=1" } else { "" };
        format!(
            "hicfuzz1;scheme={};topo={}x{};threads={};slice={};fault={};racy={};rounds={};mut={}{}",
            scheme_tag(self.scheme),
            self.blocks,
            self.cores_per_block,
            self.threads,
            self.slice,
            self.fault_seed,
            self.racy as u8,
            rounds.join("|"),
            m,
            corrupt
        )
    }

    /// Parse a [`CaseDesc::key`] one-liner.
    pub fn parse_key(key: &str) -> Result<CaseDesc, String> {
        let key = key.trim();
        let mut parts = key.split(';');
        if parts.next() != Some("hicfuzz1") {
            return Err("missing hicfuzz1 version tag".to_string());
        }
        let mut scheme = None;
        let mut topo = None;
        let mut threads = None;
        let mut slice = None;
        let mut fault = None;
        let mut racy = None;
        let mut rounds = None;
        let mut corrupt = None;
        let mut mutation: Option<Option<MutationDesc>> = None;
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field {part:?}"))?;
            match k {
                "scheme" => {
                    scheme =
                        Some(scheme_from_tag(v).ok_or_else(|| format!("unknown scheme {v:?}"))?)
                }
                "topo" => {
                    let (b, c) = v
                        .split_once('x')
                        .ok_or_else(|| format!("malformed topo {v:?}"))?;
                    topo = Some((num(b)? as usize, num(c)? as usize));
                }
                "threads" => threads = Some(num(v)? as usize),
                "slice" => slice = Some(num(v)?),
                "fault" => fault = Some(num(v)?),
                "racy" => racy = Some(num(v)? != 0),
                "corrupt" => corrupt = Some(num(v)? != 0),
                "rounds" => rounds = Some(parse_rounds(v)?),
                "mut" => mutation = Some(parse_mutation(v)?),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let (blocks, cores_per_block) = topo.ok_or("missing topo")?;
        let desc = CaseDesc {
            scheme: scheme.ok_or("missing scheme")?,
            blocks,
            cores_per_block,
            threads: threads.ok_or("missing threads")?,
            slice: slice.ok_or("missing slice")?,
            rounds: rounds.ok_or("missing rounds")?,
            racy: racy.ok_or("missing racy")?,
            fault_seed: fault.ok_or("missing fault")?,
            // Absent on keys written before the recovery audit existed.
            corrupt: corrupt.unwrap_or(false),
            mutation: mutation.ok_or("missing mut")?,
        };
        desc.validate()?;
        Ok(desc)
    }

    /// Structural sanity: everything in range, producers pairwise
    /// distinct per round, mutation addressing an existing op.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks < 2 || self.cores_per_block < 1 {
            return Err("inter-block cases need >= 2 blocks".to_string());
        }
        if self.threads < 2 || self.threads > self.blocks * self.cores_per_block {
            return Err(format!(
                "threads {} out of range for {}x{}",
                self.threads, self.blocks, self.cores_per_block
            ));
        }
        if self.slice == 0 {
            return Err("empty slice".to_string());
        }
        if self.rounds.is_empty() {
            return Err("no rounds".to_string());
        }
        for (r, round) in self.rounds.iter().enumerate() {
            if round.edges.is_empty() {
                return Err(format!("round {r} has no edges"));
            }
            for (i, e) in round.edges.iter().enumerate() {
                if e.p >= self.threads || e.c >= self.threads || e.p == e.c {
                    return Err(format!("round {r} edge {i}: bad pair {} -> {}", e.p, e.c));
                }
                if e.lo >= e.hi || e.hi > self.slice {
                    return Err(format!("round {r} edge {i}: bad range {}..{}", e.lo, e.hi));
                }
                if round.edges[..i].iter().any(|o| o.p == e.p) {
                    return Err(format!("round {r}: duplicate producer {}", e.p));
                }
            }
        }
        if let Some(m) = &self.mutation {
            let round = self
                .rounds
                .get(m.round)
                .ok_or_else(|| format!("mutation round {} out of range", m.round))?;
            if m.edge >= round.edges.len() {
                return Err(format!("mutation edge {} out of range", m.edge));
            }
            if matches!(m.kind, MutKind::Widen | MutKind::Narrow) && m.amount == 0 {
                return Err("widen/narrow need a nonzero amount".to_string());
            }
        }
        Ok(())
    }

    /// Generate a random valid case, biased by `bias` (coverage
    /// steering). Deterministic in `rng`.
    pub fn generate(rng: &mut SplitMix64, bias: &GenBias) -> CaseDesc {
        let scheme =
            [InterConfig::Base, InterConfig::Addr, InterConfig::AddrL][weighted(rng, &bias.scheme)];
        let blocks = 2 + rng.below(3) as usize; // 2..=4
        let cores_per_block = 2 + rng.below(7) as usize; // 2..=8
        let cores = blocks * cores_per_block;
        let threads = 2 + rng.below((cores.min(12) - 1) as u64) as usize; // 2..=min(12, cores)
        let slice = 8 * (1 + rng.below(4)); // 8, 16, 24, 32 words
        let nrounds = 1 + rng.below(3) as usize; // 1..=3
        let rounds: Vec<RoundDesc> = (0..nrounds)
            .map(|_| {
                let sync = SyncShape::ALL[weighted(rng, &bias.sync)];
                let want = 1 + rng.below(threads.min(4) as u64 - 1) as usize;
                let mut edges: Vec<EdgeDesc> = Vec::new();
                while edges.len() < want {
                    let p = rng.below(threads as u64) as usize;
                    let c = rng.below(threads as u64) as usize;
                    if p == c || edges.iter().any(|e| e.p == p) {
                        continue;
                    }
                    // A random sub-range of the producer's slice.
                    let lo = rng.below(slice);
                    let hi = lo + 1 + rng.below(slice - lo);
                    edges.push(EdgeDesc { p, c, lo, hi });
                }
                RoundDesc { sync, edges }
            })
            .collect();
        let racy = rng.unit_f64() < bias.racy_rate;
        let corrupt = rng.unit_f64() < bias.corrupt_rate;
        // 0 = no mutation, 1.. = MutKind::ALL.
        let mutation = match weighted(rng, &bias.mutation) {
            0 => None,
            k => {
                let kind = MutKind::ALL[k - 1];
                let round = rng.below(rounds.len() as u64) as usize;
                let edge = rng.below(rounds[round].edges.len() as u64) as usize;
                let e = rounds[round].edges[edge];
                let words = e.hi - e.lo;
                let amount = match kind {
                    MutKind::Narrow if words > 1 => 1 + rng.below(words - 1),
                    MutKind::Narrow => 0, // 1-word op: narrowing would empty it
                    _ => 1 + rng.below(2 * slice),
                };
                if kind == MutKind::Narrow && amount == 0 {
                    None
                } else {
                    Some(MutationDesc {
                        kind,
                        wb: rng.below(2) == 0,
                        round,
                        edge,
                        amount,
                    })
                }
            }
        };
        let desc = CaseDesc {
            scheme,
            blocks,
            cores_per_block,
            threads,
            slice,
            rounds,
            racy,
            fault_seed: rng.next_u64() >> 16,
            corrupt,
            mutation,
        };
        debug_assert!(desc.validate().is_ok(), "{:?}", desc.validate());
        desc
    }
}

/// Generation weights derived from coverage (see `campaign`): a feature
/// the campaign has exercised often gets a low weight, steering new
/// cases toward untouched analysis territory.
#[derive(Debug, Clone)]
pub struct GenBias {
    /// Base / Addr / Addr+L.
    pub scheme: [f64; 3],
    /// Barrier / Flags / SubBarrier.
    pub sync: [f64; 3],
    /// None / Delete / Duplicate / Widen / Narrow.
    pub mutation: [f64; 5],
    /// Probability of including the racy block.
    pub racy_rate: f64,
    /// Probability of adding the corrupting-recovery audit run.
    pub corrupt_rate: f64,
}

impl Default for GenBias {
    fn default() -> GenBias {
        GenBias {
            scheme: [1.0; 3],
            sync: [1.0; 3],
            // Half the cases unmutated: they are the clean baseline the
            // divergence + precision checks need.
            mutation: [4.0, 1.0, 1.0, 1.0, 1.0],
            racy_rate: 0.25,
            corrupt_rate: 0.25,
        }
    }
}

/// Deterministic weighted choice over `weights` (all > 0).
fn weighted(rng: &mut SplitMix64, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.unit_f64() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
}

fn parse_rounds(v: &str) -> Result<Vec<RoundDesc>, String> {
    v.split('|')
        .map(|r| {
            let (sync, edges) = r
                .split_once('@')
                .ok_or_else(|| format!("malformed round {r:?}"))?;
            let sync = SyncShape::from_tag(sync).ok_or_else(|| format!("unknown sync {sync:?}"))?;
            let edges = edges
                .split(',')
                .map(|e| {
                    let mut it = e.split(':');
                    let pair = it.next().ok_or_else(|| format!("malformed edge {e:?}"))?;
                    let (p, c) = pair
                        .split_once('>')
                        .ok_or_else(|| format!("malformed edge {e:?}"))?;
                    let lo = num(it.next().ok_or("edge missing lo")?)?;
                    let hi = num(it.next().ok_or("edge missing hi")?)?;
                    if it.next().is_some() {
                        return Err(format!("trailing edge fields in {e:?}"));
                    }
                    Ok(EdgeDesc {
                        p: num(p)? as usize,
                        c: num(c)? as usize,
                        lo,
                        hi,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(RoundDesc { sync, edges })
        })
        .collect()
}

fn parse_mutation(v: &str) -> Result<Option<MutationDesc>, String> {
    if v == "-" {
        return Ok(None);
    }
    let fields: Vec<&str> = v.split(':').collect();
    if fields.len() != 5 {
        return Err(format!("malformed mutation {v:?}"));
    }
    let kind = MutKind::from_tag(fields[0]).ok_or_else(|| format!("unknown mutation {v:?}"))?;
    let wb = match fields[1] {
        "wb" => true,
        "inv" => false,
        other => return Err(format!("bad mutation side {other:?}")),
    };
    Ok(Some(MutationDesc {
        kind,
        wb,
        round: num(fields[2])? as usize,
        edge: num(fields[3])? as usize,
        amount: num(fields[4])?,
    }))
}
