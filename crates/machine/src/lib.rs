//! Machine assembly: the execution-driven timing simulators.
//!
//! Three memory backends share the same geometry, NoC, and backing memory
//! model behind the [`MemBackend`] trait:
//!
//! * [`IncoherentSystem`] — the paper's hardware-incoherent hierarchy,
//!   driven by WB/INV instructions, with MEB/IEB support and the
//!   ThreadMap-based level-adaptive instructions;
//! * `MesiSystem` (from `hic-coherence`) — the HCC baseline;
//! * [`RefBackend`] — a flat always-fresh store used as a correctness
//!   oracle.
//!
//! [`Machine`] wraps any backend together with the synchronization
//! controller (`hic-sync`), per-core stall ledgers, and Figure-11 counters,
//! and exposes a synchronous `execute(core, op, now)` interface that the
//! thread runtime (`hic-runtime`) drives in global simulated-time order.

pub mod backend;
pub mod error;
pub mod incoherent;
pub mod machine;
pub mod ops;
pub mod trace;

pub use backend::{BackendKind, MemBackend, RefBackend};
pub use error::RunError;
pub use hic_fault::{FaultPlan, ResilienceStats};
pub use hic_noc::TrafficLedger;
pub use incoherent::{CoreSlice, IncCounters, IncoherentSystem};
pub use machine::{Exec, Machine, RunStats, Wakeup};
pub use ops::Op;
pub use trace::{TraceEvent, TraceRing};
