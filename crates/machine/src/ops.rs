//! The operation vocabulary a simulated thread issues to its core.
//!
//! Applications never touch the memory system directly: they produce a
//! stream of [`Op`]s through the `ThreadCtx` API in `hic-runtime`, and the
//! machine executes each op at the core's current simulated time.
//!
//! Ops that return no value and never block ([`Op::is_batchable`]) may be
//! coalesced into one [`Op::Batch`] message by the runtime's batched
//! transport. Batching is purely a transport optimization: the engine
//! unpacks a batch and still executes its members one at a time in global
//! simulated-time order, so cycle counts are identical to sending each op
//! individually — only the channel round-trips disappear.

use hic_core::CohInstr;
use hic_mem::{Word, WordAddr};
use hic_sync::SyncId;

/// One operation issued by a simulated thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Load a word; the reply carries the value.
    Load(WordAddr),
    /// Store a word.
    Store(WordAddr, Word),
    /// Load a word uncacheably: served by the shared level (L2, or L3 on
    /// the multi-block machine) without allocating in the L1. The MPI
    /// library communicates through such accesses (§IV: "an on-chip
    /// uncacheable shared buffer").
    LoadUnc(WordAddr),
    /// Store a word uncacheably (see [`Op::LoadUnc`]).
    StoreUnc(WordAddr, Word),
    /// A coherence-management instruction (WB / INV flavor).
    Coh(CohInstr),
    /// Pure computation: advance this core's clock by `cycles`.
    Compute(u64),
    /// Arrive at a barrier; blocks until every participant arrives.
    BarrierArrive(SyncId),
    /// Request a lock; blocks until granted.
    LockAcquire(SyncId),
    /// Release a held lock.
    LockRelease(SyncId),
    /// Set a condition flag, releasing all waiters.
    FlagSet(SyncId),
    /// Clear a condition flag.
    FlagClear(SyncId),
    /// Wait until a condition flag is set.
    FlagWait(SyncId),
    /// Start MEB recording (entry of a tracked epoch, e.g. lock acquire
    /// under the B+M configurations).
    MebBegin,
    /// Start an IEB-governed epoch (replaces the up-front INV ALL under
    /// the B+I configurations).
    IebBegin,
    /// End the IEB-governed epoch.
    IebEnd,
    /// Declare the next accesses to a word intentionally racy (the
    /// runtime emits this ahead of `racy_store`/`racy_load` when the
    /// incoherence sanitizer is on). Zero cycles, no machine effect:
    /// it only exempts the word from sanitizer race/staleness reports.
    MarkRacy(WordAddr),
    /// The thread has finished.
    Finish,
    /// A run of coalesced non-value-returning, non-blocking ops sent as
    /// one transport message. Every member satisfies
    /// [`Op::is_batchable`]; nesting is not allowed.
    Batch(Vec<Op>),
}

impl Op {
    /// Does this op block the core until another core's action?
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            Op::BarrierArrive(_) | Op::LockAcquire(_) | Op::FlagWait(_)
        )
    }

    /// May this op ride inside an [`Op::Batch`]? True exactly for ops
    /// that return no value, never park the core, and don't end the
    /// thread — the issuing thread has nothing to wait for.
    pub fn is_batchable(&self) -> bool {
        matches!(
            self,
            Op::Store(..)
                | Op::StoreUnc(..)
                | Op::Compute(_)
                | Op::Coh(_)
                | Op::MebBegin
                | Op::IebBegin
                | Op::IebEnd
                | Op::MarkRacy(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(Op::BarrierArrive(SyncId(0)).is_blocking());
        assert!(Op::LockAcquire(SyncId(0)).is_blocking());
        assert!(Op::FlagWait(SyncId(0)).is_blocking());
        assert!(!Op::LockRelease(SyncId(0)).is_blocking());
        assert!(!Op::Load(WordAddr(0)).is_blocking());
        assert!(!Op::Compute(5).is_blocking());
        assert!(!Op::Finish.is_blocking());
    }

    #[test]
    fn batchable_classification() {
        // Batchable: fire-and-forget ops.
        assert!(Op::Store(WordAddr(0), 1).is_batchable());
        assert!(Op::StoreUnc(WordAddr(0), 1).is_batchable());
        assert!(Op::Compute(5).is_batchable());
        assert!(Op::MebBegin.is_batchable());
        assert!(Op::IebBegin.is_batchable());
        assert!(Op::IebEnd.is_batchable());
        // Not batchable: value-returning, blocking, sync-visible, or
        // lifecycle ops.
        assert!(!Op::Load(WordAddr(0)).is_batchable());
        assert!(!Op::LoadUnc(WordAddr(0)).is_batchable());
        assert!(!Op::BarrierArrive(SyncId(0)).is_batchable());
        assert!(!Op::LockAcquire(SyncId(0)).is_batchable());
        assert!(!Op::LockRelease(SyncId(0)).is_batchable());
        assert!(!Op::FlagSet(SyncId(0)).is_batchable());
        assert!(!Op::FlagClear(SyncId(0)).is_batchable());
        assert!(!Op::FlagWait(SyncId(0)).is_batchable());
        assert!(!Op::Finish.is_batchable());
        assert!(!Op::Batch(vec![]).is_batchable());
    }

    #[test]
    fn no_batchable_op_blocks() {
        let samples = [
            Op::Store(WordAddr(0), 1),
            Op::StoreUnc(WordAddr(0), 1),
            Op::Compute(5),
            Op::MebBegin,
            Op::IebBegin,
            Op::IebEnd,
        ];
        for op in samples {
            assert!(op.is_batchable() && !op.is_blocking(), "{op:?}");
        }
    }
}
