//! The operation vocabulary a simulated thread issues to its core.
//!
//! Applications never touch the memory system directly: they produce a
//! stream of [`Op`]s through the `ThreadCtx` API in `hic-runtime`, and the
//! machine executes each op at the core's current simulated time.

use hic_core::CohInstr;
use hic_mem::{Word, WordAddr};
use hic_sync::SyncId;

/// One operation issued by a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load a word; the reply carries the value.
    Load(WordAddr),
    /// Store a word.
    Store(WordAddr, Word),
    /// Load a word uncacheably: served by the shared level (L2, or L3 on
    /// the multi-block machine) without allocating in the L1. The MPI
    /// library communicates through such accesses (§IV: "an on-chip
    /// uncacheable shared buffer").
    LoadUnc(WordAddr),
    /// Store a word uncacheably (see [`Op::LoadUnc`]).
    StoreUnc(WordAddr, Word),
    /// A coherence-management instruction (WB / INV flavor).
    Coh(CohInstr),
    /// Pure computation: advance this core's clock by `cycles`.
    Compute(u64),
    /// Arrive at a barrier; blocks until every participant arrives.
    BarrierArrive(SyncId),
    /// Request a lock; blocks until granted.
    LockAcquire(SyncId),
    /// Release a held lock.
    LockRelease(SyncId),
    /// Set a condition flag, releasing all waiters.
    FlagSet(SyncId),
    /// Clear a condition flag.
    FlagClear(SyncId),
    /// Wait until a condition flag is set.
    FlagWait(SyncId),
    /// Start MEB recording (entry of a tracked epoch, e.g. lock acquire
    /// under the B+M configurations).
    MebBegin,
    /// Start an IEB-governed epoch (replaces the up-front INV ALL under
    /// the B+I configurations).
    IebBegin,
    /// End the IEB-governed epoch.
    IebEnd,
    /// The thread has finished.
    Finish,
}

impl Op {
    /// Does this op block the core until another core's action?
    pub fn is_blocking(&self) -> bool {
        matches!(self, Op::BarrierArrive(_) | Op::LockAcquire(_) | Op::FlagWait(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(Op::BarrierArrive(SyncId(0)).is_blocking());
        assert!(Op::LockAcquire(SyncId(0)).is_blocking());
        assert!(Op::FlagWait(SyncId(0)).is_blocking());
        assert!(!Op::LockRelease(SyncId(0)).is_blocking());
        assert!(!Op::Load(WordAddr(0)).is_blocking());
        assert!(!Op::Compute(5).is_blocking());
        assert!(!Op::Finish.is_blocking());
    }
}
