//! Typed failure modes of a run.
//!
//! A run that cannot complete — deadlock, watchdog expiry, an
//! unrecoverable injected fault, or a fatal sanitizer finding — surfaces
//! one [`RunError`] instead of aborting the process. The runtime engine
//! latches the *first* error, tears every simulated thread down
//! gracefully, and hands the error to the caller through
//! `RunOutcome::result()`, so a failed run leaves the host process
//! reusable (tested: a clean run succeeds right after a deadlocked one).

use std::fmt;

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Every unfinished core is parked on synchronization: nothing can
    /// ever execute again. `parked` lists each stuck core and the label
    /// of the stall category it is charged to (e.g. `"barrier stall"`);
    /// `trace_tail` carries the rendered recent-operation history when
    /// tracing was enabled (empty otherwise).
    Deadlock {
        parked: Vec<(usize, String)>,
        trace_tail: String,
    },
    /// A watchdog fired: the run exceeded its simulated-cycle budget or
    /// its host wall-clock timeout without finishing.
    Hang { detail: String },
    /// An injected bit flip corrupted a cache line holding dirty words.
    /// The dirty data exists nowhere else in the hierarchy, so the run
    /// cannot silently produce wrong answers — it fails instead. With
    /// epoch-checkpoint rollback recovery (`FaultPlan::recover`, the
    /// `HIC_RECOVER` knob) the corruption is repaired by restore +
    /// replay and this error is reachable only on recovery-disabled
    /// runs or when a second upset strikes the same line during its own
    /// replay window.
    CorruptDirtyLine { detail: String },
    /// The incoherence sanitizer (`hic-check`) latched a fatal finding
    /// under `CheckMode::Strict`. The message is the rendered finding
    /// (prefixed `"incoherence detected:"`), with the trace tail
    /// attached when tracing was enabled.
    CheckFatal { msg: String },
    /// A simulated thread's host thread died (panicked in app code)
    /// before issuing its final operation.
    ThreadDied { detail: String },
}

impl RunError {
    /// Short machine-readable tag (used by the bench JSON reports).
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Deadlock { .. } => "deadlock",
            RunError::Hang { .. } => "hang",
            RunError::CorruptDirtyLine { .. } => "corrupt_dirty_line",
            RunError::CheckFatal { .. } => "check_fatal",
            RunError::ThreadDied { .. } => "thread_died",
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { parked, trace_tail } => {
                let cores: Vec<String> = parked
                    .iter()
                    .map(|(c, cat)| format!("core{c} ({cat})"))
                    .collect();
                write!(
                    f,
                    "deadlock: no runnable core; parked cores: [{}] \
                     (a barrier is missing an arrival, or a lock is never released)",
                    cores.join(", ")
                )?;
                if !trace_tail.is_empty() {
                    write!(f, "\nmost recent operations (oldest first):\n{trace_tail}")?;
                }
                Ok(())
            }
            RunError::Hang { detail } => write!(f, "hang: {detail}"),
            RunError::CorruptDirtyLine { detail } => write!(f, "{detail}"),
            RunError::CheckFatal { msg } => write!(f, "{msg}"),
            RunError::ThreadDied { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_names_cores_and_categories() {
        let e = RunError::Deadlock {
            parked: vec![(0, "barrier stall".into()), (3, "lock stall".into())],
            trace_tail: String::new(),
        };
        let msg = e.to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("core0 (barrier stall)"), "{msg}");
        assert!(msg.contains("core3 (lock stall)"), "{msg}");
        assert_eq!(e.kind(), "deadlock");
    }

    #[test]
    fn deadlock_display_appends_trace_tail() {
        let e = RunError::Deadlock {
            parked: vec![(1, "lock stall".into())],
            trace_tail: "core1 BarrierArrive".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("most recent operations"), "{msg}");
        assert!(msg.contains("BarrierArrive"), "{msg}");
    }

    #[test]
    fn check_fatal_displays_the_rendered_finding_verbatim() {
        let e = RunError::CheckFatal {
            msg: "incoherence detected: stale load".into(),
        };
        assert_eq!(e.to_string(), "incoherence detected: stale load");
    }
}
