//! The [`Machine`]: one memory backend + the synchronization controller +
//! per-core stall accounting, driven synchronously in simulated-time order.
//!
//! The runtime (in `hic-runtime`) guarantees that `execute` is called in
//! global simulated-time order across cores (conservative event ordering),
//! so every memory-system transition happens at a well-defined time.
//!
//! The memory side is any [`MemBackend`] (incoherent, MESI-coherent, or
//! the flat reference oracle); the machine itself is backend-agnostic.
//!
//! Blocking synchronization ops park the core inside the machine; when a
//! later op completes the barrier / releases the lock / sets the flag, the
//! machine emits [`Wakeup`]s that tell the runtime when each parked core
//! resumes, and charges the waiting time to the appropriate stall category.

use fxhash::FxHashMap;

use hic_check::{CheckMode, Checker, Diagnostics};
use hic_coherence::{DragonSystem, MesiSystem};
use hic_fault::{FaultPlan, FaultState, ResilienceStats, SALT_SYNC};
use hic_mem::{Region, Word, WordAddr};
use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::{CoreId, Cycle, EngineStats, MachineConfig, StallCategory, StallLedger};
use hic_sync::{Grant, SyncController, SyncId};

use crate::backend::{BackendKind, MemBackend, RefBackend};
use crate::error::RunError;
use crate::incoherent::{CoreSlice, IncCounters, IncoherentSystem};
use crate::ops::Op;
use crate::trace::{TraceEvent, TraceRing};

/// Result of executing one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// The op completed: optional value (loads) and completion time.
    Done { value: Option<Word>, end: Cycle },
    /// The op blocked; a [`Wakeup`] will carry the resume time later.
    Parked,
}

/// A parked core resuming at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wakeup {
    pub core: CoreId,
    pub at: Cycle,
}

/// Aggregated results of a finished run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Wall-clock of the program: max core completion time.
    pub total_cycles: Cycle,
    /// Per-core stall ledgers.
    pub ledgers: Vec<StallLedger>,
    /// Flit traffic.
    pub traffic: TrafficLedger,
    /// Incoherent-machine counters (zeros for HCC).
    pub counters: IncCounters,
    /// Host-side engine bookkeeping (zeros when the machine is driven
    /// directly rather than through the runtime engine).
    pub engine: EngineStats,
    /// Fault-injection resilience ledger (zeros without a fault plan).
    pub resilience: ResilienceStats,
}

impl RunStats {
    /// All core ledgers merged.
    pub fn merged_ledger(&self) -> StallLedger {
        self.ledgers
            .iter()
            .fold(StallLedger::new(), |a, b| a.merged(b))
    }
}

/// One simulated machine instance.
pub struct Machine {
    backend: Box<dyn MemBackend>,
    sync: SyncController,
    mesh: Mesh,
    cfg: MachineConfig,
    ledgers: Vec<StallLedger>,
    /// Parked cores: issue time + the category their wait is charged to.
    parked: FxHashMap<usize, (Cycle, StallCategory)>,
    wakeups: Vec<Wakeup>,
    /// Cores that executed at least one op.
    active: Vec<bool>,
    finished_at: Vec<Option<Cycle>>,
    trace: TraceRing,
    /// Mirror of "the backend has a sanitizer attached", so the hot path
    /// pays a plain bool test (not a virtual call) when checking is off.
    has_checker: bool,
    /// The installed fault plan, if any (kept for diagnostics).
    fault_plan: Option<FaultPlan>,
    /// Sync-controller ack-delay injection (`hic-fault`, SALT_SYNC
    /// stream): grants occasionally resume late, a protocol-legal
    /// perturbation that must not change readable memory.
    ack_faults: Option<FaultState>,
}

impl Machine {
    /// Assemble a machine around any memory backend. The configuration
    /// must be valid ([`MachineConfig::validate`]); shapes a
    /// `TopologyBuilder` would reject cannot reach the simulation loop.
    pub fn from_backend(cfg: MachineConfig, backend: Box<dyn MemBackend>) -> Machine {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine config: {e}");
        }
        let n = cfg.num_cores();
        Machine {
            backend,
            sync: SyncController::new(),
            mesh: Mesh::for_config(&cfg),
            ledgers: vec![StallLedger::new(); n],
            parked: FxHashMap::default(),
            wakeups: Vec::new(),
            active: vec![false; n],
            finished_at: vec![None; n],
            trace: TraceRing::default(),
            has_checker: false,
            fault_plan: None,
            ack_faults: None,
            cfg,
        }
    }

    /// Install a seeded fault-injection plan (`hic-fault`): mesh link
    /// jitter and slowdowns on every machine-level message, delayed
    /// sync-controller acks, and — on backends that support it — dropped
    /// transfers with retry and transient cache-line bit flips guarded
    /// by parity. Fully deterministic for a given plan and program.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
        self.mesh.set_faults(plan.link_faults());
        self.backend.install_faults(&plan);
        self.ack_faults = Some(FaultState::new(plan, SALT_SYNC));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Attach the incoherence sanitizer (`hic-check`) to the backend.
    /// Returns whether a checker is now active: backends whose hardware
    /// keeps every copy fresh (MESI, reference) have nothing to check and
    /// report `false`. `regions` names allocations in findings.
    pub fn enable_check(&mut self, mode: CheckMode, regions: Vec<(Region, String)>) -> bool {
        if mode == CheckMode::Off {
            return false;
        }
        let mut chk = Checker::new(mode, self.cfg.num_cores(), self.cfg.cores_per_block());
        chk.set_regions(regions);
        self.has_checker = self.backend.attach_checker(Box::new(chk));
        self.has_checker
    }

    /// Is an incoherence checker attached and active?
    pub fn checking(&self) -> bool {
        self.has_checker
    }

    /// Structured sanitizer output (default/empty when checking is off).
    pub fn diagnostics(&self) -> Diagnostics {
        self.backend
            .checker()
            .map(|c| c.diagnostics())
            .unwrap_or_default()
    }

    /// The typed error that should abort the run, delivered at most
    /// once: an unrecoverable injected fault (corrupted dirty line) or,
    /// in `CheckMode::Strict`, the sanitizer's rendered fatal finding.
    /// The runtime engine polls this after every executed operation so
    /// the run stops at the faulty access, with the trace tail attached
    /// when tracing is on.
    pub fn take_fatal(&mut self) -> Option<RunError> {
        if self.fault_plan.is_some() {
            if let Some(detail) = self.backend.take_fault_fatal() {
                return Some(RunError::CorruptDirtyLine {
                    detail: self.with_trace(detail),
                });
            }
        }
        if !self.has_checker {
            return None;
        }
        let f = self.backend.checker_mut()?.take_fatal()?;
        let msg = format!("incoherence detected: {}", f.render());
        Some(RunError::CheckFatal {
            msg: self.with_trace(msg),
        })
    }

    /// Append the rendered trace tail when tracing is enabled.
    fn with_trace(&self, mut msg: String) -> String {
        if self.trace.enabled() {
            msg.push_str("\nmost recent operations (oldest first):\n");
            msg.push_str(&self.trace.render());
        }
        msg
    }

    /// Build an incoherent machine.
    pub fn incoherent(cfg: MachineConfig) -> Machine {
        let backend = Box::new(IncoherentSystem::new(cfg));
        Machine::from_backend(cfg, backend)
    }

    /// Build a hardware-coherent (MESI directory) machine.
    pub fn coherent(cfg: MachineConfig) -> Machine {
        let backend = Box::new(MesiSystem::new(cfg));
        Machine::from_backend(cfg, backend)
    }

    /// Build a hardware-coherent machine running the update-based Dragon
    /// protocol (see [`hic_coherence::DragonSystem`]).
    pub fn dragon(cfg: MachineConfig) -> Machine {
        let backend = Box::new(DragonSystem::new(cfg));
        Machine::from_backend(cfg, backend)
    }

    /// Build a machine over the flat always-fresh reference backend (the
    /// correctness oracle; see [`RefBackend`]).
    pub fn reference(cfg: MachineConfig) -> Machine {
        let backend = Box::new(RefBackend::new(&cfg));
        Machine::from_backend(cfg, backend)
    }

    /// Keep a ring of the most recent `capacity` operations for
    /// debugging; retrieve with [`Machine::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::new(capacity);
    }

    /// The trace ring (empty unless [`Machine::enable_trace`] was called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The memory backend driving this machine.
    pub fn backend(&self) -> &dyn MemBackend {
        &*self.backend
    }

    pub fn backend_mut(&mut self) -> &mut dyn MemBackend {
        &mut *self.backend
    }

    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    pub fn is_coherent(&self) -> bool {
        self.backend.kind() == BackendKind::Coherent
    }

    /// True when the sharded engine's core-local fast path may run:
    /// incoherent backend (the only one with detachable core slices), no
    /// sanitizer (its hooks must observe every load/store in order), no
    /// fault plan (fault streams are draw-order-sensitive), and no trace
    /// ring (events must interleave in global key order). When false the
    /// sharded scheduler serializes through the sequential engine, which
    /// is trivially bit-identical.
    pub fn supports_sharding(&self) -> bool {
        self.backend.kind() == BackendKind::Incoherent
            && !self.has_checker
            && self.fault_plan.is_none()
            && !self.trace.enabled()
    }

    /// Check core `c`'s private state out of the backend (sharded engine
    /// only); `None` on backends without detachable state.
    pub fn detach_core(&mut self, c: CoreId) -> Option<CoreSlice> {
        self.backend.detach_core(c)
    }

    /// Re-attach a slice produced by [`Machine::detach_core`].
    pub fn attach_core(&mut self, c: CoreId, s: CoreSlice) {
        self.backend.attach_core(c, s);
    }

    /// Fold a stall ledger accumulated outside the machine (a shard's
    /// local-op charges) into core `c`'s ledger. Per-category cycle sums
    /// are commutative, so the merge order cannot change results.
    pub fn merge_ledger(&mut self, c: CoreId, l: &StallLedger) {
        self.ledgers[c.0] += *l;
    }

    /// Conservative cross-tile lookahead bound of the underlying mesh
    /// (see `Mesh::min_hop_lookahead`).
    pub fn min_hop_lookahead(&self) -> u64 {
        self.mesh.min_hop_lookahead()
    }

    /// Access to the incoherent system (ThreadMap setup, counters).
    pub fn incoherent_mut(&mut self) -> Option<&mut IncoherentSystem> {
        self.backend.as_incoherent_mut()
    }

    pub fn sync_mut(&mut self) -> &mut SyncController {
        &mut self.sync
    }

    /// Declare sync variables (runtime setup).
    pub fn alloc_barrier(&mut self, participants: usize) -> SyncId {
        self.sync.alloc_barrier(participants)
    }

    pub fn alloc_lock(&mut self) -> SyncId {
        self.sync.alloc_lock()
    }

    pub fn alloc_flag(&mut self) -> SyncId {
        self.sync.alloc_flag()
    }

    /// One-way latency from a core to the sync controller holding `id`.
    /// Sync hardware lives in the shared-cache controllers: an L2 bank for
    /// the single-block machine, an L3 (corner) bank for the multi-block
    /// machine (§III-D).
    fn sync_oneway(&self, c: CoreId, id: SyncId) -> u64 {
        if self.cfg.is_hierarchical() {
            self.mesh.latency_to_corner(c.0, id.0 % 4)
        } else {
            let bank_tile = id.0 % self.cfg.num_cores();
            self.mesh.latency(c.0, bank_tile)
        }
    }

    /// Controller service time for a sync request.
    fn sync_service(&self) -> u64 {
        match self.cfg.l3() {
            Some(l3) => l3.rt / 2,
            None => self.cfg.l2_rt / 2,
        }
    }

    fn park(&mut self, c: CoreId, issue: Cycle, cat: StallCategory) -> Exec {
        let prev = self.parked.insert(c.0, (issue, cat));
        debug_assert!(prev.is_none(), "core parked twice");
        Exec::Parked
    }

    /// Process grants from the controller: the issuing core's own grant (if
    /// any) completes its op; other cores become wakeups.
    fn apply_grants(
        &mut self,
        grants: Vec<Grant>,
        id: SyncId,
        me: CoreId,
        my_issue: Cycle,
        cat: StallCategory,
    ) -> Option<Cycle> {
        let mut my_end = None;
        for g in grants {
            let mut resume = g.at + self.sync_oneway(g.core, id);
            if let Some(fs) = self.ack_faults.as_mut() {
                resume += fs.on_ack();
            }
            self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
            if g.core == me {
                self.ledgers[me.0].charge(cat, resume.saturating_sub(my_issue));
                my_end = Some(resume);
            } else {
                let (issue, pcat) = self
                    .parked
                    .remove(&g.core.0)
                    .expect("granted core must be parked");
                self.ledgers[g.core.0].charge(pcat, resume.saturating_sub(issue));
                self.wakeups.push(Wakeup {
                    core: g.core,
                    at: resume,
                });
            }
        }
        my_end
    }

    /// Drain pending wakeups (parked cores that may now resume).
    pub fn take_wakeups(&mut self) -> Vec<Wakeup> {
        std::mem::take(&mut self.wakeups)
    }

    /// Execute `op` for core `c` whose local clock reads `now`.
    ///
    /// An [`Op::Batch`] is executed member by member, each starting when
    /// the previous one completed — exactly the timing of sending the
    /// members individually. (The runtime engine normally unpacks batches
    /// itself to preserve cross-core ordering; this path serves direct
    /// machine users.)
    pub fn execute(&mut self, c: CoreId, op: &Op, now: Cycle) -> Exec {
        if let Op::Batch(ops) = op {
            let mut t = now;
            for sub in ops {
                debug_assert!(sub.is_batchable(), "non-batchable op in batch: {sub:?}");
                match self.execute(c, sub, t) {
                    Exec::Done { end, .. } => t = end,
                    Exec::Parked => unreachable!("batchable ops never park"),
                }
            }
            return Exec::Done {
                value: None,
                end: t,
            };
        }
        self.active[c.0] = true;
        let result = self.execute_inner(c, op, now);
        if self.trace.enabled() {
            let (end, blocked) = match result {
                Exec::Done { end, .. } => (end, false),
                Exec::Parked => (now, true),
            };
            self.trace.push(TraceEvent {
                core: c,
                start: now,
                end,
                op: op.clone(),
                blocked,
            });
        }
        result
    }

    fn execute_inner(&mut self, c: CoreId, op: &Op, now: Cycle) -> Exec {
        debug_assert!(self.finished_at[c.0].is_none(), "op after Finish");
        if self.has_checker {
            if let Some(chk) = self.backend.checker_mut() {
                chk.set_now(now);
            }
        }
        match *op {
            Op::Load(w) => {
                let (v, lat) = self.backend.read(c, w);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done {
                    value: Some(v),
                    end: now + lat,
                }
            }
            Op::Store(w, v) => {
                let lat = self.backend.write(c, w, v);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done {
                    value: None,
                    end: now + lat,
                }
            }
            Op::LoadUnc(w) => {
                let (v, lat) = self.backend.read_uncached(c, w);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done {
                    value: Some(v),
                    end: now + lat,
                }
            }
            Op::StoreUnc(w, v) => {
                let lat = self.backend.write_uncached(c, w, v);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done {
                    value: None,
                    end: now + lat,
                }
            }
            Op::Compute(n) => {
                self.ledgers[c.0].charge(StallCategory::Rest, n);
                Exec::Done {
                    value: None,
                    end: now + n,
                }
            }
            Op::Coh(instr) => {
                let (lat, is_wb) = self.backend.exec_coh(c, instr);
                let cat = if is_wb {
                    StallCategory::Wb
                } else {
                    StallCategory::Inv
                };
                // charge(_, 0) is a no-op, so zero-latency backends (MESI,
                // reference) leave the WB/INV categories untouched.
                self.ledgers[c.0].charge(cat, lat);
                Exec::Done {
                    value: None,
                    end: now + lat,
                }
            }
            Op::MebBegin => {
                self.backend.meb_begin(c);
                Exec::Done {
                    value: None,
                    end: now,
                }
            }
            Op::IebBegin => {
                self.backend.ieb_begin(c);
                Exec::Done {
                    value: None,
                    end: now,
                }
            }
            Op::IebEnd => {
                self.backend.ieb_end(c);
                Exec::Done {
                    value: None,
                    end: now,
                }
            }
            Op::MarkRacy(w) => {
                if self.has_checker {
                    if let Some(chk) = self.backend.checker_mut() {
                        chk.mark_racy(w);
                    }
                }
                Exec::Done {
                    value: None,
                    end: now,
                }
            }
            Op::BarrierArrive(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                let grants = self
                    .sync
                    .barrier_arrive(id, c, arrive)
                    .expect("barrier misuse");
                if grants.is_empty() {
                    self.park(c, now, StallCategory::Barrier)
                } else {
                    if self.has_checker {
                        let parts: Vec<usize> = grants.iter().map(|g| g.core.0).collect();
                        if let Some(chk) = self.backend.checker_mut() {
                            chk.on_barrier(id.0, &parts);
                        }
                    }
                    let end = self
                        .apply_grants(grants, id, c, now, StallCategory::Barrier)
                        .expect("last arriver is granted");
                    Exec::Done { value: None, end }
                }
            }
            Op::LockAcquire(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                match self.sync.lock_acquire(id, c, arrive).expect("lock misuse") {
                    Some(g) => {
                        if self.has_checker {
                            if let Some(chk) = self.backend.checker_mut() {
                                chk.on_acquire(c.0, hic_check::SyncOp::LockAcquire, id.0);
                            }
                        }
                        let end = self
                            .apply_grants(vec![g], id, c, now, StallCategory::Lock)
                            .expect("own grant");
                        Exec::Done { value: None, end }
                    }
                    None => self.park(c, now, StallCategory::Lock),
                }
            }
            Op::LockRelease(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                if self.has_checker {
                    if let Some(chk) = self.backend.checker_mut() {
                        chk.on_release(c.0, hic_check::SyncOp::LockRelease, id.0);
                    }
                }
                if let Some(g) = self
                    .sync
                    .lock_release(id, c, arrive)
                    .expect("release misuse")
                {
                    if self.has_checker {
                        let next = g.core.0;
                        if let Some(chk) = self.backend.checker_mut() {
                            chk.on_acquire(next, hic_check::SyncOp::LockAcquire, id.0);
                        }
                    }
                    self.apply_grants(vec![g], id, c, now, StallCategory::Lock);
                }
                // The releaser posts the release and continues.
                let end = arrive;
                self.ledgers[c.0].charge(StallCategory::Rest, end - now);
                Exec::Done { value: None, end }
            }
            Op::FlagSet(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                let grants = self.sync.flag_set(id, arrive).expect("flag misuse");
                if self.has_checker {
                    let waiters: Vec<usize> = grants.iter().map(|g| g.core.0).collect();
                    if let Some(chk) = self.backend.checker_mut() {
                        chk.on_release(c.0, hic_check::SyncOp::FlagSet, id.0);
                        for t in waiters {
                            chk.on_acquire(t, hic_check::SyncOp::FlagWait, id.0);
                        }
                    }
                }
                self.apply_grants(grants, id, c, now, StallCategory::Lock);
                let end = arrive;
                self.ledgers[c.0].charge(StallCategory::Rest, end - now);
                Exec::Done { value: None, end }
            }
            Op::FlagClear(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                self.sync.flag_clear(id).expect("flag misuse");
                self.ledgers[c.0].charge(StallCategory::Rest, arrive - now);
                Exec::Done {
                    value: None,
                    end: arrive,
                }
            }
            Op::FlagWait(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.backend.traffic_mut().add(TrafficCategory::Sync, 1);
                // Flag waits are charged as lock stall: both are blocking
                // waits on a peer's progress (Figure 9 has no separate
                // flag category).
                match self.sync.flag_wait(id, c, arrive).expect("flag misuse") {
                    Some(g) => {
                        if self.has_checker {
                            if let Some(chk) = self.backend.checker_mut() {
                                chk.on_acquire(c.0, hic_check::SyncOp::FlagWait, id.0);
                            }
                        }
                        let end = self
                            .apply_grants(vec![g], id, c, now, StallCategory::Lock)
                            .expect("own grant");
                        Exec::Done { value: None, end }
                    }
                    None => self.park(c, now, StallCategory::Lock),
                }
            }
            Op::Finish => {
                self.finished_at[c.0] = Some(now);
                Exec::Done {
                    value: None,
                    end: now,
                }
            }
            Op::Batch(_) => unreachable!("Batch is unpacked by Machine::execute"),
        }
    }

    /// Is the core parked on a blocking sync op?
    pub fn is_parked(&self, c: CoreId) -> bool {
        self.parked.contains_key(&c.0)
    }

    /// Number of parked cores.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// What a parked core is waiting on (None if not parked). Used by the
    /// runtime's deadlock diagnostics.
    pub fn parked_category(&self, c: CoreId) -> Option<StallCategory> {
        self.parked.get(&c.0).map(|&(_, cat)| cat)
    }

    /// Finish bookkeeping: aggregate stats once every core is done.
    ///
    /// The total is the max completion time over cores that issued
    /// [`Op::Finish`]; cores that never ran don't dilute it. A core that
    /// executed ops but never finished indicates a runtime bug (caught in
    /// debug builds).
    pub fn finish(&self) -> RunStats {
        if cfg!(debug_assertions) {
            for (c, (&active, finished)) in self.active.iter().zip(&self.finished_at).enumerate() {
                debug_assert!(
                    !active || finished.is_some(),
                    "core {c} executed ops but never issued Op::Finish"
                );
            }
        }
        self.collect_stats()
    }

    /// Finish bookkeeping for a run torn down by a [`RunError`]: cores
    /// may legitimately never have issued [`Op::Finish`] (they were
    /// parked, or unwound on teardown), so the never-finished check is
    /// skipped and the total covers only the cores that did finish.
    pub fn finish_after_failure(&self) -> RunStats {
        self.collect_stats()
    }

    fn collect_stats(&self) -> RunStats {
        let total = self
            .finished_at
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0);
        let mut resilience = self.backend.resilience();
        if let Some(fs) = &self.ack_faults {
            resilience += fs.stats;
        }
        RunStats {
            total_cycles: total,
            ledgers: self.ledgers.clone(),
            traffic: self.backend.traffic(),
            counters: self.backend.counters(),
            engine: EngineStats::default(),
            resilience,
        }
    }

    /// Value backdoor (for result checks).
    pub fn peek_word(&self, w: WordAddr) -> Word {
        self.backend.peek_word(w)
    }

    /// Memory backdoor (for initialization before the run).
    pub fn poke_word(&mut self, w: WordAddr, v: Word) {
        self.backend.poke_word(w, v);
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("backend", &self.backend.kind())
            .field("cores", &self.cfg.num_cores())
            .field("parked", &self.parked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_core::{CohInstr, Target};
    use hic_mem::Addr;

    fn w(byte: u64) -> WordAddr {
        Addr(byte).word()
    }

    fn intra_inc() -> Machine {
        Machine::incoherent(MachineConfig::intra_block())
    }

    /// Mark every core that ran as finished at `now` so `finish()` can be
    /// called mid-scenario from unit tests.
    fn finish_active(m: &mut Machine, now: Cycle) {
        for c in 0..m.config().num_cores() {
            if m.active[c] && m.finished_at[c].is_none() && !m.is_parked(CoreId(c)) {
                m.execute(CoreId(c), &Op::Finish, now);
            }
        }
    }

    #[test]
    fn load_store_roundtrip_with_latency() {
        let mut m = intra_inc();
        let e = m.execute(CoreId(0), &Op::Store(w(0x100), 42), 0);
        let t1 = match e {
            Exec::Done { end, .. } => end,
            _ => panic!(),
        };
        assert!(t1 > 0);
        match m.execute(CoreId(0), &Op::Load(w(0x100)), t1) {
            Exec::Done {
                value: Some(v),
                end,
            } => {
                assert_eq!(v, 42);
                assert_eq!(end, t1 + m.config().l1_rt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn barrier_parks_then_wakes_everyone() {
        let mut m = intra_inc();
        let b = m.alloc_barrier(3);
        assert_eq!(
            m.execute(CoreId(0), &Op::BarrierArrive(b), 100),
            Exec::Parked
        );
        assert_eq!(
            m.execute(CoreId(1), &Op::BarrierArrive(b), 200),
            Exec::Parked
        );
        assert_eq!(m.parked_count(), 2);
        assert_eq!(m.parked_category(CoreId(0)), Some(StallCategory::Barrier));
        assert_eq!(m.parked_category(CoreId(2)), None);
        let e = m.execute(CoreId(2), &Op::BarrierArrive(b), 300);
        let my_end = match e {
            Exec::Done { end, .. } => end,
            _ => panic!("last arriver completes"),
        };
        assert!(my_end >= 300);
        let wakeups = m.take_wakeups();
        assert_eq!(wakeups.len(), 2);
        for wk in &wakeups {
            assert!(wk.at >= 300, "no one resumes before the last arrival");
        }
        assert_eq!(m.parked_count(), 0);
        // Waiting time was charged to barrier stall.
        finish_active(&mut m, 1000);
        let stats = m.finish();
        assert!(
            stats.ledgers[0].barrier >= 200,
            "core 0 waited ~200+ cycles"
        );
    }

    #[test]
    fn lock_contention_charges_lock_stall_in_grant_order() {
        let mut m = intra_inc();
        let l = m.alloc_lock();
        // Core 0 gets it immediately.
        let e = m.execute(CoreId(0), &Op::LockAcquire(l), 0);
        assert!(matches!(e, Exec::Done { .. }));
        // Core 1 parks.
        assert_eq!(m.execute(CoreId(1), &Op::LockAcquire(l), 10), Exec::Parked);
        assert_eq!(m.parked_category(CoreId(1)), Some(StallCategory::Lock));
        // Core 0 releases at t=500; core 1 wakes after that.
        m.execute(CoreId(0), &Op::LockRelease(l), 500);
        let wk = m.take_wakeups();
        assert_eq!(wk.len(), 1);
        assert_eq!(wk[0].core, CoreId(1));
        assert!(wk[0].at > 500);
        finish_active(&mut m, 2000);
        let stats = m.finish();
        assert!(stats.ledgers[1].lock >= 490, "waited from 10 to past 500");
    }

    #[test]
    fn flag_set_wakes_waiters() {
        let mut m = intra_inc();
        let f = m.alloc_flag();
        assert_eq!(m.execute(CoreId(3), &Op::FlagWait(f), 50), Exec::Parked);
        m.execute(CoreId(0), &Op::FlagSet(f), 200);
        let wk = m.take_wakeups();
        assert_eq!(wk.len(), 1);
        assert_eq!(wk[0].core, CoreId(3));
        assert!(wk[0].at > 200);
        // A wait after the set sails through.
        let e = m.execute(CoreId(4), &Op::FlagWait(f), 300);
        assert!(matches!(e, Exec::Done { .. }));
    }

    #[test]
    fn coherent_machine_ignores_wb_inv() {
        let mut m = Machine::coherent(MachineConfig::intra_block());
        let e = m.execute(CoreId(0), &Op::Coh(CohInstr::wb_all()), 10);
        assert_eq!(
            e,
            Exec::Done {
                value: None,
                end: 10
            }
        );
        let e = m.execute(CoreId(0), &Op::Coh(CohInstr::inv_all()), 10);
        assert_eq!(
            e,
            Exec::Done {
                value: None,
                end: 10
            }
        );
        finish_active(&mut m, 10);
        let stats = m.finish();
        assert_eq!(stats.merged_ledger().wb, 0);
        assert_eq!(stats.merged_ledger().inv, 0);
    }

    #[test]
    fn reference_machine_ignores_wb_inv_and_is_fresh() {
        let mut m = Machine::reference(MachineConfig::intra_block());
        m.execute(CoreId(0), &Op::Store(w(0x300), 9), 0);
        let e = m.execute(CoreId(0), &Op::Coh(CohInstr::wb_all()), 10);
        assert_eq!(
            e,
            Exec::Done {
                value: None,
                end: 10
            }
        );
        // A different core reads the stored value with no WB in between.
        match m.execute(CoreId(7), &Op::Load(w(0x300)), 20) {
            Exec::Done { value: Some(v), .. } => assert_eq!(v, 9),
            other => panic!("unexpected {other:?}"),
        }
        finish_active(&mut m, 100);
        let stats = m.finish();
        assert_eq!(stats.merged_ledger().wb, 0);
        assert_eq!(stats.merged_ledger().inv, 0);
    }

    #[test]
    fn incoherent_wb_inv_charge_their_categories() {
        let mut m = intra_inc();
        m.execute(CoreId(0), &Op::Store(w(0x200), 1), 0);
        m.execute(
            CoreId(0),
            &Op::Coh(CohInstr::wb(Target::word(w(0x200)))),
            10,
        );
        m.execute(
            CoreId(0),
            &Op::Coh(CohInstr::inv(Target::word(w(0x200)))),
            20,
        );
        finish_active(&mut m, 100);
        let stats = m.finish();
        assert!(stats.ledgers[0].wb > 0);
        assert!(stats.ledgers[0].inv > 0);
    }

    #[test]
    fn finish_records_completion_and_total() {
        let mut m = intra_inc();
        m.execute(CoreId(0), &Op::Finish, 123);
        m.execute(CoreId(1), &Op::Finish, 456);
        let stats = m.finish();
        assert_eq!(stats.total_cycles, 456);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never issued Op::Finish")]
    fn finish_catches_cores_that_ran_but_never_finished() {
        let mut m = intra_inc();
        m.execute(CoreId(0), &Op::Compute(10), 0);
        m.finish();
    }

    #[test]
    fn batch_executes_members_back_to_back() {
        // A batch must produce exactly the timing and state of sending
        // its members one at a time.
        let ops = vec![
            Op::Store(w(0x400), 1),
            Op::Compute(13),
            Op::Store(w(0x408), 2),
            Op::Coh(CohInstr::wb(Target::word(w(0x400)))),
        ];
        let mut a = intra_inc();
        let mut t = 5;
        for op in &ops {
            match a.execute(CoreId(0), op, t) {
                Exec::Done { end, .. } => t = end,
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut b = intra_inc();
        let e = b.execute(CoreId(0), &Op::Batch(ops), 5);
        assert_eq!(
            e,
            Exec::Done {
                value: None,
                end: t
            }
        );
        assert_eq!(a.peek_word(w(0x400)), b.peek_word(w(0x400)));
        assert_eq!(a.peek_word(w(0x408)), b.peek_word(w(0x408)));
        finish_active(&mut a, t);
        finish_active(&mut b, t);
        assert_eq!(a.finish().ledgers, b.finish().ledgers);
    }

    #[test]
    fn compute_advances_clock_and_rest() {
        let mut m = intra_inc();
        let e = m.execute(CoreId(2), &Op::Compute(77), 100);
        assert_eq!(
            e,
            Exec::Done {
                value: None,
                end: 177
            }
        );
        finish_active(&mut m, 177);
        let stats = m.finish();
        assert_eq!(stats.ledgers[2].rest, 77);
    }

    #[test]
    fn uncached_ops_bypass_the_l1() {
        let mut m = intra_inc();
        // An uncached store then an uncached load round-trip the value
        // without ever allocating in any L1.
        m.execute(CoreId(0), &Op::StoreUnc(w(0x900), 77), 0);
        match m.execute(CoreId(1), &Op::LoadUnc(w(0x900)), 10) {
            Exec::Done {
                value: Some(v),
                end,
            } => {
                assert_eq!(v, 77, "uncached accesses are always fresh");
                assert!(end > 10, "uncached access costs a shared-cache round trip");
            }
            other => panic!("unexpected {other:?}"),
        }
        let sys = m.backend().as_incoherent().expect("incoherent machine");
        assert!(!sys.l1_holds(CoreId(0), w(0x900)));
        assert!(!sys.l1_holds(CoreId(1), w(0x900)));
    }

    #[test]
    fn uncached_ops_fresh_across_blocks() {
        let mut m = Machine::incoherent(MachineConfig::inter_block());
        m.execute(CoreId(0), &Op::StoreUnc(w(0xA00), 5), 0);
        match m.execute(CoreId(31), &Op::LoadUnc(w(0xA00)), 1) {
            Exec::Done { value: Some(v), .. } => assert_eq!(v, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<hic_fault::FaultPlan>| {
            let mut m = intra_inc();
            if let Some(p) = plan {
                m.enable_faults(p);
            }
            let b = m.alloc_barrier(2);
            m.poke_word(w(0x100), 1);
            m.execute(CoreId(0), &Op::Store(w(0x100), 7), 0);
            m.execute(CoreId(0), &Op::Coh(hic_core::CohInstr::wb_all()), 50);
            m.execute(CoreId(0), &Op::BarrierArrive(b), 400);
            m.execute(CoreId(1), &Op::BarrierArrive(b), 500);
            m.take_wakeups();
            m.execute(CoreId(1), &Op::Load(w(0x100)), 900);
            finish_active(&mut m, 2000);
            (m.finish(), m.peek_word(w(0x100)))
        };
        let (base, v0) = run(None);
        let (zero, v1) = run(Some(hic_fault::FaultPlan::zero(42)));
        assert_eq!(v0, v1);
        assert_eq!(base.total_cycles, zero.total_cycles);
        assert_eq!(base.traffic, zero.traffic);
        assert_eq!(base.ledgers, zero.ledgers);
        assert!(zero.resilience.is_zero());
    }

    #[test]
    fn ack_delays_are_injected_and_counted() {
        let plan = hic_fault::FaultPlan {
            ack_delay_period: 1, // delay every ack
            ack_delay_cycles: 25,
            ..hic_fault::FaultPlan::zero(7)
        };
        let mut base = intra_inc();
        let mut faulty = intra_inc();
        faulty.enable_faults(plan);
        for m in [&mut base, &mut faulty] {
            let b = m.alloc_barrier(2);
            m.execute(CoreId(0), &Op::BarrierArrive(b), 0);
            m.execute(CoreId(1), &Op::BarrierArrive(b), 10);
        }
        let wk_base = base.take_wakeups();
        let wk_faulty = faulty.take_wakeups();
        assert_eq!(wk_base.len(), 1);
        assert_eq!(wk_faulty.len(), 1);
        assert_eq!(wk_faulty[0].at, wk_base[0].at + 25, "ack arrives late");
        finish_active(&mut base, 1000);
        finish_active(&mut faulty, 1000);
        let stats = faulty.finish();
        assert!(stats.resilience.delayed_acks >= 2, "both grants delayed");
        assert_eq!(
            stats.resilience.ack_delay_cycles,
            25 * stats.resilience.delayed_acks
        );
        assert!(base.finish().resilience.is_zero());
    }

    #[test]
    fn sync_traffic_is_counted() {
        let mut m = intra_inc();
        let b = m.alloc_barrier(2);
        m.execute(CoreId(0), &Op::BarrierArrive(b), 0);
        m.execute(CoreId(1), &Op::BarrierArrive(b), 0);
        m.take_wakeups();
        finish_active(&mut m, 1000);
        assert!(m.finish().traffic.sync >= 4, "2 requests + 2 responses");
    }
}
