//! The [`Machine`]: one memory system + the synchronization controller +
//! per-core stall accounting, driven synchronously in simulated-time order.
//!
//! The runtime (in `hic-runtime`) guarantees that `execute` is called in
//! global simulated-time order across cores (conservative event ordering),
//! so every memory-system transition happens at a well-defined time.
//!
//! Blocking synchronization ops park the core inside the machine; when a
//! later op completes the barrier / releases the lock / sets the flag, the
//! machine emits [`Wakeup`]s that tell the runtime when each parked core
//! resumes, and charges the waiting time to the appropriate stall category.

use std::collections::HashMap;

use hic_coherence::MesiSystem;
use hic_mem::{Word, WordAddr};
use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::{CoreId, Cycle, MachineConfig, StallCategory, StallLedger};
use hic_sync::{Grant, SyncController, SyncId};

use crate::incoherent::{IncCounters, IncoherentSystem};
use crate::ops::Op;
use crate::trace::{TraceEvent, TraceRing};

/// The memory side of the machine: incoherent or MESI-coherent.
#[derive(Debug)]
pub enum MemSys {
    Incoherent(Box<IncoherentSystem>),
    Coherent(Box<MesiSystem>),
}

impl MemSys {
    fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        match self {
            MemSys::Incoherent(m) => m.read(c, w),
            MemSys::Coherent(m) => m.read(c, w),
        }
    }

    fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        match self {
            MemSys::Incoherent(m) => m.write(c, w, v),
            MemSys::Coherent(m) => m.write(c, w, v),
        }
    }

    /// Traffic ledger of whichever system is active.
    pub fn traffic(&self) -> TrafficLedger {
        match self {
            MemSys::Incoherent(m) => m.traffic,
            MemSys::Coherent(m) => m.traffic,
        }
    }

    fn traffic_mut(&mut self) -> &mut TrafficLedger {
        match self {
            MemSys::Incoherent(m) => &mut m.traffic,
            MemSys::Coherent(m) => &mut m.traffic,
        }
    }
}

/// Result of executing one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// The op completed: optional value (loads) and completion time.
    Done { value: Option<Word>, end: Cycle },
    /// The op blocked; a [`Wakeup`] will carry the resume time later.
    Parked,
}

/// A parked core resuming at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wakeup {
    pub core: CoreId,
    pub at: Cycle,
}

/// Aggregated results of a finished run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Wall-clock of the program: max core completion time.
    pub total_cycles: Cycle,
    /// Per-core stall ledgers.
    pub ledgers: Vec<StallLedger>,
    /// Flit traffic.
    pub traffic: TrafficLedger,
    /// Incoherent-machine counters (zeros for HCC).
    pub counters: IncCounters,
}

impl RunStats {
    /// All core ledgers merged.
    pub fn merged_ledger(&self) -> StallLedger {
        self.ledgers.iter().fold(StallLedger::new(), |a, b| a.merged(b))
    }
}

/// One simulated machine instance.
pub struct Machine {
    pub msys: MemSys,
    sync: SyncController,
    mesh: Mesh,
    cfg: MachineConfig,
    ledgers: Vec<StallLedger>,
    /// Parked cores: issue time + the category their wait is charged to.
    parked: HashMap<usize, (Cycle, StallCategory)>,
    wakeups: Vec<Wakeup>,
    finished_at: Vec<Option<Cycle>>,
    trace: TraceRing,
}

impl Machine {
    /// Build an incoherent machine.
    pub fn incoherent(cfg: MachineConfig) -> Machine {
        let n = cfg.num_cores();
        Machine {
            msys: MemSys::Incoherent(Box::new(IncoherentSystem::new(cfg.clone()))),
            sync: SyncController::new(),
            mesh: Mesh::new(n, cfg.hop_cycles),
            ledgers: vec![StallLedger::new(); n],
            parked: HashMap::new(),
            wakeups: Vec::new(),
            finished_at: vec![None; n],
            trace: TraceRing::default(),
            cfg,
        }
    }

    /// Build a hardware-coherent (MESI directory) machine.
    pub fn coherent(cfg: MachineConfig) -> Machine {
        let n = cfg.num_cores();
        Machine {
            msys: MemSys::Coherent(Box::new(MesiSystem::new(cfg.clone()))),
            sync: SyncController::new(),
            mesh: Mesh::new(n, cfg.hop_cycles),
            ledgers: vec![StallLedger::new(); n],
            parked: HashMap::new(),
            wakeups: Vec::new(),
            finished_at: vec![None; n],
            trace: TraceRing::default(),
            cfg,
        }
    }

    /// Keep a ring of the most recent `capacity` operations for
    /// debugging; retrieve with [`Machine::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::new(capacity);
    }

    /// The trace ring (empty unless [`Machine::enable_trace`] was called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    pub fn is_coherent(&self) -> bool {
        matches!(self.msys, MemSys::Coherent(_))
    }

    /// Access to the incoherent system (ThreadMap setup, counters).
    pub fn incoherent_mut(&mut self) -> Option<&mut IncoherentSystem> {
        match &mut self.msys {
            MemSys::Incoherent(m) => Some(m),
            MemSys::Coherent(_) => None,
        }
    }

    pub fn sync_mut(&mut self) -> &mut SyncController {
        &mut self.sync
    }

    /// Declare sync variables (runtime setup).
    pub fn alloc_barrier(&mut self, participants: usize) -> SyncId {
        self.sync.alloc_barrier(participants)
    }

    pub fn alloc_lock(&mut self) -> SyncId {
        self.sync.alloc_lock()
    }

    pub fn alloc_flag(&mut self) -> SyncId {
        self.sync.alloc_flag()
    }

    /// One-way latency from a core to the sync controller holding `id`.
    /// Sync hardware lives in the shared-cache controllers: an L2 bank for
    /// the single-block machine, an L3 (corner) bank for the multi-block
    /// machine (§III-D).
    fn sync_oneway(&self, c: CoreId, id: SyncId) -> u64 {
        if self.cfg.inter.is_some() {
            self.mesh.latency_to_corner(c.0, id.0 % 4)
        } else {
            let bank_tile = id.0 % self.cfg.num_cores();
            self.mesh.latency(c.0, bank_tile)
        }
    }

    /// Controller service time for a sync request.
    fn sync_service(&self) -> u64 {
        if let Some(e) = &self.cfg.inter {
            e.l3_rt / 2
        } else {
            self.cfg.l2_rt / 2
        }
    }

    fn park(&mut self, c: CoreId, issue: Cycle, cat: StallCategory) -> Exec {
        let prev = self.parked.insert(c.0, (issue, cat));
        debug_assert!(prev.is_none(), "core parked twice");
        Exec::Parked
    }

    /// Process grants from the controller: the issuing core's own grant (if
    /// any) completes its op; other cores become wakeups.
    fn apply_grants(&mut self, grants: Vec<Grant>, id: SyncId, me: CoreId, my_issue: Cycle, cat: StallCategory) -> Option<Cycle> {
        let mut my_end = None;
        for g in grants {
            let resume = g.at + self.sync_oneway(g.core, id);
            self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
            if g.core == me {
                self.ledgers[me.0].charge(cat, resume.saturating_sub(my_issue));
                my_end = Some(resume);
            } else {
                let (issue, pcat) = self
                    .parked
                    .remove(&g.core.0)
                    .expect("granted core must be parked");
                self.ledgers[g.core.0].charge(pcat, resume.saturating_sub(issue));
                self.wakeups.push(Wakeup { core: g.core, at: resume });
            }
        }
        my_end
    }

    /// Drain pending wakeups (parked cores that may now resume).
    pub fn take_wakeups(&mut self) -> Vec<Wakeup> {
        std::mem::take(&mut self.wakeups)
    }

    /// Execute `op` for core `c` whose local clock reads `now`.
    pub fn execute(&mut self, c: CoreId, op: &Op, now: Cycle) -> Exec {
        let result = self.execute_inner(c, op, now);
        if self.trace.enabled() {
            let (end, blocked) = match result {
                Exec::Done { end, .. } => (end, false),
                Exec::Parked => (now, true),
            };
            self.trace.push(TraceEvent { core: c, start: now, end, op: *op, blocked });
        }
        result
    }

    fn execute_inner(&mut self, c: CoreId, op: &Op, now: Cycle) -> Exec {
        debug_assert!(self.finished_at[c.0].is_none(), "op after Finish");
        match *op {
            Op::Load(w) => {
                let (v, lat) = self.msys.read(c, w);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done { value: Some(v), end: now + lat }
            }
            Op::Store(w, v) => {
                let lat = self.msys.write(c, w, v);
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done { value: None, end: now + lat }
            }
            Op::LoadUnc(w) => {
                let (v, lat) = match &mut self.msys {
                    MemSys::Incoherent(m) => m.read_uncached(c, w),
                    // Uncacheable semantics degenerate to plain coherent
                    // accesses under MESI (hardware keeps them fresh).
                    MemSys::Coherent(m) => m.read(c, w),
                };
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done { value: Some(v), end: now + lat }
            }
            Op::StoreUnc(w, v) => {
                let lat = match &mut self.msys {
                    MemSys::Incoherent(m) => m.write_uncached(c, w, v),
                    MemSys::Coherent(m) => m.write(c, w, v),
                };
                self.ledgers[c.0].charge(StallCategory::Rest, lat);
                Exec::Done { value: None, end: now + lat }
            }
            Op::Compute(n) => {
                self.ledgers[c.0].charge(StallCategory::Rest, n);
                Exec::Done { value: None, end: now + n }
            }
            Op::Coh(instr) => match &mut self.msys {
                MemSys::Incoherent(m) => {
                    let (lat, is_wb) = m.exec_coh(c, instr);
                    let cat = if is_wb { StallCategory::Wb } else { StallCategory::Inv };
                    self.ledgers[c.0].charge(cat, lat);
                    Exec::Done { value: None, end: now + lat }
                }
                // The coherent machine ignores WB/INV: hardware coherence
                // already moves the data.
                MemSys::Coherent(_) => Exec::Done { value: None, end: now },
            },
            Op::MebBegin => {
                if let MemSys::Incoherent(m) = &mut self.msys {
                    m.meb_begin(c);
                }
                Exec::Done { value: None, end: now }
            }
            Op::IebBegin => {
                if let MemSys::Incoherent(m) = &mut self.msys {
                    m.ieb_begin(c);
                }
                Exec::Done { value: None, end: now }
            }
            Op::IebEnd => {
                if let MemSys::Incoherent(m) = &mut self.msys {
                    m.ieb_end(c);
                }
                Exec::Done { value: None, end: now }
            }
            Op::BarrierArrive(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                let grants = self.sync.barrier_arrive(id, c, arrive).expect("barrier misuse");
                if grants.is_empty() {
                    self.park(c, now, StallCategory::Barrier)
                } else {
                    let end = self
                        .apply_grants(grants, id, c, now, StallCategory::Barrier)
                        .expect("last arriver is granted");
                    Exec::Done { value: None, end }
                }
            }
            Op::LockAcquire(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                match self.sync.lock_acquire(id, c, arrive).expect("lock misuse") {
                    Some(g) => {
                        let end = self
                            .apply_grants(vec![g], id, c, now, StallCategory::Lock)
                            .expect("own grant");
                        Exec::Done { value: None, end }
                    }
                    None => self.park(c, now, StallCategory::Lock),
                }
            }
            Op::LockRelease(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                if let Some(g) = self.sync.lock_release(id, c, arrive).expect("release misuse") {
                    self.apply_grants(vec![g], id, c, now, StallCategory::Lock);
                }
                // The releaser posts the release and continues.
                let end = arrive;
                self.ledgers[c.0].charge(StallCategory::Rest, end - now);
                Exec::Done { value: None, end }
            }
            Op::FlagSet(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                let grants = self.sync.flag_set(id, arrive).expect("flag misuse");
                self.apply_grants(grants, id, c, now, StallCategory::Lock);
                let end = arrive;
                self.ledgers[c.0].charge(StallCategory::Rest, end - now);
                Exec::Done { value: None, end }
            }
            Op::FlagClear(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                self.sync.flag_clear(id).expect("flag misuse");
                self.ledgers[c.0].charge(StallCategory::Rest, arrive - now);
                Exec::Done { value: None, end: arrive }
            }
            Op::FlagWait(id) => {
                let arrive = now + self.sync_oneway(c, id) + self.sync_service();
                self.msys.traffic_mut().add(TrafficCategory::Sync, 1);
                // Flag waits are charged as lock stall: both are blocking
                // waits on a peer's progress (Figure 9 has no separate
                // flag category).
                match self.sync.flag_wait(id, c, arrive).expect("flag misuse") {
                    Some(g) => {
                        let end = self
                            .apply_grants(vec![g], id, c, now, StallCategory::Lock)
                            .expect("own grant");
                        Exec::Done { value: None, end }
                    }
                    None => self.park(c, now, StallCategory::Lock),
                }
            }
            Op::Finish => {
                self.finished_at[c.0] = Some(now);
                Exec::Done { value: None, end: now }
            }
        }
    }

    /// Is the core parked on a blocking sync op?
    pub fn is_parked(&self, c: CoreId) -> bool {
        self.parked.contains_key(&c.0)
    }

    /// Number of parked cores.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Finish bookkeeping: aggregate stats once every core is done.
    pub fn finish(&self) -> RunStats {
        let total = self
            .finished_at
            .iter()
            .map(|t| t.unwrap_or(0))
            .max()
            .unwrap_or(0);
        let counters = match &self.msys {
            MemSys::Incoherent(m) => m.counters,
            MemSys::Coherent(_) => IncCounters::default(),
        };
        RunStats {
            total_cycles: total,
            ledgers: self.ledgers.clone(),
            traffic: self.msys.traffic(),
            counters,
        }
    }

    /// Value backdoor (for result checks).
    pub fn peek_word(&self, w: WordAddr) -> Word {
        match &self.msys {
            MemSys::Incoherent(m) => m.peek_word(w),
            MemSys::Coherent(m) => m.peek_word(w),
        }
    }

    /// Memory backdoor (for initialization before the run).
    pub fn poke_word(&mut self, w: WordAddr, v: Word) {
        match &mut self.msys {
            MemSys::Incoherent(m) => m.poke_word(w, v),
            MemSys::Coherent(m) => m.poke_word(w, v),
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("coherent", &self.is_coherent())
            .field("cores", &self.cfg.num_cores())
            .field("parked", &self.parked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_core::{CohInstr, Target};
    use hic_mem::Addr;

    fn w(byte: u64) -> WordAddr {
        Addr(byte).word()
    }

    fn intra_inc() -> Machine {
        Machine::incoherent(MachineConfig::intra_block())
    }

    #[test]
    fn load_store_roundtrip_with_latency() {
        let mut m = intra_inc();
        let e = m.execute(CoreId(0), &Op::Store(w(0x100), 42), 0);
        let t1 = match e {
            Exec::Done { end, .. } => end,
            _ => panic!(),
        };
        assert!(t1 > 0);
        match m.execute(CoreId(0), &Op::Load(w(0x100)), t1) {
            Exec::Done { value: Some(v), end } => {
                assert_eq!(v, 42);
                assert_eq!(end, t1 + m.config().l1_rt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn barrier_parks_then_wakes_everyone() {
        let mut m = intra_inc();
        let b = m.alloc_barrier(3);
        assert_eq!(m.execute(CoreId(0), &Op::BarrierArrive(b), 100), Exec::Parked);
        assert_eq!(m.execute(CoreId(1), &Op::BarrierArrive(b), 200), Exec::Parked);
        assert_eq!(m.parked_count(), 2);
        let e = m.execute(CoreId(2), &Op::BarrierArrive(b), 300);
        let my_end = match e {
            Exec::Done { end, .. } => end,
            _ => panic!("last arriver completes"),
        };
        assert!(my_end >= 300);
        let wakeups = m.take_wakeups();
        assert_eq!(wakeups.len(), 2);
        for wk in &wakeups {
            assert!(wk.at >= 300, "no one resumes before the last arrival");
        }
        assert_eq!(m.parked_count(), 0);
        // Waiting time was charged to barrier stall.
        let stats = m.finish();
        assert!(stats.ledgers[0].barrier >= 200, "core 0 waited ~200+ cycles");
    }

    #[test]
    fn lock_contention_charges_lock_stall_in_grant_order() {
        let mut m = intra_inc();
        let l = m.alloc_lock();
        // Core 0 gets it immediately.
        let e = m.execute(CoreId(0), &Op::LockAcquire(l), 0);
        assert!(matches!(e, Exec::Done { .. }));
        // Core 1 parks.
        assert_eq!(m.execute(CoreId(1), &Op::LockAcquire(l), 10), Exec::Parked);
        // Core 0 releases at t=500; core 1 wakes after that.
        m.execute(CoreId(0), &Op::LockRelease(l), 500);
        let wk = m.take_wakeups();
        assert_eq!(wk.len(), 1);
        assert_eq!(wk[0].core, CoreId(1));
        assert!(wk[0].at > 500);
        let stats = m.finish();
        assert!(stats.ledgers[1].lock >= 490, "waited from 10 to past 500");
    }

    #[test]
    fn flag_set_wakes_waiters() {
        let mut m = intra_inc();
        let f = m.alloc_flag();
        assert_eq!(m.execute(CoreId(3), &Op::FlagWait(f), 50), Exec::Parked);
        m.execute(CoreId(0), &Op::FlagSet(f), 200);
        let wk = m.take_wakeups();
        assert_eq!(wk.len(), 1);
        assert_eq!(wk[0].core, CoreId(3));
        assert!(wk[0].at > 200);
        // A wait after the set sails through.
        let e = m.execute(CoreId(4), &Op::FlagWait(f), 300);
        assert!(matches!(e, Exec::Done { .. }));
    }

    #[test]
    fn coherent_machine_ignores_wb_inv() {
        let mut m = Machine::coherent(MachineConfig::intra_block());
        let e = m.execute(CoreId(0), &Op::Coh(CohInstr::wb_all()), 10);
        assert_eq!(e, Exec::Done { value: None, end: 10 });
        let e = m.execute(CoreId(0), &Op::Coh(CohInstr::inv_all()), 10);
        assert_eq!(e, Exec::Done { value: None, end: 10 });
        let stats = m.finish();
        assert_eq!(stats.merged_ledger().wb, 0);
        assert_eq!(stats.merged_ledger().inv, 0);
    }

    #[test]
    fn incoherent_wb_inv_charge_their_categories() {
        let mut m = intra_inc();
        m.execute(CoreId(0), &Op::Store(w(0x200), 1), 0);
        m.execute(CoreId(0), &Op::Coh(CohInstr::wb(Target::word(w(0x200)))), 10);
        m.execute(CoreId(0), &Op::Coh(CohInstr::inv(Target::word(w(0x200)))), 20);
        let stats = m.finish();
        assert!(stats.ledgers[0].wb > 0);
        assert!(stats.ledgers[0].inv > 0);
    }

    #[test]
    fn finish_records_completion_and_total() {
        let mut m = intra_inc();
        m.execute(CoreId(0), &Op::Finish, 123);
        m.execute(CoreId(1), &Op::Finish, 456);
        let stats = m.finish();
        assert_eq!(stats.total_cycles, 456);
    }

    #[test]
    fn compute_advances_clock_and_rest() {
        let mut m = intra_inc();
        let e = m.execute(CoreId(2), &Op::Compute(77), 100);
        assert_eq!(e, Exec::Done { value: None, end: 177 });
        let stats = m.finish();
        assert_eq!(stats.ledgers[2].rest, 77);
    }

    #[test]
    fn uncached_ops_bypass_the_l1() {
        let mut m = intra_inc();
        // An uncached store then an uncached load round-trip the value
        // without ever allocating in any L1.
        m.execute(CoreId(0), &Op::StoreUnc(w(0x900), 77), 0);
        match m.execute(CoreId(1), &Op::LoadUnc(w(0x900)), 10) {
            Exec::Done { value: Some(v), end } => {
                assert_eq!(v, 77, "uncached accesses are always fresh");
                assert!(end > 10, "uncached access costs a shared-cache round trip");
            }
            other => panic!("unexpected {other:?}"),
        }
        if let MemSys::Incoherent(sys) = &m.msys {
            assert!(!sys.l1_holds(CoreId(0), w(0x900)));
            assert!(!sys.l1_holds(CoreId(1), w(0x900)));
        }
    }

    #[test]
    fn uncached_ops_fresh_across_blocks() {
        let mut m = Machine::incoherent(MachineConfig::inter_block());
        m.execute(CoreId(0), &Op::StoreUnc(w(0xA00), 5), 0);
        match m.execute(CoreId(31), &Op::LoadUnc(w(0xA00)), 1) {
            Exec::Done { value: Some(v), .. } => assert_eq!(v, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sync_traffic_is_counted() {
        let mut m = intra_inc();
        let b = m.alloc_barrier(2);
        m.execute(CoreId(0), &Op::BarrierArrive(b), 0);
        m.execute(CoreId(1), &Op::BarrierArrive(b), 0);
        m.take_wakeups();
        assert!(m.finish().traffic.sync >= 4, "2 requests + 2 responses");
    }
}
