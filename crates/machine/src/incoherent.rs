//! The hardware-incoherent cache hierarchy with WB/INV management.
//!
//! Caches never snoop and no directory exists. Data moves only when:
//!
//! * a miss pulls a line up (L2 -> L1, L3/memory -> L2);
//! * an eviction or a WB instruction pushes dirty words down;
//! * an INV instruction drops local copies (writing dirty words back
//!   first — no update is ever lost, §III-B).
//!
//! The hierarchy is non-inclusive. A dirty push lands in the first lower
//! level that holds the line, else in memory; the read path always probes
//! levels in order, so visibility is preserved.
//!
//! Latency model (DESIGN.md §2): cache round trips from Table III plus
//! mesh hops; `ALL` flavors pay a tag-traversal cost of
//! `lines / tags_per_cycle` cycles, writebacks pipeline at one line per
//! `wb_pipeline_ii` cycles; the MEB replaces the traversal by its own
//! (tiny) occupancy, and the IEB replaces the up-front `INV ALL` with
//! per-first-read refreshes.

use hic_check::Checker;
use hic_core::ieb::IebAction;
use hic_core::{CohInstr, Ieb, InvScope, Meb, MebDrain, Target, ThreadMap, WbScope};
use hic_fault::{FaultPlan, FaultState, ResilienceStats, SALT_MEM};
use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::cache::{DirtyMask, EvictedLine};
use hic_mem::{Cache, LineAddr, Memory, Word, WordAddr};
use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::{CoreId, MachineConfig, ThreadId};
use serde::{Deserialize, Serialize};

use crate::ops::Op;

/// Cycles for a flash (gang) clear of a whole cache's valid bits. ALL-
/// flavor operations complete in this time when the dirty-line counter
/// says there is nothing to write back.
const FLASH_CYCLES: u64 = 4;

/// Event counters used by the Figure 11 harness and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncCounters {
    /// WB instructions executed, split by the level they reached.
    pub local_wbs: u64,
    pub global_wbs: u64,
    /// INV instructions executed, split by the level they reached.
    pub local_invs: u64,
    pub global_invs: u64,
    /// Lines actually transferred by WB operations.
    pub lines_written_back: u64,
    /// Lines dropped by INV operations.
    pub lines_invalidated: u64,
    /// First-read refreshes performed under IEB epochs.
    pub ieb_refreshes: u64,
    /// WB ALLs served from the MEB / that fell back to full traversal.
    pub meb_drains: u64,
    pub meb_overflows: u64,
}

/// The hardware-incoherent memory system.
#[derive(Debug)]
pub struct IncoherentSystem {
    cfg: MachineConfig,
    mesh: Mesh,
    cpb: usize,
    bpb: usize,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    mem: Memory,
    meb: Vec<Meb>,
    ieb: Vec<Ieb>,
    tmap: ThreadMap,
    pub traffic: TrafficLedger,
    pub counters: IncCounters,
    /// Reusable scratch for WB/INV traversals: `(line, dirty-words)`
    /// work lists and an address list. Taken with `mem::take` for the
    /// duration of one instruction and put back, so ALL-flavor
    /// instructions allocate nothing in steady state.
    wb_scratch: Vec<(LineAddr, DirtyMask)>,
    wb_l2_scratch: Vec<(LineAddr, DirtyMask)>,
    inv_scratch: Vec<LineAddr>,
    /// Optional incoherence sanitizer (`hic-check`). Boxed so the `None`
    /// fast path costs one pointer test; `None` runs are bit-identical to
    /// a build without the checker.
    pub(crate) checker: Option<Box<Checker>>,
    /// Fault injection (`hic-fault`, SALT_MEM stream): dropped transfers
    /// with retry and transient L1 bit flips. `None` runs are
    /// bit-identical to a build without injection.
    faults: Option<Box<FaultState>>,
    /// Latched unrecoverable fault (a corrupted dirty line), taken once
    /// by the machine and surfaced as `RunError::CorruptDirtyLine`.
    fault_fatal: Option<String>,
    /// Detachable per-core state for the sharded engine: `spares[c]`
    /// holds a dummy slice that swaps places with core `c`'s real
    /// L1/MEB/IEB while the real slice is checked out (`detach_core`),
    /// so both directions are allocation-free swaps.
    spares: Vec<Option<CoreSlice>>,
    /// `detached[c]` guards the sequential entry points: executing an op
    /// for a core whose slice is checked out is an engine bug.
    detached: Vec<bool>,
}

/// The core-private state of the incoherent hierarchy — L1, MEB, IEB —
/// packaged so the sharded engine can check it out of the machine and
/// run core-local ops against it without holding the global lock.
///
/// Nothing in the machine touches `l1[c]`/`meb[c]`/`ieb[c]` except ops
/// issued by core `c` itself: WB/INV instructions only operate on the
/// issuing core's L1, and `peek_word` scans L2/L3/memory, never L1. A
/// checked-out slice is therefore exclusively owned by its core's host
/// thread.
#[derive(Debug)]
pub struct CoreSlice {
    l1: Cache,
    meb: Meb,
    ieb: Ieb,
}

impl CoreSlice {
    fn dummy(cfg: &MachineConfig) -> CoreSlice {
        CoreSlice {
            l1: Cache::new(cfg.l1),
            meb: Meb::new(cfg.meb_entries),
            ieb: Ieb::new(cfg.ieb_entries),
        }
    }

    /// Execute `op` purely against the core-private slice: an L1-hit
    /// load (only while the IEB is inactive — `Ieb::on_read` can demand
    /// a refresh from the shared levels), an L1-hit store, a compute
    /// burst, or one of the zero-latency epoch markers. Returns the
    /// `(value, latency)` pair the machine would have produced, or
    /// `None` when the op needs the shared hierarchy and must be routed
    /// through the global event domain.
    ///
    /// The latency of every accepted op depends only on configuration
    /// (`l1_rt`, the compute count), and none of them moves a flit, so
    /// executing them out of global order is unobservable.
    pub fn try_execute(&mut self, op: &Op, l1_rt: u64) -> Option<(Option<Word>, u64)> {
        match *op {
            Op::Load(w) => {
                if self.ieb.active() {
                    return None;
                }
                self.l1
                    .read_word(w.line(), w.index_in_line())
                    .map(|v| (Some(v), l1_rt))
            }
            Op::Store(w, v) => {
                let line = w.line();
                match self.l1.write_word(line, w.index_in_line(), v) {
                    Some(was_clean) => {
                        if was_clean {
                            let id = self.l1.line_id(line).expect("resident");
                            self.meb.on_clean_word_write(id);
                        }
                        Some((None, l1_rt))
                    }
                    None => None,
                }
            }
            Op::Compute(n) => Some((None, n)),
            Op::MebBegin => {
                self.meb.begin_epoch();
                Some((None, 0))
            }
            Op::IebBegin => {
                self.ieb.begin_epoch();
                Some((None, 0))
            }
            Op::IebEnd => {
                self.ieb.end_epoch();
                Some((None, 0))
            }
            // Without a checker attached (a precondition of sharding)
            // the marker is a zero-latency no-op.
            Op::MarkRacy(_) => Some((None, 0)),
            _ => None,
        }
    }
}

impl IncoherentSystem {
    pub fn new(cfg: MachineConfig) -> IncoherentSystem {
        let ncores = cfg.num_cores();
        let nblocks = cfg.num_blocks();
        let cpb = cfg.cores_per_block();
        let bpb = cfg.l2_banks_per_block();
        let l3 = cfg.l3();
        let l3_banks = l3.map(|l| l.banks).unwrap_or(0);
        IncoherentSystem {
            mesh: Mesh::for_config(&cfg),
            cpb,
            bpb,
            l1: (0..ncores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..nblocks * bpb).map(|_| Cache::new(cfg.l2)).collect(),
            l3: (0..l3_banks)
                .map(|_| Cache::new(l3.expect("l3_banks > 0 implies an L3").geometry))
                .collect(),
            mem: Memory::new(),
            meb: (0..ncores).map(|_| Meb::new(cfg.meb_entries)).collect(),
            ieb: (0..ncores).map(|_| Ieb::new(cfg.ieb_entries)).collect(),
            tmap: ThreadMap::identity(nblocks, cpb),
            traffic: TrafficLedger::new(),
            counters: IncCounters::default(),
            wb_scratch: Vec::new(),
            wb_l2_scratch: Vec::new(),
            inv_scratch: Vec::new(),
            checker: None,
            faults: None,
            fault_fatal: None,
            spares: (0..ncores).map(|_| Some(CoreSlice::dummy(&cfg))).collect(),
            detached: vec![false; ncores],
            cfg,
        }
    }

    /// Check core `c`'s private slice (L1, MEB, IEB) out of the machine,
    /// leaving inert dummies in its place. The sequential entry points
    /// for `c` debug-assert against running while detached.
    pub fn detach_core(&mut self, c: CoreId) -> CoreSlice {
        debug_assert!(!self.detached[c.0], "core{} slice already detached", c.0);
        let mut s = self.spares[c.0].take().expect("spare slice present");
        std::mem::swap(&mut s.l1, &mut self.l1[c.0]);
        std::mem::swap(&mut s.meb, &mut self.meb[c.0]);
        std::mem::swap(&mut s.ieb, &mut self.ieb[c.0]);
        self.detached[c.0] = true;
        s
    }

    /// Re-attach a slice produced by [`IncoherentSystem::detach_core`].
    pub fn attach_core(&mut self, c: CoreId, mut s: CoreSlice) {
        debug_assert!(self.detached[c.0], "core{} slice not detached", c.0);
        std::mem::swap(&mut s.l1, &mut self.l1[c.0]);
        std::mem::swap(&mut s.meb, &mut self.meb[c.0]);
        std::mem::swap(&mut s.ieb, &mut self.ieb[c.0]);
        self.spares[c.0] = Some(s);
        self.detached[c.0] = false;
    }

    /// Install a fault plan: link perturbation on this system's mesh,
    /// transfer drop/retry, and (when the plan flips bits) per-line
    /// parity on every L1 so corruption is detected instead of silently
    /// returning wrong data. Plans with rollback recovery additionally
    /// enable copy-on-write dirty-line checkpoints on every L1, the
    /// restore source for corrupted dirty lines.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.mesh.set_faults(plan.link_faults());
        if plan.flip_period > 0 {
            for c in &mut self.l1 {
                c.enable_parity();
                if plan.recover {
                    c.enable_checkpoints();
                }
            }
        }
        self.faults = Some(Box::new(FaultState::new(*plan, SALT_MEM)));
    }

    /// Resilience ledger (zeros when no faults are installed). The
    /// checkpoint footprint lives in the L1s' checkpoint stores, not the
    /// fault state, so it is folded in here.
    pub fn resilience(&self) -> ResilienceStats {
        let mut r = self.faults.as_ref().map(|f| f.stats).unwrap_or_default();
        r.checkpoint_words += self.l1.iter().map(|c| c.checkpoint_words()).sum::<u64>();
        r
    }

    /// The latched unrecoverable fault, delivered at most once.
    pub fn take_fault_fatal(&mut self) -> Option<String> {
        self.fault_fatal.take()
    }

    /// A line (or partial-line) transfer crosses the mesh: give the
    /// fault plan a chance to drop it. A dropped transfer is recovered
    /// by a controller-side retry (timeout + exponential backoff): the
    /// retried flits are charged to the same traffic category and the
    /// retry wait is returned as extra cycles (callers on posted paths
    /// discard it — the core never waited for the original either).
    #[inline]
    fn fault_transfer(&mut self, flits: u64, cat: TrafficCategory) -> u64 {
        let Some(fs) = self.faults.as_mut() else {
            return 0;
        };
        let (extra_cycles, extra_flits) = fs.on_transfer(flits);
        if extra_flits > 0 {
            self.traffic.add(cat, extra_flits);
        }
        extra_cycles
    }

    /// Fault hook on the read path: maybe flip one bit of the L1 line
    /// about to be read, then verify the line's parity. A corrupted
    /// clean line recovers by refetch — the copy below is intact, so the
    /// line is dropped and the read misses into a fresh fill (counted as
    /// recovery traffic). A corrupted dirty line holds the only copy of
    /// its dirty words: with rollback recovery enabled the line is
    /// restored from its epoch checkpoint and the journaled stores are
    /// replayed (returning the repair latency, charged to the read);
    /// otherwise — or when a second upset strikes the line during its
    /// own replay — a fatal finding is latched instead of letting the
    /// run complete with silently wrong data.
    fn fault_scrub(&mut self, c: CoreId, line: LineAddr) -> u64 {
        let decision = match self.faults.as_mut() {
            Some(fs) => fs.flip_decision(),
            None => return 0,
        };
        if let Some((wsel, bit)) = decision {
            if let Some(mask) = self.l1[c.0].view(line).map(|v| v.dirty) {
                let fs = self.faults.as_mut().expect("faults installed");
                if mask == 0 || fs.flip_dirty_allowed() {
                    self.l1[c.0].corrupt_bit(line, wsel % WORDS_PER_LINE, bit);
                    let fs = self.faults.as_mut().expect("faults installed");
                    fs.stats.bit_flips += 1;
                }
            }
        }
        if !self.l1[c.0].parity_ok(line) {
            let mask = self.l1[c.0].view(line).map(|v| v.dirty).unwrap_or(0);
            if mask != 0 {
                let fs = self.faults.as_mut().expect("faults installed");
                if fs.recover_enabled() {
                    // Every dirtying path captures a checkpoint, so a
                    // resident dirty line is always tracked; a `None`
                    // here would be a checkpoint-store bug and falls
                    // through to the fatal rather than mis-serving.
                    if let Some(stores) = self.l1[c.0].rollback_line(line) {
                        let fs = self.faults.as_mut().expect("faults installed");
                        if fs.replay_flip(stores) {
                            if self.fault_fatal.is_none() {
                                self.fault_fatal = Some(format!(
                                    "corrupt dirty line: a second upset struck \
                                     {c}'s L1 copy of line {:#x} (dirty mask \
                                     {mask:#06x}) during its own rollback replay \
                                     of {stores} stores; the epoch checkpoint is \
                                     no longer a clean recovery point, so the \
                                     data cannot be recovered",
                                    line.0
                                ));
                            }
                            return 0;
                        }
                        // Restore round-trip plus one cycle per replayed
                        // store, charged to the read that tripped parity.
                        let cost = self.cfg.l1_rt + stores;
                        let fs = self.faults.as_mut().expect("faults installed");
                        fs.stats.rollbacks += 1;
                        fs.stats.rollback_cycles += cost;
                        return cost;
                    }
                }
                if self.fault_fatal.is_none() {
                    self.fault_fatal = Some(format!(
                        "corrupt dirty line: parity error in {c}'s L1 copy of \
                         line {:#x} (dirty mask {mask:#06x}); the dirty words \
                         exist nowhere else in the hierarchy, so the data \
                         cannot be recovered",
                        line.0
                    ));
                }
            } else {
                // Clean line: the copy below is intact. Drop the corrupted
                // line; the read misses and refetches a fresh copy.
                self.l1[c.0].invalidate(line);
                let flits = self.cfg.line_flits();
                let fs = self.faults.as_mut().expect("faults installed");
                fs.stats.flips_recovered += 1;
                fs.stats.recovery_flits += flits;
            }
        }
        0
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Replace the thread-to-block map (the runtime fills it at spawn).
    pub fn set_thread_map(&mut self, tmap: ThreadMap) {
        self.tmap = tmap;
    }

    pub fn thread_map(&self) -> &ThreadMap {
        &self.tmap
    }

    #[inline]
    fn block_of(&self, c: CoreId) -> usize {
        c.0 / self.cpb
    }

    /// Global L2 bank index of a line's home within `blk`.
    #[inline]
    fn home_bank(&self, blk: usize, line: LineAddr) -> usize {
        blk * self.bpb + (line.0 as usize % self.bpb)
    }

    /// Mesh tile of a global L2 bank.
    #[inline]
    fn bank_tile(&self, global_bank: usize) -> usize {
        let blk = global_bank / self.bpb;
        blk * self.cpb + (global_bank % self.bpb)
    }

    fn is_hier(&self) -> bool {
        !self.l3.is_empty()
    }

    /// Round trip of a local L3 bank access (0 on flat machines, which
    /// never reach an L3 path).
    #[inline]
    fn l3_rt(&self) -> u64 {
        self.cfg.l3().map(|l| l.rt).unwrap_or(0)
    }

    #[inline]
    fn l3_bank(&self, line: LineAddr) -> usize {
        line.0 as usize % self.l3.len()
    }

    // ------------------------------------------------------------------
    // Downward pushes (eviction / WB / INV writebacks)
    // ------------------------------------------------------------------

    /// Push dirty words below L1: into the block's L2 if it holds the
    /// line, else below L2. Counted as L1 writeback traffic.
    fn push_below_l1(
        &mut self,
        blk: usize,
        line: LineAddr,
        data: &[Word; WORDS_PER_LINE],
        mask: DirtyMask,
    ) {
        debug_assert!(mask != 0);
        let bytes = mask.count_ones() as usize * 4;
        let flits = self.cfg.flits_for(bytes);
        self.traffic.add(TrafficCategory::Writeback, flits);
        self.fault_transfer(flits, TrafficCategory::Writeback);
        let hb = self.home_bank(blk, line);
        if self.l2[hb].merge_words(line, data, mask) {
            if let Some(chk) = self.checker.as_deref_mut() {
                chk.on_push_to_block(blk, line, data, mask);
            }
            return;
        }
        self.push_below_l2(line, data, mask);
    }

    /// Push dirty words below L2: into L3 if present, else memory.
    fn push_below_l2(&mut self, line: LineAddr, data: &[Word; WORDS_PER_LINE], mask: DirtyMask) {
        debug_assert!(mask != 0);
        if let Some(chk) = self.checker.as_deref_mut() {
            chk.on_push_global(line, data, mask);
        }
        let bytes = mask.count_ones() as usize * 4;
        let flits = self.cfg.flits_for(bytes);
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            if self.l3[l3b].merge_words(line, data, mask) {
                self.traffic.add(TrafficCategory::L2L3, flits);
                self.fault_transfer(flits, TrafficCategory::L2L3);
                return;
            }
        }
        self.traffic.add(TrafficCategory::Memory, flits);
        self.fault_transfer(flits, TrafficCategory::Memory);
        self.mem.merge_words(line, data, mask);
    }

    /// Push dirty words below L3 (L3 evictions): memory.
    fn push_below_l3(&mut self, line: LineAddr, data: &[Word; WORDS_PER_LINE], mask: DirtyMask) {
        debug_assert!(mask != 0);
        let bytes = mask.count_ones() as usize * 4;
        let flits = self.cfg.flits_for(bytes);
        self.traffic.add(TrafficCategory::Memory, flits);
        self.fault_transfer(flits, TrafficCategory::Memory);
        self.mem.merge_words(line, data, mask);
    }

    fn handle_l1_eviction(&mut self, blk: usize, victim: EvictedLine) {
        if victim.dirty != 0 {
            self.push_below_l1(blk, victim.addr, &victim.data, victim.dirty);
        }
    }

    fn handle_l2_eviction(&mut self, victim: EvictedLine) {
        if victim.dirty != 0 {
            self.push_below_l2(victim.addr, &victim.data, victim.dirty);
        }
    }

    fn handle_l3_eviction(&mut self, victim: EvictedLine) {
        if victim.dirty != 0 {
            self.push_below_l3(victim.addr, &victim.data, victim.dirty);
        }
    }

    // ------------------------------------------------------------------
    // Upward fetches
    // ------------------------------------------------------------------

    /// Ensure the block's L2 holds `line`; returns the extra latency past
    /// the home-bank round trip.
    fn fetch_into_l2(&mut self, blk: usize, line: LineAddr) -> u64 {
        let hb = self.home_bank(blk, line);
        if self.l2[hb].probe(line).is_hit() {
            return 0;
        }
        let hb_tile = self.bank_tile(hb);
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            let mut lat = self.mesh.rt_latency_to_corner(hb_tile, l3b) + self.l3_rt();
            if !self.l3[l3b].probe(line).is_hit() {
                lat += self.cfg.mem_rt;
                let data = self.mem.read_line(line);
                self.traffic
                    .add(TrafficCategory::Memory, self.cfg.line_flits());
                lat += self.fault_transfer(self.cfg.line_flits(), TrafficCategory::Memory);
                if let Some(v) = self.l3[l3b].fill(line, data, 0) {
                    self.handle_l3_eviction(v);
                }
            }
            let data = *self.l3[l3b].view(line).expect("just filled").data;
            self.traffic
                .add(TrafficCategory::L2L3, self.cfg.line_flits());
            lat += self.fault_transfer(self.cfg.line_flits(), TrafficCategory::L2L3);
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.handle_l2_eviction(v);
            }
            lat
        } else {
            let corner = self.mesh.nearest_corner(hb_tile);
            let mut lat = self.mesh.rt_latency_to_corner(hb_tile, corner) + self.cfg.mem_rt;
            let data = self.mem.read_line(line);
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.line_flits());
            lat += self.fault_transfer(self.cfg.line_flits(), TrafficCategory::Memory);
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.handle_l2_eviction(v);
            }
            lat
        }
    }

    /// Fetch `line` into core `c`'s L1 (it must currently miss).
    /// Returns the latency beyond the L1 probe.
    fn fetch_into_l1(&mut self, c: CoreId, line: LineAddr) -> u64 {
        let blk = self.block_of(c);
        let hb = self.home_bank(blk, line);
        let mut lat = self.mesh.rt_latency(c.0, self.bank_tile(hb)) + self.cfg.l2_rt;
        lat += self.fetch_into_l2(blk, line);
        let data = *self.l2[hb].view(line).expect("in L2 now").data;
        self.traffic
            .add(TrafficCategory::Linefill, self.cfg.line_flits());
        lat += self.fault_transfer(self.cfg.line_flits(), TrafficCategory::Linefill);
        if let Some(v) = self.l1[c.0].fill(line, data, 0) {
            self.handle_l1_eviction(blk, v);
        }
        lat
    }

    // ------------------------------------------------------------------
    // Loads and stores
    // ------------------------------------------------------------------

    /// Incoherent load: serves whatever the local hierarchy holds (which
    /// may be stale — that is the point). Under an active IEB epoch the
    /// first read of each line is refreshed from the shared cache.
    pub fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        debug_assert!(!self.detached[c.0], "read while core{} detached", c.0);
        let line = w.line();
        let idx = w.index_in_line();
        let scrub = if self.faults.is_some() {
            // Rollback-repair latency (0 on the clean path), charged to
            // the read that tripped parity.
            self.fault_scrub(c, line)
        } else {
            0
        };
        if self.ieb[c.0].active() {
            let hit = self.l1[c.0].probe(line).is_hit();
            let word_dirty = hit && self.l1[c.0].word_dirty(line, idx);
            match self.ieb[c.0].on_read(line, word_dirty) {
                IebAction::Normal => {}
                IebAction::RefreshFromShared => {
                    self.counters.ieb_refreshes += 1;
                    let blk = self.block_of(c);
                    if let Some(inv) = self.l1[c.0].invalidate(line) {
                        if inv.dirty != 0 {
                            self.push_below_l1(blk, line, &inv.data, inv.dirty);
                        }
                    }
                    let lat = self.cfg.l1_rt + self.fetch_into_l1(c, line);
                    let v = self.l1[c.0].read_word(line, idx).expect("just filled");
                    return (v, scrub + lat);
                }
            }
        }
        if let Some(v) = self.l1[c.0].read_word(line, idx) {
            return (v, scrub + self.cfg.l1_rt);
        }
        let lat = self.cfg.l1_rt + self.fetch_into_l1(c, line);
        let v = self.l1[c.0].read_word(line, idx).expect("just filled");
        (v, scrub + lat)
    }

    /// Incoherent store: write-allocate into the L1, set the word's dirty
    /// bit, and feed the MEB on clean->dirty transitions.
    pub fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        debug_assert!(!self.detached[c.0], "write while core{} detached", c.0);
        let line = w.line();
        let idx = w.index_in_line();
        match self.l1[c.0].write_word(line, idx, v) {
            Some(was_clean) => {
                if was_clean {
                    let id = self.l1[c.0].line_id(line).expect("resident");
                    self.meb[c.0].on_clean_word_write(id);
                }
                self.cfg.l1_rt
            }
            None => {
                let lat = self.cfg.l1_rt + self.fetch_into_l1(c, line);
                let was_clean = self.l1[c.0].write_word(line, idx, v).expect("just filled");
                debug_assert!(was_clean);
                let id = self.l1[c.0].line_id(line).expect("resident");
                self.meb[c.0].on_clean_word_write(id);
                lat
            }
        }
    }

    /// Uncacheable load: served by the globally shared level — the L3 on
    /// the multi-block machine, the L2 otherwise — without touching the
    /// L1. Correct use requires that the word is accessed *only*
    /// uncacheably (the MPI library guarantees this for its buffers).
    pub fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        let line = w.line();
        let idx = w.index_in_line();
        self.traffic.add(TrafficCategory::Sync, 2);
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            let mut lat = self.mesh.rt_latency_to_corner(c.0, l3b) + self.l3_rt();
            if !self.l3[l3b].probe(line).is_hit() {
                lat += self.cfg.mem_rt;
                let data = self.mem.read_line(line);
                self.traffic
                    .add(TrafficCategory::Memory, self.cfg.line_flits());
                if let Some(v) = self.l3[l3b].fill(line, data, 0) {
                    self.handle_l3_eviction(v);
                }
            }
            (self.l3[l3b].view(line).expect("filled").data[idx], lat)
        } else {
            let blk = self.block_of(c);
            let hb = self.home_bank(blk, line);
            let mut lat = self.mesh.rt_latency(c.0, self.bank_tile(hb)) + self.cfg.l2_rt;
            lat += self.fetch_into_l2(blk, line);
            (self.l2[hb].view(line).expect("filled").data[idx], lat)
        }
    }

    /// Uncacheable store (see [`IncoherentSystem::read_uncached`]).
    pub fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        let line = w.line();
        let idx = w.index_in_line();
        self.traffic.add(TrafficCategory::Sync, 2);
        let mut one = [0u32; WORDS_PER_LINE];
        one[idx] = v;
        let mask: DirtyMask = 1 << idx;
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            let mut lat = self.mesh.rt_latency_to_corner(c.0, l3b) + self.l3_rt();
            if !self.l3[l3b].probe(line).is_hit() {
                lat += self.cfg.mem_rt;
                let data = self.mem.read_line(line);
                self.traffic
                    .add(TrafficCategory::Memory, self.cfg.line_flits());
                if let Some(vi) = self.l3[l3b].fill(line, data, 0) {
                    self.handle_l3_eviction(vi);
                }
            }
            self.l3[l3b].merge_words(line, &one, mask);
            lat
        } else {
            let blk = self.block_of(c);
            let hb = self.home_bank(blk, line);
            let mut lat = self.mesh.rt_latency(c.0, self.bank_tile(hb)) + self.cfg.l2_rt;
            lat += self.fetch_into_l2(blk, line);
            self.l2[hb].merge_words(line, &one, mask);
            lat
        }
    }

    // ------------------------------------------------------------------
    // WB / INV execution
    // ------------------------------------------------------------------

    /// Execute a coherence-management instruction for core `c`.
    /// Returns `(latency, is_wb)` so the caller can charge the right stall
    /// category.
    pub fn exec_coh(&mut self, c: CoreId, instr: CohInstr) -> (u64, bool) {
        debug_assert!(!self.detached[c.0], "exec_coh while core{} detached", c.0);
        match instr {
            CohInstr::Wb { target, scope } => (self.exec_wb(c, target, scope), true),
            CohInstr::Inv { target, scope } => (self.exec_inv(c, target, scope), false),
        }
    }

    /// Resolve a WB scope to "global" (must reach L3) using the ThreadMap.
    fn wb_is_global(&self, c: CoreId, scope: WbScope) -> bool {
        match scope {
            WbScope::ToL2 => false,
            WbScope::ToL3 => self.is_hier(),
            WbScope::Cons(t) => self.is_hier() && !self.is_local_thread(c, t),
        }
    }

    fn inv_is_global(&self, c: CoreId, scope: InvScope) -> bool {
        match scope {
            InvScope::FromL1 => false,
            InvScope::FromL2 => self.is_hier(),
            InvScope::Prod(t) => self.is_hier() && !self.is_local_thread(c, t),
        }
    }

    fn is_local_thread(&self, c: CoreId, t: ThreadId) -> bool {
        self.tmap.is_local(hic_sim::BlockId(self.block_of(c)), t)
    }

    fn exec_wb(&mut self, c: CoreId, target: Target, scope: WbScope) -> u64 {
        let global = self.wb_is_global(c, scope);
        if global {
            self.counters.global_wbs += 1;
        } else {
            self.counters.local_wbs += 1;
        }
        let blk = self.block_of(c);
        let mut lat;
        // Collect (line, words-to-push) pairs from the L1 into the
        // reusable scratch list (returned to `self` before exiting).
        let mut work = std::mem::take(&mut self.wb_scratch);
        work.clear();
        match target {
            Target::All => {
                // Try the MEB first: if it tracked the epoch, walk its IDs
                // instead of every tag.
                match self.meb_lines(c) {
                    Some(ids) => {
                        self.counters.meb_drains += 1;
                        lat = ids.len() as u64; // one lookup per entry
                        for id in ids {
                            if let Some(v) = self.l1[c.0].line_at_id(id) {
                                if v.dirty != 0 {
                                    work.push((v.addr, v.dirty));
                                }
                            }
                        }
                    }
                    None => {
                        // A dirty-line counter lets a clean cache skip the
                        // tag traversal entirely. (The simulated cost still
                        // models the tag sweep; the host walks only the
                        // dirty-slot bitmap.)
                        lat = if self.l1[c.0].dirty_lines_resident() == 0 {
                            FLASH_CYCLES
                        } else {
                            self.cfg.l1.num_lines() as u64 / self.cfg.tags_per_cycle
                        };
                        self.l1[c.0].for_each_dirty_line(|v| work.push((v.addr, v.dirty)));
                    }
                }
            }
            _ => {
                let lines = target.lines().expect("non-ALL target");
                lat = lines.len() as u64; // tag check per line
                for line in lines {
                    if let Some(v) = self.l1[c.0].view(line) {
                        let mask = v.dirty & target.word_mask(line);
                        if mask != 0 {
                            work.push((line, mask));
                        }
                    }
                }
            }
        }
        lat += self.cfg.l1_rt;
        // Transfer phase. WB proceeds like a store through the write
        // buffer (§III-C): the transfers are *posted* and pipeline at one
        // line per `wb_pipeline_ii`; the core does not wait for network
        // round trips. Only the whole-cache flavor pays a drain
        // acknowledgement (it marks an epoch boundary where completion
        // must be visible before the synchronization proceeds).
        if !work.is_empty() {
            for &(line, mask) in &work {
                let data = *self.l1[c.0].view(line).expect("resident").data;
                self.push_below_l1(blk, line, &data, mask);
                // Paper §III-B: the transferred words are now clean valid.
                // Words outside the target mask keep their dirty bits — a
                // partial WB must not lose co-located updates.
                self.l1[c.0].clean_words(line, mask);
                self.counters.lines_written_back += 1;
            }
            lat += work.len() as u64 * self.cfg.wb_pipeline_ii;
        }
        if matches!(target, Target::All) {
            // Drain ack: round trip to the nearest-home L2 bank.
            let hb0 = self.bank_tile(blk * self.bpb);
            lat += self.mesh.rt_latency(c.0, hb0) + self.cfg.l2_rt;
        }
        // Global scope: additionally push the L2's dirty copies down to L3.
        if global {
            let mut l2_work = std::mem::take(&mut self.wb_l2_scratch);
            l2_work.clear();
            match target {
                Target::All => {
                    // WB_CONS ALL across blocks writes back the whole local
                    // block's L2 (§V-B). Each bank's controller traverses
                    // its own tags concurrently; a bank with no dirty
                    // lines flash-completes.
                    let mut trav = FLASH_CYCLES;
                    for bank in 0..self.bpb {
                        let gb = blk * self.bpb + bank;
                        if self.l2[gb].dirty_lines_resident() > 0 {
                            trav = self.cfg.l2.num_lines() as u64 / self.cfg.tags_per_cycle;
                        }
                        let l2 = &self.l2[gb];
                        l2.for_each_dirty_line(|v| l2_work.push((v.addr, v.dirty)));
                    }
                    lat += trav;
                }
                _ => {
                    for line in target.lines().expect("non-ALL") {
                        let hb = self.home_bank(blk, line);
                        if let Some(v) = self.l2[hb].view(line) {
                            let mask = v.dirty & target.word_mask(line);
                            if mask != 0 {
                                l2_work.push((line, mask));
                            }
                        }
                    }
                }
            }
            if !l2_work.is_empty() {
                // L2 -> L3 pushes are posted as well; an ALL flavor pays
                // one drain ack covering every involved L3 bank.
                lat += self.cfg.l2_rt + l2_work.len() as u64 * self.cfg.wb_pipeline_ii;
                if matches!(target, Target::All) {
                    // The epoch cannot close until the slowest posted push
                    // is acknowledged, so the ack round trip is to the
                    // *farthest* involved L3 bank, not whichever bank the
                    // first work item happened to map to.
                    let hb_tile = self.bank_tile(blk * self.bpb);
                    let l3_rt = self.l3_rt();
                    let ack = l2_work
                        .iter()
                        .map(|&(line, _)| {
                            self.mesh.rt_latency_to_corner(hb_tile, self.l3_bank(line))
                        })
                        .max()
                        .unwrap_or(0);
                    lat += ack + l3_rt;
                }
                for &(line, mask) in &l2_work {
                    let hb = self.home_bank(blk, line);
                    let data = *self.l2[hb].view(line).expect("resident").data;
                    self.push_below_l2(line, &data, mask);
                    self.l2[hb].clean_words(line, mask);
                }
            }
            l2_work.clear();
            self.wb_l2_scratch = l2_work;
        }
        work.clear();
        self.wb_scratch = work;
        lat
    }

    fn exec_inv(&mut self, c: CoreId, target: Target, scope: InvScope) -> u64 {
        let global = self.inv_is_global(c, scope);
        if global {
            self.counters.global_invs += 1;
        } else {
            self.counters.local_invs += 1;
        }
        let blk = self.block_of(c);
        let mut lat = self.cfg.l1_rt;
        let mut wb_work = 0u64;
        match target {
            Target::All => {
                // Clean cache: gang-clear the valid bits. Dirty lines
                // force a traversal to find and write them back first.
                lat += if self.l1[c.0].dirty_lines_resident() == 0 {
                    FLASH_CYCLES
                } else {
                    self.cfg.l1.num_lines() as u64 / self.cfg.tags_per_cycle
                };
                let mut lines = std::mem::take(&mut self.inv_scratch);
                lines.clear();
                self.l1[c.0].valid_line_addrs_into(&mut lines);
                for &line in &lines {
                    if let Some(inv) = self.l1[c.0].invalidate(line) {
                        self.counters.lines_invalidated += 1;
                        if inv.dirty != 0 {
                            self.push_below_l1(blk, line, &inv.data, inv.dirty);
                            wb_work += 1;
                        }
                    }
                }
                lines.clear();
                self.inv_scratch = lines;
            }
            _ => {
                let lines = target.lines().expect("non-ALL");
                lat += lines.len() as u64;
                for line in lines {
                    if let Some(inv) = self.l1[c.0].invalidate(line) {
                        self.counters.lines_invalidated += 1;
                        if inv.dirty != 0 {
                            self.push_below_l1(blk, line, &inv.data, inv.dirty);
                            wb_work += 1;
                        }
                    }
                }
            }
        }
        if wb_work > 0 {
            // Dirty-line writebacks triggered by the INV are posted.
            lat += wb_work * self.cfg.wb_pipeline_ii;
        }
        // Global scope: also invalidate the block's L2 copies. The command
        // to the (shared, remote) L2 controller is a posted message for
        // targeted flavors; ALL pays a completion round trip.
        if global {
            lat += self.cfg.l2_rt;
            if matches!(target, Target::All) {
                let hb0_tile = self.bank_tile(blk * self.bpb);
                lat += self.mesh.rt_latency(c.0, hb0_tile);
            }
            let mut l2_wb = 0u64;
            match target {
                Target::All => {
                    // Banks gang-clear / traverse concurrently.
                    let mut trav = FLASH_CYCLES;
                    let mut lines = std::mem::take(&mut self.inv_scratch);
                    for bank in 0..self.bpb {
                        let gb = blk * self.bpb + bank;
                        if self.l2[gb].dirty_lines_resident() > 0 {
                            trav = self.cfg.l2.num_lines() as u64 / self.cfg.tags_per_cycle;
                        }
                        lines.clear();
                        self.l2[gb].valid_line_addrs_into(&mut lines);
                        for &line in &lines {
                            if let Some(inv) = self.l2[gb].invalidate(line) {
                                if inv.dirty != 0 {
                                    self.push_below_l2(line, &inv.data, inv.dirty);
                                    l2_wb += 1;
                                }
                            }
                        }
                    }
                    lines.clear();
                    self.inv_scratch = lines;
                    lat += trav;
                }
                _ => {
                    for line in target.lines().expect("non-ALL") {
                        let hb = self.home_bank(blk, line);
                        if let Some(inv) = self.l2[hb].invalidate(line) {
                            if inv.dirty != 0 {
                                self.push_below_l2(line, &inv.data, inv.dirty);
                                l2_wb += 1;
                            }
                        }
                    }
                }
            }
            if l2_wb > 0 {
                lat += l2_wb * self.cfg.wb_pipeline_ii;
            }
        }
        lat
    }

    /// If the core's MEB recorded the current epoch without overflowing,
    /// return its line IDs; `None` means full traversal.
    fn meb_lines(&mut self, c: CoreId) -> Option<Vec<usize>> {
        if !self.meb[c.0].recording() {
            return None;
        }
        match self.meb[c.0].drain() {
            MebDrain::Ids(ids) => Some(ids),
            MebDrain::Overflowed => {
                self.counters.meb_overflows += 1;
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch-tracking hooks (driven by `Op::MebBegin` / `Op::IebBegin`...)
    // ------------------------------------------------------------------

    pub fn meb_begin(&mut self, c: CoreId) {
        debug_assert!(!self.detached[c.0], "meb_begin while core{} detached", c.0);
        // Epoch marker: collapse the core's rollback journals so no
        // recovery replays past this point (no-op without checkpoints).
        self.l1[c.0].epoch_mark();
        self.meb[c.0].begin_epoch();
    }

    pub fn ieb_begin(&mut self, c: CoreId) {
        debug_assert!(!self.detached[c.0], "ieb_begin while core{} detached", c.0);
        self.l1[c.0].epoch_mark();
        self.ieb[c.0].begin_epoch();
    }

    pub fn ieb_end(&mut self, c: CoreId) {
        debug_assert!(!self.detached[c.0], "ieb_end while core{} detached", c.0);
        self.l1[c.0].epoch_mark();
        self.ieb[c.0].end_epoch();
    }

    // ------------------------------------------------------------------
    // Simulator backdoors (no timing, no traffic)
    // ------------------------------------------------------------------

    /// Newest written-back value of a word: L2-dirty, then L3-dirty, then
    /// any cached copy at L2/L3, then memory. Note: *unwritten-back* L1
    /// dirty data is intentionally not consulted — `peek_word` answers
    /// "what would a fresh reader see", which is the property the
    /// correctness tests check after final writebacks.
    pub fn peek_word(&self, w: WordAddr) -> Word {
        let line = w.line();
        let idx = w.index_in_line();
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        for bank in &self.l3 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                return v.data[idx];
            }
        }
        for bank in &self.l3 {
            if let Some(v) = bank.view(line) {
                return v.data[idx];
            }
        }
        self.mem.read_word(w)
    }

    /// The value core `c` would load right now (stale or not), without
    /// timing. Used by staleness tests.
    pub fn peek_local(&self, c: CoreId, w: WordAddr) -> Word {
        let line = w.line();
        let idx = w.index_in_line();
        if let Some(v) = self.l1[c.0].view(line) {
            return v.data[idx];
        }
        self.peek_word(w)
    }

    /// Write a word directly to memory, dropping every cached copy.
    /// For test setup only.
    pub fn poke_word(&mut self, w: WordAddr, v: Word) {
        let line = w.line();
        for c in &mut self.l1 {
            c.invalidate(line);
        }
        for b in &mut self.l2 {
            b.invalidate(line);
        }
        for b in &mut self.l3 {
            b.invalidate(line);
        }
        self.mem.write_word(w, v);
    }

    /// Does core `c`'s L1 currently hold the line containing `w`?
    pub fn l1_holds(&self, c: CoreId, w: WordAddr) -> bool {
        self.l1[c.0].probe(w.line()).is_hit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::{Addr, Region};

    fn intra() -> IncoherentSystem {
        IncoherentSystem::new(MachineConfig::intra_block())
    }

    fn inter() -> IncoherentSystem {
        IncoherentSystem::new(MachineConfig::inter_block())
    }

    fn w(byte: u64) -> WordAddr {
        Addr(byte).word()
    }

    #[test]
    fn stale_read_without_wb_inv() {
        let mut m = intra();
        m.poke_word(w(0x100), 1);
        // Both cores cache the line.
        assert_eq!(m.read(CoreId(0), w(0x100)).0, 1);
        assert_eq!(m.read(CoreId(1), w(0x100)).0, 1);
        // Core 0 writes but does not write back.
        m.write(CoreId(0), w(0x100), 2);
        // Core 1 still reads the stale value: no hardware coherence.
        assert_eq!(m.read(CoreId(1), w(0x100)).0, 1, "must be stale");
    }

    #[test]
    fn wb_then_inv_communicates() {
        let mut m = intra();
        m.poke_word(w(0x200), 1);
        assert_eq!(m.read(CoreId(1), w(0x200)).0, 1); // consumer caches stale
        m.write(CoreId(0), w(0x200), 2);
        let (lat_wb, is_wb) = m.exec_coh(CoreId(0), CohInstr::wb(Target::word(w(0x200))));
        assert!(is_wb);
        assert!(lat_wb > 0);
        let (lat_inv, is_wb) = m.exec_coh(CoreId(1), CohInstr::inv(Target::word(w(0x200))));
        assert!(!is_wb);
        assert!(lat_inv > 0);
        assert_eq!(m.read(CoreId(1), w(0x200)).0, 2, "WB+INV must deliver");
    }

    #[test]
    fn wb_writes_only_dirty_words_no_false_sharing_loss() {
        // §III-B: two cores write different words of the same line, both
        // WB; neither overwrites the other.
        let mut m = intra();
        let a = w(0x300);
        let b = WordAddr(a.0 + 1);
        m.write(CoreId(0), a, 11);
        m.write(CoreId(1), b, 22);
        m.exec_coh(CoreId(0), CohInstr::wb(Target::word(a)));
        m.exec_coh(CoreId(1), CohInstr::wb(Target::word(b)));
        assert_eq!(m.peek_word(a), 11);
        assert_eq!(m.peek_word(b), 22);
    }

    #[test]
    fn inv_preserves_colocated_dirty_data() {
        // §III-B: INV writes dirty data back before invalidating.
        let mut m = intra();
        let a = w(0x400);
        m.write(CoreId(0), a, 7);
        m.exec_coh(CoreId(0), CohInstr::inv(Target::word(a)));
        assert!(!m.l1_holds(CoreId(0), a));
        assert_eq!(m.peek_word(a), 7, "dirty word survived the INV");
    }

    #[test]
    fn wb_all_vs_meb_latency() {
        let mut m = intra();
        // Dirty a handful of lines.
        for i in 0..5u64 {
            m.write(CoreId(0), w(0x1000 + i * 64), i as Word);
        }
        let (lat_full, _) = m.exec_coh(CoreId(0), CohInstr::wb_all());
        assert!(
            lat_full >= 128,
            "full traversal costs >= lines/tags_per_cycle"
        );

        let mut m2 = intra();
        m2.meb_begin(CoreId(0));
        for i in 0..5u64 {
            m2.write(CoreId(0), w(0x1000 + i * 64), i as Word);
        }
        let (lat_meb, _) = m2.exec_coh(CoreId(0), CohInstr::wb_all());
        assert!(
            lat_meb < lat_full,
            "MEB path ({lat_meb}) must be cheaper than traversal ({lat_full})"
        );
        assert_eq!(m2.counters.meb_drains, 1);
        // Both wrote the same data back.
        for i in 0..5u64 {
            assert_eq!(m2.peek_word(w(0x1000 + i * 64)), i as Word);
        }
    }

    #[test]
    fn meb_overflow_falls_back_to_traversal() {
        let mut m = intra();
        m.meb_begin(CoreId(0));
        // Dirty more lines than MEB entries (16).
        for i in 0..20u64 {
            m.write(CoreId(0), w(0x2000 + i * 64), 1);
        }
        m.exec_coh(CoreId(0), CohInstr::wb_all());
        assert_eq!(m.counters.meb_overflows, 1);
        for i in 0..20u64 {
            assert_eq!(
                m.peek_word(w(0x2000 + i * 64)),
                1,
                "overflow path wrote everything"
            );
        }
    }

    #[test]
    fn ieb_epoch_refreshes_first_read_only() {
        let mut m = intra();
        m.poke_word(w(0x500), 1);
        assert_eq!(m.read(CoreId(1), w(0x500)).0, 1); // stale copy cached
        m.write(CoreId(0), w(0x500), 2);
        m.exec_coh(CoreId(0), CohInstr::wb(Target::word(w(0x500))));
        // Without IEB or INV, core 1 would read stale. With an IEB epoch,
        // the first read refreshes.
        m.ieb_begin(CoreId(1));
        let (v, lat1) = m.read(CoreId(1), w(0x500));
        assert_eq!(v, 2, "IEB first read must refresh");
        assert!(lat1 > m.config().l1_rt, "refresh pays a miss");
        let (v2, lat2) = m.read(CoreId(1), w(0x500));
        assert_eq!(v2, 2);
        assert_eq!(lat2, m.config().l1_rt, "second read is a normal hit");
        assert_eq!(m.counters.ieb_refreshes, 1);
        m.ieb_end(CoreId(1));
    }

    #[test]
    fn ieb_does_not_refresh_own_dirty_words() {
        let mut m = intra();
        m.ieb_begin(CoreId(0));
        m.write(CoreId(0), w(0x600), 5);
        let (v, lat) = m.read(CoreId(0), w(0x600));
        assert_eq!(v, 5);
        assert_eq!(lat, m.config().l1_rt, "own dirty word needs no refresh");
        assert_eq!(m.counters.ieb_refreshes, 0);
    }

    #[test]
    fn range_wb_covers_exactly_overlapping_lines() {
        let mut m = intra();
        let base = 0x4000u64;
        // Write 40 words = 2.5 lines.
        for i in 0..40u64 {
            m.write(CoreId(0), WordAddr(base / 4 + i), i as Word);
        }
        let region = Region::new(WordAddr(base / 4), 40);
        m.exec_coh(CoreId(0), CohInstr::wb(Target::range(region)));
        assert_eq!(m.counters.lines_written_back, 3);
        for i in 0..40u64 {
            assert_eq!(m.peek_word(WordAddr(base / 4 + i)), i as Word);
        }
    }

    #[test]
    fn level_adaptive_wb_resolves_by_thread_map() {
        let mut m = inter();
        let a = w(0x700);
        // Core 0 (block 0) writes; consumer thread 3 is in block 0.
        m.write(CoreId(0), a, 1);
        m.exec_coh(CoreId(0), CohInstr::wb_cons(Target::word(a), ThreadId(3)));
        assert_eq!(m.counters.local_wbs, 1);
        assert_eq!(m.counters.global_wbs, 0);
        // Consumer thread 20 is in block 2: global.
        m.write(CoreId(0), a, 2);
        m.exec_coh(CoreId(0), CohInstr::wb_cons(Target::word(a), ThreadId(20)));
        assert_eq!(m.counters.global_wbs, 1);
    }

    #[test]
    fn cross_block_communication_needs_global_wb_and_inv() {
        let mut m = inter();
        let a = w(0x800);
        m.poke_word(a, 1);
        // Consumer (core 8, block 1) caches the line in L1 and its L2.
        assert_eq!(m.read(CoreId(8), a).0, 1);
        // Producer (core 0, block 0) writes and does only a LOCAL wb.
        m.write(CoreId(0), a, 2);
        m.exec_coh(CoreId(0), CohInstr::wb(Target::word(a)));
        // Consumer invalidates only its L1: still stale, because its L2
        // kept the old line and the new data never left block 0.
        m.exec_coh(CoreId(8), CohInstr::inv(Target::word(a)));
        assert_eq!(
            m.read(CoreId(8), a).0,
            1,
            "local-only WB/INV is insufficient"
        );
        // Now do it right: global WB + global INV.
        m.exec_coh(CoreId(0), CohInstr::wb_l3(Target::word(a)));
        m.exec_coh(CoreId(8), CohInstr::inv_l2(Target::word(a)));
        assert_eq!(m.read(CoreId(8), a).0, 2, "level-adaptive path delivers");
    }

    #[test]
    fn same_block_communication_local_ops_suffice_in_inter_machine() {
        let mut m = inter();
        let a = w(0x900);
        m.poke_word(a, 1);
        assert_eq!(m.read(CoreId(1), a).0, 1);
        m.write(CoreId(0), a, 2);
        m.exec_coh(CoreId(0), CohInstr::wb_cons(Target::word(a), ThreadId(1)));
        m.exec_coh(CoreId(1), CohInstr::inv_prod(Target::word(a), ThreadId(0)));
        assert_eq!(m.read(CoreId(1), a).0, 2);
        assert_eq!(m.counters.local_wbs, 1);
        assert_eq!(m.counters.local_invs, 1);
        assert_eq!(m.counters.global_wbs + m.counters.global_invs, 0);
    }

    #[test]
    fn wb_of_clean_data_is_a_no_op() {
        let mut m = intra();
        m.poke_word(w(0xA00), 3);
        m.read(CoreId(0), w(0xA00));
        let before = m.counters.lines_written_back;
        let tb = m.traffic.writeback;
        m.exec_coh(CoreId(0), CohInstr::wb(Target::word(w(0xA00))));
        assert_eq!(m.counters.lines_written_back, before);
        assert_eq!(
            m.traffic.writeback, tb,
            "WB has no effect without dirty data"
        );
    }

    #[test]
    fn no_invalidation_traffic_ever() {
        // Self-invalidation is cache-local: the incoherent machine never
        // sends invalidation messages (one of the paper's three traffic
        // advantages, §VII-B).
        let mut m = intra();
        for i in 0..20u64 {
            m.write(CoreId(i as usize % 16), w(0x5000 + i * 64), 1);
            m.exec_coh(CoreId(i as usize % 16), CohInstr::wb_all());
            m.exec_coh(CoreId(i as usize % 16), CohInstr::inv_all());
        }
        assert_eq!(m.traffic.invalidation, 0);
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        let mut m = intra();
        let step = 128 * 64; // same L1 set
        for i in 0..8u64 {
            m.write(CoreId(0), w(i * step), i as Word + 1);
        }
        for i in 0..8u64 {
            // Data is visible either in the L1 (recent lines) or below
            // (evicted lines wrote back). Read through the core.
            assert_eq!(m.read(CoreId(0), w(i * step)).0, i as Word + 1);
        }
    }
}
