//! Execution tracing: a bounded ring of recent operations with their
//! timing, for debugging simulations and for inspecting what a program
//! actually did to the memory system.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Machine::enable_trace`].

use hic_sim::{CoreId, Cycle};

use crate::ops::Op;

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub core: CoreId,
    /// The core's local time when the op was issued.
    pub start: Cycle,
    /// Completion time. For an op that parked the core this equals
    /// `start` (and `blocked` is set); the wait itself is not an event —
    /// the core's resume time appears as the `start` of its next event.
    pub end: Cycle,
    pub op: Op,
    /// True if the op parked the core (barrier/lock/flag wait).
    pub blocked: bool,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct TraceRing {
    events: Vec<TraceEvent>,
    capacity: usize,
    next: usize,
    total: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            events: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Is tracing active (capacity > 0)?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an event (drops the oldest when full).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.total += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Events in chronological (record) order, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.next..]);
        out.extend_from_slice(&self.events[..self.next]);
        out
    }

    /// Total events ever recorded (including those that fell out).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Render the trace as one line per event, for logs and debugging.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for ev in self.events() {
            let _ = writeln!(
                s,
                "[{:>10}..{:>10}] {} {:?}{}",
                ev.start,
                ev.end,
                ev.core,
                ev.op,
                if ev.blocked { "  (blocked)" } else { "" }
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::WordAddr;

    fn ev(core: usize, start: Cycle) -> TraceEvent {
        TraceEvent {
            core: CoreId(core),
            start,
            end: start + 2,
            op: Op::Load(WordAddr(start)),
            blocked: false,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(0, i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].start, 2);
        assert_eq!(evs[2].start, 4);
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(0);
        r.push(ev(0, 1));
        assert!(!r.enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut r = TraceRing::new(4);
        r.push(ev(1, 10));
        r.push(TraceEvent {
            blocked: true,
            ..ev(2, 20)
        });
        let text = r.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("core1"));
        assert!(text.contains("(blocked)"));
    }
}
