//! The pluggable memory side of a [`crate::Machine`].
//!
//! A [`MemBackend`] is everything the machine needs from a memory system:
//! timed reads/writes (cached and uncacheable), execution of WB/INV
//! coherence-management instructions, epoch-buffer hooks, traffic and
//! event counters, and the untimed peek/poke backdoors used by tests and
//! program initialization.
//!
//! Three implementations exist:
//!
//! * [`IncoherentSystem`] — the paper's hardware-incoherent hierarchy;
//! * [`MesiSystem`] — the directory-MESI hardware-coherent baseline;
//! * [`RefBackend`] — a flat, always-fresh store with uniform latency.
//!   It has no caches at all, so no read can ever be stale: it is the
//!   correctness oracle that cache-backed runs are checked against (see
//!   `tests/prop_epochs.rs`), and the fastest backend for functional-only
//!   experiments.

use hic_check::Checker;
use hic_coherence::{DragonSystem, MesiSystem};
use hic_core::CohInstr;
use hic_fault::{FaultPlan, ResilienceStats};
use hic_mem::{Memory, Word, WordAddr};
use hic_noc::TrafficLedger;
use hic_sim::{CoreId, MachineConfig};

use crate::incoherent::{CoreSlice, IncCounters, IncoherentSystem};

/// Which family of memory system a backend implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Software-managed (WB/INV) incoherent hierarchy.
    Incoherent,
    /// Hardware-coherent invalidation-based directory MESI.
    Coherent,
    /// Hardware-coherent update-based directory Dragon.
    CoherentUpdate,
    /// Flat always-fresh reference store (correctness oracle).
    Reference,
}

/// A memory system the [`crate::Machine`] can drive.
///
/// All timed operations return latencies in cycles; the machine charges
/// them to the issuing core's stall ledger and advances its local clock.
/// Implementations must be deterministic: the same operation sequence
/// must produce the same latencies, traffic, and values on every run.
pub trait MemBackend: Send {
    /// The backend family (drives config-dependent runtime behavior).
    fn kind(&self) -> BackendKind;

    /// Timed load: `(value, latency)`.
    fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64);

    /// Timed store: latency.
    fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64;

    /// Uncacheable load, served by the shared level without allocating in
    /// the L1. Backends whose hardware keeps all copies fresh may treat
    /// this as a plain load.
    fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64);

    /// Uncacheable store (see [`MemBackend::read_uncached`]).
    fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64;

    /// Execute a WB/INV instruction; returns `(latency, is_wb)` so the
    /// machine can charge the right stall category. Backends that need no
    /// software coherence management complete them in zero cycles.
    fn exec_coh(&mut self, c: CoreId, instr: CohInstr) -> (u64, bool);

    /// Start MEB recording for core `c` (no-op without a MEB).
    fn meb_begin(&mut self, _c: CoreId) {}

    /// Start an IEB-governed epoch for core `c` (no-op without an IEB).
    fn ieb_begin(&mut self, _c: CoreId) {}

    /// End core `c`'s IEB-governed epoch (no-op without an IEB).
    fn ieb_end(&mut self, _c: CoreId) {}

    /// Check core `c`'s private state out of the backend so the sharded
    /// engine can run core-local ops against it without the global lock.
    /// Backends without detachable per-core state return `None`, which
    /// disables the sharded fast path (`Machine::supports_sharding`).
    fn detach_core(&mut self, _c: CoreId) -> Option<CoreSlice> {
        None
    }

    /// Re-attach a slice produced by [`MemBackend::detach_core`].
    fn attach_core(&mut self, _c: CoreId, _s: CoreSlice) {
        panic!("attach_core on a backend without detachable core state");
    }

    /// Snapshot of the flit-traffic ledger.
    fn traffic(&self) -> TrafficLedger;

    /// Mutable traffic ledger (the machine adds synchronization flits).
    fn traffic_mut(&mut self) -> &mut TrafficLedger;

    /// Incoherent-machine event counters (zeros for other backends).
    fn counters(&self) -> IncCounters {
        IncCounters::default()
    }

    /// Untimed value backdoor: what a fresh reader would see.
    fn peek_word(&self, w: WordAddr) -> Word;

    /// Untimed memory backdoor for pre-run initialization.
    fn poke_word(&mut self, w: WordAddr, v: Word);

    /// Downcast for incoherent-specific setup (ThreadMap, L1 probes).
    fn as_incoherent(&self) -> Option<&IncoherentSystem> {
        None
    }

    /// Mutable downcast (see [`MemBackend::as_incoherent`]).
    fn as_incoherent_mut(&mut self) -> Option<&mut IncoherentSystem> {
        None
    }

    /// Attach the incoherence sanitizer. Returns `false` on backends that
    /// cannot exhibit incoherence bugs (MESI, reference) — their hardware
    /// keeps every copy fresh, so there is nothing to check.
    fn attach_checker(&mut self, _chk: Box<Checker>) -> bool {
        false
    }

    /// The attached sanitizer, if any.
    fn checker(&self) -> Option<&Checker> {
        None
    }

    /// Mutable access to the attached sanitizer (the machine feeds it
    /// sync events).
    fn checker_mut(&mut self) -> Option<&mut Checker> {
        None
    }

    /// Install a fault-injection plan (`hic-fault`). Returns `false` on
    /// backends with no injection support — their runs stay fault-free
    /// apart from the machine-level sync perturbations.
    fn install_faults(&mut self, _plan: &FaultPlan) -> bool {
        false
    }

    /// Resilience ledger accumulated by injected faults (zeros without
    /// a plan installed).
    fn resilience(&self) -> ResilienceStats {
        ResilienceStats::default()
    }

    /// An unrecoverable fault condition (a corrupted dirty line),
    /// delivered at most once; the machine surfaces it as
    /// [`crate::RunError::CorruptDirtyLine`].
    fn take_fault_fatal(&mut self) -> Option<String> {
        None
    }
}

impl MemBackend for IncoherentSystem {
    fn kind(&self) -> BackendKind {
        BackendKind::Incoherent
    }

    fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        let r = IncoherentSystem::read(self, c, w);
        if let Some(chk) = self.checker.as_deref_mut() {
            chk.on_load(c.0, w, r.0);
        }
        r
    }

    fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        let lat = IncoherentSystem::write(self, c, w, v);
        if let Some(chk) = self.checker.as_deref_mut() {
            chk.on_store(c.0, w, v);
        }
        lat
    }

    fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        let r = IncoherentSystem::read_uncached(self, c, w);
        if let Some(chk) = self.checker.as_deref_mut() {
            chk.on_load_unc(c.0, w, r.0);
        }
        r
    }

    fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        let lat = IncoherentSystem::write_uncached(self, c, w, v);
        if let Some(chk) = self.checker.as_deref_mut() {
            chk.on_store_unc(c.0, w, v);
        }
        lat
    }

    fn exec_coh(&mut self, c: CoreId, instr: CohInstr) -> (u64, bool) {
        IncoherentSystem::exec_coh(self, c, instr)
    }

    fn meb_begin(&mut self, c: CoreId) {
        IncoherentSystem::meb_begin(self, c);
    }

    fn ieb_begin(&mut self, c: CoreId) {
        IncoherentSystem::ieb_begin(self, c);
    }

    fn ieb_end(&mut self, c: CoreId) {
        IncoherentSystem::ieb_end(self, c);
    }

    fn detach_core(&mut self, c: CoreId) -> Option<CoreSlice> {
        Some(IncoherentSystem::detach_core(self, c))
    }

    fn attach_core(&mut self, c: CoreId, s: CoreSlice) {
        IncoherentSystem::attach_core(self, c, s);
    }

    fn traffic(&self) -> TrafficLedger {
        self.traffic
    }

    fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    fn counters(&self) -> IncCounters {
        self.counters
    }

    fn peek_word(&self, w: WordAddr) -> Word {
        IncoherentSystem::peek_word(self, w)
    }

    fn poke_word(&mut self, w: WordAddr, v: Word) {
        IncoherentSystem::poke_word(self, w, v);
    }

    fn as_incoherent(&self) -> Option<&IncoherentSystem> {
        Some(self)
    }

    fn as_incoherent_mut(&mut self) -> Option<&mut IncoherentSystem> {
        Some(self)
    }

    fn attach_checker(&mut self, chk: Box<Checker>) -> bool {
        self.checker = Some(chk);
        true
    }

    fn checker(&self) -> Option<&Checker> {
        self.checker.as_deref()
    }

    fn checker_mut(&mut self) -> Option<&mut Checker> {
        self.checker.as_deref_mut()
    }

    fn install_faults(&mut self, plan: &FaultPlan) -> bool {
        IncoherentSystem::install_faults(self, plan);
        true
    }

    fn resilience(&self) -> ResilienceStats {
        IncoherentSystem::resilience(self)
    }

    fn take_fault_fatal(&mut self) -> Option<String> {
        IncoherentSystem::take_fault_fatal(self)
    }
}

impl MemBackend for MesiSystem {
    fn kind(&self) -> BackendKind {
        BackendKind::Coherent
    }

    fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        MesiSystem::read(self, c, w)
    }

    fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        MesiSystem::write(self, c, w, v)
    }

    /// Uncacheable semantics degenerate to plain coherent accesses under
    /// MESI (hardware keeps every copy fresh).
    fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        MesiSystem::read(self, c, w)
    }

    fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        MesiSystem::write(self, c, w, v)
    }

    /// The coherent machine ignores WB/INV: hardware already moves the
    /// data, so the instructions retire in zero cycles.
    fn exec_coh(&mut self, _c: CoreId, instr: CohInstr) -> (u64, bool) {
        (0, matches!(instr, CohInstr::Wb { .. }))
    }

    fn traffic(&self) -> TrafficLedger {
        self.traffic
    }

    fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    fn peek_word(&self, w: WordAddr) -> Word {
        MesiSystem::peek_word(self, w)
    }

    fn poke_word(&mut self, w: WordAddr, v: Word) {
        MesiSystem::poke_word(self, w, v);
    }
}

impl MemBackend for DragonSystem {
    fn kind(&self) -> BackendKind {
        BackendKind::CoherentUpdate
    }

    fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        DragonSystem::read(self, c, w)
    }

    fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        DragonSystem::write(self, c, w, v)
    }

    /// Uncacheable semantics degenerate to plain coherent accesses under
    /// Dragon — updates keep every copy fresh by construction.
    fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        DragonSystem::read(self, c, w)
    }

    fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        DragonSystem::write(self, c, w, v)
    }

    /// Like MESI, Dragon needs no WB/INV: they retire in zero cycles.
    fn exec_coh(&mut self, _c: CoreId, instr: CohInstr) -> (u64, bool) {
        (0, matches!(instr, CohInstr::Wb { .. }))
    }

    fn traffic(&self) -> TrafficLedger {
        self.traffic
    }

    fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    fn peek_word(&self, w: WordAddr) -> Word {
        DragonSystem::peek_word(self, w)
    }

    fn poke_word(&mut self, w: WordAddr, v: Word) {
        DragonSystem::poke_word(self, w, v);
    }
}

/// A flat, always-fresh memory with uniform access latency.
///
/// Every load and store goes straight to one shared word-addressed store:
/// there are no caches, so no copy can ever be stale and WB/INV
/// instructions have nothing to do. Cycle counts from this backend are
/// *not* comparable to the cache-backed machines — its purpose is
/// functional: any program whose final memory state differs between a
/// cache-backed run and a `RefBackend` run has a coherence-management
/// bug (in the program's annotations or in the memory system itself).
#[derive(Debug, Default)]
pub struct RefBackend {
    mem: Memory,
    traffic: TrafficLedger,
    /// Uniform latency per access, taken from the config's L1 round trip
    /// so compute/memory interleavings keep a realistic shape.
    access_rt: u64,
}

impl RefBackend {
    pub fn new(cfg: &MachineConfig) -> RefBackend {
        RefBackend {
            mem: Memory::new(),
            traffic: TrafficLedger::new(),
            access_rt: cfg.l1_rt,
        }
    }
}

impl MemBackend for RefBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    fn read(&mut self, _c: CoreId, w: WordAddr) -> (Word, u64) {
        (self.mem.read_word(w), self.access_rt)
    }

    fn write(&mut self, _c: CoreId, w: WordAddr, v: Word) -> u64 {
        self.mem.write_word(w, v);
        self.access_rt
    }

    fn read_uncached(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        self.read(c, w)
    }

    fn write_uncached(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        self.write(c, w, v)
    }

    fn exec_coh(&mut self, _c: CoreId, instr: CohInstr) -> (u64, bool) {
        (0, matches!(instr, CohInstr::Wb { .. }))
    }

    fn traffic(&self) -> TrafficLedger {
        self.traffic
    }

    fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    fn peek_word(&self, w: WordAddr) -> Word {
        self.mem.read_word(w)
    }

    fn poke_word(&mut self, w: WordAddr, v: Word) {
        self.mem.write_word(w, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_core::Target;
    use hic_mem::Addr;

    #[test]
    fn ref_backend_is_never_stale() {
        let cfg = MachineConfig::intra_block();
        let mut b = RefBackend::new(&cfg);
        let w = Addr(0x100).word();
        b.write(CoreId(0), w, 7);
        // Another core sees the value immediately, with no WB/INV.
        assert_eq!(b.read(CoreId(5), w).0, 7);
        // Coherence instructions are free and preserve state.
        let (lat, is_wb) = b.exec_coh(CoreId(0), CohInstr::wb(Target::word(w)));
        assert_eq!(lat, 0);
        assert!(is_wb);
        assert_eq!(b.peek_word(w), 7);
    }

    #[test]
    fn backends_report_their_kind() {
        let cfg = MachineConfig::intra_block();
        assert_eq!(IncoherentSystem::new(cfg).kind(), BackendKind::Incoherent);
        assert_eq!(MesiSystem::new(cfg).kind(), BackendKind::Coherent);
        assert_eq!(RefBackend::new(&cfg).kind(), BackendKind::Reference);
    }

    #[test]
    fn incoherent_downcast_roundtrips() {
        let cfg = MachineConfig::intra_block();
        let mut b: Box<dyn MemBackend> = Box::new(IncoherentSystem::new(cfg));
        assert!(b.as_incoherent().is_some());
        assert!(b.as_incoherent_mut().is_some());
        let mut m: Box<dyn MemBackend> = Box::new(MesiSystem::new(cfg));
        assert!(m.as_incoherent().is_none());
        assert!(m.as_incoherent_mut().is_none());
    }
}
