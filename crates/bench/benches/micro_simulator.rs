//! Microbenchmarks of the simulator substrate itself: cache operations,
//! mesh latency math, MESI transitions, incoherent WB/INV execution
//! (full traversal vs MEB-served), and the synchronization table. These
//! bound the simulator's own throughput and double as ablation probes for
//! the MEB's costly-traversal-avoidance claim (§IV-B1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use hic_coherence::MesiSystem;
use hic_core::{CohInstr, Target};
use hic_machine::IncoherentSystem;
use hic_mem::{Addr, Cache, LineAddr, WordAddr};
use hic_noc::Mesh;
use hic_sim::{CoreId, MachineConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_cache");
    group.bench_function("fill_write_read", |b| {
        let geom = MachineConfig::intra_block().l1;
        b.iter_batched(
            || Cache::new(geom),
            |mut cache| {
                for i in 0..512u64 {
                    cache.fill(LineAddr(i), [i as u32; 16], 0);
                    cache.write_word(LineAddr(i), (i % 16) as usize, i as u32);
                    cache.read_word(LineAddr(i), 0);
                }
                cache.resident_lines()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mesh = Mesh::new(16, 4);
    c.bench_function("micro_mesh_rt_latency", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..16 {
                for j in 0..16 {
                    acc += mesh.rt_latency(i, j);
                }
            }
            acc
        })
    });
}

fn bench_mesi(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_mesi");
    group.bench_function("producer_consumer_roundtrip", |b| {
        b.iter_batched(
            || MesiSystem::new(MachineConfig::intra_block()),
            |mut m| {
                for i in 0..64u64 {
                    m.write(CoreId(0), Addr(i * 64).word(), i as u32);
                    m.read(CoreId(1), Addr(i * 64).word());
                }
                m.traffic.total()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_incoherent(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_incoherent");
    // The MEB claim of §IV-B1: WB ALL served from the MEB vs a full tag
    // traversal, for a small critical-section-sized write set.
    group.bench_function("wb_all_full_traversal", |b| {
        b.iter_batched(
            || {
                let mut m = IncoherentSystem::new(MachineConfig::intra_block());
                for i in 0..8u64 {
                    m.write(CoreId(0), Addr(i * 64).word(), 1);
                }
                m
            },
            |mut m| m.exec_coh(CoreId(0), CohInstr::wb_all()).0,
            BatchSize::SmallInput,
        )
    });
    group.bench_function("wb_all_meb_served", |b| {
        b.iter_batched(
            || {
                let mut m = IncoherentSystem::new(MachineConfig::intra_block());
                m.meb_begin(CoreId(0));
                for i in 0..8u64 {
                    m.write(CoreId(0), Addr(i * 64).word(), 1);
                }
                m
            },
            |mut m| m.exec_coh(CoreId(0), CohInstr::wb_all()).0,
            BatchSize::SmallInput,
        )
    });
    group.bench_function("inv_range_64_lines", |b| {
        b.iter_batched(
            || {
                let mut m = IncoherentSystem::new(MachineConfig::intra_block());
                for i in 0..64u64 {
                    m.write(CoreId(0), WordAddr(i * 16), 1);
                }
                m
            },
            |mut m| {
                m.exec_coh(
                    CoreId(0),
                    CohInstr::inv(Target::range(hic_mem::Region::new(WordAddr(0), 1024))),
                )
                .0
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sync(c: &mut Criterion) {
    c.bench_function("micro_sync_lock_queue", |b| {
        b.iter(|| {
            let mut s = hic_sync::SyncController::new();
            let l = s.alloc_lock();
            s.lock_acquire(l, CoreId(0), 0).unwrap();
            for i in 1..16 {
                s.lock_acquire(l, CoreId(i), i as u64).unwrap();
            }
            let mut t = 100;
            let mut owner = CoreId(0);
            for _ in 0..16 {
                if let Some(g) = s.lock_release(l, owner, t).unwrap() {
                    owner = g.core;
                    t = g.at + 10;
                }
            }
            t
        })
    });
}

criterion_group!(benches, bench_cache, bench_mesh, bench_mesi, bench_incoherent, bench_sync);
criterion_main!(benches);
