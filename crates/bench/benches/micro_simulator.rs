//! Microbenchmarks of the simulator substrate itself: cache operations,
//! mesh latency math, MESI transitions, incoherent WB/INV execution
//! (full traversal vs MEB-served), the synchronization table, and the
//! execution engine's transport (synchronous vs batched). These bound the
//! simulator's own throughput and double as ablation probes for the
//! MEB's costly-traversal-avoidance claim (§IV-B1).

use hic_bench::{bench, bench_with_setup};
use hic_coherence::MesiSystem;
use hic_core::{CohInstr, Target};
use hic_machine::IncoherentSystem;
use hic_mem::{Addr, Cache, LineAddr, WordAddr};
use hic_noc::Mesh;
use hic_runtime::{Config, IntraConfig, ProgramBuilder, Transport};
use hic_sim::{CoreId, MachineConfig};

fn bench_cache() {
    let geom = MachineConfig::intra_block().l1;
    bench_with_setup(
        "micro_cache/fill_write_read",
        || Cache::new(geom),
        |mut cache| {
            for i in 0..512u64 {
                cache.fill(LineAddr(i), [i as u32; 16], 0);
                cache.write_word(LineAddr(i), (i % 16) as usize, i as u32);
                cache.read_word(LineAddr(i), 0);
            }
            cache.resident_lines()
        },
    );
}

fn bench_mesh() {
    let mesh = Mesh::new(16, 4);
    bench("micro_mesh/rt_latency", || {
        let mut acc = 0u64;
        for i in 0..16 {
            for j in 0..16 {
                acc += mesh.rt_latency(i, j);
            }
        }
        acc
    });
}

fn bench_mesi() {
    bench_with_setup(
        "micro_mesi/producer_consumer_roundtrip",
        || MesiSystem::new(MachineConfig::intra_block()),
        |mut m| {
            for i in 0..64u64 {
                m.write(CoreId(0), Addr(i * 64).word(), i as u32);
                m.read(CoreId(1), Addr(i * 64).word());
            }
            m.traffic.total()
        },
    );
}

fn bench_incoherent() {
    // The MEB claim of §IV-B1: WB ALL served from the MEB vs a full tag
    // traversal, for a small critical-section-sized write set.
    bench_with_setup(
        "micro_incoherent/wb_all_full_traversal",
        || {
            let mut m = IncoherentSystem::new(MachineConfig::intra_block());
            for i in 0..8u64 {
                m.write(CoreId(0), Addr(i * 64).word(), 1);
            }
            m
        },
        |mut m| m.exec_coh(CoreId(0), CohInstr::wb_all()).0,
    );
    bench_with_setup(
        "micro_incoherent/wb_all_meb_served",
        || {
            let mut m = IncoherentSystem::new(MachineConfig::intra_block());
            m.meb_begin(CoreId(0));
            for i in 0..8u64 {
                m.write(CoreId(0), Addr(i * 64).word(), 1);
            }
            m
        },
        |mut m| m.exec_coh(CoreId(0), CohInstr::wb_all()).0,
    );
    bench_with_setup(
        "micro_incoherent/inv_range_64_lines",
        || {
            let mut m = IncoherentSystem::new(MachineConfig::intra_block());
            for i in 0..64u64 {
                m.write(CoreId(0), WordAddr(i * 16), 1);
            }
            m
        },
        |mut m| {
            m.exec_coh(
                CoreId(0),
                CohInstr::inv(Target::range(hic_mem::Region::new(WordAddr(0), 1024))),
            )
            .0
        },
    );
}

fn bench_sync() {
    bench("micro_sync/lock_queue", || {
        let mut s = hic_sync::SyncController::new();
        let l = s.alloc_lock();
        s.lock_acquire(l, CoreId(0), 0).unwrap();
        for i in 1..16 {
            s.lock_acquire(l, CoreId(i), i as u64).unwrap();
        }
        let mut t = 100;
        let mut owner = CoreId(0);
        for _ in 0..16 {
            if let Some(g) = s.lock_release(l, owner, t).unwrap() {
                owner = g.core;
                t = g.at + 10;
            }
        }
        t
    });
}

/// A store-heavy multithreaded workload: the best case for the batched
/// transport (long runs of fire-and-forget ops between barriers).
fn run_store_heavy(transport: Transport) -> hic_machine::RunStats {
    const THREADS: usize = 8;
    const STORES_PER_THREAD: u64 = 4096;
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    p.transport(transport);
    let data = p.alloc(THREADS as u64 * STORES_PER_THREAD);
    let bar = p.barrier_of(THREADS);
    let out = p.run(THREADS, move |ctx| {
        let base = ctx.tid() as u64 * STORES_PER_THREAD;
        for i in 0..STORES_PER_THREAD {
            ctx.write(data, base + i, (base + i) as u32);
            ctx.tick(2);
        }
        ctx.barrier(bar);
    });
    out.stats().clone()
}

/// Engine transport comparison: wall-clock throughput of the synchronous
/// one-message-per-op transport vs the batched transport on a store-heavy
/// workload, with the engine ledgers showing where the savings come from.
/// Simulated results must be bit-identical.
fn bench_engine_transport() {
    let sync = bench("micro_engine/store_heavy_sync_transport", || {
        run_store_heavy(Transport::Sync)
    });
    let batched = bench("micro_engine/store_heavy_batched_transport", || {
        run_store_heavy(Transport::default())
    });

    let s = run_store_heavy(Transport::Sync);
    let b = run_store_heavy(Transport::default());
    assert_eq!(
        s.total_cycles, b.total_cycles,
        "transports must not change simulated time"
    );
    assert_eq!(
        s.ledgers, b.ledgers,
        "transports must not change stall ledgers"
    );
    assert_eq!(s.traffic, b.traffic, "transports must not change traffic");

    println!(
        "engine  sync:    {} ops, {} messages, {} round-trips",
        s.engine.ops_executed, s.engine.messages, s.engine.round_trips
    );
    println!(
        "engine  batched: {} ops, {} messages ({} batches), {} round-trips ({:.1}% saved)",
        b.engine.ops_executed,
        b.engine.messages,
        b.engine.batches,
        b.engine.round_trips,
        100.0 * b.engine.round_trip_savings()
    );
    let speedup = batched.throughput() / sync.throughput();
    println!("engine  batched/sync wall-clock speedup: {speedup:.2}x");
}

fn main() {
    bench_cache();
    bench_mesh();
    bench_mesi();
    bench_incoherent();
    bench_sync();
    bench_engine_transport();
}
