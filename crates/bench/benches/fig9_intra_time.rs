//! Bench regenerating paper Figure 9: every intra-block application under
//! every configuration (HCC, Base, B+M, B+I, B+M+I).
//!
//! The benchmarked quantity is the wall time of the full simulation; the
//! *figure itself* (normalized simulated cycles with stall breakdown) is
//! printed by `cargo run -p hic-bench --bin figures fig9`. Each bench
//! iteration also asserts the run computed the correct result.

use hic_apps::{intra_apps, Scale};
use hic_bench::bench;
use hic_runtime::{Config, IntraConfig};

fn main() {
    for app in intra_apps(Scale::Test) {
        for cfg in IntraConfig::ALL {
            let name = format!("fig9/{}/{}", app.name().replace(' ', "_"), cfg.name());
            bench(&name, || {
                let r = app.run(Config::Intra(cfg));
                assert!(r.correct, "{}: {}", app.name(), r.detail);
                r.stats.total_cycles
            });
        }
    }
}
