//! Criterion bench regenerating paper Figure 9: every intra-block
//! application under every configuration (HCC, Base, B+M, B+I, B+M+I).
//!
//! The benchmarked quantity is the wall time of the full simulation; the
//! *figure itself* (normalized simulated cycles with stall breakdown) is
//! printed by `cargo run -p hic-bench --bin figures fig9`. Each bench
//! iteration also asserts the run computed the correct result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hic_apps::{intra_apps, Scale};
use hic_runtime::{Config, IntraConfig};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_intra_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for app in intra_apps(Scale::Test) {
        for cfg in IntraConfig::ALL {
            group.bench_with_input(
                BenchmarkId::new(app.name().replace(' ', "_"), cfg.name()),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let r = app.run(Config::Intra(*cfg));
                        assert!(r.correct, "{}: {}", app.name(), r.detail);
                        r.stats.total_cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
