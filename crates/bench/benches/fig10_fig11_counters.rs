//! Bench regenerating the measurement runs behind paper Figures 10
//! (traffic: HCC vs B+M+I) and 11 (global WB/INV counts: Addr vs
//! Addr+L). Each iteration performs the full instrumented run; the
//! counters themselves are printed by
//! `cargo run -p hic-bench --bin figures fig10|fig11`.

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_bench::bench;
use hic_runtime::{Config, InterConfig, IntraConfig};

fn main() {
    for app in intra_apps(Scale::Test) {
        for cfg in [IntraConfig::Hcc, IntraConfig::BMI] {
            let name = format!("fig10/{}/{}", app.name().replace(' ', "_"), cfg.name());
            bench(&name, || {
                let r = app.run(Config::Intra(cfg));
                assert!(r.correct);
                // The figure's quantity: flits in the four plotted
                // categories.
                r.stats.traffic.fig10_total()
            });
        }
    }
    for app in inter_apps(Scale::Test) {
        for cfg in [InterConfig::Addr, InterConfig::AddrL] {
            let name = format!("fig11/{}/{}", app.name(), cfg.name());
            bench(&name, || {
                let r = app.run(Config::Inter(cfg));
                assert!(r.correct);
                // The figure's quantities: global WB/INV counts.
                (r.stats.counters.global_wbs, r.stats.counters.global_invs)
            });
        }
    }
}
