//! Criterion bench regenerating the measurement runs behind paper
//! Figures 10 (traffic: HCC vs B+M+I) and 11 (global WB/INV counts:
//! Addr vs Addr+L). Each iteration performs the full instrumented run;
//! the counters themselves are printed by
//! `cargo run -p hic-bench --bin figures fig10|fig11`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_traffic");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for app in intra_apps(Scale::Test) {
        for cfg in [IntraConfig::Hcc, IntraConfig::BMI] {
            group.bench_with_input(
                BenchmarkId::new(app.name().replace(' ', "_"), cfg.name()),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let r = app.run(Config::Intra(*cfg));
                        assert!(r.correct);
                        // The figure's quantity: flits in the four plotted
                        // categories.
                        r.stats.traffic.fig10_total()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_global_ops");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for app in inter_apps(Scale::Test) {
        for cfg in [InterConfig::Addr, InterConfig::AddrL] {
            group.bench_with_input(BenchmarkId::new(app.name(), cfg.name()), &cfg, |b, cfg| {
                b.iter(|| {
                    let r = app.run(Config::Inter(*cfg));
                    assert!(r.correct);
                    // The figure's quantities: global WB/INV counts.
                    (r.stats.counters.global_wbs, r.stats.counters.global_invs)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10, bench_fig11);
criterion_main!(benches);
