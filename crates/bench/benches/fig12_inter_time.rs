//! Bench regenerating paper Figure 12: the inter-block applications
//! (EP, IS, CG, Jacobi) under HCC, Base, Addr, and Addr+L.
//!
//! The figure itself (normalized simulated cycles) is printed by
//! `cargo run -p hic-bench --bin figures fig12`.

use hic_apps::{inter_apps, Scale};
use hic_bench::bench;
use hic_runtime::{Config, InterConfig};

fn main() {
    for app in inter_apps(Scale::Test) {
        for cfg in InterConfig::ALL {
            let name = format!("fig12/{}/{}", app.name(), cfg.name());
            bench(&name, || {
                let r = app.run(Config::Inter(cfg));
                assert!(r.correct, "{}: {}", app.name(), r.detail);
                r.stats.total_cycles
            });
        }
    }
}
