//! Criterion bench regenerating paper Figure 12: the inter-block
//! applications (EP, IS, CG, Jacobi) under HCC, Base, Addr, and Addr+L.
//!
//! The figure itself (normalized simulated cycles) is printed by
//! `cargo run -p hic-bench --bin figures fig12`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hic_apps::{inter_apps, Scale};
use hic_runtime::{Config, InterConfig};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_inter_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for app in inter_apps(Scale::Test) {
        for cfg in InterConfig::ALL {
            group.bench_with_input(
                BenchmarkId::new(app.name(), cfg.name()),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let r = app.run(Config::Inter(*cfg));
                        assert!(r.correct, "{}: {}", app.name(), r.detail);
                        r.stats.total_cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
