//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **MEB capacity** — the paper picks 16 entries (§IV-B1); the sweep
//!   shows where overflow makes the buffer ineffective;
//! * **IEB capacity** — the paper picks 4 entries (§IV-B2); the sweep
//!   shows the thrashing regime for larger critical sections;
//! * **mesh hop latency** — how sensitive the incoherent-vs-HCC gap is to
//!   NoC speed.
//!
//! Each study runs a synthetic critical-section workload (the task-queue
//! shape of §IV-A1, the pattern the buffers were designed for) on a
//! machine whose parameter is swept, and reports simulated cycles.

use hic_runtime::{Config, IntraConfig, ProgramBuilder};
use hic_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// One point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    pub parameter: u64,
    pub cycles: u64,
    /// How many WB ALLs the MEB actually served / overflowed on.
    pub meb_drains: u64,
    pub meb_overflows: u64,
    pub ieb_refreshes: u64,
}

/// The synthetic workload: `jobs` critical sections, each writing
/// `lines_per_cs` distinct lines and reading the queue head, with light
/// compute outside — a distilled Raytrace/task-queue shape.
fn cs_workload(config: Config, mc: MachineConfig, jobs: u32, lines_per_cs: u64) -> AblationPoint {
    let mut p = ProgramBuilder::with_machine_config(config, mc);
    let nthreads = p.num_threads();
    let next = p.alloc(1);
    let scratch = p.alloc(64 * 16); // plenty of distinct lines
    let l = p.lock_occ(false);
    let bar = p.barrier();
    let out = p.run(nthreads, move |ctx| {
        ctx.barrier(bar);
        loop {
            ctx.lock(l);
            let j = ctx.read(next, 0);
            if j < jobs {
                ctx.write(next, 0, j + 1);
                // Read then write `lines_per_cs` distinct lines inside
                // the CS (reads exercise the IEB, writes the MEB), and
                // read them once more: the second pass hits the IEB only
                // if the lines still fit — capacity evictions force
                // unnecessary refreshes (§IV-B2).
                for k in 0..lines_per_cs {
                    let cur = ctx.read(scratch, (k * 16) % scratch.words);
                    ctx.write(scratch, (k * 16) % scratch.words, cur.wrapping_add(j));
                }
                let mut check = 0u32;
                for k in 0..lines_per_cs {
                    check ^= ctx.read(scratch, (k * 16 + 4) % scratch.words);
                }
                ctx.tick(check as u64 & 1);
            }
            ctx.unlock(l);
            if j >= jobs {
                break;
            }
            ctx.compute(150);
        }
        ctx.barrier(bar);
    });
    AblationPoint {
        parameter: 0,
        cycles: out.stats().total_cycles,
        meb_drains: out.stats().counters.meb_drains,
        meb_overflows: out.stats().counters.meb_overflows,
        ieb_refreshes: out.stats().counters.ieb_refreshes,
    }
}

/// Sweep the MEB capacity under `B+M` with critical sections writing
/// `lines_per_cs` lines. Past the capacity, every `WB ALL` falls back to
/// the full traversal and the benefit disappears.
pub fn meb_capacity_sweep(lines_per_cs: u64) -> Vec<AblationPoint> {
    [1usize, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&entries| {
            let mut mc = MachineConfig::intra_block();
            mc.meb_entries = entries;
            let mut pt = cs_workload(Config::Intra(IntraConfig::BM), mc, 64, lines_per_cs);
            pt.parameter = entries as u64;
            pt
        })
        .collect()
}

/// Sweep the IEB capacity under `B+I`. Too small and first reads of the
/// critical section's lines keep re-refreshing (evictions).
pub fn ieb_capacity_sweep(lines_per_cs: u64) -> Vec<AblationPoint> {
    [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&entries| {
            let mut mc = MachineConfig::intra_block();
            mc.ieb_entries = entries;
            let mut pt = cs_workload(Config::Intra(IntraConfig::BI), mc, 64, lines_per_cs);
            pt.parameter = entries as u64;
            pt
        })
        .collect()
}

/// Sweep the mesh hop latency for Base vs HCC: the incoherent machine's
/// overhead is mostly local (traversals, refetch misses), so a slower NoC
/// narrows the relative gap.
pub fn hop_latency_sweep() -> Vec<(u64, u64, u64)> {
    [1u64, 2, 4, 8, 16]
        .iter()
        .map(|&hop| {
            let mut mc = MachineConfig::intra_block();
            mc.hop_cycles = hop;
            let base = cs_workload(Config::Intra(IntraConfig::Base), mc, 64, 4).cycles;
            let hcc = cs_workload(Config::Intra(IntraConfig::Hcc), mc, 64, 4).cycles;
            (hop, base, hcc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meb_sweep_shows_overflow_cliff() {
        // 8 scratch lines + the queue-head line are written per CS:
        // capacities <= 8 overflow, capacities >= 16 never do.
        let pts = meb_capacity_sweep(8);
        let small: Vec<_> = pts.iter().filter(|p| p.parameter <= 8).collect();
        let large: Vec<_> = pts.iter().filter(|p| p.parameter >= 16).collect();
        assert!(small.iter().all(|p| p.meb_overflows > 0), "{small:?}");
        assert!(large.iter().all(|p| p.meb_overflows == 0), "{large:?}");
        // And a big-enough MEB is no slower than an overflowing one.
        let worst_small = small.iter().map(|p| p.cycles).max().unwrap();
        let best_large = large.iter().map(|p| p.cycles).min().unwrap();
        assert!(best_large <= worst_small);
    }

    #[test]
    fn ieb_sweep_refresh_counts_decrease_with_capacity() {
        let pts = ieb_capacity_sweep(8);
        let first = pts.first().unwrap().ieb_refreshes;
        let last = pts.last().unwrap().ieb_refreshes;
        assert!(
            last <= first,
            "bigger IEB must not refresh more ({first} -> {last})"
        );
    }

    #[test]
    fn hop_sweep_is_monotone_in_latency() {
        let pts = hop_latency_sweep();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "Base cycles must grow with hop latency");
            assert!(w[1].2 >= w[0].2, "HCC cycles must grow with hop latency");
        }
    }
}
