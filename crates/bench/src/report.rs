//! Data collection for the paper's figures.
//!
//! Each `figN_rows` function runs the relevant application suite under the
//! relevant configurations and returns structured rows; the `figures`
//! binary renders them as text tables, and `EXPERIMENTS.md` records them
//! against the paper's claims.

#![allow(clippy::needless_range_loop)]

use hic_apps::{inter_apps, intra_apps, App, Scale};
use hic_machine::RunStats;
use hic_runtime::{Config, InterConfig, IntraConfig};
use hic_sim::StallLedger;
use serde::{Deserialize, Serialize};

/// One bar of Figure 9: an (app, config) execution, with the stall
/// breakdown, normalized to the app's HCC total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    pub app: String,
    pub config: String,
    pub cycles: u64,
    /// Total normalized to HCC.
    pub normalized: f64,
    /// [inv, wb, lock, barrier, rest] as fractions of the HCC total.
    pub breakdown: [f64; 5],
    pub correct: bool,
}

fn merged(stats: &RunStats) -> StallLedger {
    stats.merged_ledger()
}

/// Run the intra-block suite and produce Figure 9 rows, including the
/// `average` pseudo-app (arithmetic mean of normalized values, as in the
/// paper's rightmost group).
pub fn fig9_rows(scale: Scale) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    let mut sums: Vec<(String, f64, [f64; 5])> = IntraConfig::ALL
        .iter()
        .map(|c| (c.name().to_string(), 0.0, [0.0; 5]))
        .collect();
    let apps = intra_apps(scale);
    for app in &apps {
        let hcc = app.run(Config::Intra(IntraConfig::Hcc));
        let hcc_total = hcc.stats.total_cycles.max(1);
        for (ci, cfg) in IntraConfig::ALL.iter().enumerate() {
            let r = if *cfg == IntraConfig::Hcc {
                hcc.clone()
            } else {
                app.run(Config::Intra(*cfg))
            };
            let ledger = merged(&r.stats);
            // The ledger sums per-core cycles; its category *shares*
            // scale the bar so the stack sums to the normalized height.
            let frac = ledger.normalized(ledger.total().max(1));
            let norm = r.stats.total_cycles as f64 / hcc_total as f64;
            let breakdown = frac.map(|f| f * norm);
            sums[ci].1 += norm;
            for k in 0..5 {
                sums[ci].2[k] += breakdown[k];
            }
            rows.push(Fig9Row {
                app: app.name().to_string(),
                config: cfg.name().to_string(),
                cycles: r.stats.total_cycles,
                normalized: norm,
                breakdown,
                correct: r.correct,
            });
        }
    }
    let n = apps.len() as f64;
    for (name, total, breakdown) in sums {
        rows.push(Fig9Row {
            app: "average".to_string(),
            config: name,
            cycles: 0,
            normalized: total / n,
            breakdown: breakdown.map(|x| x / n),
            correct: true,
        });
    }
    rows
}

/// One bar pair of Figure 10: B+M+I network traffic vs HCC, in flits,
/// broken into the paper's four categories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    pub app: String,
    pub config: String,
    /// [memory, linefill, writeback, invalidation] flits.
    pub flits: [u64; 4],
    /// Total (of those categories) normalized to the app's HCC total.
    pub normalized: f64,
}

/// Run the intra suite under HCC and B+M+I and report Figure 10 rows,
/// plus the `average` pseudo-app.
pub fn fig10_rows(scale: Scale) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    let mut avg = [0.0f64; 2];
    let apps = intra_apps(scale);
    for app in &apps {
        let hcc = app.run(Config::Intra(IntraConfig::Hcc));
        let bmi = app.run(Config::Intra(IntraConfig::BMI));
        let hcc_total = hcc.stats.traffic.fig10_total().max(1);
        for (i, (name, r)) in [("HCC", &hcc), ("B+M+I", &bmi)].into_iter().enumerate() {
            let t = &r.stats.traffic;
            let norm = t.fig10_total() as f64 / hcc_total as f64;
            avg[i] += norm;
            rows.push(Fig10Row {
                app: app.name().to_string(),
                config: name.to_string(),
                flits: [t.memory, t.linefill, t.writeback, t.invalidation],
                normalized: norm,
            });
        }
    }
    let n = apps.len() as f64;
    for (i, name) in ["HCC", "B+M+I"].into_iter().enumerate() {
        rows.push(Fig10Row {
            app: "average".to_string(),
            config: name.to_string(),
            flits: [0; 4],
            normalized: avg[i] / n,
        });
    }
    rows
}

/// One group of Figure 11: global WB / INV counts under Addr+L,
/// normalized to Addr.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    pub app: String,
    pub addr_global_wbs: u64,
    pub addr_global_invs: u64,
    pub addrl_global_wbs: u64,
    pub addrl_global_invs: u64,
    /// Addr+L / Addr ratios.
    pub wb_ratio: f64,
    pub inv_ratio: f64,
}

/// Run the inter suite under Addr and Addr+L, counting global operations.
pub fn fig11_rows(scale: Scale) -> Vec<Fig11Row> {
    inter_apps(scale)
        .iter()
        .map(|app| {
            let a = app.run(Config::Inter(InterConfig::Addr));
            let l = app.run(Config::Inter(InterConfig::AddrL));
            assert!(a.correct && l.correct, "{} failed", app.name());
            Fig11Row {
                app: app.name().to_string(),
                addr_global_wbs: a.stats.counters.global_wbs,
                addr_global_invs: a.stats.counters.global_invs,
                addrl_global_wbs: l.stats.counters.global_wbs,
                addrl_global_invs: l.stats.counters.global_invs,
                wb_ratio: l.stats.counters.global_wbs as f64
                    / a.stats.counters.global_wbs.max(1) as f64,
                inv_ratio: l.stats.counters.global_invs as f64
                    / a.stats.counters.global_invs.max(1) as f64,
            }
        })
        .collect()
}

/// One bar of Figure 12: inter-block normalized execution time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Row {
    pub app: String,
    pub config: String,
    pub cycles: u64,
    pub normalized: f64,
    pub correct: bool,
}

/// Run the inter suite under all four configurations.
pub fn fig12_rows(scale: Scale) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    let apps = inter_apps(scale);
    let mut sums: Vec<(String, f64)> = InterConfig::ALL
        .iter()
        .map(|c| (c.name().to_string(), 0.0))
        .collect();
    for app in &apps {
        let hcc = app.run(Config::Inter(InterConfig::Hcc));
        let hcc_total = hcc.stats.total_cycles.max(1);
        for (ci, cfg) in InterConfig::ALL.iter().enumerate() {
            let r = if *cfg == InterConfig::Hcc {
                hcc.clone()
            } else {
                app.run(Config::Inter(*cfg))
            };
            let norm = r.stats.total_cycles as f64 / hcc_total as f64;
            sums[ci].1 += norm;
            rows.push(Fig12Row {
                app: app.name().to_string(),
                config: cfg.name().to_string(),
                cycles: r.stats.total_cycles,
                normalized: norm,
                correct: r.correct,
            });
        }
    }
    let n = apps.len() as f64;
    for (name, total) in sums {
        rows.push(Fig12Row {
            app: "average".to_string(),
            config: name,
            cycles: 0,
            normalized: total / n,
            correct: true,
        });
    }
    rows
}

/// Every row of an app suite table must come from a correct run; used by
/// integration tests over the harness itself.
pub fn all_correct_fig9(rows: &[Fig9Row]) -> bool {
    rows.iter().all(|r| r.correct)
}

pub fn all_correct_fig12(rows: &[Fig12Row]) -> bool {
    rows.iter().all(|r| r.correct)
}

#[allow(unused)]
fn _suite_is_runnable(apps: &[Box<dyn App>]) {}
