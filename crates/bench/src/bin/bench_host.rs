//! Host-performance regression benchmark.
//!
//! Runs the full application suite on the host clock and writes
//! `BENCH_host.json` with suite wall-clock, sim-ops/sec, and the engine
//! transport ledger, so simulator performance is tracked PR over PR.
//!
//! Usage: `bench_host [--scale <scale>] [--baseline <secs>]
//!                    [--out <path>] [--micro] [--check] [--faults] [--lint]
//!                    [--geometry] [--parallel]`
//!
//! `--baseline` records a pre-change wall-clock (seconds) in the JSON and
//! computes the speedup against it; when omitted, the previous report at
//! `--out` (if any) supplies the baseline, so the trajectory is tracked
//! PR over PR without manual bookkeeping. `--micro` additionally runs the
//! micro-benchmarks from the in-repo harness and embeds their timings.
//! `--check` times the incoherent half of the suite with the incoherence
//! sanitizer off and in Report mode and records the overhead (the checked
//! sweep must stay finding-free). `--faults` times the incoherent half of
//! the suite clean and under the canned recoverable fault plan
//! (`HIC_FAULTS`) and records retry counts, recovery traffic, and the
//! host-time overhead (the faulted sweep must stay correct). `--lint`
//! statically verifies and optimizes every recorded app with `hic-lint`,
//! records the verify / optimize host times, and simulates each app with
//! the original and the minimized plans to record the WB/INV traffic
//! deltas. `--geometry` runs the inter-block suite across the swept
//! topology grid (2x2x2 through 8x8x4) under the three protocol
//! families — incoherent Base, invalidation-based HCC (MESI), and
//! update-based Dragon — and records cycles plus per-category traffic
//! for every (shape, scheme, app) cell. `--parallel` sweeps the suite
//! under the sequential linear oracle and then under the sharded
//! parallel-in-host engine (`HIC_ENGINE=sharded:<n>`) across shard
//! counts, asserting bit-identical simulated results and recording the
//! suite-throughput scaling curve.

use std::process::ExitCode;

use hic_apps::Scale;
use hic_bench::cli::parse_scale;
use hic_bench::host::{
    run_check_overhead, run_fault_suite, run_geometry_matrix, run_lint_suite, run_parallel_suite,
    run_suite, to_json,
};
use hic_bench::{bench_with_setup, Timing};
use hic_runtime::{Config, IntraConfig, ProgramBuilder};

fn micro_timings() -> Vec<Timing> {
    // A small, representative micro set: one communication-heavy kernel
    // under the baseline config, measured end to end.
    let cfg = IntraConfig::ALL[0];
    vec![bench_with_setup(
        "micro/flag_ping_pong_64",
        || (),
        move |()| {
            let mut p = ProgramBuilder::new(Config::Intra(cfg));
            let flag = p.flag();
            let bar = p.barrier_of(2);
            let data = p.alloc(16);
            p.run(2, move |ctx| {
                for round in 0..64u32 {
                    if ctx.tid() == 0 {
                        ctx.write(data, 0, round);
                        ctx.flag_set(flag);
                    } else {
                        ctx.flag_wait(flag);
                        ctx.read(data, 0);
                        ctx.flag_clear(flag);
                    }
                    ctx.barrier(bar);
                }
            })
        },
    )]
}

fn main() -> ExitCode {
    let mut baseline: Option<f64> = None;
    let mut out_path = "BENCH_host.json".to_string();
    let mut micro = false;
    let mut check = false;
    let mut faults = false;
    let mut lint = false;
    let mut geometry = false;
    let mut parallel = false;
    // Fixed seed for the canned fault plan: the sweep must be exactly
    // reproducible PR over PR.
    const FAULT_SEED: u64 = 2026;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&argv, Scale::Small);
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                // Value already consumed by `parse_scale`.
                args.next();
            }
            "--baseline" => {
                baseline = match args.next().map(|v| v.parse::<f64>()) {
                    Some(Ok(v)) => Some(v),
                    _ => {
                        eprintln!("--baseline needs a number of seconds");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--micro" => micro = true,
            "--check" => check = true,
            "--faults" => faults = true,
            "--lint" => lint = true,
            "--geometry" => geometry = true,
            "--parallel" => parallel = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_host [--scale test|small|medium|large|paper] \
                     [--baseline <secs>] [--out <path>] [--micro] [--check] [--faults] \
                     [--lint] [--geometry] [--parallel]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Populate the baseline from the previous report at `--out` when not
    // given explicitly: the last recorded `wall_s` is exactly the
    // pre-change suite wall this run should be compared against.
    if baseline.is_none() {
        baseline = std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|prev| previous_wall_s(&prev));
    }

    let mut report = run_suite(scale);
    if micro {
        report.timings = micro_timings();
    }
    if check {
        report.check = Some(run_check_overhead(scale));
    }
    if faults {
        report.faults = Some(run_fault_suite(scale, FAULT_SEED));
    }
    if lint {
        report.lint = run_lint_suite(scale);
    }
    if geometry {
        report.geometry = run_geometry_matrix(scale);
    }
    if parallel {
        report.parallel = Some(run_parallel_suite(scale, &[1, 2, 4, 8]));
    }

    let wall = report.wall.as_secs_f64();
    println!(
        "suite --scale {}: {} runs, wall {:.3}s, {:.0} sim-ops/s, {} round-trips",
        report.scale,
        report.runs.len(),
        wall,
        report.sim_ops_per_sec(),
        report.total_round_trips(),
    );
    for r in &report.runs {
        println!(
            "  {:<16} {:<8} {:>9.3}s  {:>12} ops  {:>10} rt  {}",
            r.app,
            r.config,
            r.wall.as_secs_f64(),
            r.engine.ops_executed,
            r.engine.round_trips,
            if r.correct { "ok" } else { "FAIL" },
        );
    }
    if let Some(b) = baseline {
        println!("baseline {:.3}s -> speedup {:.2}x", b, b / wall.max(1e-9));
    }
    if let Some(c) = &report.check {
        println!(
            "sanitizer: {} word checks, {:.3}s off -> {:.3}s report ({:+.1}% host time), {}",
            c.checks,
            c.wall_off.as_secs_f64(),
            c.wall_report.as_secs_f64(),
            c.overhead_pct(),
            if c.clean { "clean" } else { "FINDINGS" },
        );
    }

    if let Some(fo) = &report.faults {
        println!(
            "faults (seed {}): {:.3}s clean -> {:.3}s faulted ({:+.1}% host time), \
             {} retries / {} retry flits, {} flips ({} recovered, {} recovery flits), \
             {} delayed acks, {}",
            fo.seed,
            fo.wall_clean.as_secs_f64(),
            fo.wall_faulted.as_secs_f64(),
            fo.overhead_pct(),
            fo.stats.retries,
            fo.stats.retry_flits,
            fo.stats.bit_flips,
            fo.stats.flips_recovered,
            fo.stats.recovery_flits,
            fo.stats.delayed_acks,
            if fo.correct {
                "correct"
            } else {
                "WRONG RESULTS"
            },
        );
        println!(
            "recovery (seed {}): {:.3}s clean -> {:.3}s corrupting+rollback \
             ({:+.1}% host time), {} rollbacks / {} rollback cycles, \
             {} checkpoint words, {}",
            fo.seed,
            fo.wall_clean.as_secs_f64(),
            fo.wall_recovered.as_secs_f64(),
            fo.recover_overhead_pct(),
            fo.recover_stats.rollbacks,
            fo.recover_stats.rollback_cycles,
            fo.recover_stats.checkpoint_words,
            if fo.recover_correct {
                "correct"
            } else {
                "WRONG RESULTS"
            },
        );
    }

    for l in &report.lint {
        println!(
            "lint: {:<8} {:<6} verify {:>7.3}ms opt {:>7.3}ms | plan ops {} -> {} \
             ({} pruned, {} downgraded) | WB+INV flits {} -> {} ({:+.1}%) | {}",
            l.app,
            l.config,
            l.verify.as_secs_f64() * 1e3,
            l.optimize.as_secs_f64() * 1e3,
            l.ops_before,
            l.ops_after,
            l.pruned,
            l.downgraded,
            l.flits_before,
            l.flits_after,
            -l.flit_savings_pct(),
            if l.clean && l.correct { "ok" } else { "FAIL" },
        );
    }

    if let Some(p) = &report.parallel {
        println!(
            "parallel: {} host cores, oracle {:.3}s, {}",
            p.host_cores,
            p.oracle_wall.as_secs_f64(),
            if p.all_correct() {
                "all curves bit-identical"
            } else {
                "ENGINE MISMATCH"
            },
        );
        for c in &p.curves {
            println!(
                "  sharded:{:<3} {:>9.3}s  {:>6.2}x  {}",
                c.shards,
                c.wall.as_secs_f64(),
                p.speedup(c),
                if c.identical { "identical" } else { "MISMATCH" },
            );
        }
    }

    for g in &report.geometry {
        println!(
            "geometry: {:<8} {:<7} {:<8} {:>12} cycles | flits: {} fill, {} wb, {} inv, \
             {} mem, {} l2l3 | {}",
            g.shape,
            g.scheme,
            g.app,
            g.cycles,
            g.traffic.linefill,
            g.traffic.writeback,
            g.traffic.invalidation,
            g.traffic.memory,
            g.traffic.l2l3,
            if g.correct { "ok" } else { "FAIL" },
        );
    }

    let json = to_json(&report, baseline);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if !report.all_correct() {
        eprintln!("some runs produced incorrect results");
        return ExitCode::FAILURE;
    }
    if report.check.as_ref().is_some_and(|c| !c.clean) {
        eprintln!("the sanitizer flagged the unmodified suite");
        return ExitCode::FAILURE;
    }
    if report.faults.as_ref().is_some_and(|fo| !fo.correct) {
        eprintln!("a recoverable fault plan changed application results");
        return ExitCode::FAILURE;
    }
    if report.lint.iter().any(|l| !l.clean || !l.correct) {
        eprintln!("hic-lint flagged a record or a minimized run went wrong");
        return ExitCode::FAILURE;
    }
    if report.parallel.as_ref().is_some_and(|p| !p.all_correct()) {
        eprintln!("the sharded engine diverged from the sequential oracle");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Extract the top-level `"wall_s"` value from a previous report without
/// a JSON parser (the serde shim is inert). The writer emits it as the
/// third line, `  "wall_s": <secs>,` — scan for exactly that shape.
fn previous_wall_s(json: &str) -> Option<f64> {
    json.lines()
        .find_map(|l| l.trim().strip_prefix("\"wall_s\":"))
        .and_then(|rest| rest.trim().trim_end_matches(',').parse::<f64>().ok())
}
