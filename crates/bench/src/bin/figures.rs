//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! figures table1|table2|table3|storage|fig9|fig10|fig11|fig12|ablation|all
//!         [--scale test|small|medium|large|paper]
//! ```
//!
//! Output is printed as text tables shaped like the paper's figures;
//! `EXPERIMENTS.md` records a captured run against the paper's claims.

use hic_apps::{intra_apps, Scale};
use hic_bench::parse_scale;
use hic_bench::{fig10_rows, fig11_rows, fig12_rows, fig9_rows};
use hic_bench::{hop_latency_sweep, ieb_capacity_sweep, meb_capacity_sweep};
use hic_core::storage::{coherent_storage_bits, incoherent_storage_bits, savings_kb};
use hic_runtime::{InterConfig, IntraConfig};
use hic_sim::{MachineConfig, StallCategory};

fn table1() {
    println!("Table I: communication patterns observed in our applications");
    println!("{:-14} | {:-28} | {:-28}", "Appl.", "Main", "Other");
    println!("{:-<14}-+-{:-<28}-+-{:-<28}", "", "", "");
    for app in intra_apps(Scale::Test) {
        let p = app.patterns();
        println!(
            "{:-14} | {:-28} | {}",
            app.name(),
            p.main_label(),
            p.other_label()
        );
    }
}

fn table2() {
    println!("Table II: configurations evaluated");
    println!("-- Intra-Block Experiments --");
    for c in IntraConfig::ALL {
        let desc = match c {
            IntraConfig::Base => "Baseline: WB ALL and INV ALL",
            IntraConfig::BM => "Base plus MEB",
            IntraConfig::BI => "Base plus IEB",
            IntraConfig::BMI => "Base plus MEB and IEB",
            IntraConfig::Hcc => "Hardware cache coherence",
            IntraConfig::Dragon => "Hardware cache coherence (update-based)",
        };
        println!("{:-8} {}", c.name(), desc);
    }
    println!("-- Inter-Block Experiments --");
    for c in InterConfig::ALL {
        let desc = match c {
            InterConfig::Base => "Baseline: WB ALL to L3; INV ALL from L2",
            InterConfig::Addr => "WB of addresses to L3; INV of addresses from L2",
            InterConfig::AddrL => "WB_CONS and INV_PROD",
            InterConfig::Hcc => "Hardware cache coherence",
            InterConfig::Dragon => "Hardware cache coherence (update-based)",
        };
        println!("{:-8} {}", c.name(), desc);
    }
}

fn table3() {
    println!("Table III: architecture modeled (RT = round trip)");
    for (name, cfg) in [
        ("Intra-Block", MachineConfig::intra_block()),
        ("Inter-Block", MachineConfig::inter_block()),
    ] {
        println!("-- {name} --");
        println!(
            "  cores: {} ({} block(s) x {})",
            cfg.num_cores(),
            cfg.num_blocks(),
            cfg.cores_per_block()
        );
        println!(
            "  L1: {}KB, {}-way, {}-cycle RT, {}B lines",
            cfg.l1.size_bytes / 1024,
            cfg.l1.ways,
            cfg.l1_rt,
            cfg.l1.line_bytes
        );
        println!(
            "  MEB: {} entries ({}b ID + 1b valid); IEB: {} entries (40b + 1b)",
            cfg.meb_entries,
            cfg.l1.line_id_bits(),
            cfg.ieb_entries
        );
        println!(
            "  L2: {} banks/block x {}KB, {}-way, {}-cycle RT",
            cfg.l2_banks_per_block(),
            cfg.l2.size_bytes / 1024,
            cfg.l2.ways,
            cfg.l2_rt
        );
        if let Some(l3) = cfg.l3() {
            println!(
                "  L3: {} banks x {}MB, {}-way, {}-cycle RT",
                l3.banks,
                l3.geometry.size_bytes / (1024 * 1024),
                l3.geometry.ways,
                l3.rt
            );
        }
        println!(
            "  mesh: {} cycles/hop, {}-bit links; memory {}-cycle RT at corners",
            cfg.hop_cycles, cfg.link_bits, cfg.mem_rt
        );
    }
}

fn storage() {
    let cfg = MachineConfig::inter_block();
    println!("Section VII-A: control and storage overhead (32-core, 4x8)");
    for (name, rep) in [
        (
            "coherent (hierarchical full-map MESI)",
            coherent_storage_bits(&cfg),
        ),
        (
            "incoherent (valid + per-word dirty, MEB/IEB/ThreadMap)",
            incoherent_storage_bits(&cfg),
        ),
    ] {
        println!("-- {name} --");
        for (item, bits) in &rep.items {
            println!(
                "  {:-44} {:>10} bits ({:>7.2} KB)",
                item,
                bits,
                *bits as f64 / 8192.0
            );
        }
        println!(
            "  {:-44} {:>10} bits ({:>7.2} KB)",
            "TOTAL",
            rep.total_bits(),
            rep.total_kb()
        );
    }
    println!(
        "incoherent saves {:.1} KB (paper: \"about 102KB\")",
        savings_kb(&cfg)
    );
}

fn fig9(scale: Scale) {
    println!("Figure 9: normalized execution time, intra-block (HCC = 1.00)");
    println!(
        "{:-14} {:-6} {:>12} {:>6}  {:>6} {:>6} {:>6} {:>7} {:>6}  ok",
        "app", "config", "cycles", "norm", "inv", "wb", "lock", "barrier", "rest"
    );
    for r in fig9_rows(scale) {
        println!(
            "{:-14} {:-6} {:>12} {:>6.2}  {:>6.3} {:>6.3} {:>6.3} {:>7.3} {:>6.3}  {}",
            r.app,
            r.config,
            r.cycles,
            r.normalized,
            r.breakdown[0],
            r.breakdown[1],
            r.breakdown[2],
            r.breakdown[3],
            r.breakdown[4],
            if r.correct { "yes" } else { "NO" }
        );
    }
    let _ = StallCategory::ALL; // category order documented in hic-sim
}

fn fig10(scale: Scale) {
    println!("Figure 10: normalized network traffic, HCC vs B+M+I (flits)");
    println!(
        "{:-14} {:-6} {:>10} {:>10} {:>10} {:>12} {:>6}",
        "app", "config", "memory", "linefill", "writeback", "invalidation", "norm"
    );
    for r in fig10_rows(scale) {
        println!(
            "{:-14} {:-6} {:>10} {:>10} {:>10} {:>12} {:>6.2}",
            r.app, r.config, r.flits[0], r.flits[1], r.flits[2], r.flits[3], r.normalized
        );
    }
}

fn fig11(scale: Scale) {
    println!("Figure 11: global WBs and INVs, Addr+L normalized to Addr");
    println!(
        "{:-8} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "app", "WB(Addr)", "WB(A+L)", "ratio", "INV(Addr)", "INV(A+L)", "ratio"
    );
    for r in fig11_rows(scale) {
        println!(
            "{:-8} {:>10} {:>10} {:>8.2} | {:>10} {:>10} {:>8.2}",
            r.app,
            r.addr_global_wbs,
            r.addrl_global_wbs,
            r.wb_ratio,
            r.addr_global_invs,
            r.addrl_global_invs,
            r.inv_ratio
        );
    }
}

fn fig12(scale: Scale) {
    println!("Figure 12: normalized execution time, inter-block (HCC = 1.00)");
    println!(
        "{:-10} {:-6} {:>12} {:>6}  ok",
        "app", "config", "cycles", "norm"
    );
    for r in fig12_rows(scale) {
        println!(
            "{:-10} {:-6} {:>12} {:>6.2}  {}",
            r.app,
            r.config,
            r.cycles,
            r.normalized,
            if r.correct { "yes" } else { "NO" }
        );
    }
}

fn ablation() {
    println!("Ablation: MEB capacity (B+M, 64 jobs, 8 lines written per CS)");
    println!(
        "{:>8} {:>10} {:>8} {:>10}",
        "entries", "cycles", "drains", "overflows"
    );
    for p in meb_capacity_sweep(8) {
        println!(
            "{:>8} {:>10} {:>8} {:>10}",
            p.parameter, p.cycles, p.meb_drains, p.meb_overflows
        );
    }
    println!("\nAblation: IEB capacity (B+I, 64 jobs, 8 lines per CS)");
    println!("{:>8} {:>10} {:>10}", "entries", "cycles", "refreshes");
    for p in ieb_capacity_sweep(8) {
        println!(
            "{:>8} {:>10} {:>10}",
            p.parameter, p.cycles, p.ieb_refreshes
        );
    }
    println!("\nAblation: mesh hop latency (Base vs HCC, task-queue kernel)");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "cyc/hop", "Base", "HCC", "ratio"
    );
    for (hop, base, hcc) in hop_latency_sweep() {
        println!(
            "{:>8} {:>10} {:>10} {:>8.2}",
            hop,
            base,
            hcc,
            base as f64 / hcc as f64
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args, Scale::Small);
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    match what {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "storage" => storage(),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "ablation" => ablation(),
        "all" => {
            table1();
            println!();
            table2();
            println!();
            table3();
            println!();
            storage();
            println!();
            fig9(scale);
            println!();
            fig10(scale);
            println!();
            fig11(scale);
            println!();
            fig12(scale);
        }
        other => {
            eprintln!(
                "unknown target {other:?}; use table1|table2|table3|storage|fig9|fig10|fig11|fig12|ablation|all"
            );
            std::process::exit(2);
        }
    }
}
