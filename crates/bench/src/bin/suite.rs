//! Run the application suite and print a results table.
//!
//! ```text
//! suite [--scale test|small|medium|large|paper] [--intra|--inter]
//!       [name-filter ...]
//! ```
//!
//! Every run is validated against its host reference; the binary exits
//! nonzero if any run is incorrect, so it doubles as an end-to-end check.

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_bench::cli::{is_scale_name, parse_scale};
use hic_runtime::{Config, InterConfig, IntraConfig};

fn wanted(args: &[String], name: &str) -> bool {
    let filters: Vec<&String> = args
        .iter()
        .skip_while(|a| a.starts_with("--") || a.parse::<usize>().is_ok())
        .filter(|a| !a.starts_with("--"))
        .collect();
    // Skip the value that follows --scale.
    let filters: Vec<&&String> = filters.iter().filter(|a| !is_scale_name(a)).collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args, Scale::Test);
    let run_intra = !args.iter().any(|a| a == "--inter");
    let run_inter = !args.iter().any(|a| a == "--intra");
    let mut failures = 0usize;

    let mut report = |name: &str,
                      cfg: &str,
                      correct: bool,
                      cycles: u64,
                      wall: std::time::Duration,
                      detail: &str| {
        if !correct {
            failures += 1;
        }
        println!(
            "{:-14} {:-6} {:-5} {:>12} {:>9.2?}  {}",
            name,
            cfg,
            if correct { "ok" } else { "WRONG" },
            cycles,
            wall,
            detail
        );
    };

    println!(
        "{:-14} {:-6} {:-5} {:>12} {:>9}  detail",
        "app", "config", "check", "cycles", "wall"
    );
    if run_intra {
        for app in intra_apps(scale) {
            if !wanted(&args, app.name()) {
                continue;
            }
            for cfg in IntraConfig::ALL {
                let t0 = std::time::Instant::now();
                let r = app.run(Config::Intra(cfg));
                report(
                    app.name(),
                    cfg.name(),
                    r.correct,
                    r.stats.total_cycles,
                    t0.elapsed(),
                    &r.detail,
                );
            }
        }
    }
    if run_inter {
        for app in inter_apps(scale) {
            if !wanted(&args, app.name()) {
                continue;
            }
            for cfg in InterConfig::ALL {
                let t0 = std::time::Instant::now();
                let r = app.run(Config::Inter(cfg));
                report(
                    app.name(),
                    cfg.name(),
                    r.correct,
                    r.stats.total_cycles,
                    t0.elapsed(),
                    &r.detail,
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} runs computed WRONG results");
        std::process::exit(1);
    }
}
