//! Regenerate the golden table pinned by `tests/golden_equivalence.rs`.
//!
//! Dumps every (app, config) cell of the two paper suites at
//! `Scale::Test` as Rust tuple literals — `("App", "Cfg", cycles,
//! [linefill, writeback, invalidation, memory, l2l3, sync])` — ready to
//! paste over the `GOLDEN` array. Only run this (and re-pin) after a
//! change that *intentionally* shifts the timing or traffic model; the
//! whole point of the golden test is that refactors keep the paper
//! presets bit-identical.
//!
//! ```text
//! cargo run --release -p hic-bench --bin golden_dump
//! ```

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig};

fn main() {
    for app in intra_apps(Scale::Test) {
        for cfg in IntraConfig::ALL {
            let r = app.run(Config::Intra(cfg));
            let t = r.stats.traffic;
            println!(
                "    (\"{}\", \"{}\", {}, [{}, {}, {}, {}, {}, {}]),",
                app.name(),
                cfg.name(),
                r.stats.total_cycles,
                t.linefill,
                t.writeback,
                t.invalidation,
                t.memory,
                t.l2l3,
                t.sync
            );
        }
    }
    for app in inter_apps(Scale::Test) {
        for cfg in InterConfig::ALL {
            let r = app.run(Config::Inter(cfg));
            let t = r.stats.traffic;
            println!(
                "    (\"{}\", \"{}\", {}, [{}, {}, {}, {}, {}, {}]),",
                app.name(),
                cfg.name(),
                r.stats.total_cycles,
                t.linefill,
                t.writeback,
                t.invalidation,
                t.memory,
                t.l2l3,
                t.sync
            );
        }
    }
}
