//! Benchmark and figure-regeneration harness.
//!
//! The `figures` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index); the benches
//! under `benches/` measure the same workloads under the standard
//! `cargo bench` flow, using the in-repo wall-clock harness in
//! [`harness`].

pub mod ablation;
pub mod cli;
pub mod harness;
pub mod host;
pub mod report;

pub use ablation::{hop_latency_sweep, ieb_capacity_sweep, meb_capacity_sweep, AblationPoint};
pub use cli::parse_scale;
pub use harness::{bench, bench_with_setup, Timing};
pub use host::{geometry_grid, run_geometry_matrix, GeometryRun, HostReport, HostRun};
pub use report::{
    fig10_rows, fig11_rows, fig12_rows, fig9_rows, Fig10Row, Fig11Row, Fig12Row, Fig9Row,
};
