//! A minimal wall-clock benchmarking harness.
//!
//! The build environment has no registry access, so the benches under
//! `benches/` (all `harness = false`) use this in-repo harness instead of
//! an external framework: warm up, run the routine until a time budget or
//! iteration cap is hit, and report mean wall time per iteration.
//!
//! Results go to stdout, one line per benchmark:
//! `bench  <name>  <iters> iters  <mean>/iter  <total>`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default time budget per benchmark (after warm-up). Override with
/// `HIC_BENCH_BUDGET_MS` (CI smoke jobs set a small value).
const BUDGET: Duration = Duration::from_millis(1000);

fn budget() -> Duration {
    match hic_runtime::request::env::bench_budget_ms() {
        Ok(Some(ms)) => Duration::from_millis(ms),
        Ok(None) => BUDGET,
        Err(e) => panic!("{e}"),
    }
}
/// Iteration caps: at least MIN (for stable means), at most MAX (so a
/// nanosecond-scale routine doesn't spin the budget away on clock reads).
const MIN_ITERS: u64 = 5;
const MAX_ITERS: u64 = 100_000;
/// Warm-up iterations (untimed).
const WARMUP: u64 = 2;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Timing {
    pub name: String,
    pub iters: u64,
    pub total: Duration,
}

impl Timing {
    /// Mean wall time per iteration, computed in nanoseconds so large
    /// iteration counts don't truncate to zero (`Duration / u32` rounds
    /// the whole quotient down to its nanosecond grid in one step).
    pub fn mean(&self) -> Duration {
        let nanos = self.total.as_nanos() / u128::from(self.iters.max(1));
        Duration::from_nanos(nanos as u64)
    }

    /// Mean iterations per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.iters as f64 / secs
    }

    fn report(&self) {
        println!(
            "bench  {:<44} {:>7} iters  {:>12?}/iter  total {:?}",
            self.name,
            self.iters,
            self.mean(),
            self.total
        );
    }
}

/// Measure `routine` (no per-iteration setup). Prints and returns the
/// timing.
pub fn bench<T>(name: &str, mut routine: impl FnMut() -> T) -> Timing {
    bench_with_setup(name, || (), move |()| routine())
}

/// Measure `routine` with untimed per-iteration `setup` (the equivalent
/// of a batched iteration: construction cost is excluded from the
/// measurement). Prints and returns the timing.
pub fn bench_with_setup<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Timing {
    for _ in 0..WARMUP {
        black_box(routine(setup()));
    }
    let budget = budget();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    while (total < budget || iters < MIN_ITERS) && iters < MAX_ITERS {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        total += start.elapsed();
        iters += 1;
    }
    let t = Timing {
        name: name.to_string(),
        iters,
        total,
    };
    t.report();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_math() {
        let t = Timing {
            name: "x".into(),
            iters: 4,
            total: Duration::from_millis(100),
        };
        assert_eq!(t.mean(), Duration::from_millis(25));
        assert!((t.throughput() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn bench_runs_at_least_min_iters() {
        let mut calls = 0u64;
        let t = bench("self_test_noop", || calls += 1);
        assert!(t.iters >= MIN_ITERS);
        assert_eq!(calls, t.iters + WARMUP);
    }
}
