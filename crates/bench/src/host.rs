//! Host-performance benchmark: wall-clock and engine-throughput tracking.
//!
//! The `bench_host` binary runs the full application suite (every app under
//! every configuration, like `suite`), times each run on the host clock,
//! and writes a machine-readable `BENCH_host.json` so the wall-clock
//! trajectory of the simulator itself is tracked PR over PR. The JSON
//! records, per run and in aggregate: host wall time, simulated-machine
//! ops executed, sim-ops per host second, and the engine's transport
//! ledger (messages, batches, reply round-trips, wakeups).
//!
//! The serde shim is inert (see `crates/shims/README.md`), so the JSON is
//! emitted by the tiny hand-rolled writer in this module.

use std::time::{Duration, Instant};

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_machine::{ResilienceStats, TrafficLedger};
use hic_runtime::{CheckMode, Config, FaultSpec, InterConfig, IntraConfig, RunRequest, Scheduler};
use hic_sim::{EngineStats, Topology, TopologyBuilder};

use crate::harness::Timing;

/// One timed (app, configuration) execution.
#[derive(Debug, Clone)]
pub struct HostRun {
    pub app: String,
    pub config: String,
    /// `"intra"` or `"inter"`.
    pub family: &'static str,
    pub correct: bool,
    pub cycles: u64,
    pub wall: Duration,
    pub engine: EngineStats,
}

impl HostRun {
    /// Simulated machine ops retired per host-side second.
    pub fn sim_ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.engine.ops_executed as f64 / s
    }
}

/// Sanitizer-overhead measurement (`--check`): the incoherent half of
/// the suite timed with `hic-check` off and in Report mode (explicit
/// `RunRequest`s; nothing is read from or written to the environment). Each mode is
/// swept [`CHECK_REPS`] times, interleaved, and the minimum wall time per
/// mode is reported — a single off-then-report pass charges all the
/// process warm-up (lazy page faults, allocator growth, branch training)
/// to the *off* sweep and used to report a negative overhead.
#[derive(Debug, Clone)]
pub struct CheckOverhead {
    /// Minimum wall time of the sweep with checking off.
    pub wall_off: Duration,
    /// Minimum wall time of the same sweep in Report mode.
    pub wall_report: Duration,
    /// Total loads/stores the sanitizer inspected across the sweep.
    pub checks: u64,
    /// True when the whole suite produced zero findings (it must).
    pub clean: bool,
}

impl CheckOverhead {
    /// Host-time overhead of Report-mode checking, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let off = self.wall_off.as_secs_f64();
        if off == 0.0 {
            return 0.0;
        }
        (self.wall_report.as_secs_f64() / off - 1.0) * 100.0
    }
}

/// Fault-resilience measurement (`--faults`): the incoherent half of the
/// suite timed three ways — clean, under the canned recoverable fault
/// plan (`FaultSpec::Recoverable`), and under the corrupting-but-
/// recoverable plan (`FaultSpec::CorruptingRecover`, which flips dirty
/// lines and survives them via epoch-checkpoint rollback). The arms are
/// interleaved [`CHECK_REPS`] times and the minimum wall per arm is
/// kept, so process warm-up cannot be charged to whichever arm runs
/// first. Both faulted sweeps must still produce correct results.
#[derive(Debug, Clone)]
pub struct FaultOverhead {
    /// Seed of the canned plan (`FaultPlan::from_seed`).
    pub seed: u64,
    /// Minimum wall time of the sweep with no faults installed.
    pub wall_clean: Duration,
    /// Minimum wall time of the same sweep under the recoverable plan.
    pub wall_faulted: Duration,
    /// Minimum wall time under the corrupting + rollback-recovery plan.
    pub wall_recovered: Duration,
    /// True when every faulted run still matched its reference.
    pub correct: bool,
    /// True when every corrupting-recover run still matched its
    /// reference (rollback replay repaired each corruption).
    pub recover_correct: bool,
    /// Injected faults and recovery work, summed over the faulted sweep.
    pub stats: ResilienceStats,
    /// The corrupting-recover sweep's ledger: rollbacks, rollback
    /// cycles, and checkpoint words captured, on top of the usual
    /// retry/flip counters.
    pub recover_stats: ResilienceStats,
}

impl FaultOverhead {
    /// Host-time overhead of running under faults, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let clean = self.wall_clean.as_secs_f64();
        if clean == 0.0 {
            return 0.0;
        }
        (self.wall_faulted.as_secs_f64() / clean - 1.0) * 100.0
    }

    /// Host-time overhead of checkpointed rollback recovery, in percent.
    pub fn recover_overhead_pct(&self) -> f64 {
        let clean = self.wall_clean.as_secs_f64();
        if clean == 0.0 {
            return 0.0;
        }
        (self.wall_recovered.as_secs_f64() / clean - 1.0) * 100.0
    }
}

/// One static verify + optimize measurement (`--lint`): an app's record
/// under one configuration, verified and minimized by `hic-lint` on the
/// host clock, then simulated with the original and the minimized plans
/// to measure the traffic delta.
#[derive(Debug, Clone)]
pub struct LintRun {
    pub app: String,
    pub config: String,
    /// Host time to statically verify the record.
    pub verify: Duration,
    /// Host time to compute + re-verify the minimized plans.
    pub optimize: Duration,
    /// The record verified finding-free (it must).
    pub clean: bool,
    pub ops_before: usize,
    pub ops_after: usize,
    pub pruned: usize,
    pub downgraded: usize,
    /// WB+INV flits of the simulated run, original / minimized plans.
    pub flits_before: u64,
    pub flits_after: u64,
    /// Executed WB/INV instructions, original / minimized plans.
    pub wbinv_before: u64,
    pub wbinv_after: u64,
    /// The minimized run still matched the host reference.
    pub correct: bool,
}

impl LintRun {
    /// WB+INV flit reduction, in percent of the original.
    pub fn flit_savings_pct(&self) -> f64 {
        if self.flits_before == 0 {
            return 0.0;
        }
        (1.0 - self.flits_after as f64 / self.flits_before as f64) * 100.0
    }
}

/// One cell of the protocol-comparison matrix (`--geometry`): an
/// application on one swept topology under one protocol. The sweep pits
/// the incoherent baseline against both hardware-coherent backends
/// (invalidation-based MESI and update-based Dragon) on machine shapes
/// the paper never built, so the comparison the paper makes on its two
/// fixed geometries is tracked across the whole grid PR over PR.
#[derive(Debug, Clone)]
pub struct GeometryRun {
    /// `"BxCxK"`: blocks x cores/block x L2 banks/block.
    pub shape: String,
    pub blocks: usize,
    pub cores_per_block: usize,
    pub l2_banks: usize,
    /// `"Base"` (incoherent), `"HCC"` (MESI), or `"Dragon"`.
    pub scheme: String,
    pub app: String,
    pub correct: bool,
    pub cycles: u64,
    /// Per-category flit totals of the simulated run.
    pub traffic: TrafficLedger,
    pub wall: Duration,
}

/// The swept geometry grid: 2x2x2 through 8x8x4 (blocks x cores/block x
/// L2 banks/block), hierarchical shapes only, with the paper's 4x8 in
/// the middle as the anchor point. Banks are capped at min(4, cores):
/// L2 banks are colocated with the block's core tiles.
pub fn geometry_grid() -> Vec<Topology> {
    [(2, 2), (2, 4), (4, 4), (4, 8), (8, 8)]
        .iter()
        .map(|&(blocks, cores)| {
            TopologyBuilder::new(blocks, cores)
                .l2_banks_per_block(cores.min(4))
                .validate()
                .expect("geometry grid shapes are valid")
        })
        .collect()
}

/// Run the inter-block suite across [`geometry_grid`] under the three
/// protocol families — incoherent `Base`, invalidation-based `HCC`
/// (MESI), and update-based `Dragon` — timing each run and capturing
/// cycles plus the per-category traffic ledger.
pub fn run_geometry_matrix(scale: Scale) -> Vec<GeometryRun> {
    let mut out = Vec::new();
    for topo in geometry_grid() {
        let shape = format!("{}x{}", topo.shape_label(), topo.l2_banks_per_block());
        for scheme in [InterConfig::Base, InterConfig::Hcc, InterConfig::Dragon] {
            let config = Config::Inter(scheme)
                .with_topology(topo)
                .expect("grid shapes are hierarchical");
            for app in inter_apps(scale) {
                let start = Instant::now();
                let r = app.run(config);
                out.push(GeometryRun {
                    shape: shape.clone(),
                    blocks: topo.blocks(),
                    cores_per_block: topo.cores_per_block(),
                    l2_banks: topo.l2_banks_per_block(),
                    scheme: scheme.name().to_string(),
                    app: app.name().to_string(),
                    correct: r.correct,
                    cycles: r.stats.total_cycles,
                    traffic: r.stats.traffic,
                    wall: start.elapsed(),
                });
            }
        }
    }
    out
}

/// One point of the shard-count scaling curve (`--parallel`): the whole
/// app suite swept under `HIC_ENGINE=sharded:<shards>`.
#[derive(Debug, Clone)]
pub struct ParallelCurve {
    pub shards: usize,
    /// Minimum suite wall time over [`CHECK_REPS`] sweeps.
    pub wall: Duration,
    /// Every run reproduced the linear oracle bit-for-bit: simulated
    /// cycles, all six traffic categories, and in-simulation correctness.
    pub identical: bool,
}

/// Parallel-in-host measurement (`--parallel`): the app suite under the
/// sequential linear oracle, then under the sharded engine across a
/// sweep of shard counts. Observational equality is asserted per curve;
/// speedups are meaningful only when `host_cores > 1`.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Host cores available to the sweep (`available_parallelism`).
    pub host_cores: usize,
    /// Minimum wall time of the sequential (linear-scheduler) sweep.
    pub oracle_wall: Duration,
    /// Apps still produced correct simulated results under the oracle.
    pub oracle_correct: bool,
    pub curves: Vec<ParallelCurve>,
}

impl ParallelReport {
    /// Suite-throughput speedup of one curve over the sequential oracle.
    pub fn speedup(&self, c: &ParallelCurve) -> f64 {
        let w = c.wall.as_secs_f64();
        if w == 0.0 {
            return 0.0;
        }
        self.oracle_wall.as_secs_f64() / w
    }

    /// The sweep proves the engines interchangeable: the oracle was
    /// correct and every sharded curve was bit-identical to it.
    pub fn all_correct(&self) -> bool {
        self.oracle_correct && !self.curves.is_empty() && self.curves.iter().all(|c| c.identical)
    }
}

/// Aggregate of a whole suite sweep.
#[derive(Debug, Clone, Default)]
pub struct HostReport {
    pub scale: &'static str,
    pub runs: Vec<HostRun>,
    /// Micro-benchmark timings riding along in the same JSON.
    pub timings: Vec<Timing>,
    /// Sanitizer overhead numbers, when measured (`--check`).
    pub check: Option<CheckOverhead>,
    /// Fault-injection overhead numbers, when measured (`--faults`).
    pub faults: Option<FaultOverhead>,
    /// Static verifier/optimizer numbers, when measured (`--lint`).
    pub lint: Vec<LintRun>,
    /// Protocol-comparison matrix over swept topologies (`--geometry`).
    pub geometry: Vec<GeometryRun>,
    /// Sharded-engine scaling curves, when measured (`--parallel`).
    pub parallel: Option<ParallelReport>,
    /// Host wall-clock of the whole sweep (sum of per-run walls plus
    /// setup; measured around the sweep, not summed).
    pub wall: Duration,
}

impl HostReport {
    pub fn total_ops(&self) -> u64 {
        self.runs.iter().map(|r| r.engine.ops_executed).sum()
    }

    pub fn total_round_trips(&self) -> u64 {
        self.runs.iter().map(|r| r.engine.round_trips).sum()
    }

    pub fn total_messages(&self) -> u64 {
        self.runs.iter().map(|r| r.engine.messages).sum()
    }

    pub fn sim_ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.total_ops() as f64 / s
    }

    pub fn all_correct(&self) -> bool {
        self.runs.iter().all(|r| r.correct)
            && self.geometry.iter().all(|g| g.correct)
            && self.parallel.as_ref().is_none_or(|p| p.all_correct())
    }
}

/// Run the full suite (all apps, all configs) at `scale`, timing each run.
pub fn run_suite(scale: Scale) -> HostReport {
    let t0 = Instant::now();
    let mut runs = Vec::new();
    for app in intra_apps(scale) {
        for cfg in IntraConfig::ALL {
            let start = Instant::now();
            let r = app.run(Config::Intra(cfg));
            runs.push(HostRun {
                app: app.name().to_string(),
                config: cfg.name().to_string(),
                family: "intra",
                correct: r.correct,
                cycles: r.stats.total_cycles,
                wall: start.elapsed(),
                engine: r.stats.engine.clone(),
            });
        }
    }
    for app in inter_apps(scale) {
        for cfg in InterConfig::ALL {
            let start = Instant::now();
            let r = app.run(Config::Inter(cfg));
            runs.push(HostRun {
                app: app.name().to_string(),
                config: cfg.name().to_string(),
                family: "inter",
                correct: r.correct,
                cycles: r.stats.total_cycles,
                wall: start.elapsed(),
                engine: r.stats.engine.clone(),
            });
        }
    }
    HostReport {
        scale: scale.name(),
        runs,
        timings: Vec::new(),
        check: None,
        faults: None,
        lint: Vec::new(),
        geometry: Vec::new(),
        parallel: None,
        wall: t0.elapsed(),
    }
}

/// Repetitions of each timed sweep in the A/B overhead measurements.
/// The minimum over interleaved repetitions is reported, so one-time
/// process warm-up cannot bias whichever mode happens to run first.
pub const CHECK_REPS: usize = 3;

/// Observable signature of one suite run: correctness verdict, simulated
/// cycles, and the six traffic categories. Two engines are
/// interchangeable iff they produce equal signatures for every run.
type RunSignature = (String, String, bool, u64, TrafficLedger);

/// Sweep the full app suite once under an explicit engine, returning
/// (wall, signatures).
fn signature_sweep(scale: Scale, engine: Scheduler) -> (Duration, Vec<RunSignature>) {
    let t0 = Instant::now();
    let mut sigs = Vec::new();
    for app in intra_apps(scale) {
        for cfg in IntraConfig::ALL {
            let mut req = RunRequest::new(app.name(), Config::Intra(cfg), scale);
            req.engine = Some(engine);
            let r = app.run_req(&req);
            sigs.push((
                app.name().to_string(),
                cfg.name().to_string(),
                r.correct,
                r.stats.total_cycles,
                r.stats.traffic,
            ));
        }
    }
    for app in inter_apps(scale) {
        for cfg in InterConfig::ALL {
            let mut req = RunRequest::new(app.name(), Config::Inter(cfg), scale);
            req.engine = Some(engine);
            let r = app.run_req(&req);
            sigs.push((
                app.name().to_string(),
                cfg.name().to_string(),
                r.correct,
                r.stats.total_cycles,
                r.stats.traffic,
            ));
        }
    }
    (t0.elapsed(), sigs)
}

/// Sweep the suite under the sequential linear oracle, then under the
/// sharded engine for each shard count in `shard_counts` (explicit
/// `Scheduler::Sharded` requests — the sweep no longer mutates
/// `HIC_ENGINE`), asserting observational equality and timing suite
/// throughput. Every engine mode is swept [`CHECK_REPS`] times and the
/// minimum wall is kept, interleaved oracle-first so warm-up lands on
/// the oracle (biasing *against* the sharded speedup, never for it).
pub fn run_parallel_suite(scale: Scale, shard_counts: &[usize]) -> ParallelReport {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (mut oracle_wall, oracle_sigs) = signature_sweep(scale, Scheduler::Linear);
    let oracle_correct = oracle_sigs.iter().all(|s| s.2);

    let mut curves: Vec<ParallelCurve> = shard_counts
        .iter()
        .map(|&shards| {
            let (wall, sigs) = signature_sweep(scale, Scheduler::Sharded { shards });
            ParallelCurve {
                shards,
                wall,
                identical: sigs == oracle_sigs,
            }
        })
        .collect();

    for _ in 1..CHECK_REPS {
        oracle_wall = oracle_wall.min(signature_sweep(scale, Scheduler::Linear).0);
        for c in curves.iter_mut() {
            let shards = c.shards;
            c.wall = c
                .wall
                .min(signature_sweep(scale, Scheduler::Sharded { shards }).0);
        }
    }

    ParallelReport {
        host_cores,
        oracle_wall,
        oracle_correct,
        curves,
    }
}

/// Time the incoherent half of the suite three ways — clean, under the
/// canned recoverable fault plan (`FaultSpec::Recoverable`), and under
/// the corrupting + rollback-recovery plan
/// (`FaultSpec::CorruptingRecover`) — with the arms interleaved
/// [`CHECK_REPS`] times and the minimum wall per arm kept (the same
/// warm-up discipline as [`run_check_overhead`]). Both faulted sweeps
/// must stay correct: recoverable faults are absorbed by retries, and
/// corrupted dirty lines are repaired by epoch-checkpoint rollback.
pub fn run_fault_suite(scale: Scale, seed: u64) -> FaultOverhead {
    fn sweep(scale: Scale, fault: Option<FaultSpec>) -> (Duration, bool, ResilienceStats) {
        let t0 = Instant::now();
        let mut correct = true;
        let mut stats = ResilienceStats::default();
        for app in intra_apps(scale) {
            for cfg in IntraConfig::ALL {
                if cfg.is_coherent() {
                    continue;
                }
                let mut req = RunRequest::new(app.name(), Config::Intra(cfg), scale);
                req.fault = fault;
                let r = app.run_req(&req);
                correct &= r.correct;
                stats += r.stats.resilience;
            }
        }
        for app in inter_apps(scale) {
            for cfg in InterConfig::ALL {
                if cfg.is_coherent() {
                    continue;
                }
                let mut req = RunRequest::new(app.name(), Config::Inter(cfg), scale);
                req.fault = fault;
                let r = app.run_req(&req);
                correct &= r.correct;
                stats += r.stats.resilience;
            }
        }
        (t0.elapsed(), correct, stats)
    }

    let mut wall_clean = Duration::MAX;
    let mut wall_faulted = Duration::MAX;
    let mut wall_recovered = Duration::MAX;
    let mut correct = true;
    let mut recover_correct = true;
    let mut stats = ResilienceStats::default();
    let mut recover_stats = ResilienceStats::default();
    for _ in 0..CHECK_REPS {
        let (clean, _, _) = sweep(scale, None);
        wall_clean = wall_clean.min(clean);
        let (faulted, c, s) = sweep(scale, Some(FaultSpec::Recoverable { seed }));
        wall_faulted = wall_faulted.min(faulted);
        correct = c;
        stats = s;
        let (recovered, rc, rs) = sweep(scale, Some(FaultSpec::CorruptingRecover { seed }));
        wall_recovered = wall_recovered.min(recovered);
        recover_correct = rc;
        recover_stats = rs;
    }
    FaultOverhead {
        seed,
        wall_clean,
        wall_faulted,
        wall_recovered,
        correct,
        recover_correct,
        stats,
        recover_stats,
    }
}

/// Statically verify + optimize every recorded app under the planned
/// inter-block configurations, then simulate each with the original and
/// the minimized plans to measure what `hic-lint` saves (`--lint`).
/// Every record must verify clean and every minimized run must still
/// match the host reference — `clean` / `correct` carry the verdicts.
pub fn run_lint_suite(scale: Scale) -> Vec<LintRun> {
    use hic_apps::App;
    let mut apps: Vec<Box<dyn App>> = inter_apps(scale);
    apps.push(Box::new(hic_apps::inter::ep::EpHier::new(scale)));
    let wbinv = |s: &hic_machine::RunStats| {
        s.counters.local_wbs
            + s.counters.global_wbs
            + s.counters.local_invs
            + s.counters.global_invs
    };
    let mut out = Vec::new();
    for app in &apps {
        for cfg in [InterConfig::Addr, InterConfig::AddrL] {
            let config = Config::Inter(cfg);
            let Some(rec) = app.record(config) else {
                continue;
            };
            let t0 = Instant::now();
            let report = hic_lint::lint(&rec);
            let verify = t0.elapsed();
            let t1 = Instant::now();
            let opt = hic_lint::optimize(&rec);
            let optimize = t1.elapsed();
            let base = app.run_with(config, None);
            let mini = app.run_with(config, Some(opt.overrides));
            out.push(LintRun {
                app: app.name().to_string(),
                config: cfg.name().to_string(),
                verify,
                optimize,
                clean: report.is_clean() && opt.reverify.is_clean() && !opt.stats.fallback,
                ops_before: opt.stats.ops_before,
                ops_after: opt.stats.ops_after,
                pruned: opt.stats.pruned,
                downgraded: opt.stats.downgraded,
                flits_before: base.stats.traffic.writeback + base.stats.traffic.invalidation,
                flits_after: mini.stats.traffic.writeback + mini.stats.traffic.invalidation,
                wbinv_before: wbinv(&base.stats),
                wbinv_after: wbinv(&mini.stats),
                correct: base.correct && mini.correct,
            });
        }
    }
    out
}

/// Time the incoherent half of the suite (the only configurations the
/// sanitizer can attach to) with checking off and in Report mode
/// (explicit requests — the sweep no longer mutates `HIC_CHECK`), and
/// report the host-time overhead. The checked sweep must stay clean:
/// any finding on the unmodified suite is a sanitizer bug.
///
/// Each mode is swept [`CHECK_REPS`] times, interleaved off/report, and
/// the *minimum* wall per mode is kept. A single off-then-report pass
/// measured the process's one-time warm-up (page faults, allocator
/// growth) inside the off sweep and reported a nonsensical negative
/// overhead (`overhead_pct: -39.7` in earlier reports).
pub fn run_check_overhead(scale: Scale) -> CheckOverhead {
    fn sweep(scale: Scale, check: CheckMode) -> (Duration, u64, bool) {
        let t0 = Instant::now();
        let mut checks = 0;
        let mut clean = true;
        for app in intra_apps(scale) {
            for cfg in IntraConfig::ALL {
                if cfg.is_coherent() {
                    continue;
                }
                let mut req = RunRequest::new(app.name(), Config::Intra(cfg), scale);
                req.check = check;
                let r = app.run_req(&req);
                checks += r.diagnostics.checks;
                clean &= r.diagnostics.is_clean();
            }
        }
        for app in inter_apps(scale) {
            for cfg in InterConfig::ALL {
                if cfg.is_coherent() {
                    continue;
                }
                let mut req = RunRequest::new(app.name(), Config::Inter(cfg), scale);
                req.check = check;
                let r = app.run_req(&req);
                checks += r.diagnostics.checks;
                clean &= r.diagnostics.is_clean();
            }
        }
        (t0.elapsed(), checks, clean)
    }

    let mut wall_off = Duration::MAX;
    let mut wall_report = Duration::MAX;
    let mut checks = 0;
    let mut clean = true;
    for _ in 0..CHECK_REPS {
        let (off, _, _) = sweep(scale, CheckMode::Off);
        wall_off = wall_off.min(off);
        let (report, c, cl) = sweep(scale, CheckMode::Report);
        wall_report = wall_report.min(report);
        checks = c;
        clean = cl;
    }
    CheckOverhead {
        wall_off,
        wall_report,
        checks,
        clean,
    }
}

// ----------------------------------------------------------------------
// Hand-rolled JSON writer
// ----------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn engine_json(e: &EngineStats) -> String {
    format!(
        "{{\"ops_executed\":{},\"messages\":{},\"batches\":{},\
         \"round_trips\":{},\"wakeups\":{},\"peak_parked\":{},\
         \"shard_local_ops\":{},\"cross_shard_msgs\":{},\
         \"lookahead_stalls\":{},\"lock_waits\":{}}}",
        e.ops_executed,
        e.messages,
        e.batches,
        e.round_trips,
        e.wakeups,
        e.peak_parked,
        e.shard_local_ops,
        e.cross_shard_msgs,
        e.lookahead_stalls,
        e.lock_waits
    )
}

/// Render the report (plus the baseline-comparison header) as JSON.
pub fn to_json(report: &HostReport, baseline_wall_s: Option<f64>) -> String {
    let wall_s = report.wall.as_secs_f64();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", report.scale));
    out.push_str(&format!("  \"wall_s\": {},\n", f(wall_s)));
    match baseline_wall_s {
        Some(b) => {
            out.push_str(&format!("  \"baseline_wall_s\": {},\n", f(b)));
            let speedup = if wall_s > 0.0 { b / wall_s } else { 0.0 };
            out.push_str(&format!("  \"speedup_vs_baseline\": {},\n", f(speedup)));
        }
        None => {
            out.push_str("  \"baseline_wall_s\": null,\n");
            out.push_str("  \"speedup_vs_baseline\": null,\n");
        }
    }
    out.push_str(&format!("  \"all_correct\": {},\n", report.all_correct()));
    out.push_str(&format!("  \"sim_ops\": {},\n", report.total_ops()));
    out.push_str(&format!(
        "  \"sim_ops_per_sec\": {},\n",
        f(report.sim_ops_per_sec())
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"messages\":{},\"round_trips\":{}}},\n",
        report.total_messages(),
        report.total_round_trips()
    ));
    match &report.check {
        Some(c) => out.push_str(&format!(
            "  \"check\": {{\"wall_s_off\":{},\"wall_s_report\":{},\
             \"overhead_pct\":{},\"checks\":{},\"clean\":{}}},\n",
            f(c.wall_off.as_secs_f64()),
            f(c.wall_report.as_secs_f64()),
            f(c.overhead_pct()),
            c.checks,
            c.clean
        )),
        None => out.push_str("  \"check\": null,\n"),
    }
    match &report.faults {
        Some(fo) => out.push_str(&format!(
            "  \"faults\": {{\"seed\":{},\"wall_s_clean\":{},\"wall_s_faulted\":{},\
             \"wall_s_recovered\":{},\"overhead_pct\":{},\"recover_overhead_pct\":{},\
             \"correct\":{},\"recover_correct\":{},\"retries\":{},\"retry_flits\":{},\
             \"retry_cycles\":{},\"bit_flips\":{},\"flips_recovered\":{},\
             \"recovery_flits\":{},\"delayed_acks\":{},\"ack_delay_cycles\":{},\
             \"rollbacks\":{},\"rollback_cycles\":{},\"checkpoint_words\":{}}},\n",
            fo.seed,
            f(fo.wall_clean.as_secs_f64()),
            f(fo.wall_faulted.as_secs_f64()),
            f(fo.wall_recovered.as_secs_f64()),
            f(fo.overhead_pct()),
            f(fo.recover_overhead_pct()),
            fo.correct,
            fo.recover_correct,
            fo.stats.retries,
            fo.stats.retry_flits,
            fo.stats.retry_cycles,
            fo.stats.bit_flips,
            fo.stats.flips_recovered,
            fo.stats.recovery_flits,
            fo.stats.delayed_acks,
            fo.stats.ack_delay_cycles,
            fo.recover_stats.rollbacks,
            fo.recover_stats.rollback_cycles,
            fo.recover_stats.checkpoint_words,
        )),
        None => out.push_str("  \"faults\": null,\n"),
    }
    match &report.parallel {
        Some(p) => {
            out.push_str(&format!(
                "  \"parallel\": {{\"host_cores\":{},\"oracle_wall_s\":{},\
                 \"all_correct\":{},\"curves\":[",
                p.host_cores,
                f(p.oracle_wall.as_secs_f64()),
                p.all_correct()
            ));
            for (i, c) in p.curves.iter().enumerate() {
                out.push_str(&format!(
                    "{}{{\"shards\":{},\"wall_s\":{},\"speedup\":{},\"identical\":{}}}",
                    if i > 0 { "," } else { "" },
                    c.shards,
                    f(c.wall.as_secs_f64()),
                    f(p.speedup(c)),
                    c.identical
                ));
            }
            out.push_str("]},\n");
        }
        None => out.push_str("  \"parallel\": null,\n"),
    }
    out.push_str("  \"lint\": [\n");
    for (i, l) in report.lint.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\":\"{}\",\"config\":\"{}\",\"clean\":{},\"correct\":{},\
             \"verify_ns\":{},\"optimize_ns\":{},\
             \"ops_before\":{},\"ops_after\":{},\"pruned\":{},\"downgraded\":{},\
             \"wbinv_flits_before\":{},\"wbinv_flits_after\":{},\
             \"flit_savings_pct\":{},\
             \"wbinv_ops_before\":{},\"wbinv_ops_after\":{}}}{}\n",
            esc(&l.app),
            esc(&l.config),
            l.clean,
            l.correct,
            l.verify.as_nanos(),
            l.optimize.as_nanos(),
            l.ops_before,
            l.ops_after,
            l.pruned,
            l.downgraded,
            l.flits_before,
            l.flits_after,
            f(l.flit_savings_pct()),
            l.wbinv_before,
            l.wbinv_after,
            if i + 1 < report.lint.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"geometry\": [\n");
    for (i, g) in report.geometry.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\":\"{}\",\"blocks\":{},\"cores_per_block\":{},\
             \"l2_banks\":{},\"scheme\":\"{}\",\"app\":\"{}\",\
             \"correct\":{},\"cycles\":{},\
             \"traffic\":{{\"linefill\":{},\"writeback\":{},\"invalidation\":{},\
             \"memory\":{},\"l2l3\":{},\"sync\":{}}},\"wall_s\":{}}}{}\n",
            esc(&g.shape),
            g.blocks,
            g.cores_per_block,
            g.l2_banks,
            esc(&g.scheme),
            esc(&g.app),
            g.correct,
            g.cycles,
            g.traffic.linefill,
            g.traffic.writeback,
            g.traffic.invalidation,
            g.traffic.memory,
            g.traffic.l2l3,
            g.traffic.sync,
            f(g.wall.as_secs_f64()),
            if i + 1 < report.geometry.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"runs\": [\n");
    for (i, r) in report.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\":\"{}\",\"config\":\"{}\",\"family\":\"{}\",\
             \"correct\":{},\"cycles\":{},\"wall_s\":{},\
             \"sim_ops_per_sec\":{},\"engine\":{}}}{}\n",
            esc(&r.app),
            esc(&r.config),
            r.family,
            r.correct,
            r.cycles,
            f(r.wall.as_secs_f64()),
            f(r.sim_ops_per_sec()),
            engine_json(&r.engine),
            if i + 1 < report.runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"bench\": [\n");
    for (i, t) in report.timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"iters\":{},\"total_ns\":{},\"mean_ns\":{}}}{}\n",
            esc(&t.name),
            t.iters,
            t.total.as_nanos(),
            t.mean().as_nanos(),
            if i + 1 < report.timings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HostReport {
        HostReport {
            scale: "test",
            runs: vec![HostRun {
                app: "FFT".into(),
                config: "B+M+I".into(),
                family: "intra",
                correct: true,
                cycles: 1234,
                wall: Duration::from_millis(10),
                engine: EngineStats {
                    ops_executed: 1000,
                    messages: 100,
                    batches: 10,
                    round_trips: 50,
                    wakeups: 3,
                    peak_parked: 2,
                    ..EngineStats::default()
                },
            }],
            timings: vec![Timing {
                name: "micro".into(),
                iters: 7,
                total: Duration::from_nanos(700),
            }],
            check: Some(CheckOverhead {
                wall_off: Duration::from_millis(100),
                wall_report: Duration::from_millis(110),
                checks: 4242,
                clean: true,
            }),
            faults: Some(FaultOverhead {
                seed: 2026,
                wall_clean: Duration::from_millis(100),
                wall_faulted: Duration::from_millis(105),
                wall_recovered: Duration::from_millis(112),
                correct: true,
                recover_correct: true,
                stats: ResilienceStats {
                    retries: 12,
                    retry_flits: 108,
                    bit_flips: 5,
                    flips_recovered: 5,
                    recovery_flits: 85,
                    delayed_acks: 9,
                    ..ResilienceStats::default()
                },
                recover_stats: ResilienceStats {
                    rollbacks: 4,
                    rollback_cycles: 260,
                    checkpoint_words: 512,
                    ..ResilienceStats::default()
                },
            }),
            lint: vec![LintRun {
                app: "CG".into(),
                config: "Addr+L".into(),
                verify: Duration::from_micros(120),
                optimize: Duration::from_micros(480),
                clean: true,
                ops_before: 728,
                ops_after: 419,
                pruned: 309,
                downgraded: 21,
                flits_before: 1000,
                flits_after: 900,
                wbinv_before: 600,
                wbinv_after: 400,
                correct: true,
            }],
            parallel: Some(ParallelReport {
                host_cores: 8,
                oracle_wall: Duration::from_millis(400),
                oracle_correct: true,
                curves: vec![
                    ParallelCurve {
                        shards: 1,
                        wall: Duration::from_millis(400),
                        identical: true,
                    },
                    ParallelCurve {
                        shards: 4,
                        wall: Duration::from_millis(100),
                        identical: true,
                    },
                ],
            }),
            geometry: vec![GeometryRun {
                shape: "2x4x4".into(),
                blocks: 2,
                cores_per_block: 4,
                l2_banks: 4,
                scheme: "Dragon".into(),
                app: "Jacobi".into(),
                correct: true,
                cycles: 4321,
                traffic: TrafficLedger {
                    linefill: 11,
                    writeback: 22,
                    invalidation: 33,
                    memory: 44,
                    l2l3: 55,
                    sync: 66,
                },
                wall: Duration::from_millis(2),
            }],
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn json_contains_baseline_and_speedup() {
        let j = to_json(&sample_report(), Some(0.02));
        assert!(j.contains("\"baseline_wall_s\": 0.020"));
        assert!(j.contains("\"speedup_vs_baseline\": 2.000"));
        assert!(j.contains("\"sim_ops\": 1000"));
        assert!(j.contains("\"iters\":7"));
        assert!(j.contains("\"total_ns\":700"));
        assert!(j.contains("\"round_trips\":50"));
        assert!(j.contains("\"checks\":4242"));
        assert!(j.contains("\"overhead_pct\":10.000"));
    }

    #[test]
    fn json_without_check_sweep_is_null() {
        let mut r = sample_report();
        r.check = None;
        assert!(to_json(&r, None).contains("\"check\": null"));
    }

    #[test]
    fn json_carries_the_fault_sweep() {
        let j = to_json(&sample_report(), None);
        assert!(j.contains("\"faults\": {\"seed\":2026"));
        assert!(j.contains("\"retries\":12"));
        assert!(j.contains("\"flips_recovered\":5"));
        assert!(j.contains("\"recovery_flits\":85"));
        assert!(j.contains("\"overhead_pct\":5.000"));
        assert!(j.contains("\"wall_s_recovered\":0.112"));
        assert!(j.contains("\"recover_overhead_pct\":12.000"));
        assert!(j.contains("\"recover_correct\":true"));
        assert!(j.contains("\"rollbacks\":4"));
        assert!(j.contains("\"rollback_cycles\":260"));
        assert!(j.contains("\"checkpoint_words\":512"));
        let mut r = sample_report();
        r.faults = None;
        assert!(to_json(&r, None).contains("\"faults\": null"));
    }

    #[test]
    fn json_carries_the_lint_sweep() {
        let j = to_json(&sample_report(), None);
        assert!(j.contains("\"ops_before\":728"));
        assert!(j.contains("\"pruned\":309"));
        assert!(j.contains("\"downgraded\":21"));
        assert!(j.contains("\"flit_savings_pct\":10.000"));
        assert!(j.contains("\"wbinv_ops_after\":400"));
    }

    #[test]
    fn json_carries_the_parallel_sweep() {
        let j = to_json(&sample_report(), None);
        assert!(j.contains("\"parallel\": {\"host_cores\":8"));
        assert!(j.contains("\"oracle_wall_s\":0.400"));
        assert!(j.contains("{\"shards\":4,\"wall_s\":0.100,\"speedup\":4.000,\"identical\":true}"));
        let mut r = sample_report();
        r.parallel = None;
        assert!(to_json(&r, None).contains("\"parallel\": null"));
    }

    #[test]
    fn nonidentical_parallel_curve_fails_the_report() {
        let mut r = sample_report();
        assert!(r.all_correct());
        r.parallel.as_mut().unwrap().curves[1].identical = false;
        assert!(!r.all_correct());
    }

    #[test]
    fn engine_json_carries_the_shard_counters() {
        let e = EngineStats {
            ops_executed: 10,
            shard_local_ops: 7,
            cross_shard_msgs: 3,
            lookahead_stalls: 2,
            lock_waits: 1,
            ..EngineStats::default()
        };
        let j = engine_json(&e);
        assert!(j.contains("\"shard_local_ops\":7"));
        assert!(j.contains("\"cross_shard_msgs\":3"));
        assert!(j.contains("\"lookahead_stalls\":2"));
        assert!(j.contains("\"lock_waits\":1"));
    }

    #[test]
    fn json_carries_the_geometry_matrix() {
        let j = to_json(&sample_report(), None);
        assert!(j.contains("\"shape\":\"2x4x4\""));
        assert!(j.contains("\"scheme\":\"Dragon\""));
        assert!(j.contains("\"cycles\":4321"));
        assert!(j.contains("\"invalidation\":33"));
        assert!(j.contains("\"l2l3\":55"));
    }

    #[test]
    fn incorrect_geometry_run_fails_the_report() {
        let mut r = sample_report();
        assert!(r.all_correct());
        r.geometry[0].correct = false;
        assert!(!r.all_correct());
    }

    #[test]
    fn geometry_grid_spans_2x2_to_8x8_and_anchors_the_paper_shape() {
        let grid = geometry_grid();
        let labels: Vec<_> = grid.iter().map(|t| t.shape_label()).collect();
        assert_eq!(labels, vec!["2x2", "2x4", "4x4", "4x8", "8x8"]);
        assert!(grid.iter().all(|t| t.is_hierarchical()));
        assert!(grid.iter().all(|t| t.l2_banks_per_block() <= 4));
    }

    #[test]
    fn flit_savings_pct_handles_zero_traffic() {
        let mut l = sample_report().lint[0].clone();
        l.flits_before = 0;
        assert_eq!(l.flit_savings_pct(), 0.0);
    }

    #[test]
    fn json_without_baseline_is_null() {
        let j = to_json(&sample_report(), None);
        assert!(j.contains("\"baseline_wall_s\": null"));
    }

    #[test]
    fn ops_per_sec_math() {
        let r = sample_report();
        assert!((r.sim_ops_per_sec() - 100_000.0).abs() < 1.0);
        assert!((r.runs[0].sim_ops_per_sec() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
