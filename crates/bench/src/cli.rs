//! Shared CLI argument helpers for the bench binaries.
//!
//! `suite`, `figures`, and `bench_host` all accept `--scale <name>`;
//! each used to carry its own three-name copy of the parser, which is
//! how `medium` and `large` ended up supported nowhere. The one parser
//! lives here and defers the name set to [`Scale::parse`].

use hic_apps::Scale;

/// Extract `--scale <name>` from `args`, or `default` when the flag is
/// absent. Panics with a usage message on an unknown name — the
/// binaries want the loud failure before any sweep starts.
pub fn parse_scale(args: &[String], default: Scale) -> Scale {
    match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let v = args.get(i + 1).map(|s| s.as_str()).unwrap_or("");
            Scale::parse(v).unwrap_or_else(|| {
                panic!("unknown scale {v:?} (use test|small|medium|large|paper)")
            })
        }
        None => default,
    }
}

/// True when `name` is a scale name — the `suite` binary's positional
/// name filters use this to skip the value consumed by `--scale`.
pub fn is_scale_name(name: &str) -> bool {
    Scale::parse(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_scale_name() {
        for s in Scale::ALL {
            assert_eq!(parse_scale(&args(&["--scale", s.name()]), Scale::Test), s);
        }
    }

    #[test]
    fn missing_flag_uses_the_default() {
        assert_eq!(parse_scale(&args(&["--inter"]), Scale::Small), Scale::Small);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn unknown_scale_panics() {
        parse_scale(&args(&["--scale", "huge"]), Scale::Test);
    }
}
