//! `hic-serve` — the sweep server CLI.
//!
//! ```text
//! hic-serve serve --socket PATH [--workers N] [--watchdog-ms M]
//!     Run the job server on a Unix socket until a client sends
//!     {"op":"shutdown"}.
//!
//! hic-serve batch JOBS.json [--socket PATH] [--out PATH]
//!                 [--workers N] [--allow-failures]
//!     Submit every job in JOBS.json — over the socket when --socket is
//!     given, else through an in-process server — wait for all of them,
//!     and write the figure document (default BENCH_figures.json).
//!     Exits nonzero if any job computed a wrong result; with
//!     --allow-failures, jobs that failed with a *typed* error are
//!     tolerated (the sweep's poisoned job is supposed to fail).
//!
//! hic-serve sweep-jobs [--scale S] [--corrupting SEED] [--out PATH]
//!     Emit the full figure-set job list (every app x configuration) as
//!     a JOBS.json. --corrupting appends one job poisoned with a
//!     dirty-line-corrupting fault plan, which must fail with
//!     `corrupt_dirty_line` without disturbing the rest of the sweep.
//! ```
//!
//! JOBS.json format:
//! `{"scale":"test","jobs":[{"key":"hic1;...","priority":0}, ...]}` —
//! job keys are canonical [`RunRequest::cache_key`] strings.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

use hic_apps::Scale;
use hic_runtime::{Config, FaultSpec, InterConfig, RunRequest};
use hic_serve::{figures, socket, Json, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let r = match args.first().map(|s| s.as_str()) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("sweep-jobs") => cmd_sweep_jobs(&args[1..]),
        _ => Err(
            "usage: hic-serve serve|batch|sweep-jobs ... (see --help in the module docs)"
                .to_string(),
        ),
    };
    match r {
        Ok(code) => code,
        Err(e) => {
            eprintln!("hic-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_workers(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--workers") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--workers needs a count, got {v:?}")),
        None => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let path = flag_value(args, "--socket").ok_or("serve needs --socket PATH")?;
    let workers = parse_workers(args)?;
    let watchdog_ms = match flag_value(args, "--watchdog-ms") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--watchdog-ms needs milliseconds, got {v:?}"))?,
        ),
        None => None,
    };
    eprintln!("hic-serve: {workers} workers on {path}");
    let server = Server::start(workers, watchdog_ms);
    socket::serve(server, std::path::Path::new(&path)).map_err(|e| format!("socket: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep_jobs(args: &[String]) -> Result<ExitCode, String> {
    let scale = match flag_value(args, "--scale") {
        Some(v) => Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?,
        None => Scale::Test,
    };
    let out = flag_value(args, "--out").unwrap_or_else(|| "jobs.json".to_string());
    let mut reqs = figures::sweep_requests(scale);
    if let Some(seed) = flag_value(args, "--corrupting") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("--corrupting needs a seed, got {seed:?}"))?;
        // One deliberately poisoned job: a dirty-line-corrupting fault
        // plan on an incoherent configuration. It must fail with the
        // typed `corrupt_dirty_line` error, leaving the rest untouched.
        let mut poisoned = RunRequest::new("EP", Config::Inter(InterConfig::Base), scale);
        poisoned.fault = Some(FaultSpec::Corrupting { seed });
        reqs.push(poisoned);
    }
    let jobs: Vec<Json> = reqs
        .iter()
        .map(|r| Json::obj([("key", Json::str(r.cache_key()))]))
        .collect();
    let doc = Json::obj([
        ("scale", Json::str(scale.name())),
        ("jobs", Json::Arr(jobs)),
    ]);
    std::fs::write(&out, doc.to_string() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} jobs to {out}", reqs.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    let jobs_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("batch needs a JOBS.json path")?;
    let out = flag_value(args, "--out").unwrap_or_else(|| "BENCH_figures.json".to_string());
    let allow_failures = args.iter().any(|a| a == "--allow-failures");

    let text = std::fs::read_to_string(jobs_path).map_err(|e| format!("read {jobs_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{jobs_path}: {e}"))?;
    let scale_name = doc
        .get("scale")
        .and_then(Json::as_str)
        .unwrap_or("test")
        .to_string();
    let jobs = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or(format!("{jobs_path}: missing \"jobs\" array"))?;
    let entries: Vec<(String, i64)> = jobs
        .iter()
        .map(|j| {
            let key = j
                .get("key")
                .and_then(Json::as_str)
                .ok_or("job without a \"key\"")?
                .to_string();
            Ok((key, j.get("priority").and_then(Json::as_i64).unwrap_or(0)))
        })
        .collect::<Result<_, String>>()?;

    let t0 = std::time::Instant::now();
    let rows = match flag_value(args, "--socket") {
        Some(path) => batch_over_socket(&path, &entries)?,
        None => batch_in_process(args, &entries)?,
    };

    let doc = figures::figures_json_rows(&scale_name, rows);
    std::fs::write(&out, doc.to_string() + "\n").map_err(|e| format!("write {out}: {e}"))?;

    let n = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "batch: {} jobs, {} correct, {} failed, {} cache hits, wall {:.3}s; wrote {out}",
        n("jobs"),
        n("correct"),
        n("failed"),
        n("cache_hits"),
        t0.elapsed().as_secs_f64()
    );

    let rows = doc.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let bad = rows
        .iter()
        .filter(|r| {
            let wrong = r.get("correct") != Some(&Json::Bool(true));
            let typed_failure = r.get("error") != Some(&Json::Null);
            wrong && !(allow_failures && typed_failure)
        })
        .count();
    if bad > 0 {
        eprintln!("{bad} jobs computed wrong results");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Drive the batch through an in-process server: submit everything,
/// then wait in submission order.
fn batch_in_process(args: &[String], entries: &[(String, i64)]) -> Result<Vec<Json>, String> {
    let server = Server::start(parse_workers(args)?, None);
    let mut ids = Vec::new();
    for (key, priority) in entries {
        let req = RunRequest::parse_key(key).map_err(|e| format!("{e}"))?;
        ids.push(server.submit(req, *priority)?.0);
    }
    let rows = ids
        .iter()
        .map(|&id| {
            let (outcome, cached) = server.wait(id).expect("batch jobs are never cancelled");
            outcome.to_json(cached)
        })
        .collect();
    server.shutdown();
    Ok(rows)
}

/// Drive the batch over the socket protocol: submit everything, then
/// collect results in submission order.
fn batch_over_socket(path: &str, entries: &[(String, i64)]) -> Result<Vec<Json>, String> {
    let stream = UnixStream::connect(path).map_err(|e| format!("connect {path}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("{e}"))?;
    let mut reader = BufReader::new(stream);
    let mut rpc = |req: Json| -> Result<Json, String> {
        writer
            .write_all((req.to_string() + "\n").as_bytes())
            .and_then(|_| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        let resp = Json::parse(&line).map_err(|e| format!("bad response: {e}"))?;
        if resp.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!(
                "server error: {}",
                resp.get("error").and_then(Json::as_str).unwrap_or("?")
            ));
        }
        Ok(resp)
    };

    let mut ids = Vec::new();
    for (key, priority) in entries {
        let resp = rpc(Json::obj([
            ("op", Json::str("submit")),
            ("key", Json::str(&**key)),
            ("priority", Json::Num(*priority as f64)),
        ]))?;
        ids.push(
            resp.get("id")
                .and_then(Json::as_u64)
                .ok_or("submit response without an id")?,
        );
    }
    ids.iter()
        .map(|&id| {
            let resp = rpc(Json::obj([
                ("op", Json::str("result")),
                ("id", Json::uint(id)),
            ]))?;
            resp.get("result")
                .cloned()
                .ok_or_else(|| "result response without a result".to_string())
        })
        .collect()
}
