//! `hic-serve` — simulation as a service.
//!
//! A long-running, multi-tenant job runner for the simulator: clients
//! describe runs as canonical [`RunRequest`](hic_runtime::RunRequest)s
//! (serialized as their `cache_key`), submit them over a JSON Unix
//! socket or a batch file, and get typed per-job results back. The
//! server keeps a bounded worker pool, a priority+FIFO queue, and a
//! result cache keyed by the request's canonical serialization — an
//! identical resubmission is answered bit-identically without
//! re-simulating.
//!
//! Layout:
//!
//! * [`json`] — the hand-rolled JSON value/parser/writer (the
//!   workspace serde is the inert offline shim);
//! * [`job`] — job lifecycle and the [`job::JobOutcome`] result record;
//! * [`queue`] — priority-then-FIFO queue ordering;
//! * [`server`] — the worker pool, queue, and result cache;
//! * [`socket`] — the line-delimited JSON socket frontend;
//! * [`figures`] — the paper's full figure set as one queued sweep
//!   (`BENCH_figures.json`).
//!
//! See DESIGN.md §15 and the `hic-serve` binary for the CLI.

pub mod figures;
pub mod job;
pub mod json;
pub mod queue;
pub mod server;
pub mod socket;

pub use figures::{figures_json, sweep_requests};
pub use job::{Job, JobId, JobOutcome, JobState};
pub use json::Json;
pub use server::{Server, ServerStats};
