//! The job queue's ordering: priority first, FIFO within a priority.

use std::cmp::Ordering;

use crate::job::JobId;

/// One queued entry. Ordered so that `BinaryHeap::pop` yields the
/// highest priority first and, within a priority, the oldest submission
/// (smallest sequence number) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    pub priority: i64,
    /// Monotonic submission counter; the FIFO tiebreaker.
    pub seq: u64,
    pub job: JobId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> Ordering {
        // Max-heap: higher priority wins; then *lower* seq wins, so the
        // seq comparison is reversed.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        for (seq, (priority, job)) in [(0, 10), (5, 11), (0, 12), (5, 13), (-2, 14)]
            .into_iter()
            .enumerate()
        {
            heap.push(QueueEntry {
                priority,
                seq: seq as u64,
                job,
            });
        }
        let order: Vec<JobId> = std::iter::from_fn(|| heap.pop().map(|e| e.job)).collect();
        // Priority 5 first (seq order 11 then 13), then priority 0
        // (10 then 12), then -2.
        assert_eq!(order, vec![11, 13, 10, 12, 14]);
    }
}
