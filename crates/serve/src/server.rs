//! The job runner: a bounded worker pool over a priority queue, with a
//! result cache keyed by each request's canonical serialization.
//!
//! Lifecycle of a submission:
//!
//! 1. `submit` computes the request's [`RunRequest::cache_key`]. A hit
//!    in the result cache completes the job immediately with the cached
//!    outcome (bit-identical to the original run — the key is a pure
//!    function of every result-relevant field).
//! 2. Otherwise the job enters the queue, ordered priority-first and
//!    FIFO within a priority.
//! 3. A worker claims it, drives the simulation under the job's
//!    watchdog (falling back to the server-wide default), and publishes
//!    the outcome. Failures are *per job*: a poisoned run completes
//!    with its typed `RunError` tag and the server keeps serving.
//! 4. Deterministic outcomes enter the cache; nondeterministic failures
//!    (watchdog kills, host-thread deaths, panics) do not, so a
//!    resubmission re-runs them. Before publishing such a failure the
//!    worker retries it in place — up to [`MAX_ATTEMPTS`] runs with
//!    exponentially growing backoff sleeps — since a re-run under
//!    kinder host timing may succeed; the outcome records the attempt
//!    count and total backoff.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use hic_runtime::RunRequest;

use crate::job::{Job, JobId, JobOutcome, JobState};
use crate::queue::QueueEntry;

/// Aggregate counters, as reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub submitted: u64,
    /// Jobs that reached `Done` (including failed and cached ones).
    pub completed: u64,
    /// Completed jobs that carry an error tag.
    pub failed: u64,
    pub cancelled: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently claimed by workers.
    pub running: u64,
}

#[derive(Default)]
struct State {
    next_id: JobId,
    seq: u64,
    heap: BinaryHeap<QueueEntry>,
    jobs: HashMap<JobId, Job>,
    cache: HashMap<String, Arc<JobOutcome>>,
    stats: ServerStats,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when work arrives or shutdown is requested.
    work_cv: Condvar,
    /// Wakes `wait` callers when any job completes or is cancelled.
    done_cv: Condvar,
    default_watchdog_ms: Option<u64>,
}

/// The sweep server: owns the queue, the cache, and the worker pool.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start a server with `workers` worker threads. Jobs that carry no
    /// watchdog of their own run under `default_watchdog_ms` of host
    /// wall clock (None = no default watchdog).
    pub fn start(workers: usize, default_watchdog_ms: Option<u64>) -> Server {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 1,
                ..State::default()
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            default_watchdog_ms,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hic-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            inner,
            workers: handles,
        }
    }

    /// Submit a request. Returns the job id and whether it completed
    /// immediately from the result cache. Rejects requests naming an
    /// application the suite does not contain — the one submit-time
    /// validation that cannot be a per-job runtime failure (there is
    /// nothing to run).
    pub fn submit(&self, request: RunRequest, priority: i64) -> Result<(JobId, bool), String> {
        if hic_apps::app_by_name(&request.app, request.scale).is_none() {
            return Err(format!("unknown application {:?}", request.app));
        }
        let key = request.cache_key();
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        st.stats.submitted += 1;

        if let Some(outcome) = st.cache.get(&key).cloned() {
            st.stats.cache_hits += 1;
            st.stats.completed += 1;
            if outcome.error.is_some() {
                st.stats.failed += 1;
            }
            st.jobs.insert(
                id,
                Job {
                    id,
                    request,
                    priority,
                    state: JobState::Done,
                    outcome: Some(outcome),
                    cached: true,
                },
            );
            drop(st);
            self.inner.done_cv.notify_all();
            return Ok((id, true));
        }

        let seq = st.seq;
        st.seq += 1;
        st.heap.push(QueueEntry {
            priority,
            seq,
            job: id,
        });
        st.jobs.insert(
            id,
            Job {
                id,
                request,
                priority,
                state: JobState::Queued,
                outcome: None,
                cached: false,
            },
        );
        drop(st);
        self.inner.work_cv.notify_one();
        Ok((id, false))
    }

    /// A snapshot of one job (state, outcome if done).
    pub fn status(&self, id: JobId) -> Option<Job> {
        self.inner.state.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Block until `id` completes; `None` for unknown or cancelled
    /// jobs. Returns the outcome and whether it came from the cache.
    pub fn wait(&self, id: JobId) -> Option<(Arc<JobOutcome>, bool)> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(job) => match job.state {
                    JobState::Done => {
                        return Some((
                            job.outcome.clone().expect("done job has outcome"),
                            job.cached,
                        ))
                    }
                    JobState::Cancelled => return None,
                    JobState::Queued | JobState::Running => {
                        st = self.inner.done_cv.wait(st).unwrap();
                    }
                },
            }
        }
    }

    /// Cancel a queued job. Running and finished jobs are not
    /// cancellable; returns whether the job was dequeued.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        match st.jobs.get_mut(&id) {
            Some(job) if job.state == JobState::Queued => {
                job.state = JobState::Cancelled;
                st.stats.cancelled += 1;
                drop(st);
                self.inner.done_cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Aggregate counters (queued/running computed from live jobs).
    pub fn stats(&self) -> ServerStats {
        let st = self.inner.state.lock().unwrap();
        let mut s = st.stats;
        s.queued = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count() as u64;
        s.running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count() as u64;
        s
    }

    /// Stop accepting work and join the workers. In-flight jobs finish;
    /// queued jobs stay queued (their waiters are woken).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.state.lock().unwrap().shutdown = true;
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim the next live queue entry (skipping cancelled jobs).
        let (id, request) = {
            let mut st = inner.state.lock().unwrap();
            'claim: loop {
                if st.shutdown {
                    return;
                }
                while let Some(entry) = st.heap.pop() {
                    if let Some(job) = st.jobs.get_mut(&entry.job) {
                        if job.state == JobState::Queued {
                            job.state = JobState::Running;
                            break 'claim (job.id, job.request.clone());
                        }
                    }
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };

        let outcome = Arc::new(run_with_retry(&request, inner.default_watchdog_ms));

        let mut st = inner.state.lock().unwrap();
        st.stats.completed += 1;
        if outcome.error.is_some() {
            st.stats.failed += 1;
        }
        if outcome.cacheable() {
            st.cache.insert(outcome.key.clone(), Arc::clone(&outcome));
        }
        if let Some(job) = st.jobs.get_mut(&id) {
            job.state = JobState::Done;
            job.outcome = Some(outcome);
        }
        drop(st);
        inner.done_cv.notify_all();
    }
}

/// How many times a worker will run one job before giving up on it.
const MAX_ATTEMPTS: u32 = 3;
/// First inter-attempt backoff sleep; doubles per retry (10, 20 ms).
const BACKOFF_BASE_MS: u64 = 10;

/// Run a job, retrying nondeterministic failures. Watchdog kills,
/// host-thread deaths, and panics are functions of host timing, so a
/// re-run may succeed; each retry waits exponentially longer to let a
/// transiently overloaded host drain. Deterministic outcomes —
/// successes and typed errors that are pure functions of the request —
/// return after the first attempt, and the final outcome records how
/// many attempts it took and the total backoff slept.
fn run_with_retry(request: &RunRequest, default_watchdog_ms: Option<u64>) -> JobOutcome {
    let mut backoff_ms = 0u64;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut outcome = run_job(request, default_watchdog_ms);
        outcome.attempts = attempt;
        outcome.backoff_ms = backoff_ms;
        let nondeterministic = outcome.error.is_some() && !outcome.cacheable();
        if !nondeterministic || attempt == MAX_ATTEMPTS {
            return outcome;
        }
        let sleep = BACKOFF_BASE_MS << (attempt - 1);
        std::thread::sleep(std::time::Duration::from_millis(sleep));
        backoff_ms += sleep;
    }
    unreachable!("the loop returns on its final attempt")
}

/// Drive one request to completion. The worker survives anything the
/// run does: a typed `RunError` becomes the outcome's error tag, and a
/// panic in the simulator is caught and tagged `"panic"` — per-job
/// failure, never server failure.
fn run_job(request: &RunRequest, default_watchdog_ms: Option<u64>) -> JobOutcome {
    let started = Instant::now();
    let Some(app) = hic_apps::app_by_name(&request.app, request.scale) else {
        return JobOutcome::failed(
            request,
            "unknown_app",
            format!("no application named {:?}", request.app),
            started.elapsed(),
        );
    };
    let mut run_req = request.clone();
    if run_req.watchdog_wall_ms.is_none() {
        run_req.watchdog_wall_ms = default_watchdog_ms;
    }
    match catch_unwind(AssertUnwindSafe(|| app.run_req(&run_req))) {
        Ok(run) => JobOutcome::from_app_run(request, &run, started.elapsed()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            JobOutcome::failed(
                request,
                "panic",
                format!("worker caught a panic: {msg}"),
                started.elapsed(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_apps::Scale;
    use hic_runtime::{Config, IntraConfig};

    fn req() -> RunRequest {
        RunRequest::new("FFT", Config::Intra(IntraConfig::Base), Scale::Test)
    }

    #[test]
    fn runs_a_job_and_serves_the_resubmission_from_cache() {
        let server = Server::start(2, None);
        let (id, cached) = server.submit(req(), 0).unwrap();
        assert!(!cached);
        let (outcome, from_cache) = server.wait(id).unwrap();
        assert!(!from_cache);
        assert!(outcome.correct, "{}", outcome.detail);
        assert_eq!(outcome.error, None);

        let (id2, cached2) = server.submit(req(), 0).unwrap();
        assert!(cached2, "identical resubmission must hit the cache");
        let (outcome2, from_cache2) = server.wait(id2).unwrap();
        assert!(from_cache2);
        assert_eq!(outcome2.cycles, outcome.cycles);
        assert_eq!(outcome2.traffic, outcome.traffic);

        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.failed, 0);
        server.shutdown();
    }

    #[test]
    fn unknown_apps_are_rejected_at_submit() {
        let server = Server::start(1, None);
        let mut r = req();
        r.app = "NoSuchApp".into();
        assert!(server.submit(r, 0).is_err());
        server.shutdown();
    }

    #[test]
    fn nondeterministic_failures_are_retried_with_backoff_and_not_cached() {
        // A 10-cycle watchdog budget hangs every attempt, so the worker
        // burns through all retries, sleeping 10 then 20 ms between
        // them, and publishes the exhausted outcome uncached.
        let server = Server::start(1, None);
        let mut r = req();
        r.watchdog_cycles = Some(10);
        let (id, cached) = server.submit(r.clone(), 0).unwrap();
        assert!(!cached);
        let (outcome, _) = server.wait(id).unwrap();
        assert_eq!(outcome.error.as_deref(), Some("hang"), "{}", outcome.detail);
        assert_eq!(outcome.attempts, MAX_ATTEMPTS);
        assert_eq!(outcome.backoff_ms, BACKOFF_BASE_MS + 2 * BACKOFF_BASE_MS);
        let (_, cached2) = server.submit(r, 0).unwrap();
        assert!(!cached2, "a hang must not be served from the cache");
        server.shutdown();
    }

    #[test]
    fn recovered_corrupting_jobs_succeed_first_try_and_cache() {
        // Rollback recovery turns an injected dirty-line corruption into
        // a deterministic success: one attempt, cacheable.
        let server = Server::start(1, None);
        let mut r = req();
        r.fault = Some(hic_runtime::FaultSpec::CorruptingRecover { seed: 11 });
        let (id, _) = server.submit(r.clone(), 0).unwrap();
        let (outcome, _) = server.wait(id).unwrap();
        assert_eq!(outcome.error, None, "{}", outcome.detail);
        assert!(outcome.correct, "{}", outcome.detail);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.backoff_ms, 0);
        let (id2, cached2) = server.submit(r, 0).unwrap();
        assert!(cached2, "recovered runs are deterministic and cacheable");
        let (outcome2, _) = server.wait(id2).unwrap();
        assert_eq!(outcome2.cycles, outcome.cycles);
        server.shutdown();
    }

    #[test]
    fn cancel_dequeues_only_queued_jobs() {
        // No-worker trick isn't possible (start clamps to 1), so queue
        // two long-priority jobs behind one worker and cancel the one
        // that is still queued.
        let server = Server::start(1, None);
        let (a, _) = server.submit(req(), 5).unwrap();
        let mut other = req();
        other.check = hic_runtime::CheckMode::Report;
        let (b, _) = server.submit(other, -5).unwrap();
        // Whichever is still queued can be cancelled exactly once.
        let cancelled = server.cancel(b) || server.cancel(a);
        let _ = cancelled; // may be false if both already ran — that's fine
        server.wait(a);
        assert!(!server.cancel(a), "finished jobs are not cancellable");
        server.shutdown();
    }
}
