//! The JSON-over-Unix-socket frontend.
//!
//! Wire protocol: line-delimited JSON, one request object per line, one
//! response object per line, over a `SOCK_STREAM` Unix socket. A
//! connection may issue any number of requests. Requests name an `op`:
//!
//! ```text
//! {"op":"submit","key":"hic1;app=FFT;...","priority":0}
//!     -> {"ok":true,"id":7,"cached":false}
//! {"op":"status","id":7}
//!     -> {"ok":true,"id":7,"state":"running","priority":0}
//! {"op":"result","id":7}              (blocks until done)
//!     -> {"ok":true,"id":7,"result":{...outcome...}}
//! {"op":"cancel","id":7}
//!     -> {"ok":true,"cancelled":true}
//! {"op":"stats"}
//!     -> {"ok":true,"submitted":N,"completed":N,...}
//! {"op":"shutdown"}
//!     -> {"ok":true}        (server stops accepting connections)
//! ```
//!
//! Errors are per-request, never connection-fatal:
//! `{"ok":false,"error":"..."}`. The request payload is a
//! [`RunRequest::cache_key`] string — the canonical serialized form —
//! so the wire format and the cache key cannot drift apart.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hic_runtime::RunRequest;

use crate::json::Json;
use crate::server::Server;

/// Serve `server` on a Unix socket at `path` until a client sends
/// `{"op":"shutdown"}`. Replaces any stale socket file at `path`.
pub fn serve(server: Server, path: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept so the loop can observe the shutdown flag a
    // connection handler sets (a blocking accept would park forever
    // waiting for a client that already said shutdown).
    listener.set_nonblocking(true)?;
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(&server, stream, &stop);
                }));
                // Reap finished connection threads so a long-lived
                // server does not accumulate handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(_) => continue,
        }
    }
    for h in conns {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn handle_connection(
    server: &Server,
    stream: UnixStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(server, &line, stop);
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// Dispatch one request line. Public so the batch CLI and tests can
/// drive the protocol without a socket.
pub fn handle_line(server: &Server, line: &str, stop: &AtomicBool) -> Json {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return err(format!("malformed JSON: {e}")),
    };
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return err("missing \"op\""),
    };
    let id_of = |req: &Json| req.get("id").and_then(Json::as_u64);
    match op {
        "submit" => {
            let Some(key) = req.get("key").and_then(Json::as_str) else {
                return err("submit needs a \"key\" (RunRequest cache key)");
            };
            let run_req = match RunRequest::parse_key(key) {
                Ok(r) => r,
                Err(e) => return err(format!("{e}")),
            };
            let priority = req.get("priority").and_then(Json::as_i64).unwrap_or(0);
            match server.submit(run_req, priority) {
                Ok((id, cached)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::uint(id)),
                    ("cached", Json::Bool(cached)),
                ]),
                Err(e) => err(e),
            }
        }
        "status" => match id_of(&req).and_then(|id| server.status(id)) {
            Some(job) => Json::obj([
                ("ok", Json::Bool(true)),
                ("id", Json::uint(job.id)),
                ("state", Json::str(job.state.name())),
                ("priority", Json::Num(job.priority as f64)),
                ("cached", Json::Bool(job.cached)),
            ]),
            None => err("unknown job id"),
        },
        "result" => match id_of(&req) {
            Some(id) => match server.wait(id) {
                Some((outcome, cached)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::uint(id)),
                    ("result", outcome.to_json(cached)),
                ]),
                None => err("unknown or cancelled job id"),
            },
            None => err("result needs an \"id\""),
        },
        "cancel" => match id_of(&req) {
            Some(id) => Json::obj([
                ("ok", Json::Bool(true)),
                ("cancelled", Json::Bool(server.cancel(id))),
            ]),
            None => err("cancel needs an \"id\""),
        },
        "stats" => {
            let s = server.stats();
            Json::obj([
                ("ok", Json::Bool(true)),
                ("submitted", Json::uint(s.submitted)),
                ("completed", Json::uint(s.completed)),
                ("failed", Json::uint(s.failed)),
                ("cancelled", Json::uint(s.cancelled)),
                ("cache_hits", Json::uint(s.cache_hits)),
                ("queued", Json::uint(s.queued)),
                ("running", Json::uint(s.running)),
            ])
        }
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            Json::obj([("ok", Json::Bool(true))])
        }
        other => err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_apps::Scale;
    use hic_runtime::{Config, IntraConfig};

    #[test]
    fn protocol_round_trip_without_a_socket() {
        let server = Server::start(1, None);
        let stop = AtomicBool::new(false);
        let key = RunRequest::new("FFT", Config::Intra(IntraConfig::Base), Scale::Test).cache_key();

        let sub = handle_line(
            &server,
            &Json::obj([("op", Json::str("submit")), ("key", Json::str(&*key))]).to_string(),
            &stop,
        );
        assert_eq!(sub.get("ok"), Some(&Json::Bool(true)), "{sub:?}");
        let id = sub.get("id").and_then(Json::as_u64).unwrap();

        let res = handle_line(
            &server,
            &format!("{{\"op\":\"result\",\"id\":{id}}}"),
            &stop,
        );
        let outcome = res.get("result").unwrap();
        assert_eq!(outcome.get("correct"), Some(&Json::Bool(true)));
        assert_eq!(outcome.get("error"), Some(&Json::Null));
        assert_eq!(outcome.get("key").and_then(Json::as_str), Some(&*key));

        let bad = handle_line(&server, "{\"op\":\"submit\",\"key\":\"nope\"}", &stop);
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(!stop.load(Ordering::SeqCst));
        server.shutdown();
    }
}
