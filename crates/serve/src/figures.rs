//! The paper's full figure set as one queued sweep.
//!
//! [`sweep_requests`] enumerates every (app, configuration) cell of the
//! evaluation — the 11 intra-block apps under all 5 intra schemes plus
//! the 4 inter-block apps under all 4 inter schemes — as explicit
//! [`RunRequest`]s. Submitted through the server (socket or in-process)
//! and collected with [`figures_json`], the outcomes reproduce the data
//! behind Figures 9, 10, and 12 in one `BENCH_figures.json`:
//! per-cell cycles, traffic, and correctness, plus execution time
//! normalized to each app's HCC run (the paper's presentation).

use std::sync::Arc;

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig, RunRequest};

use crate::job::JobOutcome;
use crate::json::Json;

/// Every (app, configuration) cell of the paper's figure set at
/// `scale`, in figure order.
pub fn sweep_requests(scale: Scale) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for app in intra_apps(scale) {
        for cfg in IntraConfig::ALL {
            reqs.push(RunRequest::new(app.name(), Config::Intra(cfg), scale));
        }
    }
    for app in inter_apps(scale) {
        for cfg in InterConfig::ALL {
            reqs.push(RunRequest::new(app.name(), Config::Inter(cfg), scale));
        }
    }
    reqs
}

/// Assemble `BENCH_figures.json` from typed outcomes (the in-process
/// batch path). `cached` flags ride along per outcome.
pub fn figures_json(scale: Scale, outcomes: &[(Arc<JobOutcome>, bool)]) -> Json {
    figures_json_rows(
        scale.name(),
        outcomes.iter().map(|(o, c)| o.to_json(*c)).collect(),
    )
}

/// Assemble `BENCH_figures.json` from outcome rows as the wire protocol
/// delivers them (the socket batch path — the client never rebuilds
/// typed outcomes). Each row gains `norm_cycles`: cycles normalized to
/// the same app's HCC cell in the same family (the y-axis of Figures 9
/// and 12), `null` when that cell is absent or failed.
pub fn figures_json_rows(scale_name: &str, rows: Vec<Json>) -> Json {
    let field = |row: &Json, k: &str| row.get(k).and_then(Json::as_str).map(str::to_string);
    let failed_row = |row: &Json| row.get("error") != Some(&Json::Null);
    let hcc_cycles = |row: &Json| -> Option<u64> {
        let (app, family) = (field(row, "app")?, field(row, "family")?);
        rows.iter()
            .find(|r| {
                field(r, "app").as_deref() == Some(&app)
                    && field(r, "family").as_deref() == Some(&family)
                    && field(r, "scheme").as_deref() == Some("HCC")
                    && !failed_row(r)
            })
            .and_then(|r| r.get("cycles").and_then(Json::as_u64))
            .filter(|&c| c > 0)
    };

    let total = rows.len() as u64;
    let cached = rows
        .iter()
        .filter(|r| r.get("cached") == Some(&Json::Bool(true)))
        .count() as u64;
    let failed = rows.iter().filter(|r| failed_row(r)).count() as u64;
    let correct = rows
        .iter()
        .filter(|r| r.get("correct") == Some(&Json::Bool(true)) && !failed_row(r))
        .count() as u64;

    let rows_out: Vec<Json> = rows
        .iter()
        .map(|row| {
            let norm = match (hcc_cycles(row), row.get("cycles").and_then(Json::as_u64)) {
                (Some(base), Some(cycles)) if !failed_row(row) => {
                    Json::Num(cycles as f64 / base as f64)
                }
                _ => Json::Null,
            };
            let mut row = row.clone();
            if let Json::Obj(fields) = &mut row {
                fields.push(("norm_cycles".to_string(), norm));
            }
            row
        })
        .collect();

    Json::obj([
        ("schema", Json::uint(1)),
        ("scale", Json::str(scale_name)),
        ("jobs", Json::uint(total)),
        ("correct", Json::uint(correct)),
        ("failed", Json::uint(failed)),
        ("cache_hits", Json::uint(cached)),
        ("rows", Json::Arr(rows_out)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_figure_cell() {
        let reqs = sweep_requests(Scale::Test);
        // 11 intra apps x 5 schemes + 4 inter apps x 4 schemes.
        assert_eq!(reqs.len(), 11 * 5 + 4 * 4);
        let keys: std::collections::HashSet<String> = reqs.iter().map(|r| r.cache_key()).collect();
        assert_eq!(keys.len(), reqs.len(), "sweep cells must have unique keys");
        assert!(reqs.iter().all(|r| r.scale == Scale::Test));
    }

    #[test]
    fn rows_are_normalized_to_the_apps_hcc_cell() {
        let row = |app: &str, scheme: &str, cycles: u64, error: Json| {
            Json::obj([
                ("app", Json::str(app)),
                ("scheme", Json::str(scheme)),
                ("family", Json::str("intra")),
                ("correct", Json::Bool(true)),
                ("cycles", Json::uint(cycles)),
                ("error", error),
                ("cached", Json::Bool(false)),
            ])
        };
        let doc = figures_json_rows(
            "test",
            vec![
                row("FFT", "HCC", 100, Json::Null),
                row("FFT", "Base", 150, Json::Null),
                row("FFT", "B+M+I", 0, Json::str("hang")),
            ],
        );
        assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("correct").and_then(Json::as_u64), Some(2));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("norm_cycles"), Some(&Json::Num(1.0)));
        assert_eq!(rows[1].get("norm_cycles"), Some(&Json::Num(1.5)));
        assert_eq!(rows[2].get("norm_cycles"), Some(&Json::Null));
    }
}
